//! The net5 case study (paper Sections 5.1 and 6.1, Figures 9 and 10).
//!
//! Regenerates net5 — 881 routers, 24 routing instances, 14 internal BGP
//! ASes, 16 external peer ASes — runs the full reverse-engineering
//! pipeline over its configuration files, and answers the paper's
//! questions: what does the instance graph look like, how many routers
//! must fail to partition instance 1 from instance 4, and through how
//! many protocol layers do external routes travel to reach an interior
//! router?
//!
//! Run with:
//! ```sh
//! cargo run --release --example net5_case_study            # full 881 routers
//! cargo run --example net5_case_study -- --small           # 12% scale
//! ```

use rd_rng::StdRng;
use routing_design::NetworkAnalysis;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scale = if small { 0.12 } else { 1.0 };

    eprintln!("generating net5 at scale {scale}...");
    let mut rng = StdRng::seed_from_u64(55);
    let design = netgen::designs::net5::generate(
        netgen::designs::net5::Net5Spec { scale },
        &mut rng,
    );
    let texts = design.builder.to_texts();
    let total_lines: usize = texts.iter().map(|(_, t)| t.lines().count()).sum();
    eprintln!("analyzing {} configuration files ({total_lines} lines)...", texts.len());

    let analysis = NetworkAnalysis::from_texts(texts).expect("net5 parses");

    println!("=== net5 ===");
    println!("routers:            {}", analysis.network.len());
    println!("routing instances:  {}", analysis.instances.len());
    println!(
        "largest instance:   {} routers ({})",
        analysis.instances.list[0].router_count(),
        analysis.instances.list[0].label()
    );
    println!(
        "smallest instance:  {} router(s)",
        analysis.instances.list.last().expect("non-empty").router_count()
    );
    println!("internal BGP ASes:  {}", analysis.design.internal_ases);
    println!("external peer ASes: {}", analysis.instance_graph.external_ases().len());
    println!(
        "EBGP sessions:      {} internal, {} external",
        analysis.design.internal_ebgp_sessions, analysis.design.external_ebgp_sessions
    );
    println!("classification:     {}", analysis.design.class);

    println!("\n=== Routing instance graph (Figure 9) ===");
    print!("{}", analysis.instance_graph_text());

    // The redundancy question: instance 4 (BGP AS65001) ↔ instance 1 (the
    // big EIGRP compartment).
    let inst1 = analysis
        .instances
        .list
        .iter()
        .find(|i| i.kind == routing_design::ProtoKind::Eigrp)
        .expect("EIGRP compartments exist");
    let inst4 = analysis
        .instances
        .list
        .iter()
        .find(|i| i.asn == Some(netgen::designs::net5::AS_INSTANCE4))
        .expect("AS65001 exists");
    let redistributors =
        analysis.instance_graph.redistribution_routers(inst4.id, inst1.id);
    println!(
        "\nrouters redistributing between {} and {}: {} ({:?})",
        inst4.label(),
        inst1.label(),
        redistributors.len(),
        redistributors
    );

    // Pathway of an interior spoke (Figure 10).
    let spoke = analysis
        .network
        .iter()
        .find(|(_, r)| {
            r.config.bgp.is_none()
                && r.config.eigrp.first().is_some_and(|p| p.asn == 10)
        })
        .map(|(id, _)| id)
        .expect("compartment 0 has plain spokes");
    println!("\n=== Route pathway of interior router {spoke} (Figure 10) ===");
    print!("{}", analysis.pathway_text(spoke));
    let pathway = analysis.pathway(spoke);
    println!(
        "\nexternal routes traverse {} protocol layers to reach {spoke}",
        pathway.max_depth()
    );

    // Figure 4: configuration-size distribution.
    let stats = nettopo::stats::ConfigSizeStats::of(&analysis.network);
    println!("\n=== Configuration sizes (Figure 4) ===");
    print!("{}", routing_design::report::render_fig4(&stats));
}
