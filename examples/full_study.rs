//! The full 31-network study: regenerates the corpus, runs the complete
//! reverse-engineering pipeline on every network, and prints every table
//! and figure the paper's evaluation reports.
//!
//! Run with:
//! ```sh
//! cargo run --release --example full_study               # paper scale (8,035 routers)
//! cargo run --example full_study -- --small              # ~10% scale
//! ```

use netgen::{repository_sizes, study_roster, StudyScale};
use routing_design::report::{
    render_fig4, render_table3, StudyNetwork, StudyReport,
};
use routing_design::NetworkAnalysis;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scale = if small { StudyScale::Small } else { StudyScale::Full };

    let roster = study_roster(scale);
    let mut networks = Vec::with_capacity(roster.len());
    for spec in &roster {
        eprintln!("generating + analyzing {} ({} routers)...", spec.name, spec.routers);
        let generated = netgen::study::generate_network(spec, scale);
        let analysis = NetworkAnalysis::from_texts(generated.texts)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        networks.push(StudyNetwork { name: spec.name.clone(), analysis });
    }

    let report = StudyReport::build(&networks);

    println!("================================================================");
    println!("Study population: {} networks, {} routers total", networks.len(),
        report.sizes.iter().map(|(_, s)| s).sum::<usize>());
    println!("================================================================");

    println!("\n--- Figure 8: network sizes, study vs repository ---");
    print!("{}", report.size_histogram(&repository_sizes(17)));

    println!("\n--- Table 1: protocol instances by intra/inter role ---");
    print!("{}", report.table1);
    println!(
        "IGP instances in an inter-domain role: {:.1}% (paper: ≈11%)",
        report.table1.igp_inter_fraction() * 100.0
    );
    println!(
        "EBGP sessions used intra-network:      {:.1}% (paper: ≈10%)",
        report.table1.ebgp_intra_fraction() * 100.0
    );

    println!("\n--- Figure 11: packet-filter rules on internal links ---");
    print!("{}", report.filter_cdf);
    println!(
        "networks with ≥40% of rules internal: {:.0}% (paper: >30%)",
        report.filter_cdf.fraction_at_least(0.4) * 100.0
    );

    println!("\n--- Table 3: interface census ---");
    print!("{}", render_table3(&report.census));

    println!("\n--- Section 7: design classification ---");
    print!("{}", report.section7);

    println!("\n--- Figure 4: config sizes of net5 ---");
    let net5 = networks.iter().find(|n| n.name == "net5").expect("net5 present");
    let stats = nettopo::stats::ConfigSizeStats::of(&net5.analysis.network);
    print!("{}", render_fig4(&stats));

    println!("\n--- Hierarchy structures (IBGP meshes, OSPF areas) ---");
    for n in &networks {
        for mesh in n.analysis.ibgp_meshes() {
            if mesh.routers < 3 {
                continue;
            }
            println!(
                "{}: IBGP {} routers, {:.0}% of full mesh{}",
                n.name,
                mesh.routers,
                mesh.completeness * 100.0,
                if mesh.uses_reflection() {
                    format!(" ({} route reflectors)", mesh.reflectors.len())
                } else {
                    String::new()
                }
            );
        }
        for area in n.analysis.area_structures() {
            if !area.is_flat() {
                println!(
                    "{}: OSPF {} areas, {} ABRs",
                    n.name,
                    area.area_count(),
                    area.abrs.len()
                );
            }
        }
    }

    println!("\n--- Per-network summary ---");
    println!(
        "{:<8} {:>8} {:>10} {:>8} {:>8} {:>16}",
        "name", "routers", "instances", "intlASes", "extASes", "class"
    );
    for n in &networks {
        println!(
            "{:<8} {:>8} {:>10} {:>8} {:>8} {:>16}",
            n.name,
            n.analysis.network.len(),
            n.analysis.instances.len(),
            n.analysis.design.internal_ases,
            n.analysis.instance_graph.external_ases().len(),
            n.analysis.design.class.to_string(),
        );
    }
}
