//! The net15 case study (paper Section 6.2, Figure 12, Table 2):
//! controlling external reachability with routing policy.
//!
//! Regenerates net15 (79 routers, 6 routing instances, peerings with two
//! public ASes), then uses the static reachability analysis to verify the
//! paper's findings: no default route enters the network; the admitted
//! external routes are exactly the blocks listed by the ingress policies;
//! the two sites cannot reach each other (A2 ∩ A5 = A2 ∩ A3 = A4 ∩ A1 = ∅);
//! and the OSPF route load is predictable from the ingress filters.
//!
//! Run with:
//! ```sh
//! cargo run --example net15_reachability
//! ```

use netaddr::Prefix;
use netgen::designs::net15;
use rd_rng::StdRng;
use routing_design::NetworkAnalysis;

fn main() {
    let mut rng = StdRng::seed_from_u64(15);
    let design = net15::generate(net15::Net15Spec { scale: 1.0 }, &mut rng);
    let analysis =
        NetworkAnalysis::from_texts(design.builder.to_texts()).expect("net15 parses");

    println!("=== net15 ===");
    println!("routers:           {}", analysis.network.len());
    println!("routing instances: {}", analysis.instances.len());
    println!(
        "public peer ASes:  {:?}",
        analysis.instance_graph.external_ases()
    );

    println!("\n=== Routing instance graph with policies (Figure 12) ===");
    print!("{}", analysis.instance_graph_text());

    println!("\n=== Table 2: address blocks mentioned by the policies ===");
    println!("{:<8} {}", "Policy", "Contents");
    for (policy, blocks) in net15::policy_blocks() {
        println!("{policy:<8} {}", blocks.join(", "));
    }
    println!();
    for (name, prefixes) in net15::address_blocks() {
        let rendered: Vec<String> = prefixes.iter().map(|p| p.to_string()).collect();
        println!("{name} = {}", rendered.join(", "));
    }

    let reach = analysis.reachability();

    println!("\n=== Reachability findings (Section 6.2) ===");
    // 1. No default route.
    let mut any_default = false;
    for inst in &analysis.instances.list {
        let external = reach.external_routes_entering(inst.id);
        if external.covers_prefix(Prefix::DEFAULT) {
            any_default = true;
        }
    }
    println!("default route admitted anywhere: {any_default}");

    // 2. Admitted external routes per IGP instance.
    for inst in analysis.instances.list.iter().filter(|i| i.asn.is_none()) {
        let external = reach.external_routes_entering(inst.id);
        println!("external routes entering {}: {}", inst.label(), external);
        let load = reach.load_prediction(inst.id);
        match load.max_external_routes {
            Some(n) => println!(
                "  → OSPF load prediction: at most {n} external prefixes across {} routers",
                load.routers
            ),
            None => println!("  → unbounded (default route admitted)"),
        }
    }

    // 3. Site isolation.
    let ab2: Prefix = "10.2.0.0/16".parse().expect("AB2");
    let ab4: Prefix = "10.4.0.0/16".parse().expect("AB4");
    println!("\nAB2 → AB4 reachable: {}", reach.block_reachable(ab2, ab4));
    println!("AB4 → AB2 reachable: {}", reach.block_reachable(ab4, ab2));

    // 4. What each site announces to its public peers.
    for asn in analysis.instance_graph.external_ases() {
        println!("announced to AS{asn}: {}", reach.routes_announced_to(asn));
    }

    // 5. The policy-intersection identities from the paper.
    let set = |p: &str| {
        let acl = net15_policy_set(p);
        acl
    };
    for (a, b) in [("A2", "A5"), ("A2", "A3"), ("A4", "A1")] {
        let empty = set(a).intersection(&set(b)).is_empty();
        println!("{a} ∩ {b} = ∅: {empty}");
    }
}

/// The prefix set a policy permits (from its generated ACL definition).
fn net15_policy_set(policy: &str) -> netaddr::PrefixSet {
    let blocks = net15::address_blocks();
    let contents = net15::policy_blocks()
        .into_iter()
        .find(|(name, _)| *name == policy)
        .expect("known policy")
        .1;
    let mut set = netaddr::PrefixSet::empty();
    for ab in contents {
        let prefixes = &blocks.iter().find(|(n, _)| *n == ab).expect("known block").1;
        for p in prefixes.iter() {
            set = set.union(&netaddr::PrefixSet::from_prefix(*p));
        }
    }
    set
}
