//! Quickstart: reverse-engineer the routing design of the paper's own
//! 7-router example (Figure 1): a 3-router enterprise customer attached
//! to a 3-router transit backbone that also serves another customer.
//!
//! Run with:
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Prints the routing process graph, the routing instance graph
//! (Figures 5 and 6), and the route pathway graphs of an enterprise
//! interior router and a backbone router (Figure 7).

use routing_design::{NetworkAnalysis, RouterId};

/// Configurations for the Figure 1 topology. R1–R3: enterprise (OSPF +
/// border BGP redistributed into OSPF). R4–R6: backbone (OSPF for
/// infrastructure, IBGP mesh, EBGP at the borders). R7 (another customer)
/// is outside the corpus, exactly like the paper's external routers.
fn figure1_configs() -> Vec<(String, String)> {
    let r1 = "\
hostname enterprise-r1
interface Ethernet0
 ip address 10.1.1.1 255.255.255.0
interface Serial0
 ip address 10.1.0.1 255.255.255.252
router ospf 64
 network 10.1.0.0 0.0.255.255 area 0
 redistribute connected metric-type 1 subnets
";
    // R2 is the enterprise border: Figure 2's configlet, essentially.
    let r2 = "\
hostname enterprise-r2
interface Serial0
 ip address 10.1.0.2 255.255.255.252
interface Serial1
 ip address 10.1.0.5 255.255.255.252
interface Hssi2/0 point-to-point
 ip address 66.253.160.67 255.255.255.252
router ospf 64
 network 10.1.0.0 0.0.255.255 area 0
 redistribute connected metric-type 1 subnets
 redistribute bgp 64780 metric 1 subnets
router bgp 64780
 redistribute ospf 64 route-map corp-export
 neighbor 66.253.160.68 remote-as 12762
 neighbor 66.253.160.68 distribute-list 4 in
 neighbor 66.253.160.68 distribute-list 3 out
access-list 3 permit 10.1.0.0 0.0.255.255
access-list 4 permit any
route-map corp-export permit 10
 match ip address 3
";
    let r3 = "\
hostname enterprise-r3
interface Ethernet0
 ip address 10.1.2.1 255.255.255.0
interface Serial0
 ip address 10.1.0.6 255.255.255.252
router ospf 64
 network 10.1.0.0 0.0.255.255 area 0
 redistribute connected metric-type 1 subnets
";
    // Backbone: R4 peers with the enterprise (R2) via EBGP; R5 carries
    // transit; R6 peers with customer R7 (absent from the corpus).
    let r4 = "\
hostname backbone-r4
interface Hssi2/0 point-to-point
 ip address 66.253.160.68 255.255.255.252
interface POS0/0
 ip address 66.254.0.1 255.255.255.252
router ospf 1
 network 66.254.0.0 0.0.15.255 area 0
router bgp 12762
 neighbor 66.253.160.67 remote-as 64780
 neighbor 66.254.0.2 remote-as 12762
 neighbor 66.254.0.6 remote-as 12762
";
    let r5 = "\
hostname backbone-r5
interface POS0/0
 ip address 66.254.0.2 255.255.255.252
interface POS0/1
 ip address 66.254.0.5 255.255.255.252
router ospf 1
 network 66.254.0.0 0.0.15.255 area 0
router bgp 12762
 neighbor 66.254.0.1 remote-as 12762
 neighbor 66.254.0.6 remote-as 12762
";
    let r6 = "\
hostname backbone-r6
interface POS0/1
 ip address 66.254.0.6 255.255.255.252
interface Serial3/0
 ip address 66.254.16.1 255.255.255.252
router ospf 1
 network 66.254.0.0 0.0.15.255 area 0
router bgp 12762
 neighbor 66.254.0.5 remote-as 12762
 neighbor 66.254.0.1 remote-as 12762
 neighbor 66.254.16.2 remote-as 8342
";
    [r1, r2, r3, r4, r5, r6]
        .iter()
        .enumerate()
        .map(|(i, text)| (format!("config{}", i + 1), text.to_string()))
        .collect()
}

fn main() {
    let analysis = NetworkAnalysis::from_texts(figure1_configs())
        .expect("example configs are well-formed");

    println!("=== Figure 1: {} routers, {} links ===\n", analysis.network.len(), analysis.links.links.len());

    println!("=== Routing instances (Figure 6) ===");
    print!("{}", analysis.instance_graph_text());

    println!("\n=== Routing process graph (Figure 5, DOT) ===");
    print!("{}", analysis.process_graph_dot());

    println!("\n=== Pathway of enterprise interior router r0 (Figure 7a) ===");
    print!("{}", analysis.pathway_text(RouterId(0)));

    println!("\n=== Pathway of backbone router r4 (Figure 7b) ===");
    print!("{}", analysis.pathway_text(RouterId(4)));

    println!("\n=== Design classification ===");
    println!(
        "class: {} ({} routers, {} BGP speakers, bgp→igp redistribution: {})",
        analysis.design.class,
        analysis.design.routers,
        analysis.design.bgp_speakers,
        analysis.design.bgp_into_igp,
    );

    println!("\n=== Table 1 roles for this network ===");
    print!("{}", analysis.table1);
}
