//! Structure-preserving anonymization (paper Section 4.1).
//!
//! Generates a small enterprise network, anonymizes its configuration
//! files with a keyed anonymizer, shows a before/after excerpt, and then
//! demonstrates the property the methodology rests on: the analysis of
//! the anonymized corpus is isomorphic to the analysis of the original.
//!
//! Run with:
//! ```sh
//! cargo run --example anonymize_configs
//! ```
//!
//! Optionally anonymize a real directory of config files:
//! ```sh
//! cargo run --example anonymize_configs -- <input-dir> <output-dir> <key>
//! ```

use anonymizer::Anonymizer;
use routing_design::NetworkAnalysis;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 {
        anonymize_directory(&args[1], &args[2], args[3].as_bytes());
        return;
    }

    // Demo mode: generate, anonymize, compare.
    let spec = &netgen::study_roster(netgen::StudyScale::Small)[5];
    let generated = netgen::study::generate_network(spec, netgen::StudyScale::Small);
    let anon = Anonymizer::new(b"demo-key-do-not-reuse");

    println!("=== Original config1 (first 20 lines) ===");
    for line in generated.texts[0].1.lines().take(20) {
        println!("{line}");
    }
    println!("\n=== Anonymized config1 (first 20 lines) ===");
    let anonymized_first = anon.anonymize_config(&generated.texts[0].1);
    for line in anonymized_first.lines().take(20) {
        println!("{line}");
    }

    let anonymized: Vec<(String, String)> = generated
        .texts
        .iter()
        .map(|(name, text)| (name.clone(), anon.anonymize_config(text)))
        .collect();

    let original = NetworkAnalysis::from_texts(generated.texts).expect("original parses");
    let anonymized = NetworkAnalysis::from_texts(anonymized).expect("anonymized parses");

    println!("\n=== Analysis comparison (original vs anonymized) ===");
    println!(
        "{:<24} {:>10} {:>12}",
        "metric", "original", "anonymized"
    );
    let rows: Vec<(&str, usize, usize)> = vec![
        ("routers", original.network.len(), anonymized.network.len()),
        ("links", original.links.links.len(), anonymized.links.links.len()),
        ("processes", original.processes.len(), anonymized.processes.len()),
        ("instances", original.instances.len(), anonymized.instances.len()),
        (
            "EBGP external sessions",
            original.design.external_ebgp_sessions,
            anonymized.design.external_ebgp_sessions,
        ),
        ("IBGP sessions", original.design.ibgp_sessions, anonymized.design.ibgp_sessions),
    ];
    for (metric, o, a) in rows {
        let marker = if o == a { "✓" } else { "✗" };
        println!("{metric:<24} {o:>10} {a:>12}  {marker}");
    }
    println!(
        "{:<24} {:>10} {:>12}  {}",
        "design class",
        original.design.class.to_string(),
        anonymized.design.class.to_string(),
        if original.design.class == anonymized.design.class { "✓" } else { "✗" }
    );
}

fn anonymize_directory(input: &str, output: &str, key: &[u8]) {
    let anon = Anonymizer::new(key);
    std::fs::create_dir_all(output).expect("create output dir");
    let mut entries: Vec<_> = std::fs::read_dir(input)
        .expect("read input dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_file())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for (i, path) in entries.iter().enumerate() {
        let text = std::fs::read_to_string(path).expect("read config");
        let anonymized = anon.anonymize_config(&text);
        // Output files are renamed config1..configN, like the paper's
        // corpora — file names can identify routers too.
        let out_path = std::path::Path::new(output).join(format!("config{}", i + 1));
        std::fs::write(&out_path, anonymized).expect("write config");
        println!("{} -> {}", path.display(), out_path.display());
    }
}
