//! End-to-end graceful degradation through the `rdx` binary: corrupt
//! config files are quarantined with exact diagnostic codes instead of
//! aborting the run, coverage surfaces in `summary --json`, networks over
//! the error budget are dropped (with exit code 1) by `rdx snap`, and the
//! `rdx chaos` sweep is byte-deterministic at any `RD_THREADS`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn rdx() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rdx"))
}

/// A unique scratch directory under the target-adjacent temp root;
/// removed and re-created so reruns start clean.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdx-chaos-test-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

const GOOD_A: &str = "hostname ra\n\
                      interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n\
                      router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n";
const GOOD_B: &str = "hostname rb\n\
                      interface Ethernet0\n ip address 10.0.0.2 255.255.255.0\n\
                      router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n";

/// Writes a mixed corpus: two healthy routers, one zero-byte file, one
/// non-UTF-8 file.
fn write_mixed_corpus(dir: &Path) {
    fs::write(dir.join("ra.cfg"), GOOD_A).unwrap();
    fs::write(dir.join("rb.cfg"), GOOD_B).unwrap();
    fs::write(dir.join("rc.cfg"), b"").unwrap();
    fs::write(dir.join("rd.cfg"), [0xff, 0xfe, 0x00, b'x', 0x80]).unwrap();
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().unwrap_or_else(|e| panic!("failed to spawn rdx: {e}"))
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn corrupt_files_surface_exact_codes_and_analysis_survives() {
    let dir = scratch("diag");
    write_mixed_corpus(&dir);

    let out = run(rdx().arg(&dir).arg("diag"));
    let stdout = stdout_of(&out);
    let stderr = stderr_of(&out);

    // Quarantine diagnostics carry the exact codes, at line 0.
    assert!(stdout.contains("rc.cfg: error [empty-config]"), "stdout:\n{stdout}");
    assert!(stdout.contains("rd.cfg: error [invalid-utf8]"), "stdout:\n{stdout}");
    // Error-severity diagnostics make `diag` exit 1 — but the process must
    // not have crashed, and the degraded banner names the quarantined files.
    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(stderr.contains("DEGRADED coverage: 2/4"), "stderr:\n{stderr}");
    assert!(stderr.contains("rc.cfg"), "stderr:\n{stderr}");

    // The surviving routers are still analyzed: summary works and reports
    // the two healthy routers.
    let out = run(rdx().arg(&dir).arg("summary"));
    assert_eq!(out.status.code(), Some(0), "summary failed:\n{}", stderr_of(&out));
    assert!(stdout_of(&out).contains("routers:             2"), "{}", stdout_of(&out));

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn summary_json_carries_coverage_and_degraded_fields() {
    let dir = scratch("json");
    write_mixed_corpus(&dir);

    let out = run(rdx().arg(&dir).arg("summary").arg("--json"));
    assert_eq!(out.status.code(), Some(0), "stderr:\n{}", stderr_of(&out));
    let body = stdout_of(&out);
    assert!(body.contains("\"degraded\": true"), "{body}");
    assert!(body.contains("\"coverage\": {\"files\": 4, \"parsed\": 2"), "{body}");
    assert!(body.contains("\"quarantined\": [\"rc.cfg\", \"rd.cfg\"]"), "{body}");

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn snap_drops_over_budget_networks_and_exits_nonzero() {
    let study = scratch("snap");
    // net-good: fully healthy. net-bad: 1 of 2 files corrupt (50% > 25%
    // default budget) — must be dropped.
    let good = study.join("net-good");
    let bad = study.join("net-bad");
    fs::create_dir_all(&good).unwrap();
    fs::create_dir_all(&bad).unwrap();
    fs::write(good.join("ra.cfg"), GOOD_A).unwrap();
    fs::write(good.join("rb.cfg"), GOOD_B).unwrap();
    fs::write(bad.join("ra.cfg"), GOOD_A).unwrap();
    fs::write(bad.join("rb.cfg"), [0xff, 0xfe, 0x80]).unwrap();

    let snap_path = study.join("out.rdsnap");
    let out = run(rdx().arg("snap").arg(&study).arg("-o").arg(&snap_path));
    let stderr = stderr_of(&out);
    assert_eq!(out.status.code(), Some(1), "stderr:\n{stderr}");
    assert!(stderr.contains("DROPPED net-bad"), "stderr:\n{stderr}");
    assert!(stderr.contains("error budget"), "stderr:\n{stderr}");

    // The snapshot is still written and holds the surviving network only.
    let bytes = fs::read(&snap_path).expect("snapshot written despite drop");
    let corpus = rd_snap::Corpus::from_bytes(&bytes).expect("snapshot decodes");
    let names: Vec<&str> = corpus.networks.iter().map(|n| n.name.as_str()).collect();
    assert_eq!(names, ["net-good"]);

    fs::remove_dir_all(&study).ok();
}

#[test]
fn snap_keeps_degraded_networks_under_budget() {
    let study = scratch("snap-degraded");
    // 1 of 5 files corrupt (20% < 25%): kept, flagged degraded.
    let net = study.join("net-frayed");
    fs::create_dir_all(&net).unwrap();
    for i in 0..4 {
        let cfg = format!(
            "hostname r{i}\ninterface Ethernet0\n ip address 10.0.{i}.1 255.255.255.0\n"
        );
        fs::write(net.join(format!("r{i}.cfg")), cfg).unwrap();
    }
    fs::write(net.join("r4.cfg"), b"").unwrap();

    let snap_path = study.join("out.rdsnap");
    let out = run(rdx().arg("snap").arg(&study).arg("-o").arg(&snap_path));
    let stderr = stderr_of(&out);
    assert_eq!(out.status.code(), Some(0), "stderr:\n{stderr}");
    assert!(stderr.contains("net-frayed DEGRADED: 1/5"), "stderr:\n{stderr}");

    let corpus = rd_snap::Corpus::from_bytes(&fs::read(&snap_path).unwrap()).unwrap();
    assert_eq!(corpus.networks.len(), 1);
    let coverage = &corpus.networks[0].network.coverage;
    assert_eq!(coverage.total_files, 5);
    assert_eq!(coverage.quarantined, vec!["r4.cfg".to_string()]);
    assert!(coverage.degraded());

    fs::remove_dir_all(&study).ok();
}

#[test]
fn chaos_sweep_is_deterministic_across_thread_counts() {
    let dir = scratch("sweep");
    write_mixed_corpus(&dir);
    // The sweep needs a clean baseline too; replace the broken files so
    // only the injected faults degrade coverage.
    fs::write(dir.join("rc.cfg"), GOOD_A.replace("ra", "rc")).unwrap();
    fs::write(dir.join("rd.cfg"), GOOD_B.replace("rb", "rd")).unwrap();

    let sweep = |threads: &str| {
        run(rdx()
            .arg("chaos")
            .arg(&dir)
            .args(["--seed", "7", "--configs", "40", "--snapshots", "12"])
            .env("RD_THREADS", threads))
    };
    let one = sweep("1");
    let four = sweep("4");
    assert_eq!(one.status.code(), Some(0), "stderr:\n{}", stderr_of(&one));
    assert_eq!(four.status.code(), Some(0), "stderr:\n{}", stderr_of(&four));
    let stdout_one = stdout_of(&one);
    assert_eq!(stdout_one, stdout_of(&four), "chaos stdout differs by RD_THREADS");
    assert!(stdout_one.contains("diagnostics digest: 0x"), "{stdout_one}");
    assert!(stdout_one.contains("invariant held: error-not-panic"), "{stdout_one}");

    fs::remove_dir_all(&dir).ok();
}
