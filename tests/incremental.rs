//! The incremental delta engine must be observationally invisible: after
//! any sequence of config churn, a refresh produces snapshot bytes,
//! reports, and summary JSON byte-identical to a cold re-run of the same
//! directory — at any `RD_THREADS` setting. Churn comes from the seeded
//! `rd-chaos` config mutators applied router-by-router, so the engine is
//! exercised against realistic damage (truncation, duplication, garbage,
//! cosmetic noise), not just clean edits.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use netgen::StudyScale;
use routing_design::incremental::DeltaEngine;
use routing_design::report::{StudyNetwork, StudyReport};

/// Tests here mutate the process-global `RD_THREADS` environment
/// variable; the lock keeps them from racing each other.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Two generated small-study networks as `(name, files)` — enough churn
/// surface without analyzing the whole roster every round.
fn study_files() -> Vec<(String, Vec<(String, String)>)> {
    netgen::study::generate_study(StudyScale::Small)
        .into_iter()
        .filter(|g| g.spec.name == "net1" || g.spec.name == "net2")
        .map(|g| (g.spec.name.clone(), g.texts))
        .collect()
}

fn write_study(base: &Path, networks: &[(String, Vec<(String, String)>)]) {
    for (net, files) in networks {
        let sub = base.join(net);
        std::fs::create_dir_all(&sub).expect("network dir");
        for (name, text) in files {
            std::fs::write(sub.join(name), text).expect("config file");
        }
    }
}

/// Everything a refresh must reproduce byte-for-byte: the encoded
/// container, every per-network summary JSON body, and the study report.
fn observable(corpus: &rd_snap::Corpus) -> String {
    let mut out = String::new();
    for snap in &corpus.networks {
        out.push_str(&rd_serve::render::network_summary(snap));
    }
    let networks: Vec<StudyNetwork> = corpus
        .networks
        .iter()
        .map(|snap| StudyNetwork {
            name: snap.name.clone(),
            analysis: routing_design::snapshot::restore((**snap).clone()),
        })
        .collect();
    let report = StudyReport::build(&networks);
    out.push_str(&report.table1.to_string());
    out.push_str(&report.section7.to_string());
    out
}

/// Cold ground truth for the directory's current state.
fn cold_outputs(dir: &Path) -> (Vec<u8>, String) {
    let outcome = routing_design::snapshot::snap_dir(dir).expect("cold run");
    let bytes = outcome.corpus.to_bytes();
    let rendered = observable(&outcome.corpus);
    (bytes, rendered)
}

/// One full churn run at the given thread count: seed the engine from a
/// cold snapshot, then mutate one router file per round (cycling the
/// seeded rd-chaos mutators across networks and routers), refreshing and
/// checking against a cold re-run after every round. Returns the
/// per-round outputs so runs at different thread counts can be compared.
fn run_churn(threads: &str) -> Vec<(Vec<u8>, String)> {
    std::env::set_var(rd_par::THREADS_ENV, threads);
    let base: PathBuf = std::env::temp_dir()
        .join(format!("rd-incr-churn-{}-t{threads}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let networks = study_files();
    write_study(&base, &networks);

    // Seed from a cold snapshot rather than a warm refresh, so the
    // restart path (cache rebuilt from persisted bytes) is on trial too.
    let (seed_bytes, _) = cold_outputs(&base);
    let mut engine = DeltaEngine::new(&base);
    engine.seed_from_snapshot(&seed_bytes).expect("snapshot seeds the engine");

    let mut outputs = Vec::new();
    let mut round = 0usize;
    for (net, files) in &networks {
        for (file_name, _) in files.iter().take(3) {
            let mutator =
                rd_chaos::CONFIG_MUTATORS[round % rd_chaos::CONFIG_MUTATORS.len()];
            let mut rng = rd_rng::StdRng::seed_from_u64(
                0x5eed ^ (round as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let path = base.join(net).join(file_name);
            let bytes = std::fs::read(&path).expect("victim readable");
            match rd_chaos::mutate_config(&mut rng, mutator, &bytes) {
                Some(mutated) => std::fs::write(&path, mutated).expect("victim rewritten"),
                None => std::fs::remove_file(&path).expect("victim removed"),
            }

            let refresh = engine.refresh().expect("incremental refresh");
            let (cold_bytes, cold_rendered) = cold_outputs(&base);
            assert_eq!(
                refresh.bytes, cold_bytes,
                "round {round} ({} on {net}/{file_name}): incremental snapshot \
                 bytes diverge from a cold run at RD_THREADS={threads}",
                mutator.name(),
            );
            let incr_rendered = observable(&refresh.outcome.corpus);
            assert_eq!(
                incr_rendered, cold_rendered,
                "round {round}: incremental reports/summaries diverge from cold",
            );
            outputs.push((refresh.bytes, incr_rendered));
            round += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&base);
    outputs
}

#[test]
fn seeded_churn_stays_byte_identical_to_cold_at_any_thread_count() {
    let _env = ENV_LOCK.lock().expect("env lock");
    let one = run_churn("1");
    let four = run_churn("4");
    std::env::remove_var(rd_par::THREADS_ENV);

    assert!(!one.is_empty(), "churn run produced no rounds");
    assert_eq!(one.len(), four.len());
    for (i, ((bytes_1, text_1), (bytes_4, text_4))) in one.iter().zip(&four).enumerate() {
        assert_eq!(bytes_1, bytes_4, "round {i}: snapshot bytes differ by thread count");
        assert_eq!(text_1, text_4, "round {i}: rendered output differs by thread count");
    }
    // The churn must have actually moved the corpus at least once,
    // otherwise every assertion above compared a fixed point.
    assert!(
        one.windows(2).any(|w| w[0].0 != w[1].0),
        "no mutation round ever changed the snapshot"
    );
}
