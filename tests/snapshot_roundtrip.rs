//! Snapshot persistence golden test: analyzing a corpus directly and
//! reloading it from an `.rdsnap` container must be indistinguishable —
//! every report byte-identical — and the reload must never touch the IOS
//! parser (checked through the `rd-obs` metrics registry: a freshly reset
//! registry records no `parse.*` counters during decode + render).

use std::collections::BTreeMap;

use netgen::StudyScale;
use routing_design::{snapshot, NetworkAnalysis};

/// Two study networks (the smallest and the net15 case study) generated
/// at small scale — enough to cover OSPF/EIGRP/BGP material without
/// making the test slow.
fn study_subset() -> Vec<(String, Vec<(String, String)>)> {
    netgen::study::generate_study(StudyScale::Small)
        .into_iter()
        .filter(|g| g.spec.name == "net1" || g.spec.name == "net15")
        .map(|g| (g.spec.name.clone(), g.texts))
        .collect()
}

/// Everything the toolchain can say about one analysis, rendered into a
/// single comparable string: the served JSON summary, the instance
/// graph, Table-1 roles, and every diagnostic line.
fn render(name: &str, analysis: &NetworkAnalysis) -> String {
    let snap = snapshot::capture_ref(name, analysis);
    let mut out = rd_serve::render::network_summary(&snap);
    out.push_str(&analysis.instance_graph_text());
    out.push_str(&analysis.table1.to_string());
    for d in analysis.diagnostics.iter() {
        out.push_str(&format!("{d}\n"));
    }
    out.push_str(&analysis.diagnostics.summary());
    out
}

#[test]
fn snapshot_reload_reproduces_reports_without_parsing() {
    let subset = study_subset();
    assert_eq!(subset.len(), 2, "expected net1 and net15 in the roster");

    let mut direct = BTreeMap::new();
    let mut snaps = Vec::new();
    for (name, texts) in subset {
        let analysis =
            NetworkAnalysis::from_texts(texts).unwrap_or_else(|e| panic!("{name}: {e}"));
        direct.insert(name.clone(), render(&name, &analysis));
        snaps.push(snapshot::capture(&name, analysis));
    }
    // Sanity: the direct pipeline really did go through the parser.
    assert!(
        rd_obs::metrics::dump().contains("parse.files"),
        "direct analysis should have recorded parse metrics"
    );
    let bytes = rd_snap::Corpus::new(snaps).to_bytes();

    // From here on, nothing may invoke the parser: decode, restore, and
    // render against a clean registry, then inspect it.
    rd_obs::metrics::reset();
    let corpus = rd_snap::Corpus::from_bytes(&bytes).expect("container decodes");
    assert_eq!(corpus.networks.len(), direct.len());
    for snap in corpus.networks {
        let name = snap.name.clone();
        let snap = std::sync::Arc::try_unwrap(snap).unwrap_or_else(|a| (*a).clone());
        let analysis = snapshot::restore(snap);
        let rendered = render(&name, &analysis);
        let expected = direct.get(&name).expect("network present in direct run");
        assert_eq!(
            &rendered, expected,
            "{name}: snapshot-restored report differs from direct analysis"
        );
    }
    let metrics = rd_obs::metrics::dump();
    assert!(
        !metrics.contains("parse."),
        "snapshot load invoked the parser:\n{metrics}"
    );
}
