//! The parallel fan-out must be observationally invisible: any
//! `RD_THREADS` setting produces byte-identical corpora, reports, and
//! error messages. One test function drives every check, because the
//! worker count comes from process-global environment state.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use netgen::StudyScale;
use routing_design::report::{render_table3, StudyNetwork, StudyReport};
use routing_design::{Network, NetworkAnalysis};

/// Every test in this file mutates the process-global `RD_THREADS`
/// environment variable; the lock keeps them from racing each other.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Renders everything a `StudyReport` can say into one comparable string
/// (`StudyReport` itself is not `PartialEq`).
fn render_report(networks: &[StudyNetwork]) -> String {
    let report = StudyReport::build(networks);
    let mut out = String::new();
    out.push_str(&report.table1.to_string());
    out.push_str(&report.filter_cdf.to_string());
    out.push_str(&report.section7.to_string());
    out.push_str(&render_table3(&report.census));
    for n in networks {
        out.push_str(&format!(
            "{}: routers={} links={} instances={} class={}\n",
            n.name,
            n.analysis.network.len(),
            n.analysis.links.links.len(),
            n.analysis.instances.len(),
            n.analysis.design.class,
        ));
        out.push_str(&n.analysis.instance_graph_text());
    }
    out
}

/// Runs the small study with a memory trace sink (timestamps zeroed) and a
/// freshly reset metrics registry; returns the trace lines and the metrics
/// dump with the nondeterministic `rss.*` gauges filtered out. Both must be
/// byte-identical at any thread count.
fn traced_small_study() -> (Vec<String>, String) {
    rd_obs::metrics::reset();
    rd_obs::trace::install_memory_sink(true);
    for g in netgen::study::generate_study(StudyScale::Small) {
        let name = g.spec.name.clone();
        NetworkAnalysis::from_texts(g.texts).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    let lines = rd_obs::trace::take_memory();
    rd_obs::trace::clear_sink();
    let metrics: String = rd_obs::metrics::dump()
        .lines()
        .filter(|l| !l.contains("rss."))
        .collect::<Vec<_>>()
        .join("\n");
    (lines, metrics)
}

fn small_study() -> (Vec<(String, Vec<(String, String)>)>, String) {
    let corpora: Vec<(String, Vec<(String, String)>)> =
        netgen::study::generate_study(StudyScale::Small)
            .into_iter()
            .map(|g| (g.spec.name.clone(), g.texts))
            .collect();
    let networks: Vec<StudyNetwork> = corpora
        .iter()
        .map(|(name, texts)| StudyNetwork {
            name: name.clone(),
            analysis: NetworkAnalysis::from_texts(texts.clone())
                .unwrap_or_else(|e| panic!("{name}: {e}")),
        })
        .collect();
    (corpora, render_report(&networks))
}

/// Encodes two analyzed networks into an `.rdsnap` container. The byte
/// stream must not depend on the worker count: sections are written in
/// canonical name order and every derived product is deterministic.
fn snapshot_bytes() -> Vec<u8> {
    let snaps: Vec<_> = netgen::study::generate_study(StudyScale::Small)
        .into_iter()
        .filter(|g| g.spec.name == "net1" || g.spec.name == "net15")
        .map(|g| {
            let name = g.spec.name.clone();
            let analysis = NetworkAnalysis::from_texts(g.texts)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            routing_design::snapshot::capture(&name, analysis)
        })
        .collect();
    rd_snap::Corpus::new(snaps).to_bytes()
}

/// A corpus where several files fail to parse (bad syntax, empty, and
/// non-UTF-8). The degraded-mode output — quarantine list, coverage, and
/// every diagnostic — must be byte-identical whatever order workers
/// finish in.
fn degraded_output() -> String {
    let good = b"hostname ok\ninterface Serial0/0\n ip address 10.0.0.1 255.255.255.252\n";
    let bad = b"interface Serial0/0\n ip address not-an-address 255.0.0.0\n";
    let files: Vec<(String, Vec<u8>)> = (0..64)
        .map(|i| {
            let body: Vec<u8> = match i {
                17 | 40 => bad.to_vec(),
                23 => Vec::new(),
                31 => vec![0xff, 0xfe, 0x00, b'x'],
                _ => good.to_vec(),
            };
            (format!("config{i:02}"), body)
        })
        .collect();
    let network = Network::from_bytes_list(files);
    let mut out = String::new();
    out.push_str(&format!(
        "coverage: {} files, {} parsed, quarantined {:?}, degraded {}\n",
        network.coverage.total_files,
        network.coverage.parsed(),
        network.coverage.quarantined,
        network.coverage.degraded(),
    ));
    for d in network.diagnostics.iter() {
        out.push_str(&format!("{d}\n"));
    }
    out
}

#[test]
fn thread_count_never_changes_observable_output() {
    let _env = ENV_LOCK.lock().expect("env lock");
    std::env::set_var(rd_par::THREADS_ENV, "1");
    let (corpus_seq, report_seq) = small_study();
    let degraded_seq = degraded_output();
    let (trace_seq, metrics_seq) = traced_small_study();
    let snap_seq = snapshot_bytes();

    std::env::set_var(rd_par::THREADS_ENV, "4");
    let (corpus_par, report_par) = small_study();
    let degraded_par = degraded_output();
    let (trace_par, metrics_par) = traced_small_study();
    let snap_par = snapshot_bytes();
    std::env::remove_var(rd_par::THREADS_ENV);

    // Generated corpora are byte-identical.
    assert_eq!(corpus_seq.len(), corpus_par.len());
    for ((name_s, texts_s), (name_p, texts_p)) in corpus_seq.iter().zip(&corpus_par) {
        assert_eq!(name_s, name_p);
        assert_eq!(texts_s, texts_p, "{name_s}: corpus differs by thread count");
    }

    // The whole rendered study report is identical.
    assert_eq!(report_seq, report_par, "study report differs by thread count");

    // Multi-failure corpora quarantine the same files, in input order,
    // with byte-identical diagnostics.
    assert!(
        degraded_seq.contains("quarantined [\"config17\", \"config23\", \"config31\", \"config40\"]"),
        "unexpected quarantine set:\n{degraded_seq}"
    );
    assert!(degraded_seq.contains("degraded true"), "coverage not degraded:\n{degraded_seq}");
    assert!(degraded_seq.contains("[parse-error]"), "missing parse-error:\n{degraded_seq}");
    assert!(degraded_seq.contains("[empty-config]"), "missing empty-config:\n{degraded_seq}");
    assert!(degraded_seq.contains("[invalid-utf8]"), "missing invalid-utf8:\n{degraded_seq}");
    assert_eq!(degraded_seq, degraded_par, "degraded output differs by thread count");

    // With timestamps zeroed, the trace byte stream is identical too: the
    // parallel layer buffers per-item events and flushes in input order.
    assert!(!trace_seq.is_empty(), "traced run emitted no events");
    assert_eq!(trace_seq, trace_par, "trace stream differs by thread count");
    for line in &trace_seq {
        rd_obs::json::validate_event_line(line)
            .unwrap_or_else(|e| panic!("invalid trace line {line:?}: {e}"));
    }

    // So is the metrics dump, once the nondeterministic `rss.*` peak-RSS
    // gauges are excluded (documented carve-out in `rd_obs::metrics`).
    assert!(!metrics_seq.is_empty(), "traced run recorded no metrics");
    assert_eq!(metrics_seq, metrics_par, "metrics dump differs by thread count");

    // The serialized `.rdsnap` container is byte-for-byte stable too, so
    // snapshots taken on different machines or thread counts can be
    // compared with `cmp`.
    assert!(!snap_seq.is_empty(), "snapshot encoder produced no bytes");
    assert_eq!(snap_seq, snap_par, "snapshot bytes differ by thread count");
}

/// With real hardware parallelism available, the parallel study loop must
/// beat the sequential one. The seed benchmark measured speedup 0.91 at 4
/// threads — thread oversubscription on a single-core host compounded by
/// fan-out overhead on tiny networks and an O(n²) external stage; see
/// EXPERIMENTS.md for the full account. On a single-core machine the
/// assertion is physically unattainable, so the test reports that and
/// passes vacuously rather than asserting something the hardware forbids.
#[test]
fn parallel_study_beats_sequential_on_multicore() {
    let _env = ENV_LOCK.lock().expect("env lock");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 2 {
        eprintln!(
            "skipping speedup assertion: {cores} core available — threads \
             cannot beat sequential without hardware parallelism"
        );
        return;
    }

    // Generate the corpora up front so only analysis is timed.
    let corpora: Vec<(String, Vec<(String, String)>)> =
        netgen::study::generate_study(StudyScale::Small)
            .into_iter()
            .map(|g| (g.spec.name.clone(), g.texts))
            .collect();
    let run = |threads: usize| -> Duration {
        std::env::set_var(rd_par::THREADS_ENV, threads.to_string());
        let started = Instant::now();
        rd_par::par_map(&corpora, |_, (name, texts)| {
            NetworkAnalysis::from_texts(texts.clone())
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .network
                .len()
        });
        started.elapsed()
    };

    let threads = cores.min(4);
    run(threads); // warm-up (page cache, allocator)
    // Best-of-three per mode shaves scheduler noise. The margin demanded
    // of the parallel run is break-even, not linear scaling, so this stays
    // CI-safe on busy two-core machines.
    let seq = (0..3).map(|_| run(1)).min().expect("three runs");
    let par = (0..3).map(|_| run(threads)).min().expect("three runs");
    std::env::remove_var(rd_par::THREADS_ENV);
    let speedup = seq.as_secs_f64() / par.as_secs_f64();
    assert!(
        speedup > 1.0,
        "parallel study loop slower than sequential on a {cores}-core host: \
         sequential {seq:?}, {threads} threads {par:?} (speedup {speedup:.2})"
    );
}

/// The `rdx watch` publish path is part of the observable surface too: a
/// scripted change → analyze → persist → publish sequence must serve
/// byte-identical bodies (and produce byte-identical persisted
/// snapshots) at any `RD_THREADS` setting.
#[test]
fn watch_publishes_identical_bodies_at_any_thread_count() {
    use std::io::{Read, Write};

    let _env = ENV_LOCK.lock().expect("env lock");

    const RA: &str = "hostname ra\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n\
                      router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n";
    const RB: &str = "hostname rb\ninterface Ethernet0\n ip address 10.0.0.2 255.255.255.0\n\
                      router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n";

    let get_body = |server: &rd_serve::Server, path: &str| -> Vec<u8> {
        let mut stream =
            std::net::TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
        stream
            .write_all(
                format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes(),
            )
            .expect("request");
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).expect("head");
            head.push(byte[0]);
        }
        let head = String::from_utf8(head).expect("utf-8 head");
        assert!(head.starts_with("HTTP/1.1 200"), "{path}: {head}");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .expect("content-length")
            .parse()
            .expect("numeric length");
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).expect("body");
        body
    };

    // One scripted watch run: boot, publish a mutation, return the
    // served bodies before/after plus the persisted snapshot bytes.
    let run = |threads: &str| -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        std::env::set_var(rd_par::THREADS_ENV, threads);
        let base = std::env::temp_dir()
            .join(format!("rdx-watch-det-{}-t{threads}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let dir = base.join("configs");
        let net = dir.join("netA");
        std::fs::create_dir_all(&net).expect("network dir");
        std::fs::write(net.join("ra.cfg"), RA).expect("ra.cfg");
        std::fs::write(net.join("rb.cfg"), RB).expect("rb.cfg");
        let snapshot_path = base.join("last-good.rdsnap");

        let outcome = routing_design::snapshot::snap_dir(&dir).expect("initial analysis");
        rd_snap::write_atomic(&snapshot_path, &outcome.corpus.to_bytes()).expect("seed");
        let server = rd_serve::Server::start(outcome.corpus, "127.0.0.1:0", 1).expect("server");
        let opts = routing_design::watch::WatchOptions {
            poll_interval: Duration::from_millis(1),
            debounce: Duration::from_millis(1),
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(5),
            degraded_after: 3,
            seed: 9,
        };
        let mut watcher =
            routing_design::watch::Watcher::new(&dir, &snapshot_path, server.controller(), opts);

        let before = get_body(&server, "/networks/netA");
        std::fs::write(
            net.join("ra.cfg"),
            format!("{RA}router ospf 9\n network 10.9.0.0 0.0.0.255 area 0\n"),
        )
        .expect("mutate ra.cfg");
        let mut published = false;
        for _ in 0..2000 {
            if watcher.tick() == routing_design::watch::Tick::Published {
                published = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(published, "watcher never published at RD_THREADS={threads}");
        let after = get_body(&server, "/networks/netA");
        let persisted = std::fs::read(&snapshot_path).expect("persisted snapshot");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&base);
        (before, after, persisted)
    };

    let (before_1, after_1, snap_1) = run("1");
    let (before_4, after_4, snap_4) = run("4");
    std::env::remove_var(rd_par::THREADS_ENV);

    assert_eq!(before_1, before_4, "boot body differs by thread count");
    assert_eq!(after_1, after_4, "published body differs by thread count");
    assert_eq!(snap_1, snap_4, "persisted snapshot differs by thread count");
    assert_ne!(before_1, after_1, "the scripted mutation must change the served body");
}

/// The incremental refresh path must be just as thread-count-invariant as
/// the cold path: a delta-engine refresh after a one-router edit produces
/// the same bytes at `RD_THREADS=1` and `4`, and those bytes match a cold
/// re-run of the directory. (Only snapshot bytes are compared — the
/// `incr.last_wall_us` gauge is wall-clock-based, so metric dumps from
/// this path are never byte-comparable.)
#[test]
fn incremental_refresh_matches_cold_at_any_thread_count() {
    let _env = ENV_LOCK.lock().expect("env lock");

    const RC: &str = "hostname rc\ninterface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n\
                      router ospf 1\n network 10.1.0.0 0.0.0.255 area 0\n";
    const RD: &str = "hostname rd\ninterface Ethernet0\n ip address 10.2.0.1 255.255.255.0\n\
                      router bgp 65000\n neighbor 10.2.0.2 remote-as 65001\n";

    let run = |threads: &str| -> (Vec<u8>, Vec<u8>) {
        std::env::set_var(rd_par::THREADS_ENV, threads);
        let base = std::env::temp_dir()
            .join(format!("rd-incr-det-{}-t{threads}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let net_a = base.join("netA");
        let net_b = base.join("netB");
        std::fs::create_dir_all(&net_a).expect("netA dir");
        std::fs::create_dir_all(&net_b).expect("netB dir");
        std::fs::write(net_a.join("rc.cfg"), RC).expect("rc.cfg");
        std::fs::write(net_b.join("rd.cfg"), RD).expect("rd.cfg");

        let mut engine = routing_design::incremental::DeltaEngine::new(&base);
        let first = engine.refresh().expect("initial refresh").bytes;
        std::fs::write(
            net_a.join("rc.cfg"),
            format!("{RC}router ospf 9\n network 10.9.0.0 0.0.0.255 area 0\n"),
        )
        .expect("mutate rc.cfg");
        let second = engine.refresh().expect("incremental refresh").bytes;
        let cold = routing_design::snapshot::snap_dir(&base)
            .expect("cold run")
            .corpus
            .to_bytes();
        assert_eq!(
            second, cold,
            "incremental refresh diverges from cold run at RD_THREADS={threads}"
        );
        let _ = std::fs::remove_dir_all(&base);
        (first, second)
    };

    let (first_1, second_1) = run("1");
    let (first_4, second_4) = run("4");
    std::env::remove_var(rd_par::THREADS_ENV);

    assert_eq!(first_1, first_4, "initial refresh bytes differ by thread count");
    assert_eq!(second_1, second_4, "post-edit refresh bytes differ by thread count");
    assert_ne!(first_1, second_1, "the edit must change the snapshot");
}
