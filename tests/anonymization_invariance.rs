//! The methodology's load-bearing property (paper Section 4): analyzing
//! *anonymized* configuration files must yield the same routing design as
//! analyzing the originals. The paper's entire study ran on anonymized
//! files; if this property failed, nothing else in the paper would stand.
//!
//! For a representative slice of the generated study population, we
//! anonymize every file with a shared key and assert that every analysis
//! output that does not mention raw identities is bit-identical:
//! instance structure, role counts, design class, link/interface
//! statistics, and filter placement.

use anonymizer::Anonymizer;
use netgen::{study_roster, StudyScale};
use routing_design::NetworkAnalysis;

fn analyze_both(spec_idx: usize) -> (NetworkAnalysis, NetworkAnalysis) {
    let roster = study_roster(StudyScale::Small);
    let spec = &roster[spec_idx];
    let generated = netgen::study::generate_network(spec, StudyScale::Small);
    let anon = Anonymizer::new(format!("invariance-{spec_idx}").as_bytes());
    let anonymized: Vec<(String, String)> = generated
        .texts
        .iter()
        .map(|(name, text)| (name.clone(), anon.anonymize_config(text)))
        .collect();
    let original = NetworkAnalysis::from_texts(generated.texts.clone())
        .expect("original corpus parses");
    let anonymized = NetworkAnalysis::from_texts(anonymized)
        .unwrap_or_else(|e| panic!("anonymized corpus must parse: {e}"));
    (original, anonymized)
}

/// Instance structure survives anonymization: same number of instances,
/// same (protocol kind, router count) multiset.
#[test]
fn instance_structure_is_invariant() {
    // One of each archetype: backbone, enterprise, net5, net15, no-bgp,
    // tier-2, hybrid.
    for idx in [0usize, 5, 11, 12, 13, 16, 20] {
        let (orig, anon) = analyze_both(idx);
        assert_eq!(orig.instances.len(), anon.instances.len(), "network {idx}");
        let shape = |a: &NetworkAnalysis| -> Vec<(String, usize)> {
            let mut v: Vec<(String, usize)> = a
                .instances
                .list
                .iter()
                .map(|i| (i.kind.to_string(), i.router_count()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(shape(&orig), shape(&anon), "network {idx}");
    }
}

/// Table 1 roles, IBGP/EBGP session counts, and the design class are
/// invariant.
#[test]
fn roles_and_classification_are_invariant() {
    for idx in [0usize, 5, 11, 12, 13, 16, 20] {
        let (orig, anon) = analyze_both(idx);
        assert_eq!(orig.table1, anon.table1, "network {idx}");
        assert_eq!(orig.design.class, anon.design.class, "network {idx}");
        assert_eq!(orig.design.internal_ases, anon.design.internal_ases);
        assert_eq!(orig.design.bgp_into_igp, anon.design.bgp_into_igp);
        assert_eq!(orig.design.staging_instances, anon.design.staging_instances);
    }
}

/// Topology and census statistics are invariant: link counts by kind,
/// interface census, internal/external interface counts, filter placement.
#[test]
fn topology_statistics_are_invariant() {
    for idx in [0usize, 5, 12, 20] {
        let (orig, anon) = analyze_both(idx);
        assert_eq!(orig.links.links.len(), anon.links.links.len(), "network {idx}");
        assert_eq!(
            orig.links.internal_links().count(),
            anon.links.internal_links().count()
        );
        assert_eq!(orig.external.counts(), anon.external.counts(), "network {idx}");
        let census_o = nettopo::stats::InterfaceCensus::of(&orig.network);
        let census_a = nettopo::stats::InterfaceCensus::of(&anon.network);
        assert_eq!(census_o, census_a, "network {idx}");
        assert_eq!(
            orig.external.filter_placement(&orig.network),
            anon.external.filter_placement(&anon.network),
            "network {idx}"
        );
    }
}

/// Address-space *structure* is preserved: the recovered block tree has
/// the same shape (same number of roots, same sizes and utilization),
/// though of course different (anonymized) addresses.
#[test]
fn address_block_shape_is_invariant() {
    for idx in [5usize, 12, 20] {
        let (orig, anon) = analyze_both(idx);
        let shape = |t: &netaddr::BlockTree| -> Vec<(u8, u64)> {
            let mut v: Vec<(u8, u64)> =
                t.roots.iter().map(|b| (b.prefix.len(), b.used)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(shape(&orig.blocks), shape(&anon.blocks), "network {idx}");
    }
}

/// Nothing identifying survives in the anonymized text.
#[test]
fn no_identifiers_leak() {
    let roster = study_roster(StudyScale::Small);
    let spec = &roster[5];
    let generated = netgen::study::generate_network(spec, StudyScale::Small);
    let anon = Anonymizer::new(b"leak-check");
    for (name, text) in &generated.texts {
        let anonymized = anon.anonymize_config(text);
        // Hostnames are generator-assigned and must not survive.
        for leak in ["hub", "border", "site", "core", "edge", "pop"] {
            for line in anonymized.lines() {
                if line.starts_with("hostname") {
                    assert!(
                        !line.contains(leak),
                        "{name}: hostname leaked {leak:?} in {line:?}"
                    );
                }
            }
        }
        // Route-map names are policy identifiers and must not survive.
        assert!(!anonymized.contains("bgp-to-igp"), "{name}: route-map name leaked");
        assert!(!anonymized.contains("from-provider"), "{name}: route-map name leaked");
    }
}
