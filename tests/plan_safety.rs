//! Acceptance tests for the reconfiguration planner: on the seeded demo
//! scenario the naive lexicographic ordering violates an invariant
//! mid-migration, the search finds a safe ordering, an independent
//! step-by-step re-analysis confirms every intermediate state, and the
//! rendered plan is byte-identical across repeated runs.

use rd_plan::scenario;
use routing_design::plan::{analyze_files, plan_corpora};

#[test]
fn demo_scenario_defeats_naive_order_and_yields_a_verified_plan() {
    let (current, target) = scenario::demo(42);
    let plan = plan_corpora(&current, &target).expect("a safe ordering exists");

    // The delta decomposes into exactly the intended units: omega's
    // cosmetic byte churn must NOT appear.
    let keys: Vec<String> = plan.units.iter().map(rd_plan::ChangeUnit::key).collect();
    assert_eq!(keys, vec!["add:delta", "modify:alpha", "modify:gamma", "remove:beta"]);

    // Naive sorted order starts with add:delta — an isolated router, so
    // connectivity (and border reachability) break at step 1.
    let violation = plan.naive.violation.as_ref().expect("naive order must be unsafe");
    assert_eq!(violation.step, 1);
    assert_eq!(violation.unit, "add:delta");
    assert!(
        violation.failed.iter().any(|c| c.invariant == "connectivity"),
        "{:?}",
        violation.failed
    );

    // The search reorders: alpha grows the new link first, then delta
    // joins, gamma re-homes, and only then is beta retired.
    let order: Vec<String> = plan.steps().map(|(u, _)| u.key()).collect();
    assert_eq!(order, vec!["modify:alpha", "add:delta", "modify:gamma", "remove:beta"]);
    assert!(plan.verdicts.iter().all(|v| v.ok()), "every emitted step verified");

    // The DAG forced the drains ahead of the removal.
    assert!(plan.dag_edges >= 1, "expected drain-before-remove edges");

    // Independent re-verification: fresh analyses, no search state.
    let steps = rd_plan::verify_plan(&current, &target, &plan, analyze_files)
        .expect("independent re-analysis agrees");
    assert_eq!(steps, 4);
}

#[test]
fn plan_rendering_is_deterministic() {
    let (current, target) = scenario::demo(42);
    let a = plan_corpora(&current, &target).expect("plan");
    let b = plan_corpora(&current, &target).expect("plan");
    assert_eq!(rd_plan::render_json(&a), rd_plan::render_json(&b));
    assert_eq!(rd_plan::render_table(&a), rd_plan::render_table(&b));
    assert_eq!(a.stats, b.stats, "search effort counters are deterministic too");
}

#[test]
fn star_scenario_plans_hub_first() {
    let (current, target) = scenario::star(4, 7);
    let plan = plan_corpora(&current, &target).expect("safe ordering");
    let order: Vec<String> = plan.steps().map(|(u, _)| u.key()).collect();
    assert_eq!(order[0], "modify:alpha", "spokes only move after the hub: {order:?}");
    assert_eq!(order.len(), 5);
    assert!(plan.verdicts.iter().all(|v| v.ok()));
    rd_plan::verify_plan(&current, &target, &plan, analyze_files).expect("re-verify");
}

#[test]
fn identical_corpora_need_no_plan() {
    let (current, _) = scenario::demo(42);
    let plan = plan_corpora(&current, &current).expect("empty plan");
    assert!(plan.is_empty());
    assert!(rd_plan::render_table(&plan).contains("nothing to plan"));
}
