//! Structural assertions for every table and figure, on the small-scale
//! study (the full-scale numbers are produced by the `repro` harness in
//! `crates/bench` and recorded in EXPERIMENTS.md).
//!
//! Absolute counts scale with the corpus; the assertions here pin the
//! *shape* the paper reports: who dominates, in what ratio, and which
//! qualitative claims hold.

use netgen::{repository_sizes, study_roster, StudyScale};
use routing_design::report::{FilterCdf, Section7Report, SizeHistogram, StudyNetwork, StudyReport};
use routing_design::{DesignClass, NetworkAnalysis};

fn analyzed_study() -> Vec<StudyNetwork> {
    study_roster(StudyScale::Small)
        .iter()
        .map(|spec| {
            let generated = netgen::study::generate_network(spec, StudyScale::Small);
            StudyNetwork {
                name: spec.name.clone(),
                analysis: NetworkAnalysis::from_texts(generated.texts)
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name)),
            }
        })
        .collect()
}

/// Table 1 shape: most IGP instances are intra-domain but a visible
/// minority (paper: ≈11%) serve as EGPs; most EBGP sessions are
/// inter-domain but a visible minority (paper: ≈10%) are intra-network;
/// no IS-IS anywhere; some networks use no BGP.
#[test]
fn table1_shape() {
    let networks = analyzed_study();
    let report = StudyReport::build(&networks);
    let igp = report.table1.igp_totals();
    assert!(igp.intra > 0 && igp.inter > 0, "{:?}", report.table1);
    let igp_inter = report.table1.igp_inter_fraction();
    assert!(
        (0.02..=0.40).contains(&igp_inter),
        "IGP inter-domain fraction {igp_inter}"
    );
    let ebgp_intra = report.table1.ebgp_intra_fraction();
    assert!(
        (0.01..=0.35).contains(&ebgp_intra),
        "EBGP intra fraction {ebgp_intra}"
    );
    // All three IGP rows are populated, with OSPF and EIGRP dominating RIP.
    let (ospf, eigrp, rip) = (
        report.table1.igp_row("OSPF").total(),
        report.table1.igp_row("EIGRP").total(),
        report.table1.igp_row("RIP").total(),
    );
    assert!(ospf > 0 && eigrp > 0 && rip > 0, "{:?}", report.table1);
    // Three networks use no BGP at all.
    let no_bgp = networks
        .iter()
        .filter(|n| n.analysis.design.bgp_speakers == 0)
        .count();
    assert_eq!(no_bgp, 3);
}

/// Table 3 shape: Serial dominates, FastEthernet second; POS concentrated
/// in backbone-style networks; a sliver of unnumbered interfaces.
#[test]
fn table3_shape() {
    let networks = analyzed_study();
    let report = StudyReport::build(&networks);
    let serial = report.census.count("Serial");
    let fast = report.census.count("FastEthernet");
    assert!(serial > fast, "Serial {serial} vs FastEthernet {fast}");
    assert!(
        serial * 2 > report.census.total,
        "Serial should be ~half of {} but is {serial}",
        report.census.total
    );
    assert!(fast * 3 > report.census.total / 4, "FastEthernet too rare: {fast}");
    // POS exists, but only in backbone/tier-2 style networks.
    assert!(report.census.count("POS") > 0);
    for n in &networks {
        let census = nettopo::stats::InterfaceCensus::of(&n.analysis.network);
        if census.uses_pos() {
            assert!(
                matches!(
                    n.analysis.design.class,
                    DesignClass::Backbone | DesignClass::Tier2
                ),
                "{} uses POS but is {}",
                n.name,
                n.analysis.design.class
            );
        }
    }
    // Unnumbered interfaces are present but rare (paper: 528 of 96,487).
    assert!(report.census.unnumbered > 0);
    assert!(report.census.unnumbered * 50 < report.census.total);
}

/// Figure 11 shape: three networks have no filters; >30% of networks put
/// ≥40% of their rules on internal links.
#[test]
fn fig11_shape() {
    let networks = analyzed_study();
    let cdf = FilterCdf::build(&networks);
    assert_eq!(cdf.filterless, 3);
    let heavy = cdf.fraction_at_least(0.4);
    assert!(heavy > 0.3, "heavy-internal fraction {heavy}");
    // The CDF is non-degenerate: some networks filter mostly at borders.
    assert!(cdf.fraction_at_least(0.05) < 1.0);
    // Section 5.3's anecdote: somewhere, one applied filter crams ~47
    // clauses of several policies into a single list.
    let max_applied_clauses = networks
        .iter()
        .flat_map(|n| n.analysis.network.iter())
        .flat_map(|(_, r)| {
            r.config.interfaces.iter().flat_map(|i| {
                [i.access_group_in, i.access_group_out]
                    .into_iter()
                    .flatten()
                    .filter_map(|id| r.config.access_lists.get(&id))
                    .map(|acl| acl.entries.len())
                    .collect::<Vec<_>>()
            })
        })
        .max()
        .unwrap_or(0);
    assert!(
        max_applied_clauses >= 40,
        "largest applied filter has only {max_applied_clauses} clauses"
    );
}

/// Section 7 shape: 4 backbones, 7 textbook enterprises, 20 "other"
/// networks (tier-2, no-BGP, unclassifiable); the backbones are large but
/// not the largest; 17 networks redistribute BGP into an IGP.
#[test]
fn section7_shape() {
    let networks = analyzed_study();
    let report = Section7Report::build(&networks);
    assert_eq!(report.count(DesignClass::Backbone), 4, "{report}");
    assert_eq!(report.count(DesignClass::Enterprise), 7, "{report}");
    assert_eq!(report.nonclassic().len(), 20, "{report}");
    assert_eq!(report.count(DesignClass::NoBgp), 3);
    assert_eq!(report.count(DesignClass::Tier2), 2);
    // Some non-classic networks are larger than every backbone.
    let (_, backbone_max, _, _) = report.size_stats(DesignClass::Backbone).unwrap();
    let bigger = report.nonclassic().iter().filter(|&&s| s > backbone_max).count();
    assert_eq!(bigger, 4, "{report}");
    // A majority of networks (paper: 17 of 31) redistribute BGP → IGP.
    assert!(
        (10..=26).contains(&report.bgp_into_igp),
        "bgp→igp in {} networks",
        report.bgp_into_igp
    );
}

/// Figure 8 shape: the repository is dominated by small networks while
/// the study over-weights networks with more than 20 routers.
#[test]
fn fig8_shape() {
    let networks = analyzed_study();
    let report = StudyReport::build(&networks);
    // Compare at full scale sizes (the roster's real distribution).
    let full_sizes: Vec<usize> =
        study_roster(StudyScale::Full).iter().map(|s| s.routers).collect();
    let hist = SizeHistogram::build(&full_sizes, &repository_sizes(17));
    // Repository: majority < 10 routers.
    assert!(hist.buckets[0].2 > 0.5, "repo <10 fraction {}", hist.buckets[0].2);
    // Study: minority < 10 routers (over-weighted toward ≥20).
    assert!(hist.buckets[0].1 < 0.2, "study <10 fraction {}", hist.buckets[0].1);
    let study_large: f64 = hist.buckets[2..].iter().map(|b| b.1).sum();
    let repo_large: f64 = hist.buckets[2..].iter().map(|b| b.2).sum();
    assert!(study_large > repo_large, "study {study_large} vs repo {repo_large}");
    let _ = report;
}

/// Figure 4 shape (on the small corpus): config sizes vary widely with a
/// long tail — hubs are much bigger than spokes.
#[test]
fn fig4_shape() {
    let networks = analyzed_study();
    let net5 = networks.iter().find(|n| n.name == "net5").expect("net5 present");
    let stats = nettopo::stats::ConfigSizeStats::of(&net5.analysis.network);
    assert!(stats.max() > 2 * stats.quantile(0.5), "no long tail: {stats:?}");
    assert!(stats.mean() > 10.0);
}

/// Beyond-the-figures structure: large enterprises use hierarchical OSPF
/// areas (ABRs present), and backbone/tier-2 BGP instances use route
/// reflection rather than brute-force full meshes.
#[test]
fn hierarchy_structures_present() {
    let networks = analyzed_study();
    let mut saw_multi_area = false;
    let mut saw_reflection = false;
    for n in &networks {
        for area in n.analysis.area_structures() {
            if !area.is_flat() {
                saw_multi_area = true;
                assert!(
                    !area.abrs.is_empty(),
                    "{}: multi-area instance without ABRs",
                    n.name
                );
                assert!(area.has_backbone_area(), "{}: no backbone area", n.name);
            }
        }
        for mesh in n.analysis.ibgp_meshes() {
            if mesh.uses_reflection() {
                saw_reflection = true;
                assert!(mesh.routers > 2, "{}: reflection in a tiny mesh", n.name);
            }
        }
    }
    assert!(saw_multi_area, "no multi-area OSPF instance in the corpus");
    assert!(saw_reflection, "no route reflection in the corpus");
}

/// The full-study report renders every table without panicking.
#[test]
fn reports_render() {
    let networks = analyzed_study();
    let report = StudyReport::build(&networks);
    let t1 = report.table1.to_string();
    assert!(t1.contains("EBGP Sessions"));
    let t3 = routing_design::report::render_table3(&report.census);
    assert!(t3.contains("Serial"));
    let s7 = report.section7.to_string();
    assert!(s7.contains("backbone"));
    let cdf = report.filter_cdf.to_string();
    assert!(cdf.contains("CDF"));
}
