//! End-to-end pipeline invariants over the generated study population.
//!
//! Every network of the (small-scale) 31-network roster is generated,
//! emitted to IOS text, re-parsed, and fully analyzed; the tests assert
//! the cross-module invariants that must hold for *any* corpus, not just
//! the calibrated one.

use netgen::{study_roster, StudyScale};
use routing_design::{NetworkAnalysis, ProtoKind};

fn analyzed_study() -> Vec<(String, NetworkAnalysis)> {
    study_roster(StudyScale::Small)
        .iter()
        .map(|spec| {
            let generated = netgen::study::generate_network(spec, StudyScale::Small);
            let analysis = NetworkAnalysis::from_texts(generated.texts)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            (spec.name.clone(), analysis)
        })
        .collect()
}

/// Every generated config parses without unknown commands.
#[test]
fn corpus_parses_cleanly() {
    for (name, analysis) in analyzed_study() {
        for (_, router) in analysis.network.iter() {
            assert!(
                router.config.unparsed.is_empty(),
                "{name}/{}: unparsed {:?}",
                router.file_name,
                router.config.unparsed
            );
        }
    }
}

/// Instances partition the processes, and every instance is
/// protocol-homogeneous (same kind; same ASN for BGP).
#[test]
fn instances_partition_processes() {
    for (name, analysis) in analyzed_study() {
        let total: usize =
            analysis.instances.list.iter().map(|i| i.processes.len()).sum();
        assert_eq!(total, analysis.processes.len(), "{name}");
        for inst in &analysis.instances.list {
            let kinds: std::collections::BTreeSet<ProtoKind> =
                inst.processes.iter().map(|p| p.proto.kind()).collect();
            assert_eq!(kinds.len(), 1, "{name}: mixed-kind instance");
            if inst.kind == ProtoKind::Bgp {
                let asns: std::collections::BTreeSet<Option<u32>> =
                    inst.processes.iter().map(|p| p.proto.bgp_asn()).collect();
                assert_eq!(asns.len(), 1, "{name}: mixed-ASN BGP instance");
            }
        }
    }
}

/// Every adjacency's endpoints are in the same instance; every
/// EBGP-internal session's endpoints are in different instances.
#[test]
fn adjacency_instance_consistency() {
    for (name, analysis) in analyzed_study() {
        for adj in &analysis.adjacencies.igp {
            assert_eq!(
                analysis.instances.instance_of(adj.a),
                analysis.instances.instance_of(adj.b),
                "{name}: IGP adjacency spans instances"
            );
        }
        for s in &analysis.adjacencies.bgp {
            let Some(peer) = s.peer else { continue };
            let (a, b) = (
                analysis.instances.instance_of(s.local),
                analysis.instances.instance_of(peer),
            );
            match s.scope {
                routing_design::SessionScope::Ibgp => {
                    assert_eq!(a, b, "{name}: IBGP across instances")
                }
                routing_design::SessionScope::EbgpInternal => {
                    assert_ne!(a, b, "{name}: internal EBGP within an instance")
                }
                routing_design::SessionScope::EbgpExternal => {
                    unreachable!("external sessions have no internal peer")
                }
            }
        }
    }
}

/// Link endpoints are consistent: every endpoint's interface really has an
/// address in the link's subnet, and /30 links never exceed 2 endpoints.
#[test]
fn link_endpoint_consistency() {
    for (name, analysis) in analyzed_study() {
        for link in analysis.links.links.values() {
            assert!(!link.endpoints.is_empty());
            if link.subnet.is_p2p() {
                assert!(
                    link.endpoints.len() <= 2,
                    "{name}: /30 {} with {} endpoints",
                    link.subnet,
                    link.endpoints.len()
                );
            }
            for e in &link.endpoints {
                let iface =
                    &analysis.network.router(e.router).config.interfaces[e.iface];
                assert!(
                    iface.subnets().contains(&link.subnet),
                    "{name}: endpoint not on subnet {}",
                    link.subnet
                );
            }
        }
    }
}

/// Pathway graphs are consistent with instance membership: depth-0 nodes
/// are exactly the instances containing the router.
#[test]
fn pathway_depth_zero_is_membership() {
    for (name, analysis) in analyzed_study().into_iter().take(8) {
        for (rid, _) in analysis.network.iter().take(5) {
            let pathway = analysis.pathway(rid);
            let depth0: std::collections::BTreeSet<_> = pathway
                .nodes
                .iter()
                .filter(|n| n.depth == 0)
                .map(|n| n.node)
                .collect();
            let member: std::collections::BTreeSet<_> = analysis
                .instances
                .list
                .iter()
                .filter(|i| i.routers.binary_search(&rid).is_ok())
                .map(|i| routing_design::InstanceNode::Instance(i.id))
                .collect();
            assert_eq!(depth0, member, "{name} router {rid}");
        }
    }
}

/// Emitting the parsed configs again reproduces the identical model
/// (emit∘parse is idempotent over the whole corpus).
#[test]
fn emit_parse_idempotent_over_corpus() {
    for spec in study_roster(StudyScale::Small).iter().take(6) {
        let generated = netgen::study::generate_network(spec, StudyScale::Small);
        for (name, text) in &generated.texts {
            let model = ioscfg::parse_config(text)
                .unwrap_or_else(|e| panic!("{}/{name}: {e}", spec.name));
            let emitted = ioscfg::emit_config(&model);
            let reparsed = ioscfg::parse_config(&emitted).unwrap();
            assert_eq!(model, reparsed, "{}/{name}", spec.name);
        }
    }
}

/// The router graph of each generated network is connected, except for
/// designs that are intentionally split (net15's two sites).
#[test]
fn topologies_are_connected_where_expected() {
    for (name, analysis) in analyzed_study() {
        let graph =
            routing_design::RouterGraph::build(&analysis.network, &analysis.links);
        let components = graph.components().len();
        if name == "net15" {
            // net15's two sites are deliberately not interconnected.
            assert_eq!(components, 2, "{name}");
        } else {
            assert_eq!(components, 1, "{name} has {components} components");
        }
    }
}
