//! The diagnostics channel end to end: malformed corpora must surface
//! exact (file, line, severity, code) tuples through
//! `NetworkAnalysis::diagnostics`, and the generated study corpus must be
//! error-free — the generator only emits configurations the parser fully
//! understands, so any error here is a pipeline regression.

use netgen::StudyScale;
use routing_design::{NetworkAnalysis, Severity};

fn analyze(texts: Vec<(&str, &str)>) -> NetworkAnalysis {
    let texts: Vec<(String, String)> =
        texts.into_iter().map(|(n, t)| (n.to_string(), t.to_string())).collect();
    NetworkAnalysis::from_texts(texts).expect("corpus parses")
}

#[test]
fn malformed_corpus_surfaces_exact_tuples() {
    let a = analyze(vec![
        (
            "config-a",
            "hostname ra\n\
             glitter beams everywhere\n\
             interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n \
             ip access-group 120 in\n",
        ),
        (
            "config-b",
            "hostname rb\n\
             interface Ethernet0\n ip address 10.0.0.2 255.255.255.0\n\
             interface Serial1\n ip unnumbered Loopback0\n",
        ),
    ]);
    let tuples: Vec<(&str, usize, Severity, &str)> = a
        .diagnostics
        .iter()
        .map(|d| (d.file.as_str(), d.line, d.severity, d.code))
        .collect();
    assert_eq!(
        tuples,
        vec![
            ("config-a", 2, Severity::Warning, "unknown-stanza"),
            ("config-a", 0, Severity::Error, "undefined-acl"),
            ("config-b", 0, Severity::Error, "undefined-unnumbered-target"),
        ],
    );
    assert!(a.diagnostics.has_errors());
    assert_eq!(a.diagnostics.counts(), (2, 1, 0));
    assert_eq!(a.diagnostics.summary(), "2 errors, 1 warning, 0 info");

    // Rendered form carries the location exactly as `rdx diag` prints it.
    let rendered = a.diagnostics.to_string();
    assert!(rendered.contains("config-a:2: warning [unknown-stanza]"), "{rendered}");
    assert!(rendered.contains("config-a: error [undefined-acl]"), "{rendered}");
}

#[test]
fn design_level_diagnostics_flow_through_analysis() {
    // A BGP process with no neighbors is a design smell (warning), not a
    // parse problem: it comes from `routing_model::design_diagnostics`.
    let a = analyze(vec![(
        "config-c",
        "hostname rc\n\
         interface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n\
         router bgp 65000\n",
    )]);
    let tuples: Vec<(&str, usize, Severity, &str)> = a
        .diagnostics
        .iter()
        .map(|d| (d.file.as_str(), d.line, d.severity, d.code))
        .collect();
    assert_eq!(tuples, vec![("config-c", 0, Severity::Warning, "bgp-no-neighbors")]);
}

#[test]
fn generated_study_corpus_is_error_free() {
    for g in netgen::study::generate_study(StudyScale::Small) {
        let name = g.spec.name.clone();
        let a = NetworkAnalysis::from_texts(g.texts)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            a.diagnostics.count(Severity::Error),
            0,
            "{name} has errors:\n{}",
            a.diagnostics,
        );
    }
}
