//! Snapshot robustness table test: an `.rdsnap` container truncated at
//! *every* frame boundary — with or without a freshly recomputed checksum
//! — must come back as a decode error, never a panic and never a
//! silently-partial corpus. Same for length-bomb variants that splice an
//! absurd section length behind a valid checksum: the decoder's hard caps
//! must reject them before allocating.

use std::panic::catch_unwind;

use routing_design::{snapshot, NetworkAnalysis};

fn corpus_bytes() -> Vec<u8> {
    let texts = vec![
        (
            "ra".to_string(),
            "hostname ra\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n\
             router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"
                .to_string(),
        ),
        (
            "rb".to_string(),
            "hostname rb\ninterface Ethernet0\n ip address 10.0.0.2 255.255.255.0\n\
             router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n"
                .to_string(),
        ),
    ];
    let analysis = NetworkAnalysis::from_texts(texts).expect("corpus parses");
    let snap = snapshot::capture("truncation-test", analysis);
    rd_snap::Corpus::new(vec![snap]).to_bytes()
}

/// LEB128 varint encoding, mirroring the container writer.
fn encode_varint(mut v: u64) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return out;
        }
        out.push(b | 0x80);
    }
}

/// Decodes under `catch_unwind`; panics the test if decoding panics.
fn decode_must_error(bytes: Vec<u8>, what: &str) {
    let result = catch_unwind(move || rd_snap::Corpus::from_bytes(&bytes).map(|_| ()));
    match result {
        Ok(Err(_)) => {}
        Ok(Ok(())) => panic!("{what}: decoder accepted a damaged container"),
        Err(_) => panic!("{what}: decoder PANICKED instead of returning an error"),
    }
}

#[test]
fn truncation_at_every_boundary_is_an_error_not_a_panic() {
    let bytes = corpus_bytes();
    let layout = rd_chaos::snapshot_layout(&bytes);
    let body_len = bytes.len() - 8;
    assert!(
        layout.boundaries.len() >= 3 + 3,
        "layout walker found too few boundaries: {:?}",
        layout.boundaries
    );

    for &cut in &layout.boundaries {
        if cut >= body_len {
            continue; // cutting at the end reproduces the original
        }
        // Raw truncation: the trailer is destroyed along with the tail, so
        // the checksum gate must fire.
        decode_must_error(bytes[..cut].to_vec(), &format!("raw truncation at {cut}"));
        // Re-checksummed truncation: the trailer is valid for the damaged
        // body, so the *structural* decoder must catch the missing frames.
        decode_must_error(
            rd_chaos::truncate_rechecksum(&bytes, cut),
            &format!("re-checksummed truncation at {cut}"),
        );
    }
}

#[test]
fn length_bombs_are_rejected_by_the_decode_caps() {
    let bytes = corpus_bytes();
    let layout = rd_chaos::snapshot_layout(&bytes);
    assert!(!layout.length_varints.is_empty(), "no section length varints found");

    // Claimed lengths far beyond the real payload and beyond the decoder's
    // MAX_SECTION_BYTES cap. Each variant gets a freshly valid checksum so
    // only the cap can reject it.
    for &(offset, encoded_len) in &layout.length_varints {
        for bomb in [u64::MAX, 1 << 40, u32::MAX as u64] {
            let mut body = bytes[..bytes.len() - 8].to_vec();
            body.splice(offset..offset + encoded_len, encode_varint(bomb));
            let sum = rd_snap::fnv1a64(&body);
            body.extend_from_slice(&sum.to_le_bytes());
            decode_must_error(
                body,
                &format!("length bomb {bomb:#x} at varint offset {offset}"),
            );
        }
    }
}

#[test]
fn section_count_bomb_is_rejected() {
    let bytes = corpus_bytes();
    let layout = rd_chaos::snapshot_layout(&bytes);
    // boundaries[1] is the start of the section-count varint,
    // boundaries[2] its end.
    let (start, end) = (layout.boundaries[1], layout.boundaries[2]);
    let mut body = bytes[..bytes.len() - 8].to_vec();
    body.splice(start..end, encode_varint(u64::MAX));
    let sum = rd_snap::fnv1a64(&body);
    body.extend_from_slice(&sum.to_le_bytes());
    decode_must_error(body, "section count bomb");
}
