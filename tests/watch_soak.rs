//! Seeded chaos soak for the `rdx watch` supervisor: hundreds of
//! iterations of config mutations, injected analysis panics, and
//! injected disk faults against a live watcher + server, with a
//! concurrent client hammering the query endpoint throughout.
//!
//! Invariants asserted:
//!
//! - the soak thread never dies (a panic anywhere fails the test);
//! - no response is ever torn or mixed-version: every (etag, body)
//!   pair observed by the concurrent client maps one etag to exactly
//!   one body, and every observed etag is a version the watcher
//!   actually published (or the boot version);
//! - the last-good snapshot file decodes after every iteration;
//! - once the faults stop, the watcher converges back to `fresh`.
//!
//! `RD_SOAK_ITERS` scales the iteration count (default 250 — the
//! acceptance floor of 200 plus slack).

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use routing_design::watch::{Tick, WatchOptions, Watcher};
use rd_rng::StdRng;
use rd_serve::{HealthState, Server};

const RA: &str = "hostname ra\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n\
                  router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n";
const RB: &str = "hostname rb\ninterface Ethernet0\n ip address 10.0.0.2 255.255.255.0\n\
                  router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n";

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdx-soak-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// GET `path`; returns `(status, etag, body)`. I/O errors surface as a
/// synthetic status so the client loop can fail the test with context.
fn get(addr: std::net::SocketAddr, path: &str) -> Result<(u16, String, Vec<u8>), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).map_err(|e| format!("head: {e}"))?;
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).map_err(|e| format!("head utf-8: {e}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {head}"))?;
    let etag = head
        .lines()
        .find_map(|l| l.strip_prefix("etag: "))
        .unwrap_or("")
        .trim_matches('"')
        .to_string();
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .ok_or("missing content-length")?
        .parse()
        .map_err(|e| format!("bad content-length: {e}"))?;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).map_err(|e| format!("body: {e}"))?;
    Ok((status, etag, body))
}

/// A semantically distinct variant of `ra.cfg` keyed by `tag`; tag 0 is
/// the pristine config (so "revert to the published state" is exact).
fn ra_variant(tag: usize) -> String {
    if tag == 0 {
        return RA.to_string();
    }
    format!("{RA}router ospf {}\n network 10.{}.0.0 0.0.0.255 area 0\n", tag % 97 + 2, tag % 200 + 1)
}

fn write_ra(net: &Path, text: &str) {
    std::fs::write(net.join("ra.cfg"), text).expect("write ra.cfg");
}

#[test]
fn seeded_soak_never_serves_torn_or_mixed_versions() {
    let iters: usize = std::env::var("RD_SOAK_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(250);
    let seed: u64 = std::env::var("RD_SOAK_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(1);
    let mut rng = StdRng::seed_from_u64(seed);

    let base = scratch_dir("main");
    // The snapshot lives beside — never inside — the watched tree.
    let dir = base.join("configs");
    let net = dir.join("netA");
    std::fs::create_dir_all(&net).expect("network dir");
    write_ra(&net, RA);
    std::fs::write(net.join("rb.cfg"), RB).expect("rb.cfg");
    let snapshot_path = base.join("last-good.rdsnap");

    let outcome = routing_design::snapshot::snap_dir(&dir).expect("initial analysis");
    rd_snap::write_atomic(&snapshot_path, &outcome.corpus.to_bytes()).expect("seed snapshot");
    let server = Server::start(outcome.corpus, "127.0.0.1:0", 1).expect("server");
    let addr = server.local_addr();

    let opts = WatchOptions {
        poll_interval: Duration::from_millis(1),
        debounce: Duration::from_millis(1),
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(4),
        degraded_after: 3,
        seed,
    };
    let mut watcher = Watcher::new(&dir, &snapshot_path, server.controller(), opts);

    // Every version the server has legitimately served: the boot etag
    // plus one entry per successful publish (recorded after the tick
    // that published it, i.e. before the soak ends).
    // `Server::etag()` renders with the surrounding quote characters;
    // strip them so entries compare against the client's parsed header.
    let bare_etag = |e: String| e.trim_matches('"').to_string();
    let published_etags = Arc::new(Mutex::new(BTreeSet::from([bare_etag(server.etag())])));

    // Concurrent client: hammer the query endpoint for the whole soak,
    // recording every (etag, body) pair it observes.
    let stop = Arc::new(AtomicBool::new(false));
    let observed = Arc::new(Mutex::new(BTreeMap::<String, Vec<u8>>::new()));
    let client = {
        let (stop, observed) = (Arc::clone(&stop), Arc::clone(&observed));
        std::thread::spawn(move || {
            let mut torn: Vec<String> = Vec::new();
            let mut requests = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (status, etag, body) = match get(addr, "/networks/netA") {
                    Ok(r) => r,
                    Err(e) => {
                        torn.push(format!("request failed mid-soak: {e}"));
                        break;
                    }
                };
                requests += 1;
                if status != 200 {
                    torn.push(format!("non-200 ({status}) from the query endpoint"));
                    break;
                }
                let mut seen = observed.lock().expect("observed lock");
                if let Some(prior) = seen.get(&etag) {
                    if prior != &body {
                        torn.push(format!("etag {etag} served two different bodies"));
                        break;
                    }
                } else {
                    seen.insert(etag, body);
                }
            }
            (torn, requests)
        })
    };

    let faults = rd_chaos::DISK_FAULTS;
    let mut published_variant = 0usize; // tag of ra.cfg at the last publish
    let mut pending_variant = 0usize;
    for i in 1..=iters {
        // One chaos action per iteration, seeded: mostly clean semantic
        // mutations, with panics, disk faults, and reverts mixed in.
        match rng.gen_range(0..10u32) {
            0 => watcher.inject_analysis_panic(),
            1 | 2 => {
                let fault = faults[rng.gen_range(0..faults.len())];
                watcher.inject_disk_fault(fault);
            }
            3 => {
                // Revert to the last successfully published content: the
                // watcher must converge without another publish.
                pending_variant = published_variant;
                write_ra(&net, &ra_variant(published_variant));
            }
            _ => {
                pending_variant = i;
                write_ra(&net, &ra_variant(i));
            }
        }

        // Drive ticks until the pending state lands (published or
        // reverted-to-settled); injected faults retry through backoff.
        let mut done = false;
        for _ in 0..4000 {
            let tick = watcher.tick();
            if tick == Tick::Published {
                published_variant = pending_variant;
                published_etags.lock().expect("etag lock").insert(bare_etag(server.etag()));
            }
            if watcher.settled() && watcher.consecutive_failures() == 0 {
                done = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(done, "iteration {i}: watcher never settled");
        assert!(
            rd_snap::Corpus::read_file_with_trailer(&snapshot_path).is_ok(),
            "iteration {i}: last-good snapshot no longer decodes"
        );
    }

    // Quiesce: restore the canonical config and require convergence.
    write_ra(&net, RA);
    let mut fresh = false;
    for _ in 0..4000 {
        if watcher.tick() == Tick::Published {
            published_etags.lock().expect("etag lock").insert(bare_etag(server.etag()));
        }
        if watcher.settled() && watcher.health() == HealthState::Fresh {
            fresh = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(fresh, "watcher did not converge to fresh after the soak");
    assert!(watcher.generation() > 0, "soak never published anything");

    stop.store(true, Ordering::Relaxed);
    let (torn, requests) = client.join().expect("client thread panicked");
    assert!(torn.is_empty(), "torn/mixed responses observed: {torn:?}");
    assert!(requests > 0, "client never completed a request");

    // Every version the client saw is one the watcher published.
    let published = published_etags.lock().expect("etag lock");
    let observed = observed.lock().expect("observed lock");
    for etag in observed.keys() {
        assert!(
            published.contains(etag),
            "client observed etag {etag} that was never published (published: {published:?})"
        );
    }

    eprintln!(
        "soak summary: {iters} iterations, {} publishes, {} failed attempts survived, \
         {requests} concurrent requests, {} distinct versions served, 0 torn responses",
        watcher.generation(),
        watcher.total_failures(),
        observed.len(),
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}
