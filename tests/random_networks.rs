//! Fuzzing of the whole pipeline on *random* networks — not the
//! calibrated study roster, but arbitrary topologies with arbitrary
//! process/policy assignments. The pipeline must never panic, and its
//! structural invariants must hold for any input.
//!
//! Driven by a fixed-seed `rd_rng` stream so the suite is deterministic
//! and runs offline (this file previously used proptest; the sampled
//! space is the same).

use ioscfg::{InterfaceType, OspfProcess, Redistribution, RedistSource, RipProcess};
use netgen::{AddressPlan, NetworkBuilder};
use rd_rng::StdRng;
use routing_design::{NetworkAnalysis, ProtoKind};

/// A compact random network description: a list of spanning-tree edges
/// plus per-router protocol choices.
#[derive(Clone, Debug)]
struct RandomNet {
    /// parent[i] < i: router i links to parent[i] (router 0 is the root).
    parents: Vec<usize>,
    /// Extra chord edges (a, b).
    chords: Vec<(usize, usize)>,
    /// Per-router protocol selector.
    protos: Vec<u8>,
    /// Per-router: add an external stub?
    stubs: Vec<bool>,
}

fn random_net(rng: &mut StdRng, max_routers: usize) -> RandomNet {
    let n: usize = rng.gen_range(2..=max_routers);
    let parents = (1..n).map(|i| rng.gen_range(0..i)).collect();
    let chord_count: usize = rng.gen_range(0..4);
    let chords = (0..chord_count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let protos = (0..n).map(|_| rng.gen_range(0..6u8)).collect();
    let stubs = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    RandomNet { parents, chords, protos, stubs }
}

/// Materializes the description into configuration texts.
fn build(desc: &RandomNet) -> Vec<(String, String)> {
    let n = desc.protos.len();
    let mut b = NetworkBuilder::new();
    let mut plan = AddressPlan::for_compartment(10, 0);
    for i in 0..n {
        b.add_router(format!("r{i}"));
    }
    for (i, &p) in desc.parents.iter().enumerate() {
        let subnet = plan.p2p.alloc(30);
        b.p2p_link(p, i + 1, subnet, InterfaceType::Serial);
    }
    for &(x, y) in &desc.chords {
        if x == y {
            continue;
        }
        let subnet = plan.p2p.alloc(30);
        b.p2p_link(x, y, subnet, InterfaceType::Serial);
    }
    let slab: netaddr::Prefix = "10.0.0.0/12".parse().expect("slab");
    for i in 0..n {
        let lan = plan.lan.alloc(24);
        b.lan(i, lan, InterfaceType::FastEthernet);
        if desc.stubs[i] {
            let stub = plan.external.alloc(30);
            b.external_stub(i, stub, InterfaceType::Serial);
        }
        let cfg = b.router(i);
        match desc.protos[i] {
            0 => {} // static-only router
            1 | 2 => {
                let mut p = OspfProcess::new(1 + (desc.protos[i] as u32 - 1) * 7);
                p.networks.push(ioscfg::OspfNetwork {
                    addr: slab.first(),
                    wildcard: slab.mask().to_wildcard(),
                    area: ioscfg::OspfArea(0),
                });
                p.redistribute.push(Redistribution::plain(RedistSource::Connected));
                cfg.ospf.push(p);
            }
            3 | 4 => {
                let mut p = ioscfg::EigrpProcess::new(100 + (desc.protos[i] as u32 % 2));
                p.networks.push(ioscfg::EigrpNetwork {
                    addr: slab.first(),
                    wildcard: Some(slab.mask().to_wildcard()),
                });
                cfg.eigrp.push(p);
            }
            _ => {
                let mut p = RipProcess::new();
                p.version = Some(2);
                p.networks.push(netaddr::Addr::new(10, 0, 0, 0));
                cfg.rip = Some(p);
            }
        }
    }
    b.to_texts()
}

/// The pipeline runs to completion and its invariants hold on arbitrary
/// networks.
#[test]
fn pipeline_invariants_on_random_networks() {
    let mut rng = StdRng::seed_from_u64(0xD1);
    for case in 0..48 {
        let desc = random_net(&mut rng, 12);
        let texts = build(&desc);
        let analysis = NetworkAnalysis::from_texts(texts).expect("generated configs parse");

        // Instances partition the processes, homogeneously.
        let total: usize = analysis.instances.list.iter().map(|i| i.processes.len()).sum();
        assert_eq!(total, analysis.processes.len(), "case {case}: {desc:?}");
        for inst in &analysis.instances.list {
            let kinds: std::collections::BTreeSet<ProtoKind> =
                inst.processes.iter().map(|p| p.proto.kind()).collect();
            assert_eq!(kinds.len(), 1, "case {case}: mixed-kind instance");
        }
        // Instance sizes are ordered descending.
        for w in analysis.instances.list.windows(2) {
            assert!(w[0].router_count() >= w[1].router_count(), "case {case}");
        }

        // Adjacencies stay inside instances.
        for adj in &analysis.adjacencies.igp {
            assert_eq!(
                analysis.instances.instance_of(adj.a),
                analysis.instances.instance_of(adj.b),
                "case {case}"
            );
        }

        // The topology is connected by construction (spanning tree).
        let graph = routing_design::RouterGraph::build(&analysis.network, &analysis.links);
        assert_eq!(graph.components().len(), 1, "case {case}: {desc:?}");

        // Pathways never include instances that cannot feed the router.
        for (rid, _) in analysis.network.iter().take(3) {
            let pathway = analysis.pathway(rid);
            assert!(
                pathway.nodes.iter().all(|n| n.depth <= analysis.instances.len()),
                "case {case}"
            );
        }

        // Rendering never panics.
        let _ = analysis.instance_graph_text();
        let _ = analysis.process_graph_dot();
    }
}

/// Anonymization invariance holds on arbitrary networks, not just the
/// calibrated roster.
#[test]
fn anonymization_invariance_on_random_networks() {
    let mut rng = StdRng::seed_from_u64(0xD2);
    for case in 0..32 {
        let desc = random_net(&mut rng, 8);
        let key: u64 = rng.gen_range(0..=u64::MAX);
        let texts = build(&desc);
        let anon = anonymizer::Anonymizer::new(&key.to_be_bytes());
        let anonymized: Vec<(String, String)> = texts
            .iter()
            .map(|(n, t)| (n.clone(), anon.anonymize_config(t)))
            .collect();
        let a = NetworkAnalysis::from_texts(texts).expect("original parses");
        let b = NetworkAnalysis::from_texts(anonymized).expect("anonymized parses");
        assert_eq!(a.instances.len(), b.instances.len(), "case {case}: {desc:?}");
        assert_eq!(a.links.links.len(), b.links.links.len(), "case {case}");
        assert_eq!(a.external.counts(), b.external.counts(), "case {case}");
        assert_eq!(a.design.class, b.design.class, "case {case}");
        assert_eq!(a.table1, b.table1, "case {case}");
    }
}
