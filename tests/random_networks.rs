//! Property-based fuzzing of the whole pipeline on *random* networks —
//! not the calibrated study roster, but arbitrary topologies with
//! arbitrary process/policy assignments. The pipeline must never panic,
//! and its structural invariants must hold for any input.

use ioscfg::{InterfaceType, OspfProcess, Redistribution, RedistSource, RipProcess};
use netgen::{AddressPlan, NetworkBuilder};
use proptest::prelude::*;
use routing_design::{NetworkAnalysis, ProtoKind};

/// A compact random network description that the strategy shrinks well:
/// a list of spanning-tree edges plus per-router protocol choices.
#[derive(Clone, Debug)]
struct RandomNet {
    /// parent[i] < i: router i links to parent[i] (router 0 is the root).
    parents: Vec<usize>,
    /// Extra chord edges (a, b).
    chords: Vec<(usize, usize)>,
    /// Per-router protocol selector.
    protos: Vec<u8>,
    /// Per-router: add an external stub?
    stubs: Vec<bool>,
}

fn arb_net(max_routers: usize) -> impl Strategy<Value = RandomNet> {
    (2..=max_routers)
        .prop_flat_map(|n| {
            let parents: Vec<BoxedStrategy<usize>> =
                (1..n).map(|i| (0..i).boxed()).collect();
            (
                parents,
                prop::collection::vec((0..n, 0..n), 0..4),
                prop::collection::vec(0u8..6, n),
                prop::collection::vec(any::<bool>(), n),
            )
        })
        .prop_map(|(parents, chords, protos, stubs)| RandomNet {
            parents,
            chords,
            protos,
            stubs,
        })
}

/// Materializes the description into configuration texts.
fn build(desc: &RandomNet) -> Vec<(String, String)> {
    let n = desc.protos.len();
    let mut b = NetworkBuilder::new();
    let mut plan = AddressPlan::for_compartment(10, 0);
    for i in 0..n {
        b.add_router(format!("r{i}"));
    }
    for (i, &p) in desc.parents.iter().enumerate() {
        let subnet = plan.p2p.alloc(30);
        b.p2p_link(p, i + 1, subnet, InterfaceType::Serial);
    }
    for &(x, y) in &desc.chords {
        if x == y {
            continue;
        }
        let subnet = plan.p2p.alloc(30);
        b.p2p_link(x, y, subnet, InterfaceType::Serial);
    }
    let slab: netaddr::Prefix = "10.0.0.0/12".parse().expect("slab");
    for i in 0..n {
        let lan = plan.lan.alloc(24);
        b.lan(i, lan, InterfaceType::FastEthernet);
        if desc.stubs[i] {
            let stub = plan.external.alloc(30);
            b.external_stub(i, stub, InterfaceType::Serial);
        }
        let cfg = b.router(i);
        match desc.protos[i] {
            0 => {} // static-only router
            1 | 2 => {
                let mut p = OspfProcess::new(1 + (desc.protos[i] as u32 - 1) * 7);
                p.networks.push(ioscfg::OspfNetwork {
                    addr: slab.first(),
                    wildcard: slab.mask().to_wildcard(),
                    area: ioscfg::OspfArea(0),
                });
                p.redistribute.push(Redistribution::plain(RedistSource::Connected));
                cfg.ospf.push(p);
            }
            3 | 4 => {
                let mut p = ioscfg::EigrpProcess::new(100 + (desc.protos[i] as u32 % 2));
                p.networks.push(ioscfg::EigrpNetwork {
                    addr: slab.first(),
                    wildcard: Some(slab.mask().to_wildcard()),
                });
                cfg.eigrp.push(p);
            }
            _ => {
                let mut p = RipProcess::new();
                p.version = Some(2);
                p.networks.push(netaddr::Addr::new(10, 0, 0, 0));
                cfg.rip = Some(p);
            }
        }
    }
    b.to_texts()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pipeline runs to completion and its invariants hold on
    /// arbitrary networks.
    #[test]
    fn pipeline_invariants_on_random_networks(desc in arb_net(12)) {
        let texts = build(&desc);
        let analysis = NetworkAnalysis::from_texts(texts).expect("generated configs parse");

        // Instances partition the processes, homogeneously.
        let total: usize = analysis.instances.list.iter().map(|i| i.processes.len()).sum();
        prop_assert_eq!(total, analysis.processes.len());
        for inst in &analysis.instances.list {
            let kinds: std::collections::BTreeSet<ProtoKind> =
                inst.processes.iter().map(|p| p.proto.kind()).collect();
            prop_assert_eq!(kinds.len(), 1);
            // Instance sizes are ordered descending.
        }
        for w in analysis.instances.list.windows(2) {
            prop_assert!(w[0].router_count() >= w[1].router_count());
        }

        // Adjacencies stay inside instances.
        for adj in &analysis.adjacencies.igp {
            prop_assert_eq!(
                analysis.instances.instance_of(adj.a),
                analysis.instances.instance_of(adj.b)
            );
        }

        // The topology is connected by construction (spanning tree).
        let graph = routing_design::RouterGraph::build(&analysis.network, &analysis.links);
        prop_assert_eq!(graph.components().len(), 1);

        // Pathways never include instances that cannot feed the router.
        for (rid, _) in analysis.network.iter().take(3) {
            let pathway = analysis.pathway(rid);
            prop_assert!(pathway.nodes.iter().all(|n| n.depth <= analysis.instances.len()));
        }

        // Rendering never panics.
        let _ = analysis.instance_graph_text();
        let _ = analysis.process_graph_dot();
    }

    /// Anonymization invariance holds on arbitrary networks, not just the
    /// calibrated roster.
    #[test]
    fn anonymization_invariance_on_random_networks(desc in arb_net(8), key in any::<u64>()) {
        let texts = build(&desc);
        let anon = anonymizer::Anonymizer::new(&key.to_be_bytes());
        let anonymized: Vec<(String, String)> = texts
            .iter()
            .map(|(n, t)| (n.clone(), anon.anonymize_config(t)))
            .collect();
        let a = NetworkAnalysis::from_texts(texts).expect("original parses");
        let b = NetworkAnalysis::from_texts(anonymized).expect("anonymized parses");
        prop_assert_eq!(a.instances.len(), b.instances.len());
        prop_assert_eq!(a.links.links.len(), b.links.links.len());
        prop_assert_eq!(a.external.counts(), b.external.counts());
        prop_assert_eq!(a.design.class, b.design.class);
        prop_assert_eq!(&a.table1, &b.table1);
    }
}
