//! Robustness table tests for the `rdx watch` daemon pieces: crash-safe
//! snapshot persistence (a torn staging file at *every* truncation
//! boundary must be quarantined on recovery while the last-good file
//! keeps reading), and failure isolation (an analysis panic must leave
//! the co-hosted server answering byte-identically from last-good).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use routing_design::watch::{Tick, WatchOptions, Watcher};
use routing_design::{snapshot, NetworkAnalysis};
use rd_serve::{HealthState, Server};

const RA: &str = "hostname ra\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n\
                  router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n";
const RB: &str = "hostname rb\ninterface Ethernet0\n ip address 10.0.0.2 255.255.255.0\n\
                  router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n";

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdx-watch-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write_config_dir(dir: &Path) {
    let net = dir.join("netA");
    std::fs::create_dir_all(&net).expect("network dir");
    std::fs::write(net.join("ra.cfg"), RA).expect("ra.cfg");
    std::fs::write(net.join("rb.cfg"), RB).expect("rb.cfg");
}

fn corpus_bytes() -> Vec<u8> {
    let texts = vec![("ra".to_string(), RA.to_string()), ("rb".to_string(), RB.to_string())];
    let analysis = NetworkAnalysis::from_texts(texts).expect("corpus parses");
    rd_snap::Corpus::new(vec![snapshot::capture("netA", analysis)]).to_bytes()
}

/// One-shot GET against a test server; returns (status line, body).
fn get(server: &Server, path: &str) -> (String, Vec<u8>) {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes())
        .expect("request");
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("response head");
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).expect("utf-8 head");
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("content-length")
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("response body");
    (head, body)
}

/// Drives `tick` until the watcher reports the wanted outcome (waiting
/// out debounce and backoff windows), failing the test on timeout.
fn tick_until(watcher: &mut Watcher, wanted: Tick, what: &str) {
    for _ in 0..2000 {
        if watcher.tick() == wanted {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("{what}: watcher never reached {wanted:?}");
}

#[test]
fn torn_tmp_at_every_boundary_is_quarantined_and_last_good_survives() {
    let dir = scratch_dir("torn");
    let last_good = dir.join("study.rdsnap");
    let bytes = corpus_bytes();
    rd_snap::write_atomic(&last_good, &bytes).expect("seed last-good");

    let layout = rd_chaos::snapshot_layout(&bytes);
    let mut cuts: Vec<usize> = layout.boundaries.iter().copied().filter(|&b| b < bytes.len()).collect();
    cuts.push(0);
    cuts.push(bytes.len() - 1);
    assert!(cuts.len() > 4, "layout produced no boundaries to truncate at");

    for cut in cuts {
        let tmp = rd_snap::tmp_path(&last_good);
        std::fs::write(&tmp, &bytes[..cut]).expect("stage torn tmp");

        let swept = rd_snap::recover_dir(&dir).expect("recovery sweep");
        assert_eq!(swept.len(), 1, "cut {cut}: exactly the torn tmp is quarantined");
        assert!(!tmp.exists(), "cut {cut}: staging file must not survive recovery");
        let quarantined = rd_snap::quarantine_path(&tmp);
        assert!(quarantined.exists(), "cut {cut}: quarantine file missing");

        // The last-good snapshot under the final name is untouched.
        let (corpus, _) =
            rd_snap::Corpus::read_file_with_trailer(&last_good).expect("last-good reads");
        assert_eq!(corpus.networks.len(), 1, "cut {cut}: corpus shrank");

        std::fs::remove_file(&quarantined).expect("reset quarantine");
    }

    // A *complete* stale tmp (the crash hit between fsync and rename) is
    // quarantined just the same: the rename never happened, so the bytes
    // were never the serving version.
    let tmp = rd_snap::tmp_path(&last_good);
    std::fs::write(&tmp, &bytes).expect("stage complete stale tmp");
    let swept = rd_snap::recover_dir(&dir).expect("recovery sweep");
    assert_eq!(swept.len(), 1);
    assert!(!tmp.exists());
    assert!(rd_snap::Corpus::read_file_with_trailer(&last_good).is_ok());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_sweep_of_missing_dir_is_empty_not_an_error() {
    let dir = std::env::temp_dir().join(format!("rdx-watch-test-{}-absent", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let swept = rd_snap::recover_dir(&dir).expect("missing dir sweeps clean");
    assert!(swept.is_empty());
}

#[test]
fn analysis_panic_keeps_last_good_serving_byte_identically() {
    let base = scratch_dir("panic");
    // The snapshot lives beside — never inside — the watched tree.
    let dir = base.join("configs");
    write_config_dir(&dir);
    let snapshot_path = base.join("last-good.rdsnap");

    let outcome = routing_design::snapshot::snap_dir(&dir).expect("initial analysis");
    let bytes = outcome.corpus.to_bytes();
    rd_snap::write_atomic(&snapshot_path, &bytes).expect("seed snapshot");
    let server = Server::start(outcome.corpus, "127.0.0.1:0", 1).expect("server");

    let opts = WatchOptions {
        poll_interval: Duration::from_millis(1),
        debounce: Duration::from_millis(1),
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(5),
        degraded_after: 3,
        seed: 42,
    };
    let mut watcher = Watcher::new(&dir, &snapshot_path, server.controller(), opts);
    assert!(watcher.settled(), "freshly built watcher starts settled");
    assert_eq!(watcher.tick(), Tick::Idle);

    let (_, before) = get(&server, "/networks/netA");

    // A semantic change arrives together with a worker that panics: the
    // daemon must survive, keep serving last-good, and go non-fresh.
    watcher.inject_analysis_panic();
    let net = dir.join("netA");
    std::fs::write(net.join("ra.cfg"), format!("{RA}router ospf 7\n network 10.7.0.0 0.0.0.255 area 0\n"))
        .expect("mutate ra.cfg");
    tick_until(&mut watcher, Tick::Failed, "injected panic");
    assert_eq!(watcher.consecutive_failures(), 1);
    assert_ne!(watcher.health(), HealthState::Fresh);
    assert_eq!(watcher.generation(), 0);

    let (head, after) = get(&server, "/networks/netA");
    assert!(head.starts_with("HTTP/1.1 200"), "last-good must keep answering: {head}");
    assert_eq!(before, after, "served body changed across an isolated failure");

    // The panic was one-shot: the retry (post backoff) re-analyzes for
    // real, publishes, and converges back to fresh.
    tick_until(&mut watcher, Tick::Published, "retry after panic");
    assert_eq!(watcher.health(), HealthState::Fresh);
    assert_eq!(watcher.generation(), 1);
    assert!(watcher.settled());
    let (_, published) = get(&server, "/networks/netA");
    assert_ne!(before, published, "publish must swap in the re-analyzed body");

    // The published snapshot also persisted crash-safely: the file on
    // disk decodes and no staging remnants linger.
    assert!(rd_snap::Corpus::read_file_with_trailer(&snapshot_path).is_ok());
    assert!(!rd_snap::tmp_path(&snapshot_path).exists());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn disk_faults_fail_the_attempt_but_never_corrupt_last_good() {
    let base = scratch_dir("faults");
    let dir = base.join("configs");
    write_config_dir(&dir);
    let snapshot_path = base.join("last-good.rdsnap");

    let outcome = routing_design::snapshot::snap_dir(&dir).expect("initial analysis");
    rd_snap::write_atomic(&snapshot_path, &outcome.corpus.to_bytes()).expect("seed snapshot");
    let server = Server::start(outcome.corpus, "127.0.0.1:0", 1).expect("server");

    let opts = WatchOptions {
        poll_interval: Duration::from_millis(1),
        debounce: Duration::from_millis(1),
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(5),
        degraded_after: 100, // keep /healthz at 200 throughout this test
        seed: 7,
    };
    let mut watcher = Watcher::new(&dir, &snapshot_path, server.controller(), opts);
    let net = dir.join("netA");

    for (i, fault) in [rd_chaos::DiskFault::TornWrite, rd_chaos::DiskFault::ShortWrite, rd_chaos::DiskFault::RenameFailure]
        .into_iter()
        .enumerate()
    {
        watcher.inject_disk_fault(fault);
        std::fs::write(
            net.join("ra.cfg"),
            format!("{RA}router ospf {}\n network 10.{}.0.0 0.0.0.255 area 0\n", i + 2, i + 2),
        )
        .expect("mutate ra.cfg");
        tick_until(&mut watcher, Tick::Failed, fault.name());
        // Injected persist faults leave last-good decodable; the failed
        // staging file (when the fault left one) is swept on recovery.
        assert!(
            rd_snap::Corpus::read_file_with_trailer(&snapshot_path).is_ok(),
            "{}: last-good corrupted",
            fault.name()
        );
        rd_snap::recover_dir(&dir).expect("sweep staging remnants");

        // Next attempt (no fault armed) publishes the pending change.
        tick_until(&mut watcher, Tick::Published, "retry after disk fault");
        assert_eq!(watcher.health(), HealthState::Fresh);
    }
    assert_eq!(watcher.generation(), 3);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}
