#!/bin/sh
# Tier-1 verification: everything here must pass offline, with no
# network access and no crates beyond the workspace itself.
#
#   scripts/verify.sh          build + full test suite + small repro
#   scripts/verify.sh --bench  additionally run the offline bench harness
#                              (writes BENCH_repro.json to the repo root)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> repro --small all (offline reproduction smoke test)"
./target/release/repro --small all > /dev/null
echo "    ok"

echo "==> parallel determinism spot check (RD_THREADS=4 vs 1)"
RD_THREADS=4 ./target/release/repro --small all > /tmp/rd_verify_par.txt
RD_THREADS=1 ./target/release/repro --small all > /tmp/rd_verify_seq.txt
cmp /tmp/rd_verify_par.txt /tmp/rd_verify_seq.txt
rm -f /tmp/rd_verify_par.txt /tmp/rd_verify_seq.txt
echo "    identical output at both thread counts"

if [ "${1:-}" = "--bench" ]; then
    echo "==> repro --bench (stage timings, both scales)"
    ./target/release/repro --bench
fi

echo "verify: all checks passed"
