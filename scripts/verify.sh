#!/bin/sh
# Tier-1 verification: everything here must pass offline, with no
# network access and no crates beyond the workspace itself.
#
#   scripts/verify.sh          build + full test suite + small repro
#   scripts/verify.sh --bench  additionally run the offline bench harness
#                              (writes BENCH_repro.json to the repo root)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> clippy: no unwrap() in input-facing crates (ioscfg, rd-snap, rd-serve, nettopo, rd-plan, rd-chaos, rd-bench, rd-par, rd-obs)"
cargo clippy -q -p ioscfg -p rd-snap -p rd-serve -p nettopo -p rd-plan -p rd-chaos -p rd-bench -p rd-par -p rd-obs -- -D clippy::unwrap_used
echo "    ok"

echo "==> repro --small all (offline reproduction smoke test)"
./target/release/repro --small all > /dev/null
echo "    ok"

echo "==> parallel determinism spot check (RD_THREADS=4 vs 1)"
RD_THREADS=4 ./target/release/repro --small all > /tmp/rd_verify_par.txt
RD_THREADS=1 ./target/release/repro --small all > /tmp/rd_verify_seq.txt
cmp /tmp/rd_verify_par.txt /tmp/rd_verify_seq.txt
rm -f /tmp/rd_verify_par.txt /tmp/rd_verify_seq.txt
echo "    identical output at both thread counts"

echo "==> observability: rdx diag + trace JSONL validation"
./target/release/emit_study /tmp/rd_verify_study --small net15 > /dev/null
RD_TRACE_ZERO=1 RD_THREADS=1 ./target/release/rdx /tmp/rd_verify_study/net15 \
    summary --trace /tmp/rd_verify_t1.jsonl > /dev/null
RD_TRACE_ZERO=1 RD_THREADS=8 ./target/release/rdx /tmp/rd_verify_study/net15 \
    summary --trace /tmp/rd_verify_t8.jsonl > /dev/null
cmp /tmp/rd_verify_t1.jsonl /tmp/rd_verify_t8.jsonl
echo "    trace byte-identical at RD_THREADS=1 and 8 (timestamps zeroed)"
./target/release/trace_check /tmp/rd_verify_t1.jsonl
./target/release/rdx /tmp/rd_verify_study/net15 diag
rm -f /tmp/rd_verify_t1.jsonl /tmp/rd_verify_t8.jsonl

echo "==> profile determinism: collapsed stacks across thread counts"
RD_PROF_ZERO=1 RD_THREADS=1 ./target/release/repro --small table1 \
    --profile /tmp/rd_verify_p1.folded > /dev/null 2>&1
RD_PROF_ZERO=1 RD_THREADS=4 ./target/release/repro --small table1 \
    --profile /tmp/rd_verify_p4.folded > /dev/null 2>&1
cmp /tmp/rd_verify_p1.folded /tmp/rd_verify_p4.folded
[ -s /tmp/rd_verify_p1.folded ] || { echo "profile output is empty" >&2; exit 1; }
for stage in parse links instances classify; do
    grep -q "^$stage" /tmp/rd_verify_p1.folded \
        || { echo "profile is missing the $stage stage root" >&2; exit 1; }
done
rm -f /tmp/rd_verify_p1.folded /tmp/rd_verify_p4.folded
echo "    non-empty, stage-name roots, byte-identical at RD_THREADS=1 and 4"

echo "==> snapshot + query server round trip"
./target/release/rdx snap /tmp/rd_verify_study -o /tmp/rd_verify.rdsnap
./target/release/rdx serve /tmp/rd_verify.rdsnap --addr 127.0.0.1:0 \
    > /tmp/rd_verify_serve.txt &
SERVE_PID=$!
PORT=""
i=0
while [ $i -lt 50 ]; do
    PORT=$(sed -n 's|.*http://127\.0\.0\.1:\([0-9]*\).*|\1|p' /tmp/rd_verify_serve.txt)
    [ -n "$PORT" ] && break
    sleep 0.1
    i=$((i + 1))
done
[ -n "$PORT" ] || { echo "serve never printed its port" >&2; exit 1; }
curl -sf "http://127.0.0.1:$PORT/healthz" > /dev/null
curl -sf "http://127.0.0.1:$PORT/networks" > /dev/null
curl -sf "http://127.0.0.1:$PORT/metrics" | grep -q http_requests_total
curl -sf "http://127.0.0.1:$PORT/networks/net15" > /tmp/rd_verify_served.json
./target/release/rdx /tmp/rd_verify_study/net15 summary --json > /tmp/rd_verify_direct.json
cmp /tmp/rd_verify_served.json /tmp/rd_verify_direct.json
echo "    /networks/net15 byte-identical to direct analysis"

# Conditional GET: the snapshot's FNV trailer doubles as a strong ETag,
# so a revalidation with the served tag must come back 304.
ETAG=$(curl -sf -D - -o /dev/null "http://127.0.0.1:$PORT/networks/net15" \
    | tr -d '\r' | sed -n 's/^etag: //p')
[ -n "$ETAG" ] || { echo "served response carried no etag" >&2; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' \
    -H "if-none-match: $ETAG" "http://127.0.0.1:$PORT/networks/net15")
[ "$CODE" = "304" ] || { echo "expected 304 for If-None-Match $ETAG, got $CODE" >&2; exit 1; }
echo "    If-None-Match revalidation returned 304"

# Pipelined mixed-endpoint burst: loadgen exits non-zero if any response
# fails or comes back non-200, so this doubles as a correctness probe.
./target/release/loadgen "127.0.0.1:$PORT" --conns 2 --pipeline 4 \
    --duration-ms 500 --json > /tmp/rd_verify_loadgen.json
grep -q '"endpoints": \[' /tmp/rd_verify_loadgen.json \
    || { echo "loadgen --json carried no per-endpoint stats" >&2; exit 1; }
sed 's/^/    /' /tmp/rd_verify_loadgen.json
rm -f /tmp/rd_verify_loadgen.json

# Metrics contract: after the burst, every serve telemetry family the
# dashboards read must be present on /metrics (histograms and gauges are
# pre-registered at startup, counters appear at zero), and the live
# debug endpoints must respond with JSON.
curl -sf "http://127.0.0.1:$PORT/metrics" > /tmp/rd_verify_metrics.txt
for family in http_request_us_bucket http_cache_hit_total http_cache_miss_total \
    http_rejected_busy_total http_conn_age_ms_bucket loop_wakeups_total \
    loop_epoll_wait_us_bucket loop_wakeup_events_bucket loop_iter_us_bucket \
    loop_slab_live_hw loop_wheel_depth_hw loop_backpressure_engaged_total \
    rd_build_info process_uptime_seconds; do
    grep -q "^$family" /tmp/rd_verify_metrics.txt \
        || { echo "metrics contract: $family missing from /metrics" >&2; exit 1; }
done
rm -f /tmp/rd_verify_metrics.txt
echo "    metrics contract: all serve telemetry families present"
for ep in loop conns cache; do
    curl -sf "http://127.0.0.1:$PORT/admin/debug/$ep" | grep -q '^{' \
        || { echo "/admin/debug/$ep did not return JSON" >&2; exit 1; }
done
echo "    /admin/debug/{loop,conns,cache} respond with JSON"

# Hot reload: SIGHUP re-reads the snapshot file; the swapped-in corpus
# is the same bytes, so /networks/net15 must survive byte-identically.
kill -HUP "$SERVE_PID"
RELOADS=""
i=0
while [ $i -lt 50 ]; do
    RELOADS=$(curl -sf "http://127.0.0.1:$PORT/metrics" \
        | sed -n 's/^http_reload_ok_total //p')
    [ "${RELOADS:-0}" -ge 1 ] && break
    sleep 0.1
    i=$((i + 1))
done
[ "${RELOADS:-0}" -ge 1 ] || { echo "SIGHUP reload never completed" >&2; exit 1; }
curl -sf "http://127.0.0.1:$PORT/networks/net15" > /tmp/rd_verify_reloaded.json
cmp /tmp/rd_verify_served.json /tmp/rd_verify_reloaded.json
rm -f /tmp/rd_verify_reloaded.json
echo "    SIGHUP reload swapped the snapshot; body byte-identical pre/post"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
echo "    clean SIGTERM shutdown"

echo "==> chaos sweep: error-not-panic, deterministic diagnostics (500+100 trials)"
RD_THREADS=4 ./target/release/rdx chaos /tmp/rd_verify_study --seed 1 \
    > /tmp/rd_verify_chaos_t4.txt
RD_THREADS=1 ./target/release/rdx chaos /tmp/rd_verify_study --seed 1 \
    > /tmp/rd_verify_chaos_t1.txt
cmp /tmp/rd_verify_chaos_t4.txt /tmp/rd_verify_chaos_t1.txt
grep -q "invariant held: error-not-panic" /tmp/rd_verify_chaos_t1.txt
rm -f /tmp/rd_verify_chaos_t4.txt /tmp/rd_verify_chaos_t1.txt
echo "    zero panics; sweep stdout byte-identical at both thread counts"

echo "==> rdx watch: supervised reload, failure isolation, convergence (RD_THREADS=1 and 4)"
# One full daemon lifecycle per thread count: boot, publish a semantic
# change, survive a parse-fatal push on last-good, converge after the
# restore. Served bodies land in $1/ so the two runs can be compared
# byte-for-byte afterwards.
watch_cycle() {
    WDIR="$1"
    THREADS="$2"
    rm -rf "$WDIR"
    mkdir -p "$WDIR"
    ./target/release/emit_study "$WDIR/configs" --small net15 > /dev/null
    # RD_ERROR_BUDGET=0 makes any unparseable config fatal for its
    # network, which is what the stale-serving-last-good leg relies on.
    RD_THREADS="$THREADS" RD_ERROR_BUDGET=0 ./target/release/rdx watch "$WDIR/configs" \
        --addr 127.0.0.1:0 --snapshot "$WDIR/last-good.rdsnap" \
        --poll-ms 50 --debounce-ms 100 --backoff-ms 100 --backoff-max-ms 400 \
        --degraded-after 2 --seed 1 > "$WDIR/out.txt" 2> "$WDIR/err.txt" &
    WATCH_PID=$!
    WPORT=""
    i=0
    while [ $i -lt 100 ]; do
        WPORT=$(sed -n 's|.*http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$WDIR/out.txt")
        [ -n "$WPORT" ] && break
        sleep 0.1
        i=$((i + 1))
    done
    [ -n "$WPORT" ] || { echo "watch never printed its port" >&2; exit 1; }
    # Liveness must answer 200 from the moment the socket exists,
    # whatever the health state machine says.
    curl -sf "http://127.0.0.1:$WPORT/healthz?live=1" > /dev/null
    curl -sf "http://127.0.0.1:$WPORT/healthz" | grep -q '"health": "fresh"' \
        || { echo "watch did not boot fresh" >&2; exit 1; }
    curl -sf "http://127.0.0.1:$WPORT/networks/net15" > "$WDIR/body_boot.json"

    # Semantic change: drop one router; the daemon must republish.
    cp "$WDIR/configs/net15/config1" "$WDIR/config1.orig"
    rm "$WDIR/configs/net15/config1"
    i=0
    while [ $i -lt 100 ]; do
        curl -sf "http://127.0.0.1:$WPORT/networks/net15" > "$WDIR/body_mut.json" || true
        if ! cmp -s "$WDIR/body_boot.json" "$WDIR/body_mut.json"; then
            break
        fi
        sleep 0.1
        i=$((i + 1))
    done
    cmp -s "$WDIR/body_boot.json" "$WDIR/body_mut.json" \
        && { echo "watch never published the config change" >&2; exit 1; }
    curl -sf "http://127.0.0.1:$WPORT/healthz" | grep -q '"health": "fresh"' \
        || { echo "publish did not return the daemon to fresh" >&2; exit 1; }

    # Parse-fatal push: an invalid-UTF-8 config under a zero error
    # budget. The daemon must go non-fresh while still answering 200
    # from last-good, byte-identically.
    printf '\377\376 this is not a router config\n' > "$WDIR/configs/net15/config1"
    i=0
    while [ $i -lt 100 ]; do
        if curl -s "http://127.0.0.1:$WPORT/healthz" \
            | grep -q '"health": "stale-serving-last-good"\|"health": "degraded"'; then
            break
        fi
        sleep 0.1
        i=$((i + 1))
    done
    curl -s "http://127.0.0.1:$WPORT/healthz" \
        | grep -q '"health": "stale-serving-last-good"\|"health": "degraded"' \
        || { echo "parse-fatal push never surfaced on /healthz" >&2; exit 1; }
    CODE=$(curl -s -o "$WDIR/body_stale.json" -w '%{http_code}' \
        "http://127.0.0.1:$WPORT/networks/net15")
    [ "$CODE" = "200" ] || { echo "query endpoint broke during failure: $CODE" >&2; exit 1; }
    cmp "$WDIR/body_mut.json" "$WDIR/body_stale.json" \
        || { echo "last-good body changed during failure" >&2; exit 1; }
    curl -sf "http://127.0.0.1:$WPORT/healthz?live=1" > /dev/null \
        || { echo "liveness probe failed during degradation" >&2; exit 1; }

    # Restore: the daemon must converge back to fresh, and a restored
    # config tree analyzes to the byte-identical boot body.
    cp "$WDIR/config1.orig" "$WDIR/configs/net15/config1"
    i=0
    while [ $i -lt 100 ]; do
        if curl -s "http://127.0.0.1:$WPORT/healthz" | grep -q '"health": "fresh"'; then
            break
        fi
        sleep 0.1
        i=$((i + 1))
    done
    curl -sf "http://127.0.0.1:$WPORT/healthz" | grep -q '"health": "fresh"' \
        || { echo "watch never converged back to fresh after restore" >&2; exit 1; }
    i=0
    while [ $i -lt 100 ]; do
        curl -sf "http://127.0.0.1:$WPORT/networks/net15" > "$WDIR/body_restored.json" || true
        cmp -s "$WDIR/body_boot.json" "$WDIR/body_restored.json" && break
        sleep 0.1
        i=$((i + 1))
    done
    cmp "$WDIR/body_boot.json" "$WDIR/body_restored.json" \
        || { echo "restored configs did not reproduce the boot body" >&2; exit 1; }
    curl -sf "http://127.0.0.1:$WPORT/admin/debug/watch" | grep -q '"generation"' \
        || { echo "/admin/debug/watch did not render supervisor state" >&2; exit 1; }

    # Loadgen burst against the live daemon, exercising --connect-retries.
    ./target/release/loadgen "127.0.0.1:$WPORT" --conns 2 --pipeline 4 \
        --duration-ms 300 --connect-retries 5 > /dev/null

    kill -TERM "$WATCH_PID"
    wait "$WATCH_PID"
    # The persisted snapshot survived the whole cycle with no staging
    # remnants: the crash-safe writer cleans up or quarantines.
    [ -s "$WDIR/last-good.rdsnap" ] || { echo "persisted snapshot missing" >&2; exit 1; }
    [ ! -f "$WDIR/last-good.rdsnap.tmp" ] \
        || { echo "staging file leaked past shutdown" >&2; exit 1; }
}
watch_cycle /tmp/rd_verify_watch_t1 1
watch_cycle /tmp/rd_verify_watch_t4 4
for body in body_boot.json body_mut.json body_restored.json; do
    cmp "/tmp/rd_verify_watch_t1/$body" "/tmp/rd_verify_watch_t4/$body" \
        || { echo "watch $body differs between RD_THREADS=1 and 4" >&2; exit 1; }
done
rm -rf /tmp/rd_verify_watch_t1 /tmp/rd_verify_watch_t4
echo "    reload, stale-serving-last-good, and convergence verified; bodies identical at both thread counts"

echo "==> reconfiguration planning: seeded scenario, deterministic + independently checked"
./target/release/plan_scenario /tmp/rd_verify_plan --seed 42 > /dev/null
RD_THREADS=1 ./target/release/rdx /tmp/rd_verify_plan/current plan \
    /tmp/rd_verify_plan/target --json > /tmp/rd_verify_plan_t1.json
RD_THREADS=4 ./target/release/rdx /tmp/rd_verify_plan/current plan \
    /tmp/rd_verify_plan/target --json > /tmp/rd_verify_plan_t4.json
cmp /tmp/rd_verify_plan_t1.json /tmp/rd_verify_plan_t4.json
grep -q '"violation": {' /tmp/rd_verify_plan_t1.json \
    || { echo "seeded scenario no longer defeats the naive order" >&2; exit 1; }
./target/release/rdx /tmp/rd_verify_plan/current plan /tmp/rd_verify_plan/target \
    --check | sed 's/^/    /'
rm -rf /tmp/rd_verify_plan /tmp/rd_verify_plan_t1.json /tmp/rd_verify_plan_t4.json
echo "    plan bytes identical at RD_THREADS=1 and 4; every step re-verified"

echo "==> incremental re-analysis: delta refresh byte-identical to cold, within the cold wall"
./target/release/emit_study /tmp/rd_verify_incr --small > /dev/null 2>&1
T0=$(date +%s%N)
./target/release/rdx snap /tmp/rd_verify_incr -o /tmp/rd_verify_incr_cold.rdsnap > /dev/null
T1=$(date +%s%N)
COLD_MS=$(( (T1 - T0) / 1000000 ))
./target/release/rdx snap --info /tmp/rd_verify_incr_cold.rdsnap \
    > /tmp/rd_verify_incr_info.txt
grep -q "(manifest)" /tmp/rd_verify_incr_info.txt \
    || { echo "snap --info printed no manifest row" >&2; exit 1; }
# One-router change: the delta refresh must reuse the other 30 networks,
# and its output must be byte-identical to a cold re-run.
printf 'interface Loopback99\n ip address 10.99.0.1 255.255.255.255\n' \
    >> /tmp/rd_verify_incr/net15/config1
T0=$(date +%s%N)
./target/release/rdx snap /tmp/rd_verify_incr -o /tmp/rd_verify_incr_delta.rdsnap \
    --from /tmp/rd_verify_incr_cold.rdsnap > /dev/null 2> /tmp/rd_verify_incr_out.txt
T1=$(date +%s%N)
INCR_MS=$(( (T1 - T0) / 1000000 ))
# A snapshot-seeded engine holds no parse products, so the one changed
# network re-parses whole — but the other 30 must splice through.
grep -q "incremental: 30 network(s) reused, 1 recomputed," \
    /tmp/rd_verify_incr_out.txt \
    || { echo "delta refresh did not reuse 30 of 31 networks" >&2; exit 1; }
./target/release/rdx snap /tmp/rd_verify_incr -o /tmp/rd_verify_incr_cold2.rdsnap > /dev/null
cmp /tmp/rd_verify_incr_delta.rdsnap /tmp/rd_verify_incr_cold2.rdsnap
# Wall guard, deliberately lenient against machine noise: a one-router
# refresh must not cost more than the cold run it replaces (the bench
# records the real speedup; this only catches the delta path degrading
# into a second cold path).
[ "$INCR_MS" -le "$COLD_MS" ] || {
    echo "one-router delta refresh (${INCR_MS} ms) slower than cold run (${COLD_MS} ms)" >&2
    exit 1
}
rm -rf /tmp/rd_verify_incr /tmp/rd_verify_incr_cold.rdsnap \
    /tmp/rd_verify_incr_cold2.rdsnap /tmp/rd_verify_incr_delta.rdsnap \
    /tmp/rd_verify_incr_out.txt /tmp/rd_verify_incr_info.txt
echo "    delta snapshot byte-identical to cold re-run; ${INCR_MS} ms vs ${COLD_MS} ms cold"

rm -rf /tmp/rd_verify_study /tmp/rd_verify.rdsnap /tmp/rd_verify_serve.txt \
    /tmp/rd_verify_served.json /tmp/rd_verify_direct.json

if [ "${1:-}" = "--bench" ]; then
    # Stage-regression guard: remember the committed run's worst
    # "external" stage total before repro --bench overwrites the file.
    # The budget is 3x that figure — generous enough for machine noise,
    # tight enough to catch the O(n^2) classifier coming back. (The
    # "bench_external" section deliberately doesn't match this pattern.)
    BUDGET=""
    SERVE_FLOOR=""
    if [ -f BENCH_repro.json ]; then
        BUDGET=$(awk -F': ' '/"external":/ { v = $2 + 0; if (v > max) max = v }
            END { if (max > 0) printf "%.0f", max * 3 }' BENCH_repro.json)
        # Same idea for the query server, inverted: the committed
        # bench_serve throughput sets a floor at one third — catches the
        # event loop regressing toward thread-per-connection-era numbers
        # without flapping on machine noise.
        SERVE_FLOOR=$(awk -F': ' '/"bench_serve":/ { inb = 1 }
            inb && /"throughput_rps":/ { printf "%.0f", ($2 + 0) / 3; exit }' \
            BENCH_repro.json)
    fi
    echo "==> repro --bench (stage timings, both scales, traced)"
    ./target/release/repro --bench --trace /tmp/rd_verify_bench.jsonl
    ./target/release/trace_check /tmp/rd_verify_bench.jsonl
    rm -f /tmp/rd_verify_bench.jsonl
    if [ -n "$BUDGET" ]; then
        NEW=$(awk -F': ' '/"external":/ { v = $2 + 0; if (v > max) max = v }
            END { printf "%.0f", max }' BENCH_repro.json)
        if [ "$NEW" -gt "$BUDGET" ]; then
            echo "external stage regression: ${NEW} ms exceeds the stored budget ${BUDGET} ms" >&2
            exit 1
        fi
        echo "    external stage ${NEW} ms within budget ${BUDGET} ms"
    fi
    if [ -n "$SERVE_FLOOR" ]; then
        NEW_RPS=$(awk -F': ' '/"bench_serve":/ { inb = 1 }
            inb && /"throughput_rps":/ { printf "%.0f", $2 + 0; exit }' \
            BENCH_repro.json)
        if [ "$NEW_RPS" -lt "$SERVE_FLOOR" ]; then
            echo "serve throughput regression: ${NEW_RPS} req/s is below the stored floor ${SERVE_FLOOR} req/s" >&2
            exit 1
        fi
        echo "    bench_serve ${NEW_RPS} req/s above floor ${SERVE_FLOOR} req/s"
    fi
fi

echo "verify: all checks passed"
