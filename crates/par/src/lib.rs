//! The parallel execution layer of the toolchain: a small, deterministic
//! fan-out built on `std::thread::scope`, plus the stage-timing types the
//! benchmark harness records.
//!
//! The paper's pipeline is embarrassingly parallel at two granularities —
//! per configuration file (lex + parse) and per network (generate +
//! analyze across the 31-network roster) — and both run through
//! [`par_map`] here. There are **no external dependencies**: workers are
//! scoped threads pulling indices from a shared atomic counter (a
//! self-scheduling work queue, so a 1,750-router giant and a 4-router
//! stub can share the same pool without static partitioning skew).
//!
//! Determinism guarantee: [`par_map`] always returns results in **input
//! order**, whatever order workers finish in, and the function it applies
//! receives the item index so callers can implement order-sensitive
//! policies (e.g. "report the *first* parse error by file order"). With
//! one thread — `RD_THREADS=1` or a single-core machine — it takes the
//! exact sequential code path: a plain in-order loop, no threads spawned.
//!
//! Thread count resolution, in priority order:
//! 1. the `RD_THREADS` environment variable (a positive integer);
//! 2. [`std::thread::available_parallelism`];
//! 3. 1, if the platform will not say.
//!
//! Observability: when an `rd_obs` trace sink is active, [`par_map`]
//! buffers each item's trace events on the worker (`rd_obs::trace::scoped`)
//! and flushes them in input order after the join, so trace output is as
//! deterministic as the results themselves. Nested fan-outs compose: an
//! inner `par_map`'s flush lands in the outer item's buffer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod timing;

pub use timing::{StageTimings, Stopwatch};

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "RD_THREADS";

/// Environment variable overriding the fan-out cost floor used by
/// [`par_map_cost`] / [`try_par_map_cost`]. Set to `0` to disable the
/// inline fallback (every fan-out uses the full thread count).
pub const COST_FLOOR_ENV: &str = "RD_PAR_COST_FLOOR";

/// Default cost floor for [`par_map_cost`]: fan-outs whose estimated cost
/// (by convention, roughly bytes of input to process) falls below this run
/// inline on the caller's thread. Spawning and joining a scoped pool costs
/// tens of microseconds; a fan-out below this floor loses more to setup
/// than it gains from parallelism.
pub const DEFAULT_COST_FLOOR: u64 = 64 * 1024;

/// Resolves the fan-out cost floor: `RD_PAR_COST_FLOOR` if set to an
/// integer, else [`DEFAULT_COST_FLOOR`]. Read fresh on every call so tests
/// and harnesses can switch modes at runtime.
pub fn cost_floor() -> u64 {
    if let Ok(text) = std::env::var(COST_FLOOR_ENV) {
        if let Ok(n) = text.trim().parse::<u64>() {
            return n;
        }
    }
    DEFAULT_COST_FLOOR
}

/// Resolves the worker-thread count: `RD_THREADS` if set to a positive
/// integer, else available parallelism, else 1. Read fresh on every call
/// so tests and harnesses can switch modes at runtime.
pub fn thread_count() -> usize {
    if let Ok(text) = std::env::var(THREADS_ENV) {
        if let Ok(n) = text.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on [`thread_count`] workers, returning results
/// in input order. `f` gets `(index, &item)`.
///
/// With an effective thread count of 1 (or ≤1 item) this is exactly the
/// sequential loop — same call order, same stack, no threads.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_threads(thread_count(), items, f)
}

/// [`par_map`] with a caller-estimated work size: when `cost` (arbitrary
/// units; "about how many bytes of input will this chew through" is the
/// convention) is under [`cost_floor`], the fan-out runs inline on the
/// caller's thread instead of spawning workers. Results are identical
/// either way — the threshold only decides who computes them.
pub fn par_map_cost<T, U, F>(cost: u64, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = if cost < cost_floor() { 1 } else { thread_count() };
    par_map_threads(threads, items, f)
}

/// [`try_par_map`] with the [`par_map_cost`] inline-fallback threshold.
pub fn try_par_map_cost<T, U, F>(
    cost: u64,
    items: &[T],
    f: F,
) -> Vec<Result<U, String>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = if cost < cost_floor() { 1 } else { thread_count() };
    try_par_map_threads(threads, items, f)
}

/// Like [`par_map`], but catches a panic in `f` **per item**: the caller
/// gets `Err(panic message)` for the offending item instead of the whole
/// fan-out unwinding. This is the graceful-degradation entry point — the
/// parse pipeline turns each `Err` into a `worker-panic` diagnostic tied
/// to the work item, so one poisoned input cannot abort a study.
///
/// Determinism: results stay in input order and the panic payload text is
/// whatever the panic carried (`&str`/`String` payloads verbatim), so the
/// output is identical at any thread count.
pub fn try_par_map<T, U, F>(items: &[T], f: F) -> Vec<Result<U, String>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    try_par_map_threads(thread_count(), items, f)
}

/// [`try_par_map`] with an explicit thread count.
pub fn try_par_map_threads<T, U, F>(
    threads: usize,
    items: &[T],
    f: F,
) -> Vec<Result<U, String>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_threads(threads, items, |i, item| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item)))
            .map_err(|payload| panic_message(payload.as_ref()))
    })
}

/// Best-effort text of a caught panic payload (the `&str` and `String`
/// cases cover every `panic!` in this workspace).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`par_map`] with an explicit thread count (the env-independent core,
/// used directly by tests and the bench harness).
///
/// Trace determinism: when an `rd_obs` trace sink is installed, each
/// item's events are captured in a per-item buffer
/// ([`rd_obs::trace::scoped`]) and flushed in **input order** after the
/// workers join — so the emitted event stream is identical to the
/// sequential path's, whatever order workers finish in.
pub fn par_map_threads<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        // Sequential path: events stream to the caller's buffer/sink in
        // item order already, exactly the order the parallel path flushes.
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    // Self-scheduling work queue: each worker pulls the next unclaimed
    // index, computes, and keeps `(index, result, trace events, profile
    // child time)` locally; results are reassembled into input order
    // afterwards. The caller's open profile stack is captured once and
    // replayed on every worker, so spans opened inside `f` fold under the
    // same stacks as the sequential path.
    let prof_prefix = rd_obs::profile::stack_path();
    let next = AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, U, Vec<rd_obs::Event>, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let ((value, child_us), events) = rd_obs::trace::scoped(|| {
                            rd_obs::profile::with_stack(&prof_prefix, || f(i, &items[i]))
                        });
                        local.push((i, value, events, child_us));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                // A worker panicked: re-raise its payload on the caller's
                // thread so behavior matches the sequential path.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut slots: Vec<Option<(U, Vec<rd_obs::Event>, u64)>> =
        std::iter::repeat_with(|| None).take(items.len()).collect();
    for part in parts {
        for (i, value, events, child_us) in part {
            debug_assert!(slots[i].is_none(), "index {i} computed twice");
            slots[i] = Some((value, events, child_us));
        }
    }
    let mut child_total = 0u64;
    let results = slots
        .into_iter()
        .map(|slot| {
            let (value, events, child_us) =
                slot.expect("work queue visits every index exactly once");
            child_total += child_us;
            rd_obs::trace::emit_events(events);
            value
        })
        .collect();
    // Fold the child time that ran on workers back into the caller's
    // open frame: its self time stays exclusive, exactly as if the items
    // had run inline.
    rd_obs::profile::credit_child_us(child_total);
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 4, 8] {
            let out = par_map_threads(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn uneven_work_still_orders_correctly() {
        // Early items sleep so later items finish first; order must hold.
        let items: Vec<u64> = (0..16).collect();
        let out = par_map_threads(4, &items, |_, &x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_threads(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map_threads(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            par_map_threads(4, &items, |_, &x| {
                if x == 13 {
                    panic!("boom at 13");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn try_par_map_catches_panics_per_item() {
        let items: Vec<usize> = (0..32).collect();
        for threads in [1, 4] {
            let out = try_par_map_threads(threads, &items, |_, &x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), 32);
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    assert_eq!(r.as_ref().unwrap_err(), "boom at 13");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2);
                }
            }
        }
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn cost_floor_fallback_keeps_results_identical() {
        // Below or above the floor, only *who* computes changes.
        let items: Vec<u64> = (0..100).collect();
        let below = par_map_cost(0, &items, |i, &x| x.wrapping_mul(i as u64 + 1));
        let above = par_map_cost(u64::MAX, &items, |i, &x| x.wrapping_mul(i as u64 + 1));
        assert_eq!(below, above);
        let t: Vec<Result<u64, String>> =
            try_par_map_cost(0, &items, |_, &x| x + 1);
        assert!(t.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn cost_floor_env_override() {
        // The only test touching RD_PAR_COST_FLOOR (the others' behaviour
        // does not depend on the floor's value, so no env race).
        std::env::remove_var(COST_FLOOR_ENV);
        assert_eq!(cost_floor(), DEFAULT_COST_FLOOR);
        std::env::set_var(COST_FLOOR_ENV, "1234");
        assert_eq!(cost_floor(), 1234);
        std::env::set_var(COST_FLOOR_ENV, "0");
        assert_eq!(cost_floor(), 0);
        std::env::set_var(COST_FLOOR_ENV, "nonsense");
        assert_eq!(cost_floor(), DEFAULT_COST_FLOOR);
        std::env::remove_var(COST_FLOOR_ENV);
    }

    #[test]
    fn trace_events_flush_in_input_order_at_any_thread_count() {
        // One test function drives every thread count: the trace sink is
        // process-global state.
        let run = |threads: usize| -> Vec<String> {
            rd_obs::trace::install_memory_sink(true);
            let items: Vec<usize> = (0..64).collect();
            // Uneven work so completion order differs from input order.
            par_map_threads(threads, &items, |i, &x| {
                if x % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                rd_obs::trace::event("item", &[("i", i.into())]);
                x
            });
            let lines = rd_obs::trace::take_memory();
            rd_obs::trace::clear_sink();
            lines
        };
        let seq = run(1);
        assert_eq!(seq.len(), 64);
        assert!(seq[0].contains("\"i\":0") && seq[63].contains("\"i\":63"));
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), seq, "trace differs at {threads} threads");
        }
    }

    #[test]
    fn profile_stacks_are_identical_across_thread_counts() {
        // One test function owns the global profile state (like the trace
        // test above owns the sink). Workers open spans under an enclosing
        // span; the zeroed folded output — the set of stacks — must be
        // byte-identical at any thread count, and the parent's self time
        // must exclude the child time that ran on workers.
        let run = |threads: usize| -> String {
            rd_obs::profile::enable();
            rd_obs::profile::reset();
            let items: Vec<usize> = (0..48).collect();
            {
                let _study = rd_obs::profile::span("study");
                let mut sw = Stopwatch::start();
                sw.stage("work", || {
                    par_map_threads(threads, &items, |i, &x| {
                        let _item = rd_obs::span!("bucket:{}", i % 4);
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        x
                    })
                });
                let timings = sw.finish();
                assert!(timings.get("work").is_some());
            }
            let folded = rd_obs::profile::render_folded(true);
            rd_obs::profile::disable();
            rd_obs::profile::reset();
            folded
        };
        let seq = run(1);
        let stacks: Vec<&str> = seq.lines().collect();
        assert_eq!(
            stacks,
            vec![
                "study 0",
                "study;work 0",
                "study;work;bucket:0 0",
                "study;work;bucket:1 0",
                "study;work;bucket:2 0",
                "study;work;bucket:3 0",
            ],
            "stage spans must nest under the enclosing span"
        );
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), seq, "folded stacks differ at {threads} threads");
        }
    }

    #[test]
    fn parallel_matches_sequential_for_pure_functions() {
        let items: Vec<u64> = (0..1000).map(|i| i * 17 % 255).collect();
        let seq = par_map_threads(1, &items, |i, &x| x.wrapping_mul(i as u64));
        let par = par_map_threads(6, &items, |i, &x| x.wrapping_mul(i as u64));
        assert_eq!(seq, par);
    }
}
