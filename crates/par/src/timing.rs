//! Stage timing: a [`Stopwatch`] that records named laps into
//! [`StageTimings`], the per-stage wall-clock record the analysis
//! pipeline attaches to every run and the bench harness aggregates into
//! `BENCH_repro.json`.
//!
//! Stage names are `Cow<'static, str>`: the fixed pipeline stages cost
//! nothing (`"parse"`, `"links"`, ...), while harnesses can record
//! per-network labels (`format!("analyze:{name}")`) without leaking.

use std::borrow::Cow;
use std::fmt;
use std::time::{Duration, Instant};

/// A stage label: a static string for the fixed pipeline stages, or an
/// owned one for dynamic labels like `analyze:net15`.
pub type StageName = Cow<'static, str>;

/// Named wall-clock durations for the stages of one pipeline run, in
/// execution order.
#[derive(Clone, Debug, Default)]
pub struct StageTimings {
    /// `(stage name, wall-clock duration)`, in the order recorded.
    pub stages: Vec<(StageName, Duration)>,
}

impl StageTimings {
    /// An empty record.
    pub fn new() -> StageTimings {
        StageTimings::default()
    }

    /// Appends a stage.
    pub fn push(&mut self, name: impl Into<StageName>, duration: Duration) {
        self.stages.push((name.into(), duration));
    }

    /// Prepends a stage (used for stages measured before the record
    /// existed, e.g. parse time measured by the caller).
    pub fn prepend(&mut self, name: impl Into<StageName>, duration: Duration) {
        self.stages.insert(0, (name.into(), duration));
    }

    /// The duration of one named stage, if recorded.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.stages.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// Sum of all recorded stages.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }

    /// Accumulates another record stage-by-stage (summing durations of
    /// equally named stages; new names are appended in their order).
    pub fn merge(&mut self, other: &StageTimings) {
        for (name, duration) in &other.stages {
            match self.stages.iter_mut().find(|(n, _)| n == name) {
                Some((_, d)) => *d += *duration,
                None => self.stages.push((name.clone(), *duration)),
            }
        }
    }
}

impl fmt::Display for StageTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        let width = self
            .stages
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max(14);
        writeln!(f, "{:<width$} {:>12} {:>7}", "stage", "wall", "share")?;
        for (name, duration) in &self.stages {
            let share = if total.is_zero() {
                0.0
            } else {
                duration.as_secs_f64() / total.as_secs_f64() * 100.0
            };
            writeln!(
                f,
                "{:<width$} {:>9.3} ms {:>6.1}%",
                name,
                duration.as_secs_f64() * 1e3,
                share
            )?;
        }
        writeln!(f, "{:<width$} {:>9.3} ms", "total", total.as_secs_f64() * 1e3)
    }
}

/// Records wall-clock laps between pipeline stages.
pub struct Stopwatch {
    last: Instant,
    timings: StageTimings,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch { last: Instant::now(), timings: StageTimings::new() }
    }

    /// Ends the current stage, recording the time since the previous lap
    /// (or since [`start`](Stopwatch::start)) under `name`.
    pub fn lap(&mut self, name: impl Into<StageName>) {
        let now = Instant::now();
        self.timings.stages.push((name.into(), now - self.last));
        self.last = now;
    }

    /// Runs `f` as the named stage: an `rd_obs` profile span named `name`
    /// covers `f`, then the lap is recorded under the same name — so
    /// folded profiles and stage timings share one vocabulary (a profile's
    /// root stacks are exactly the [`StageTimings`] stage names).
    pub fn stage<R>(&mut self, name: impl Into<StageName>, f: impl FnOnce() -> R) -> R {
        let name = name.into();
        let value = {
            let _span = rd_obs::profile::span(&name);
            f()
        };
        self.lap(name);
        value
    }

    /// Finishes, yielding the recorded stages.
    pub fn finish(self) -> StageTimings {
        self.timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_record_in_order() {
        let mut sw = Stopwatch::start();
        sw.lap("a");
        sw.lap(format!("b:{}", 15)); // dynamic labels are first-class
        let t = sw.finish();
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.stages[0].0, "a");
        assert_eq!(t.stages[1].0, "b:15");
        assert!(t.get("a").is_some() && t.get("c").is_none());
        assert_eq!(t.total(), t.stages[0].1 + t.stages[1].1);
    }

    #[test]
    fn prepend_and_merge() {
        let mut a = StageTimings::new();
        a.push("links", Duration::from_millis(2));
        a.prepend("parse", Duration::from_millis(5));
        assert_eq!(a.stages[0].0, "parse");

        let mut b = StageTimings::new();
        b.push("parse", Duration::from_millis(1));
        b.push(format!("analyze:net{}", 15), Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.get("parse"), Some(Duration::from_millis(6)));
        assert_eq!(a.get("analyze:net15"), Some(Duration::from_millis(3)));
        assert_eq!(a.stages.len(), 3);
    }

    #[test]
    fn display_renders_every_stage() {
        let mut t = StageTimings::new();
        t.push("parse", Duration::from_millis(10));
        t.push("analyze:net15-long-label", Duration::from_millis(30));
        let text = t.to_string();
        assert!(text.contains("parse"));
        assert!(text.contains("analyze:net15-long-label"));
        assert!(text.contains("total"));
    }
}
