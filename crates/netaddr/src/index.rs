//! Sorted-slice indexes for address-heavy analysis passes.
//!
//! The analysis stages ask the same two questions millions of times over a
//! large corpus: "is this address one of ours?" and "which configured
//! prefix contains this address/prefix?". Both are answered here in
//! O(log n) over plain sorted `Vec`s — no tree nodes, no hashing, and a
//! memory layout the prefetcher likes:
//!
//! - [`AddrSet`]: membership and per-prefix range queries over a sorted,
//!   deduplicated address list (binary search / partition point).
//! - [`PrefixMap`]: longest-prefix-match and covering-prefix queries over
//!   an arbitrary (possibly nested) prefix collection, using a
//!   precomputed parent chain so a lookup costs one binary search plus a
//!   walk bounded by the nesting depth.

use crate::addr::Addr;
use crate::prefix::Prefix;

/// A sorted, deduplicated set of addresses supporting O(log n) membership
/// and "any address inside this prefix?" range queries.
///
/// This replaces `BTreeSet<Addr>` membership tests and, more importantly,
/// the O(n) `iter().any(|a| prefix.contains(a))` scans in hot loops.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AddrSet {
    addrs: Vec<Addr>,
}

impl AddrSet {
    /// Builds the set from any address list; sorts and deduplicates.
    pub fn new(mut addrs: Vec<Addr>) -> AddrSet {
        addrs.sort_unstable();
        addrs.dedup();
        AddrSet { addrs }
    }

    /// Number of distinct addresses in the set.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// True if `addr` is in the set. O(log n).
    pub fn contains(&self, addr: Addr) -> bool {
        self.addrs.binary_search(&addr).is_ok()
    }

    /// True if any address of the set falls inside `p`. O(log n): finds
    /// the first address ≥ `p.first()` and checks it against `p.last()`.
    pub fn any_in_prefix(&self, p: Prefix) -> bool {
        let i = self.addrs.partition_point(|&a| a < p.first());
        self.addrs.get(i).is_some_and(|&a| a <= p.last())
    }

    /// The addresses, sorted ascending.
    pub fn as_slice(&self) -> &[Addr] {
        &self.addrs
    }
}

impl FromIterator<Addr> for AddrSet {
    fn from_iter<I: IntoIterator<Item = Addr>>(iter: I) -> AddrSet {
        AddrSet::new(iter.into_iter().collect())
    }
}

/// A prefix-keyed map supporting longest-prefix-match ([`PrefixMap::lookup`])
/// and covering-prefix ([`PrefixMap::covering`]) queries in
/// O(log n + nesting depth).
///
/// Entries are stored sorted by `(addr, len)` — a supernet sorts
/// immediately before its subnets — with a precomputed `parent` link from
/// each entry to its nearest enclosing entry. A query binary-searches for
/// the last entry starting at or before the target, then walks the parent
/// chain; because prefixes are aligned blocks, every entry containing the
/// target lies on that chain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefixMap<V> {
    entries: Vec<(Prefix, V)>,
    /// `parent[i]` is the index of the nearest entry strictly covering
    /// `entries[i].0`, or `NO_PARENT` for top-level entries.
    parent: Vec<usize>,
}

const NO_PARENT: usize = usize::MAX;

impl<V> PrefixMap<V> {
    /// Builds the map. Duplicate prefixes collapse to the first value
    /// given for that prefix.
    pub fn from_entries(mut entries: Vec<(Prefix, V)>) -> PrefixMap<V> {
        entries.sort_by_key(|e| e.0);
        entries.dedup_by(|b, a| a.0 == b.0);
        // In (addr, len) order an entry's ancestors are exactly the still-
        // open entries on the stack, so one pass links each entry to its
        // nearest enclosing prefix.
        let mut parent = vec![NO_PARENT; entries.len()];
        let mut stack: Vec<usize> = Vec::new();
        for i in 0..entries.len() {
            while let Some(&top) = stack.last() {
                if entries[top].0.covers(entries[i].0) {
                    parent[i] = top;
                    break;
                }
                stack.pop();
            }
            stack.push(i);
        }
        PrefixMap { entries, parent }
    }

    /// Number of distinct prefixes in the map.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value stored for exactly `p`, if any. O(log n).
    pub fn get(&self, p: Prefix) -> Option<&V> {
        self.entries
            .binary_search_by_key(&p, |e| e.0)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Longest-prefix match: the most specific entry containing `addr`.
    pub fn lookup(&self, addr: Addr) -> Option<(Prefix, &V)> {
        self.walk_up(addr, |p| p.contains(addr))
    }

    /// The most specific entry covering **all** of `p` (every address of
    /// `p` inside the entry's prefix).
    pub fn covering(&self, p: Prefix) -> Option<(Prefix, &V)> {
        self.walk_up(p.first(), |e| e.covers(p))
    }

    /// Entries in `(addr, len)` order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        self.entries.iter().map(|(p, v)| (*p, v))
    }

    /// Starts at the last entry whose first address is ≤ `at` and walks
    /// the parent chain until `accept` matches. Any entry containing `at`
    /// is an ancestor of the start entry (prefixes are aligned blocks), so
    /// the first acceptance is the longest match.
    fn walk_up(
        &self,
        at: Addr,
        accept: impl Fn(Prefix) -> bool,
    ) -> Option<(Prefix, &V)> {
        let i = self.entries.partition_point(|e| e.0.first() <= at);
        let mut idx = i.checked_sub(1)?;
        loop {
            let (p, v) = &self.entries[idx];
            if accept(*p) {
                return Some((*p, v));
            }
            if self.parent[idx] == NO_PARENT {
                return None;
            }
            idx = self.parent[idx];
        }
    }
}

impl<V> FromIterator<(Prefix, V)> for PrefixMap<V> {
    fn from_iter<I: IntoIterator<Item = (Prefix, V)>>(iter: I) -> PrefixMap<V> {
        PrefixMap::from_entries(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn addr_set_membership_and_range() {
        let set = AddrSet::new(vec![
            addr("10.0.0.1"),
            addr("10.0.0.9"),
            addr("10.0.0.1"), // duplicate
            addr("192.0.2.77"),
        ]);
        assert_eq!(set.len(), 3);
        assert!(set.contains(addr("10.0.0.9")));
        assert!(!set.contains(addr("10.0.0.2")));
        assert!(set.any_in_prefix(pfx("10.0.0.0/24")));
        assert!(set.any_in_prefix(pfx("10.0.0.8/30")));
        assert!(set.any_in_prefix(pfx("192.0.2.77/32")));
        assert!(!set.any_in_prefix(pfx("10.0.0.2/31")));
        assert!(!set.any_in_prefix(pfx("172.16.0.0/12")));
        assert!(!AddrSet::default().any_in_prefix(pfx("0.0.0.0/0")));
    }

    #[test]
    fn prefix_map_longest_match() {
        let map = PrefixMap::from_entries(vec![
            (pfx("10.0.0.0/8"), "eight"),
            (pfx("10.0.0.0/24"), "twentyfour"),
            (pfx("10.0.0.16/30"), "thirty"),
            (pfx("192.0.2.1/32"), "host"),
        ]);
        assert_eq!(map.lookup(addr("10.0.0.17")).unwrap().1, &"thirty");
        assert_eq!(map.lookup(addr("10.0.0.20")).unwrap().1, &"twentyfour");
        assert_eq!(map.lookup(addr("10.9.9.9")).unwrap().1, &"eight");
        assert_eq!(map.lookup(addr("192.0.2.1")).unwrap().1, &"host");
        assert!(map.lookup(addr("192.0.2.2")).is_none());
        assert!(map.lookup(addr("11.0.0.0")).is_none());
    }

    #[test]
    fn prefix_map_covering_query() {
        let map = PrefixMap::from_entries(vec![
            (pfx("10.0.0.0/8"), ()),
            (pfx("10.0.0.0/24"), ()),
        ]);
        // /25 fits in the /24; /23 only in the /8; a foreign prefix in none.
        assert_eq!(map.covering(pfx("10.0.0.0/25")).unwrap().0, pfx("10.0.0.0/24"));
        assert_eq!(map.covering(pfx("10.0.0.0/23")).unwrap().0, pfx("10.0.0.0/8"));
        assert_eq!(map.covering(pfx("10.0.0.0/24")).unwrap().0, pfx("10.0.0.0/24"));
        assert!(map.covering(pfx("192.0.2.0/24")).is_none());
        // A prefix straddling the /24's sibling still lands in the /8.
        assert_eq!(map.covering(pfx("10.0.1.0/24")).unwrap().0, pfx("10.0.0.0/8"));
    }

    #[test]
    fn prefix_map_exact_get_and_duplicates() {
        let map = PrefixMap::from_entries(vec![
            (pfx("10.0.0.0/24"), 1),
            (pfx("10.0.0.0/24"), 2), // duplicate key: first value wins
        ]);
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(pfx("10.0.0.0/24")), Some(&1));
        assert_eq!(map.get(pfx("10.0.0.0/25")), None);
    }
}
