//! Netmasks and Cisco wildcard (inverse) masks.

use std::fmt;
use std::str::FromStr;

use crate::addr::{Addr, ParseAddrError};

/// A contiguous IPv4 netmask (e.g. `255.255.255.252`).
///
/// Only contiguous masks are representable; IOS rejects non-contiguous
/// netmasks on interfaces and so do we. Construct from a prefix length or
/// parse from dotted-quad text.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Netmask {
    len: u8,
}

impl Netmask {
    /// The /0 mask `0.0.0.0`.
    pub const ANY: Netmask = Netmask { len: 0 };
    /// The /32 mask `255.255.255.255`.
    pub const HOST: Netmask = Netmask { len: 32 };

    /// Creates a netmask from a prefix length (0..=32).
    pub fn from_len(len: u8) -> Option<Netmask> {
        (len <= 32).then_some(Netmask { len })
    }

    /// The prefix length of this mask.
    pub const fn len(self) -> u8 {
        self.len
    }

    /// The mask bits as a host-order `u32`.
    pub const fn bits(self) -> u32 {
        if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        }
    }

    /// Applies the mask to an address, zeroing the host part.
    pub const fn apply(self, addr: Addr) -> Addr {
        Addr::from_u32(addr.to_u32() & self.bits())
    }

    /// The wildcard mask with the complementary bit pattern.
    pub const fn to_wildcard(self) -> Wildcard {
        Wildcard { bits: !self.bits() }
    }

    /// Number of addresses covered (2^(32-len)), saturating for /0.
    pub fn size(self) -> u64 {
        1u64 << (32 - self.len as u64)
    }
}

impl fmt::Display for Netmask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Addr::from_u32(self.bits()).fmt(f)
    }
}

impl fmt::Debug for Netmask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Netmask(/{} = {})", self.len, self)
    }
}

/// Error returned when parsing a [`Netmask`] or [`Wildcard`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseMaskError {
    /// The text was not a dotted quad at all.
    NotAnAddress(ParseAddrError),
    /// The dotted quad parsed, but its bits are not a valid contiguous mask.
    NonContiguous(Addr),
}

impl fmt::Display for ParseMaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseMaskError::NotAnAddress(e) => write!(f, "invalid mask: {e}"),
            ParseMaskError::NonContiguous(a) => write!(f, "non-contiguous mask: {a}"),
        }
    }
}

impl std::error::Error for ParseMaskError {}

impl FromStr for Netmask {
    type Err = ParseMaskError;

    fn from_str(s: &str) -> Result<Netmask, ParseMaskError> {
        let addr: Addr = s.parse().map_err(ParseMaskError::NotAnAddress)?;
        let bits = addr.to_u32();
        // A contiguous mask is ones followed by zeros: inverting gives
        // zeros-then-ones, and adding 1 to that yields a power of two.
        let inverted = !bits;
        if inverted.wrapping_add(1) & inverted != 0 {
            return Err(ParseMaskError::NonContiguous(addr));
        }
        Ok(Netmask { len: bits.count_ones() as u8 })
    }
}

/// A Cisco wildcard ("inverse") mask, as used by `network` statements and
/// access lists (e.g. `0.0.0.3` matching a /30).
///
/// Unlike [`Netmask`], wildcard masks are *not* required to be contiguous:
/// IOS permits patterns like `0.0.255.0`. The set algebra in
/// [`crate::PrefixSet`] handles only contiguous wildcards; callers can test
/// with [`Wildcard::is_contiguous`] and fall back to conservative handling
/// for the (rare, and absent from our corpus) discontiguous case.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wildcard {
    bits: u32,
}

impl Wildcard {
    /// Creates a wildcard from raw bits (1 bits are "don't care").
    pub const fn from_bits(bits: u32) -> Wildcard {
        Wildcard { bits }
    }

    /// The raw bits; 1 bits are "don't care".
    pub const fn bits(self) -> u32 {
        self.bits
    }

    /// True if the don't-care bits form one contiguous low-order run,
    /// i.e. the wildcard is the complement of a contiguous netmask.
    pub const fn is_contiguous(self) -> bool {
        self.bits & self.bits.wrapping_add(1) == 0
    }

    /// Converts to the complementary netmask, if contiguous.
    pub fn to_netmask(self) -> Option<Netmask> {
        self.is_contiguous()
            .then(|| Netmask { len: (!self.bits).count_ones() as u8 })
    }

    /// True if `addr` matches `pattern` under this wildcard.
    pub const fn matches(self, pattern: Addr, addr: Addr) -> bool {
        (pattern.to_u32() | self.bits) == (addr.to_u32() | self.bits)
    }
}

impl fmt::Display for Wildcard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Addr::from_u32(self.bits).fmt(f)
    }
}

impl fmt::Debug for Wildcard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Wildcard({self})")
    }
}

impl FromStr for Wildcard {
    type Err = ParseMaskError;

    fn from_str(s: &str) -> Result<Wildcard, ParseMaskError> {
        let addr: Addr = s.parse().map_err(ParseMaskError::NotAnAddress)?;
        Ok(Wildcard { bits: addr.to_u32() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netmask_lengths_roundtrip() {
        for len in 0..=32u8 {
            let m = Netmask::from_len(len).unwrap();
            let parsed: Netmask = m.to_string().parse().unwrap();
            assert_eq!(parsed, m);
            assert_eq!(parsed.len(), len);
        }
        assert!(Netmask::from_len(33).is_none());
    }

    #[test]
    fn rejects_non_contiguous_netmask() {
        let err = "255.0.255.0".parse::<Netmask>().unwrap_err();
        assert!(matches!(err, ParseMaskError::NonContiguous(_)));
    }

    #[test]
    fn apply_zeroes_host_bits() {
        let m: Netmask = "255.255.255.252".parse().unwrap();
        let a: Addr = "66.253.32.85".parse().unwrap();
        assert_eq!(m.apply(a).to_string(), "66.253.32.84");
        assert_eq!(m.size(), 4);
    }

    #[test]
    fn wildcard_netmask_duality() {
        let m: Netmask = "255.255.255.128".parse().unwrap();
        let w = m.to_wildcard();
        assert_eq!(w.to_string(), "0.0.0.127");
        assert!(w.is_contiguous());
        assert_eq!(w.to_netmask(), Some(m));
    }

    #[test]
    fn discontiguous_wildcard_detected() {
        let w: Wildcard = "0.0.255.0".parse().unwrap();
        assert!(!w.is_contiguous());
        assert_eq!(w.to_netmask(), None);
    }

    #[test]
    fn wildcard_matching() {
        let w: Wildcard = "0.0.0.127".parse().unwrap();
        let pattern: Addr = "66.251.75.128".parse().unwrap();
        assert!(w.matches(pattern, "66.251.75.144".parse().unwrap()));
        assert!(w.matches(pattern, "66.251.75.255".parse().unwrap()));
        assert!(!w.matches(pattern, "66.251.75.127".parse().unwrap()));
    }

    #[test]
    fn host_and_any_masks() {
        assert_eq!(Netmask::HOST.to_string(), "255.255.255.255");
        assert_eq!(Netmask::ANY.to_string(), "0.0.0.0");
        assert_eq!(Netmask::ANY.bits(), 0);
    }
}
