//! CIDR prefixes.

use std::fmt;
use std::str::FromStr;

use crate::addr::Addr;
use crate::mask::Netmask;

/// A CIDR prefix: a network address plus a prefix length.
///
/// Prefixes are always stored canonically — host bits are zeroed on
/// construction — so equality and ordering are well defined. Ordering is
/// by network address, then by length (shorter, i.e. larger, first), which
/// makes a sorted list of prefixes place each supernet immediately before
/// its subnets.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    addr: Addr,
    len: u8,
}

impl Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { addr: Addr::ZERO, len: 0 };

    /// Creates a prefix, zeroing any host bits in `addr`. Returns `None` if
    /// `len > 32`.
    pub fn new(addr: Addr, len: u8) -> Option<Prefix> {
        let mask = Netmask::from_len(len)?;
        Some(Prefix { addr: mask.apply(addr), len })
    }

    /// Creates a host (/32) prefix.
    pub const fn host(addr: Addr) -> Prefix {
        Prefix { addr, len: 32 }
    }

    /// Creates a prefix from an address and a contiguous netmask.
    pub fn from_mask(addr: Addr, mask: Netmask) -> Prefix {
        Prefix { addr: mask.apply(addr), len: mask.len() }
    }

    /// The network address.
    pub const fn addr(self) -> Addr {
        self.addr
    }

    /// The prefix length.
    pub const fn len(self) -> u8 {
        self.len
    }

    /// The netmask corresponding to this prefix's length.
    pub fn mask(self) -> Netmask {
        Netmask::from_len(self.len).expect("len is always <= 32")
    }

    /// The first address in the prefix (the network address).
    pub const fn first(self) -> Addr {
        self.addr
    }

    /// The last address in the prefix (the broadcast address for subnets).
    pub fn last(self) -> Addr {
        Addr::from_u32(self.addr.to_u32() | !self.mask().bits())
    }

    /// Number of addresses covered.
    pub fn size(self) -> u64 {
        self.mask().size()
    }

    /// True if `addr` falls inside this prefix.
    pub fn contains(self, addr: Addr) -> bool {
        self.mask().apply(addr) == self.addr
    }

    /// True if `other` is entirely inside this prefix (including equality).
    pub fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// True if the two prefixes share any address.
    pub fn overlaps(self, other: Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The immediate supernet (one bit shorter), or `None` for /0.
    pub fn supernet(self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        Prefix::new(self.addr, self.len - 1)
    }

    /// Splits into the two immediate subnets, or `None` for /32.
    pub fn split(self) -> Option<(Prefix, Prefix)> {
        if self.len == 32 {
            return None;
        }
        let left = Prefix { addr: self.addr, len: self.len + 1 };
        let hi = self.addr.to_u32() | 1 << (31 - self.len);
        let right = Prefix { addr: Addr::from_u32(hi), len: self.len + 1 };
        Some((left, right))
    }

    /// The sibling prefix under the immediate supernet, or `None` for /0.
    pub fn sibling(self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        let flipped = self.addr.to_u32() ^ 1 << (32 - self.len);
        Some(Prefix { addr: Addr::from_u32(flipped), len: self.len })
    }

    /// True for the /30 point-to-point subnets that dominate serial links.
    pub const fn is_p2p(self) -> bool {
        self.len == 30
    }

    /// The two usable host addresses of a /30, or `None` otherwise.
    pub fn p2p_hosts(self) -> Option<(Addr, Addr)> {
        if !self.is_p2p() {
            return None;
        }
        let base = self.addr.to_u32();
        Some((Addr::from_u32(base + 1), Addr::from_u32(base + 2)))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

/// Error returned when parsing a [`Prefix`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError {
    text: String,
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {:?}", self.text)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Prefix, ParsePrefixError> {
        let err = || ParsePrefixError { text: s.to_string() };
        let (addr_text, len_text) = s.split_once('/').ok_or_else(err)?;
        let addr: Addr = addr_text.parse().map_err(|_| err())?;
        let len: u8 = len_text.parse().map_err(|_| err())?;
        Prefix::new(addr, len).ok_or_else(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalizes_host_bits() {
        assert_eq!(p("10.1.2.3/8"), p("10.0.0.0/8"));
        assert_eq!(p("10.1.2.3/8").to_string(), "10.0.0.0/8");
    }

    #[test]
    fn containment_and_overlap() {
        assert!(p("10.0.0.0/8").covers(p("10.5.0.0/16")));
        assert!(!p("10.5.0.0/16").covers(p("10.0.0.0/8")));
        assert!(p("10.0.0.0/8").overlaps(p("10.5.0.0/16")));
        assert!(!p("10.0.0.0/8").overlaps(p("11.0.0.0/8")));
        assert!(p("0.0.0.0/0").covers(p("255.255.255.255/32")));
    }

    #[test]
    fn split_supernet_sibling_are_consistent() {
        let pfx = p("192.0.2.0/24");
        let (l, r) = pfx.split().unwrap();
        assert_eq!(l, p("192.0.2.0/25"));
        assert_eq!(r, p("192.0.2.128/25"));
        assert_eq!(l.supernet(), Some(pfx));
        assert_eq!(r.supernet(), Some(pfx));
        assert_eq!(l.sibling(), Some(r));
        assert_eq!(r.sibling(), Some(l));
        assert!(p("1.2.3.4/32").split().is_none());
        assert!(Prefix::DEFAULT.supernet().is_none());
        assert!(Prefix::DEFAULT.sibling().is_none());
    }

    #[test]
    fn first_last_size() {
        let pfx = p("66.253.32.84/30");
        assert_eq!(pfx.first().to_string(), "66.253.32.84");
        assert_eq!(pfx.last().to_string(), "66.253.32.87");
        assert_eq!(pfx.size(), 4);
        let (a, b) = pfx.p2p_hosts().unwrap();
        assert_eq!(a.to_string(), "66.253.32.85");
        assert_eq!(b.to_string(), "66.253.32.86");
        assert!(p("10.0.0.0/24").p2p_hosts().is_none());
    }

    #[test]
    fn ordering_puts_supernets_before_subnets() {
        let mut v = vec![p("10.0.0.0/16"), p("10.0.0.0/8"), p("9.0.0.0/8")];
        v.sort();
        assert_eq!(v, vec![p("9.0.0.0/8"), p("10.0.0.0/8"), p("10.0.0.0/16")]);
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in ["10.0.0.0", "10.0.0.0/33", "10.0.0/8", "x/8", "10.0.0.0/x"] {
            assert!(s.parse::<Prefix>().is_err(), "accepted {s:?}");
        }
    }

    #[test]
    fn from_mask_matches_parse() {
        let addr: Addr = "66.251.75.144".parse().unwrap();
        let mask: Netmask = "255.255.255.128".parse().unwrap();
        assert_eq!(Prefix::from_mask(addr, mask), p("66.251.75.128/25"));
    }
}
