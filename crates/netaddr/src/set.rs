//! Exact sets of IPv4 addresses.

use std::fmt;

use crate::addr::Addr;
use crate::prefix::Prefix;

/// An inclusive range of addresses, the internal unit of [`PrefixSet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Range {
    /// First address in the range.
    pub start: Addr,
    /// Last address in the range (inclusive).
    pub end: Addr,
}

impl Range {
    /// Creates a range; panics if `start > end`.
    pub fn new(start: Addr, end: Addr) -> Range {
        assert!(start <= end, "invalid range {start}..={end}");
        Range { start, end }
    }

    /// Number of addresses in the range.
    pub fn size(self) -> u64 {
        u64::from(self.end.to_u32()) - u64::from(self.start.to_u32()) + 1
    }
}

impl fmt::Debug for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..={}", self.start, self.end)
    }
}

/// An exact set of IPv4 addresses, stored as sorted, disjoint,
/// non-adjacent inclusive ranges.
///
/// This is the semantic domain for route-filter analysis: an access list, a
/// distribute list, or a route map's address matches all denote sets of
/// addresses, and questions the paper asks ("is A2 ∩ A5 empty?",
/// Section 6.2) are set-algebra questions. The range representation makes
/// union, intersection, difference and emptiness exact and O(n).
///
/// Note the set tracks *addresses*, not (prefix, length) pairs: two filters
/// are considered to admit the same routes when they cover the same address
/// space. This matches how the paper reasons about reachability policies.
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct PrefixSet {
    /// Sorted, disjoint, non-adjacent ranges.
    ranges: Vec<Range>,
}

impl PrefixSet {
    /// The empty set.
    pub fn empty() -> PrefixSet {
        PrefixSet { ranges: Vec::new() }
    }

    /// The full address space (equivalent to `permit any`).
    pub fn all() -> PrefixSet {
        PrefixSet { ranges: vec![Range::new(Addr::ZERO, Addr::BROADCAST)] }
    }

    /// A set containing exactly one prefix.
    pub fn from_prefix(p: Prefix) -> PrefixSet {
        PrefixSet { ranges: vec![Range::new(p.first(), p.last())] }
    }

    /// Builds a set as the union of many prefixes.
    pub fn from_prefixes<I: IntoIterator<Item = Prefix>>(iter: I) -> PrefixSet {
        let mut ranges: Vec<Range> =
            iter.into_iter().map(|p| Range::new(p.first(), p.last())).collect();
        ranges.sort();
        PrefixSet { ranges: normalize(ranges) }
    }

    /// True if the set contains no addresses.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of addresses in the set.
    pub fn size(&self) -> u64 {
        self.ranges.iter().map(|r| r.size()).sum()
    }

    /// True if `addr` is in the set.
    pub fn contains(&self, addr: Addr) -> bool {
        self.ranges
            .binary_search_by(|r| {
                if r.end < addr {
                    std::cmp::Ordering::Less
                } else if r.start > addr {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// True if every address of `p` is in the set.
    pub fn covers_prefix(&self, p: Prefix) -> bool {
        // The whole prefix must land inside a single range, since ranges are
        // disjoint and non-adjacent.
        match self.ranges.binary_search_by(|r| {
            if r.end < p.first() {
                std::cmp::Ordering::Less
            } else if r.start > p.first() {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => self.ranges[i].end >= p.last(),
            Err(_) => false,
        }
    }

    /// True if any address of `p` is in the set. O(log n), allocation-free:
    /// the first range ending at or after `p.first()` intersects `p` iff it
    /// starts at or before `p.last()`.
    pub fn intersects_prefix(&self, p: Prefix) -> bool {
        let i = self.ranges.partition_point(|r| r.end < p.first());
        self.ranges.get(i).is_some_and(|r| r.start <= p.last())
    }

    /// Set union.
    pub fn union(&self, other: &PrefixSet) -> PrefixSet {
        let mut merged: Vec<Range> =
            self.ranges.iter().chain(other.ranges.iter()).copied().collect();
        merged.sort();
        PrefixSet { ranges: normalize(merged) }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &PrefixSet) -> PrefixSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let a = self.ranges[i];
            let b = other.ranges[j];
            let start = a.start.max(b.start);
            let end = a.end.min(b.end);
            if start <= end {
                out.push(Range::new(start, end));
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        PrefixSet { ranges: out }
    }

    /// Set difference (`self \ other`).
    pub fn difference(&self, other: &PrefixSet) -> PrefixSet {
        self.intersection(&other.complement())
    }

    /// Set complement within the full IPv4 space.
    pub fn complement(&self) -> PrefixSet {
        let mut out = Vec::new();
        let mut cursor = Addr::ZERO;
        for r in &self.ranges {
            if r.start > cursor {
                out.push(Range::new(cursor, r.start.saturating_prev()));
            }
            if r.end == Addr::BROADCAST {
                return PrefixSet { ranges: out };
            }
            cursor = r.end.saturating_next();
        }
        out.push(Range::new(cursor, Addr::BROADCAST));
        PrefixSet { ranges: out }
    }

    /// The ranges of the set, sorted and disjoint.
    pub fn ranges(&self) -> &[Range] {
        &self.ranges
    }

    /// Decomposes the set into the minimal list of CIDR prefixes covering
    /// exactly the same addresses, in ascending order.
    pub fn to_prefixes(&self) -> Vec<Prefix> {
        let mut out = Vec::new();
        for r in &self.ranges {
            let mut start = u64::from(r.start.to_u32());
            let end = u64::from(r.end.to_u32());
            while start <= end {
                // Largest aligned block starting at `start` that fits.
                let max_align = if start == 0 { 33 } else { start.trailing_zeros() + 1 };
                let remaining = end - start + 1;
                let max_size = 64 - remaining.leading_zeros();
                let bits = max_align.min(max_size).min(33) - 1; // log2 block size
                let len = 32 - bits as u8;
                out.push(
                    Prefix::new(Addr::from_u32(start as u32), len)
                        .expect("len computed in range"),
                );
                start += 1u64 << bits;
            }
        }
        out
    }
}

impl fmt::Debug for PrefixSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.to_prefixes()).finish()
    }
}

impl fmt::Display for PrefixSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefixes = self.to_prefixes();
        let mut first = true;
        for p in prefixes {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

impl FromIterator<Prefix> for PrefixSet {
    fn from_iter<I: IntoIterator<Item = Prefix>>(iter: I) -> PrefixSet {
        PrefixSet::from_prefixes(iter)
    }
}

/// Merges a sorted list of ranges into disjoint, non-adjacent form.
fn normalize(sorted: Vec<Range>) -> Vec<Range> {
    let mut out: Vec<Range> = Vec::with_capacity(sorted.len());
    for r in sorted {
        match out.last_mut() {
            Some(last)
                if r.start <= last.end
                    || (last.end < Addr::BROADCAST
                        && r.start == last.end.saturating_next()) =>
            {
                last.end = last.end.max(r.end);
            }
            _ => out.push(r),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(prefixes: &[&str]) -> PrefixSet {
        PrefixSet::from_prefixes(prefixes.iter().map(|s| s.parse().unwrap()))
    }

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn adjacent_prefixes_merge() {
        let s = set(&["10.0.0.0/25", "10.0.0.128/25"]);
        assert_eq!(s.to_prefixes(), vec![pfx("10.0.0.0/24")]);
        assert_eq!(s.size(), 256);
    }

    #[test]
    fn union_intersection_difference() {
        let a = set(&["10.0.0.0/8"]);
        let b = set(&["10.128.0.0/9", "11.0.0.0/8"]);
        // 10/8 and 11/8 are adjacent, so the union canonicalizes to 10/7.
        assert_eq!(a.union(&b).to_prefixes(), vec![pfx("10.0.0.0/7")]);
        assert_eq!(a.intersection(&b).to_prefixes(), vec![pfx("10.128.0.0/9")]);
        assert_eq!(a.difference(&b).to_prefixes(), vec![pfx("10.0.0.0/9")]);
        assert!(b.difference(&a).contains("11.0.0.1".parse().unwrap()));
    }

    #[test]
    fn complement_roundtrip() {
        let a = set(&["0.0.0.0/1"]);
        assert_eq!(a.complement().to_prefixes(), vec![pfx("128.0.0.0/1")]);
        assert_eq!(a.complement().complement(), a);
        assert_eq!(PrefixSet::all().complement(), PrefixSet::empty());
        assert_eq!(PrefixSet::empty().complement(), PrefixSet::all());
    }

    #[test]
    fn complement_of_interior_range() {
        let a = set(&["10.0.0.0/8"]);
        let c = a.complement();
        assert!(c.contains("9.255.255.255".parse().unwrap()));
        assert!(c.contains("11.0.0.0".parse().unwrap()));
        assert!(!c.contains("10.5.5.5".parse().unwrap()));
        assert_eq!(c.size(), (1u64 << 32) - (1 << 24));
    }

    #[test]
    fn contains_and_covers() {
        let s = set(&["66.253.32.84/30", "10.0.0.0/16"]);
        assert!(s.contains("66.253.32.85".parse().unwrap()));
        assert!(!s.contains("66.253.32.88".parse().unwrap()));
        assert!(s.covers_prefix(pfx("10.0.128.0/17")));
        assert!(!s.covers_prefix(pfx("10.0.0.0/8")));
        assert!(s.intersects_prefix(pfx("10.0.0.0/8")));
        assert!(!s.intersects_prefix(pfx("192.0.2.0/24")));
    }

    #[test]
    fn disjointness_checks_like_table2() {
        // Mirrors the net15 policy-disjointness checks: A2 ∩ A5 = ∅ etc.
        let a2 = set(&["10.2.0.0/16"]);
        let a5 = set(&["10.0.0.0/24"]);
        assert!(a2.intersection(&a5).is_empty());
        let a1 = set(&["10.0.0.0/24", "10.1.0.0/16"]);
        assert!(!a1.intersection(&a5).is_empty());
    }

    #[test]
    fn to_prefixes_minimality_on_odd_range() {
        // 10.0.0.1 .. 10.0.0.6 = /32 + /31 + /31 + /32? Check exact cover.
        let s = PrefixSet {
            ranges: vec![Range::new(
                "10.0.0.1".parse().unwrap(),
                "10.0.0.6".parse().unwrap(),
            )],
        };
        let prefixes = s.to_prefixes();
        let total: u64 = prefixes.iter().map(|p| p.size()).sum();
        assert_eq!(total, 6);
        let rebuilt = PrefixSet::from_prefixes(prefixes);
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn full_space_decomposes_to_default_route() {
        assert_eq!(PrefixSet::all().to_prefixes(), vec![Prefix::DEFAULT]);
    }
}
