//! IPv4 addressing primitives for static routing-design analysis.
//!
//! This crate provides the address-space substrate used throughout the
//! routing-design toolchain:
//!
//! - [`Addr`]: a thin, `Copy`, ordered IPv4 address built on `u32`.
//! - [`Netmask`] / [`Wildcard`]: contiguous netmasks and Cisco-style wildcard
//!   (inverse) masks, with conversions and validity checking.
//! - [`Prefix`]: a CIDR prefix with containment, overlap, supernet/subnet
//!   arithmetic and canonical formatting.
//! - [`PrefixSet`]: an exact set of IPv4 addresses represented as sorted
//!   disjoint ranges, supporting union / intersection / difference and
//!   conversion back to a minimal prefix list. This is the semantic domain in
//!   which route filters (access lists, distribute lists, route maps) are
//!   interpreted by the `reachability` crate.
//! - [`PrefixTrie`]: a binary trie keyed by prefixes for longest-prefix match,
//!   used for address-space structure lookups (and benchmarked against the
//!   range representation as one of the ablations called out in DESIGN.md).
//! - [`AddrSet`] / [`PrefixMap`]: sorted-slice indexes ([`index`]) giving the
//!   hot analysis loops O(log n) membership, range, longest-prefix-match and
//!   covering-prefix queries over plain `Vec`s.
//! - [`blocks`]: the Section 3.4 address-block recovery algorithm from the
//!   paper, which aggregates the fragmented subnets mentioned in configuration
//!   files into a hierarchical tree of address blocks.
//!
//! Everything here is deliberately IPv4-only: the paper's corpus (2004-era
//! Cisco IOS configurations) is IPv4-only, and keeping the domain `u32`-sized
//! keeps the set algebra exact and fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
pub mod blocks;
pub mod index;
mod mask;
mod prefix;
mod set;
mod trie;

pub use addr::{Addr, ParseAddrError};
pub use blocks::{recover_blocks, AddressBlock, BlockTree};
pub use index::{AddrSet, PrefixMap};
pub use mask::{Netmask, ParseMaskError, Wildcard};
pub use prefix::{ParsePrefixError, Prefix};
pub use set::{PrefixSet, Range};
pub use trie::PrefixTrie;
