//! The [`Addr`] type: a compact IPv4 address.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address.
///
/// This is a thin wrapper over `u32` (host byte order) rather than
/// `std::net::Ipv4Addr` so that the arithmetic the analyses need — masking,
/// ordering, successor/predecessor, bit tests — is direct and allocation-free.
/// Conversions to and from `std::net::Ipv4Addr` are provided.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u32);

impl Addr {
    /// The all-zeros address `0.0.0.0`.
    pub const ZERO: Addr = Addr(0);
    /// The all-ones address `255.255.255.255`.
    pub const BROADCAST: Addr = Addr(u32::MAX);

    /// Creates an address from a host-order `u32`.
    pub const fn from_u32(bits: u32) -> Addr {
        Addr(bits)
    }

    /// Creates an address from four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Addr {
        Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | (d as u32))
    }

    /// Returns the address as a host-order `u32`.
    pub const fn to_u32(self) -> u32 {
        self.0
    }

    /// Returns the four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Tests bit `i` counting from the most significant bit (bit 0 is the
    /// top bit). Panics if `i >= 32`.
    pub fn bit(self, i: u8) -> bool {
        assert!(i < 32, "bit index out of range: {i}");
        (self.0 >> (31 - i)) & 1 == 1
    }

    /// Returns the next address, saturating at the broadcast address.
    pub const fn saturating_next(self) -> Addr {
        Addr(self.0.saturating_add(1))
    }

    /// Returns the previous address, saturating at zero.
    pub const fn saturating_prev(self) -> Addr {
        Addr(self.0.saturating_sub(1))
    }

    /// True if this address lies in one of the RFC 1918 private ranges.
    pub fn is_rfc1918(self) -> bool {
        let o = self.octets();
        o[0] == 10 || (o[0] == 172 && (16..=31).contains(&o[1])) || (o[0] == 192 && o[1] == 168)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({self})")
    }
}

impl From<std::net::Ipv4Addr> for Addr {
    fn from(a: std::net::Ipv4Addr) -> Addr {
        Addr(u32::from(a))
    }
}

impl From<Addr> for std::net::Ipv4Addr {
    fn from(a: Addr) -> std::net::Ipv4Addr {
        std::net::Ipv4Addr::from(a.0)
    }
}

/// Error returned when parsing an [`Addr`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError {
    text: String,
}

impl ParseAddrError {
    pub(crate) fn new(text: &str) -> ParseAddrError {
        ParseAddrError { text: text.to_string() }
    }
}

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address: {:?}", self.text)
    }
}

impl std::error::Error for ParseAddrError {}

impl FromStr for Addr {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Addr, ParseAddrError> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(|| ParseAddrError::new(s))?;
            if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseAddrError::new(s));
            }
            *slot = part.parse().map_err(|_| ParseAddrError::new(s))?;
        }
        if parts.next().is_some() {
            return Err(ParseAddrError::new(s));
        }
        Ok(Addr::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for text in ["0.0.0.0", "10.0.0.1", "66.253.160.67", "255.255.255.255"] {
            let a: Addr = text.parse().unwrap();
            assert_eq!(a.to_string(), text);
        }
    }

    #[test]
    fn rejects_malformed() {
        for text in ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3", "01x.2.3.4"] {
            assert!(text.parse::<Addr>().is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn bit_indexing_is_msb_first() {
        let a: Addr = "128.0.0.1".parse().unwrap();
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(a.bit(31));
    }

    #[test]
    fn ordering_matches_numeric_order() {
        let lo: Addr = "10.0.0.0".parse().unwrap();
        let hi: Addr = "10.0.0.1".parse().unwrap();
        assert!(lo < hi);
        assert_eq!(lo.saturating_next(), hi);
        assert_eq!(hi.saturating_prev(), lo);
        assert_eq!(Addr::BROADCAST.saturating_next(), Addr::BROADCAST);
        assert_eq!(Addr::ZERO.saturating_prev(), Addr::ZERO);
    }

    #[test]
    fn rfc1918_detection() {
        assert!("10.1.2.3".parse::<Addr>().unwrap().is_rfc1918());
        assert!("172.16.0.1".parse::<Addr>().unwrap().is_rfc1918());
        assert!("172.31.255.255".parse::<Addr>().unwrap().is_rfc1918());
        assert!("192.168.5.5".parse::<Addr>().unwrap().is_rfc1918());
        assert!(!"172.32.0.1".parse::<Addr>().unwrap().is_rfc1918());
        assert!(!"8.8.8.8".parse::<Addr>().unwrap().is_rfc1918());
    }

    #[test]
    fn std_conversions() {
        let a: Addr = "192.0.2.1".parse().unwrap();
        let s: std::net::Ipv4Addr = a.into();
        assert_eq!(Addr::from(s), a);
    }
}
