//! A binary prefix trie for longest-prefix match.

use crate::addr::Addr;
use crate::prefix::Prefix;

/// A binary trie mapping [`Prefix`]es to values, with longest-prefix match.
///
/// Used for address-space structure lookups ("which address block does this
/// interface belong to?") and for next-hop resolution in the reachability
/// analysis. The trie is the classic unibit structure: each level consumes
/// one address bit, values hang off the node at depth `prefix.len()`.
///
/// DESIGN.md lists the trie-vs-range-list representation as an ablation; the
/// bench crate compares this structure against [`crate::PrefixSet`] for
/// membership-style queries.
#[derive(Clone, Debug)]
pub struct PrefixTrie<T> {
    root: Node<T>,
    len: usize,
}

#[derive(Clone, Debug)]
struct Node<T> {
    value: Option<T>,
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Default for Node<T> {
    fn default() -> Node<T> {
        Node { value: None, children: [None, None] }
    }
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> PrefixTrie<T> {
        PrefixTrie::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> PrefixTrie<T> {
        PrefixTrie { root: Node::default(), len: 0 }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let bit = prefix.addr().bit(i) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Returns the value stored at exactly `prefix`.
    pub fn get(&self, prefix: Prefix) -> Option<&T> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let bit = prefix.addr().bit(i) as usize;
            node = node.children[bit].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Longest-prefix match: the most specific stored prefix containing
    /// `addr`, with its value.
    pub fn lookup(&self, addr: Addr) -> Option<(Prefix, &T)> {
        let mut node = &self.root;
        let mut best: Option<(u8, &T)> = node.value.as_ref().map(|v| (0, v));
        for i in 0..32 {
            let bit = addr.bit(i) as usize;
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| {
            (Prefix::new(addr, len).expect("len <= 32 by construction"), v)
        })
    }

    /// Iterates over all `(prefix, value)` pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        let mut out = Vec::new();
        collect(&self.root, 0, 0, &mut out);
        out.into_iter()
    }

    /// Returns all stored prefixes covered by `prefix` (including itself).
    pub fn covered_by(&self, prefix: Prefix) -> Vec<(Prefix, &T)> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let bit = prefix.addr().bit(i) as usize;
            match node.children[bit].as_deref() {
                Some(child) => node = child,
                None => return Vec::new(),
            }
        }
        let mut out = Vec::new();
        collect(node, prefix.addr().to_u32(), prefix.len(), &mut out);
        out
    }
}

fn collect<'a, T>(
    node: &'a Node<T>,
    bits: u32,
    depth: u8,
    out: &mut Vec<(Prefix, &'a T)>,
) {
    if let Some(v) = &node.value {
        out.push((
            Prefix::new(Addr::from_u32(bits), depth).expect("depth <= 32"),
            v,
        ));
    }
    if depth == 32 {
        return;
    }
    if let Some(child) = node.children[0].as_deref() {
        collect(child, bits, depth + 1, out);
    }
    if let Some(child) = node.children[1].as_deref() {
        collect(child, bits | 1 << (31 - depth), depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.0.0.0/8"), "eight");
        t.insert(pfx("10.1.0.0/16"), "sixteen");
        t.insert(pfx("0.0.0.0/0"), "default");
        assert_eq!(t.lookup(addr("10.1.2.3")).unwrap().1, &"sixteen");
        assert_eq!(t.lookup(addr("10.2.2.3")).unwrap().1, &"eight");
        assert_eq!(t.lookup(addr("11.0.0.1")).unwrap().1, &"default");
        assert_eq!(t.lookup(addr("10.1.2.3")).unwrap().0, pfx("10.1.0.0/16"));
    }

    #[test]
    fn lookup_without_default_misses() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("192.0.2.0/24"), ());
        assert!(t.lookup(addr("192.0.3.1")).is_none());
        assert!(t.lookup(addr("192.0.2.255")).is_some());
    }

    #[test]
    fn insert_replaces_and_counts() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(pfx("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(pfx("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(pfx("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(pfx("10.0.0.0/9")), None);
    }

    #[test]
    fn iter_is_lexicographic() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.0.0.0/16"), ());
        t.insert(pfx("10.0.0.0/8"), ());
        t.insert(pfx("9.0.0.0/8"), ());
        let keys: Vec<Prefix> = t.iter().map(|(p, _)| p).collect();
        assert_eq!(keys, vec![pfx("9.0.0.0/8"), pfx("10.0.0.0/8"), pfx("10.0.0.0/16")]);
    }

    #[test]
    fn covered_by_returns_subtree() {
        let mut t = PrefixTrie::new();
        t.insert(pfx("10.0.0.0/8"), ());
        t.insert(pfx("10.1.0.0/16"), ());
        t.insert(pfx("11.0.0.0/8"), ());
        let sub: Vec<Prefix> = t.covered_by(pfx("10.0.0.0/8")).into_iter().map(|(p, _)| p).collect();
        assert_eq!(sub, vec![pfx("10.0.0.0/8"), pfx("10.1.0.0/16")]);
        assert!(t.covered_by(pfx("12.0.0.0/8")).is_empty());
    }

    #[test]
    fn host_prefixes_work() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::host(addr("10.0.0.1")), "host");
        assert_eq!(t.lookup(addr("10.0.0.1")).unwrap().1, &"host");
        assert!(t.lookup(addr("10.0.0.2")).is_none());
    }
}
