//! Address-space structure recovery (paper Section 3.4).
//!
//! Configuration files mention only small, fragmented subnets; the paper
//! recovers the designer's addressing plan by repeatedly joining subnets
//! whose network numbers differ in no more than the two low-order bits of
//! the (shorter) network number — i.e. expanding blocks so long as at least
//! half of the enlarged block is used — until no more joins are possible.
//! The result is a hierarchical tree of address blocks.

use std::collections::BTreeMap;

use crate::addr::Addr;
use crate::prefix::Prefix;

/// One node of the recovered address-block hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AddressBlock {
    /// The covering prefix of this block.
    pub prefix: Prefix,
    /// Number of addresses inside `prefix` that are used by the network
    /// (covered by some configured subnet).
    pub used: u64,
    /// Sub-blocks that were merged to form this block. Leaves are the
    /// subnets actually mentioned in the configurations.
    pub children: Vec<AddressBlock>,
}

impl AddressBlock {
    fn leaf(prefix: Prefix) -> AddressBlock {
        AddressBlock { prefix, used: prefix.size(), children: Vec::new() }
    }

    /// Fraction of this block's address space that is used, in [0, 1].
    pub fn utilization(&self) -> f64 {
        self.used as f64 / self.prefix.size() as f64
    }

    /// Iterates over the leaf subnets under this block.
    pub fn leaves(&self) -> Vec<Prefix> {
        if self.children.is_empty() {
            return vec![self.prefix];
        }
        self.children.iter().flat_map(|c| c.leaves()).collect()
    }

    /// Visits every leaf subnet under this block without allocating the
    /// intermediate `Vec`s that [`AddressBlock::leaves`] builds.
    pub fn for_each_leaf(&self, f: &mut impl FnMut(Prefix)) {
        if self.children.is_empty() {
            f(self.prefix);
            return;
        }
        for c in &self.children {
            c.for_each_leaf(f);
        }
    }
}

/// The recovered address-space structure: a forest of top-level blocks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockTree {
    /// Top-level (unmergeable) blocks, sorted by prefix.
    pub roots: Vec<AddressBlock>,
}

impl BlockTree {
    /// Total number of top-level blocks.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// True if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// The top-level block containing `addr`, if any. O(log n): roots come
    /// out of [`recover_blocks`] sorted and pairwise disjoint, so the only
    /// candidate is the last root starting at or before `addr`.
    pub fn block_of(&self, addr: Addr) -> Option<&AddressBlock> {
        let i = self.roots.partition_point(|b| b.prefix.first() <= addr);
        let b = &self.roots[i.checked_sub(1)?];
        b.prefix.contains(addr).then_some(b)
    }

    /// The top-level block covering **all** of `p`, if any. O(log n), by
    /// the same sorted-disjoint argument as [`BlockTree::block_of`].
    pub fn covering_root(&self, p: Prefix) -> Option<&AddressBlock> {
        let i = self.roots.partition_point(|b| b.prefix.first() <= p.first());
        let b = &self.roots[i.checked_sub(1)?];
        b.prefix.covers(p).then_some(b)
    }

    /// The top-level prefixes, sorted.
    pub fn root_prefixes(&self) -> Vec<Prefix> {
        self.roots.iter().map(|b| b.prefix).collect()
    }
}

/// Smallest common supernet of two prefixes.
fn common_supernet(a: Prefix, b: Prefix) -> Prefix {
    let max_len = a.len().min(b.len());
    let diff = a.addr().to_u32() ^ b.addr().to_u32();
    let common = (diff.leading_zeros() as u8).min(max_len);
    Prefix::new(a.addr(), common).expect("common <= 32")
}

/// Recovers the address-block hierarchy from the subnets mentioned in a
/// network's configuration files.
///
/// Duplicates are removed and covered subnets are nested before the join
/// loop runs. Two blocks are joined when (a) their common supernet strips at
/// most the two bits just below the shorter block's mask (the paper's
/// "network numbers differ in no more than the least two bits"), and (b) at
/// least half of the joined block's address space is used.
pub fn recover_blocks<I: IntoIterator<Item = Prefix>>(subnets: I) -> BlockTree {
    // Dedupe and sort; sorting places supernets directly before subnets.
    let mut uniq: Vec<Prefix> = {
        let set: std::collections::BTreeSet<Prefix> = subnets.into_iter().collect();
        set.into_iter().collect()
    };

    // Nest covered subnets under their covering subnet so the "used" counts
    // do not double-count overlapping space.
    let mut blocks: Vec<AddressBlock> = Vec::new();
    uniq.sort();
    for p in uniq {
        match blocks.last_mut() {
            Some(last) if last.prefix.covers(p) => {
                nest_leaf(last, p);
            }
            _ => blocks.push(AddressBlock::leaf(p)),
        }
    }

    // Join loop: repeatedly merge neighbouring blocks until fixpoint.
    loop {
        blocks.sort_by_key(|b| b.prefix);
        let mut merged_any = false;
        let mut next: Vec<AddressBlock> = Vec::with_capacity(blocks.len());
        let mut iter = blocks.into_iter();
        let mut pending: Option<AddressBlock> = iter.next();
        for b in iter {
            let a = pending.take().expect("pending is always Some in loop");
            match try_join(a, b) {
                Ok(joined) => {
                    pending = Some(joined);
                    merged_any = true;
                }
                Err((a, b)) => {
                    next.push(a);
                    pending = Some(b);
                }
            }
        }
        if let Some(last) = pending {
            next.push(last);
        }
        blocks = next;
        if !merged_any {
            break;
        }
    }

    BlockTree { roots: blocks }
}

/// Nests leaf subnet `p` under block `node` (which covers it).
fn nest_leaf(node: &mut AddressBlock, p: Prefix) {
    if node.prefix == p {
        return; // exact duplicate
    }
    if let Some(child) = node.children.iter_mut().find(|c| c.prefix.covers(p)) {
        nest_leaf(child, p);
        return;
    }
    // `node` was itself a configured subnet that covers p; p adds no new
    // used space, but record it as a child for structure.
    node.children.push(AddressBlock::leaf(p));
}

/// Attempts to join two address-ordered blocks per the paper's rule. The
/// join decision reads only prefixes and usage counts, so the blocks are
/// taken by value and *moved* into the joined node (the old version cloned
/// both subtrees per join, which dominated the stage at full scale); on
/// rejection they come back unchanged in `Err`.
fn try_join(
    a: AddressBlock,
    b: AddressBlock,
) -> Result<AddressBlock, (AddressBlock, AddressBlock)> {
    if a.prefix.covers(b.prefix) {
        // Can arise after earlier joins create enclosing blocks. Roots are
        // pairwise disjoint before the loop, so `b`'s space is not yet
        // counted in `a`.
        let mut joined = a;
        joined.used += b.used;
        joined.children.push(b);
        return Ok(joined);
    }
    let sup = common_supernet(a.prefix, b.prefix);
    let shorter = a.prefix.len().min(b.prefix.len());
    // "Differ in no more than the least two bits": stripping at most two
    // bits below the shorter network mask reaches the common supernet.
    if sup.len() + 2 < shorter {
        return Err((a, b));
    }
    let used = a.used + b.used;
    // At least half the enlarged block must be used.
    if used * 2 < sup.size() {
        return Err((a, b));
    }
    Ok(AddressBlock { prefix: sup, used, children: vec![a, b] })
}

/// Summarizes a block tree as `prefix -> utilization`, useful for reports.
pub fn utilization_map(tree: &BlockTree) -> BTreeMap<Prefix, f64> {
    tree.roots.iter().map(|b| (b.prefix, b.utilization())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn sibling_subnets_join_into_supernet() {
        let tree = recover_blocks(vec![pfx("10.0.0.0/25"), pfx("10.0.0.128/25")]);
        assert_eq!(tree.root_prefixes(), vec![pfx("10.0.0.0/24")]);
        assert_eq!(tree.roots[0].used, 256);
        assert_eq!(tree.roots[0].utilization(), 1.0);
    }

    #[test]
    fn sparse_subnets_do_not_join() {
        // Two /30s far apart in a /16: joining would be far under half used.
        let tree = recover_blocks(vec![pfx("10.0.0.0/30"), pfx("10.0.255.0/30")]);
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn two_bit_gap_joins_when_half_used() {
        // Four /26s fill a /24: each adjacent pair joins (1-bit gap), then
        // the two /25s join.
        let subnets = vec![
            pfx("10.0.0.0/26"),
            pfx("10.0.0.64/26"),
            pfx("10.0.0.128/26"),
            pfx("10.0.0.192/26"),
        ];
        let tree = recover_blocks(subnets);
        assert_eq!(tree.root_prefixes(), vec![pfx("10.0.0.0/24")]);
    }

    #[test]
    fn half_usage_boundary() {
        // Two /26s inside a /24 occupy exactly half: allowed to join
        // (joins proceed pairwise through the /25 level).
        let tree = recover_blocks(vec![pfx("10.0.0.0/26"), pfx("10.0.0.64/26")]);
        assert_eq!(tree.root_prefixes(), vec![pfx("10.0.0.0/25")]);
        // A single /26 plus a distant /26 in the same /24 but needing a
        // 2-bit expansion with only half usage: still joins at exactly 1/2.
        let tree = recover_blocks(vec![pfx("10.0.0.0/26"), pfx("10.0.0.192/26")]);
        assert_eq!(tree.root_prefixes(), vec![pfx("10.0.0.0/24")]);
        assert_eq!(tree.roots[0].used, 128);
    }

    #[test]
    fn duplicate_and_covered_subnets_are_nested() {
        let tree = recover_blocks(vec![
            pfx("10.0.0.0/24"),
            pfx("10.0.0.0/24"),
            pfx("10.0.0.0/25"),
        ]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.roots[0].prefix, pfx("10.0.0.0/24"));
        assert_eq!(tree.roots[0].used, 256);
    }

    #[test]
    fn distinct_address_families_stay_separate() {
        let tree = recover_blocks(vec![pfx("10.0.0.0/24"), pfx("192.168.0.0/24")]);
        assert_eq!(tree.len(), 2);
        assert!(tree.block_of("10.0.0.5".parse().unwrap()).is_some());
        assert!(tree.block_of("172.16.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn leaves_recover_original_subnets() {
        let subnets =
            vec![pfx("10.0.0.0/26"), pfx("10.0.0.64/26"), pfx("10.0.0.128/26")];
        let tree = recover_blocks(subnets.clone());
        let mut leaves: Vec<Prefix> =
            tree.roots.iter().flat_map(|b| b.leaves()).collect();
        leaves.sort();
        assert_eq!(leaves, subnets);
    }

    #[test]
    fn common_supernet_examples() {
        assert_eq!(
            common_supernet(pfx("10.0.0.0/25"), pfx("10.0.0.128/25")),
            pfx("10.0.0.0/24")
        );
        assert_eq!(
            common_supernet(pfx("10.0.0.0/24"), pfx("11.0.0.0/24")),
            pfx("10.0.0.0/7")
        );
    }
}
