//! Property-based tests for the netaddr primitives.
//!
//! The `PrefixSet` algebra is checked against a naive model built on
//! `BTreeSet<u32>` over a small sampled universe, and the trie is checked
//! against linear scans.
//!
//! Gated behind the `proptest-tests` feature because proptest is an
//! external crate and the default build must work offline; the always-on
//! fixed-seed equivalents live in `tests/fixed_seed.rs`. See DESIGN.md.

#![cfg(feature = "proptest-tests")]

use std::collections::BTreeSet;

use netaddr::{Addr, AddrSet, Prefix, PrefixMap, PrefixSet, PrefixTrie};
use proptest::prelude::*;

/// Strategy: arbitrary prefix with length biased toward realistic subnets.
fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| {
        Prefix::new(Addr::from_u32(bits), len).expect("len <= 32")
    })
}

/// Strategy: a small set of prefixes.
fn arb_prefixes() -> impl Strategy<Value = Vec<Prefix>> {
    prop::collection::vec(arb_prefix(), 0..12)
}

/// Sample membership probes: prefix boundaries plus arbitrary addresses.
fn probes(sets: &[&[Prefix]], extra: &[u32]) -> Vec<Addr> {
    let mut out: BTreeSet<u32> = extra.iter().copied().collect();
    for prefixes in sets {
        for p in *prefixes {
            for a in [
                p.first().to_u32().wrapping_sub(1),
                p.first().to_u32(),
                p.last().to_u32(),
                p.last().to_u32().wrapping_add(1),
            ] {
                out.insert(a);
            }
        }
    }
    out.into_iter().map(Addr::from_u32).collect()
}

fn naive_contains(prefixes: &[Prefix], addr: Addr) -> bool {
    prefixes.iter().any(|p| p.contains(addr))
}

/// Strategy: one parent prefix with nested children, biased toward the
/// shapes the analysis indexes see (including the hot /30 and /32 cases).
fn arb_nested_group() -> impl Strategy<Value = Vec<Prefix>> {
    (
        any::<u32>(),
        8u8..=24,
        prop::collection::vec(
            (any::<u32>(), prop_oneof![Just(30u8), Just(32u8), 0u8..=32]),
            0..5,
        ),
    )
        .prop_map(|(bits, plen, kids)| {
            let parent = Prefix::new(Addr::from_u32(bits), plen).expect("len <= 32");
            let mut out = vec![parent];
            for (off, len) in kids {
                let len = len.max(parent.len());
                let inside = parent.first().to_u32()
                    + (u64::from(off) % parent.size()) as u32;
                // `Prefix::new` masks down to the network address.
                out.push(Prefix::new(Addr::from_u32(inside), len).expect("len <= 32"));
            }
            out
        })
}

/// Strategy: arbitrary prefixes mixed with nested groups.
fn arb_nested_prefixes() -> impl Strategy<Value = Vec<Prefix>> {
    (arb_prefixes(), prop::collection::vec(arb_nested_group(), 1..4)).prop_map(
        |(mut base, groups)| {
            for g in groups {
                base.extend(g);
            }
            base
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn prefix_parse_display_roundtrip(p in arb_prefix()) {
        let text = p.to_string();
        let back: Prefix = text.parse().unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn set_union_matches_naive(a in arb_prefixes(), b in arb_prefixes(), extras in prop::collection::vec(any::<u32>(), 8)) {
        let sa = PrefixSet::from_prefixes(a.iter().copied());
        let sb = PrefixSet::from_prefixes(b.iter().copied());
        let u = sa.union(&sb);
        for probe in probes(&[&a, &b], &extras) {
            let expect = naive_contains(&a, probe) || naive_contains(&b, probe);
            prop_assert_eq!(u.contains(probe), expect, "probe {}", probe);
        }
    }

    #[test]
    fn set_intersection_matches_naive(a in arb_prefixes(), b in arb_prefixes(), extras in prop::collection::vec(any::<u32>(), 8)) {
        let sa = PrefixSet::from_prefixes(a.iter().copied());
        let sb = PrefixSet::from_prefixes(b.iter().copied());
        let i = sa.intersection(&sb);
        for probe in probes(&[&a, &b], &extras) {
            let expect = naive_contains(&a, probe) && naive_contains(&b, probe);
            prop_assert_eq!(i.contains(probe), expect, "probe {}", probe);
        }
    }

    #[test]
    fn set_difference_matches_naive(a in arb_prefixes(), b in arb_prefixes(), extras in prop::collection::vec(any::<u32>(), 8)) {
        let sa = PrefixSet::from_prefixes(a.iter().copied());
        let sb = PrefixSet::from_prefixes(b.iter().copied());
        let d = sa.difference(&sb);
        for probe in probes(&[&a, &b], &extras) {
            let expect = naive_contains(&a, probe) && !naive_contains(&b, probe);
            prop_assert_eq!(d.contains(probe), expect, "probe {}", probe);
        }
    }

    #[test]
    fn complement_is_involutive(a in arb_prefixes()) {
        let s = PrefixSet::from_prefixes(a.iter().copied());
        prop_assert_eq!(s.complement().complement(), s);
    }

    #[test]
    fn complement_partitions_space(a in arb_prefixes()) {
        let s = PrefixSet::from_prefixes(a.iter().copied());
        let c = s.complement();
        prop_assert!(s.intersection(&c).is_empty());
        prop_assert_eq!(s.size() + c.size(), 1u64 << 32);
    }

    #[test]
    fn to_prefixes_is_exact_and_canonical(a in arb_prefixes()) {
        let s = PrefixSet::from_prefixes(a.iter().copied());
        let decomposed = s.to_prefixes();
        // Rebuilding yields the same set.
        let rebuilt = PrefixSet::from_prefixes(decomposed.iter().copied());
        prop_assert_eq!(&rebuilt, &s);
        // The decomposition is disjoint.
        let total: u64 = decomposed.iter().map(|p| p.size()).sum();
        prop_assert_eq!(total, s.size());
    }

    #[test]
    fn trie_lookup_matches_linear_scan(a in arb_prefixes(), probes_raw in prop::collection::vec(any::<u32>(), 16)) {
        let mut trie = PrefixTrie::new();
        for (i, p) in a.iter().enumerate() {
            trie.insert(*p, i);
        }
        for raw in probes_raw {
            let addr = Addr::from_u32(raw);
            let expect = a
                .iter()
                .enumerate()
                .filter(|(_, p)| p.contains(addr))
                .max_by_key(|(i, p)| (p.len(), *i)) // last insert wins ties
                .map(|(_, p)| p.len());
            let got = trie.lookup(addr).map(|(p, _)| p.len());
            prop_assert_eq!(got, expect, "probe {}", addr);
        }
    }

    #[test]
    fn addr_set_queries_match_linear_scan(
        raw in prop::collection::vec(any::<u32>(), 0..24),
        queries in arb_nested_prefixes(),
        extras in prop::collection::vec(any::<u32>(), 8),
    ) {
        let addrs: Vec<Addr> = raw.iter().copied().map(Addr::from_u32).collect();
        let set = AddrSet::new(addrs.clone());
        for probe in probes(&[&queries], &extras) {
            prop_assert_eq!(set.contains(probe), addrs.contains(&probe), "probe {}", probe);
        }
        for a in &addrs {
            prop_assert!(set.contains(*a), "own address {} missing", a);
        }
        for q in &queries {
            prop_assert_eq!(
                set.any_in_prefix(*q),
                addrs.iter().any(|a| q.contains(*a)),
                "range query {}", q
            );
        }
    }

    #[test]
    fn prefix_map_lpm_matches_linear_scan(
        a in arb_nested_prefixes(),
        extras in prop::collection::vec(any::<u32>(), 8),
    ) {
        let map: PrefixMap<usize> = a.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        for probe in probes(&[&a], &extras) {
            // Unique prefixes can tie on length only by being equal, so the
            // longest containing prefix is well defined.
            let expect = a.iter().filter(|p| p.contains(probe)).map(|p| p.len()).max();
            let got = map.lookup(probe).map(|(p, _)| p.len());
            prop_assert_eq!(got, expect, "LPM probe {}", probe);
        }
    }

    #[test]
    fn prefix_map_covering_matches_linear_scan(
        a in arb_nested_prefixes(),
        queries in arb_nested_prefixes(),
    ) {
        let map: PrefixMap<()> = a.iter().map(|p| (*p, ())).collect();
        for q in a.iter().chain(queries.iter()) {
            let expect = a.iter().filter(|p| p.covers(*q)).map(|p| p.len()).max();
            let got = map.covering(*q).map(|(p, _)| p.len());
            prop_assert_eq!(got, expect, "covering query {}", q);
        }
    }

    #[test]
    fn intersects_prefix_matches_allocating_intersection(
        a in arb_nested_prefixes(),
        queries in arb_nested_prefixes(),
    ) {
        let s = PrefixSet::from_prefixes(a.iter().copied());
        for q in queries {
            prop_assert_eq!(
                s.intersects_prefix(q),
                !s.intersection(&PrefixSet::from_prefix(q)).is_empty(),
                "intersects query {}", q
            );
        }
    }

    #[test]
    fn block_tree_binary_search_matches_linear_scan(
        a in arb_nested_prefixes(),
        extras in prop::collection::vec(any::<u32>(), 8),
    ) {
        let tree = netaddr::recover_blocks(a.iter().copied());
        for probe in probes(&[&a], &extras) {
            let expect = tree.roots.iter().find(|b| b.prefix.contains(probe)).map(|b| b.prefix);
            prop_assert_eq!(tree.block_of(probe).map(|b| b.prefix), expect, "probe {}", probe);
        }
        for q in &a {
            let expect = tree.roots.iter().find(|b| b.prefix.covers(*q)).map(|b| b.prefix);
            prop_assert_eq!(tree.covering_root(*q).map(|b| b.prefix), expect, "query {}", q);
        }
    }

    #[test]
    fn block_recovery_covers_all_inputs(a in arb_prefixes()) {
        let tree = netaddr::recover_blocks(a.iter().copied());
        for p in &a {
            prop_assert!(
                tree.roots.iter().any(|b| b.prefix.covers(*p)),
                "input {} not covered by any root", p
            );
        }
        // Roots are pairwise non-overlapping.
        let roots = tree.root_prefixes();
        for (i, x) in roots.iter().enumerate() {
            for y in &roots[i + 1..] {
                prop_assert!(!x.overlaps(*y), "roots {} and {} overlap", x, y);
            }
        }
        // Utilization of every root respects the half-used rule (roots that
        // are original subnets are fully used).
        for b in &tree.roots {
            prop_assert!(b.used <= b.prefix.size());
        }
    }
}
