//! Fixed-seed sampled versions of the `tests/properties.rs` proptest
//! suite: the same invariants (set algebra vs a naive model, trie vs
//! linear scan, block recovery coverage), exercised over a deterministic
//! `rd_rng` stream so they run in every build with no external crates.

use std::collections::BTreeSet;

use netaddr::{Addr, AddrSet, Prefix, PrefixMap, PrefixSet, PrefixTrie};
use rd_rng::StdRng;

fn random_prefix(rng: &mut StdRng) -> Prefix {
    let bits = rng.next_u32();
    let len: u8 = rng.gen_range(0..=32);
    Prefix::new(Addr::from_u32(bits), len).expect("len <= 32")
}

fn random_prefixes(rng: &mut StdRng) -> Vec<Prefix> {
    let n: usize = rng.gen_range(0..12);
    (0..n).map(|_| random_prefix(rng)).collect()
}

/// Sample membership probes: prefix boundaries plus arbitrary addresses.
fn probes(sets: &[&[Prefix]], rng: &mut StdRng) -> Vec<Addr> {
    let mut out: BTreeSet<u32> = (0..8).map(|_| rng.next_u32()).collect();
    for prefixes in sets {
        for p in *prefixes {
            for a in [
                p.first().to_u32().wrapping_sub(1),
                p.first().to_u32(),
                p.last().to_u32(),
                p.last().to_u32().wrapping_add(1),
            ] {
                out.insert(a);
            }
        }
    }
    out.into_iter().map(Addr::from_u32).collect()
}

fn naive_contains(prefixes: &[Prefix], addr: Addr) -> bool {
    prefixes.iter().any(|p| p.contains(addr))
}

/// Random prefixes biased toward the shapes the analysis indexes see:
/// nested sub-blocks of a common parent plus the hot /30 and /32 cases.
fn random_nested_prefixes(rng: &mut StdRng) -> Vec<Prefix> {
    let mut out = random_prefixes(rng);
    let parents: usize = rng.gen_range(1..4);
    for _ in 0..parents {
        let parent = {
            let len: u8 = rng.gen_range(8..=24);
            Prefix::new(Addr::from_u32(rng.next_u32()), len).expect("len <= 32")
        };
        out.push(parent);
        let kids: usize = rng.gen_range(0..5);
        for _ in 0..kids {
            let len: u8 = match rng.gen_range(0..4u32) {
                0 => 30,
                1 => 32,
                _ => rng.gen_range(u32::from(parent.len())..=32) as u8,
            }
            .max(parent.len());
            let inside = parent.first().to_u32()
                + (rng.next_u32() as u64 % parent.size()) as u32;
            // `Prefix::new` masks the address down to the network address.
            out.push(Prefix::new(Addr::from_u32(inside), len).expect("len <= 32"));
        }
    }
    out
}

#[test]
fn prefix_parse_display_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xB1);
    for _ in 0..500 {
        let p = random_prefix(&mut rng);
        let back: Prefix = p.to_string().parse().unwrap();
        assert_eq!(back, p);
    }
}

#[test]
fn set_algebra_matches_naive() {
    let mut rng = StdRng::seed_from_u64(0xB2);
    for _ in 0..200 {
        let a = random_prefixes(&mut rng);
        let b = random_prefixes(&mut rng);
        let sa = PrefixSet::from_prefixes(a.iter().copied());
        let sb = PrefixSet::from_prefixes(b.iter().copied());
        let union = sa.union(&sb);
        let intersection = sa.intersection(&sb);
        let difference = sa.difference(&sb);
        for probe in probes(&[&a, &b], &mut rng) {
            let in_a = naive_contains(&a, probe);
            let in_b = naive_contains(&b, probe);
            assert_eq!(union.contains(probe), in_a || in_b, "union probe {probe}");
            assert_eq!(
                intersection.contains(probe),
                in_a && in_b,
                "intersection probe {probe}"
            );
            assert_eq!(
                difference.contains(probe),
                in_a && !in_b,
                "difference probe {probe}"
            );
        }
    }
}

#[test]
fn complement_is_involutive_and_partitions_space() {
    let mut rng = StdRng::seed_from_u64(0xB3);
    for _ in 0..200 {
        let a = random_prefixes(&mut rng);
        let s = PrefixSet::from_prefixes(a.iter().copied());
        let c = s.complement();
        assert_eq!(c.complement(), s);
        assert!(s.intersection(&c).is_empty());
        assert_eq!(s.size() + c.size(), 1u64 << 32);
    }
}

#[test]
fn to_prefixes_is_exact_and_canonical() {
    let mut rng = StdRng::seed_from_u64(0xB4);
    for _ in 0..200 {
        let a = random_prefixes(&mut rng);
        let s = PrefixSet::from_prefixes(a.iter().copied());
        let decomposed = s.to_prefixes();
        let rebuilt = PrefixSet::from_prefixes(decomposed.iter().copied());
        assert_eq!(rebuilt, s);
        let total: u64 = decomposed.iter().map(|p| p.size()).sum();
        assert_eq!(total, s.size());
    }
}

#[test]
fn trie_lookup_matches_linear_scan() {
    let mut rng = StdRng::seed_from_u64(0xB5);
    for _ in 0..200 {
        let a = random_prefixes(&mut rng);
        let mut trie = PrefixTrie::new();
        for (i, p) in a.iter().enumerate() {
            trie.insert(*p, i);
        }
        for _ in 0..16 {
            let addr = Addr::from_u32(rng.next_u32());
            let expect = a
                .iter()
                .enumerate()
                .filter(|(_, p)| p.contains(addr))
                .max_by_key(|(i, p)| (p.len(), *i)) // last insert wins ties
                .map(|(_, p)| p.len());
            let got = trie.lookup(addr).map(|(p, _)| p.len());
            assert_eq!(got, expect, "probe {addr}");
        }
    }
}

#[test]
fn addr_set_queries_match_linear_scan() {
    let mut rng = StdRng::seed_from_u64(0xB7);
    for _ in 0..200 {
        let n: usize = rng.gen_range(0..24);
        let addrs: Vec<Addr> =
            (0..n).map(|_| Addr::from_u32(rng.next_u32())).collect();
        let set = AddrSet::new(addrs.clone());
        let queries = random_nested_prefixes(&mut rng);
        for probe in probes(&[&queries], &mut rng) {
            assert_eq!(
                set.contains(probe),
                addrs.contains(&probe),
                "contains probe {probe}"
            );
        }
        for a in &addrs {
            assert!(set.contains(*a), "own address {a} missing");
        }
        for q in &queries {
            assert_eq!(
                set.any_in_prefix(*q),
                addrs.iter().any(|a| q.contains(*a)),
                "range query {q} over {addrs:?}"
            );
        }
    }
}

#[test]
fn prefix_map_lpm_matches_linear_scan() {
    let mut rng = StdRng::seed_from_u64(0xB8);
    for _ in 0..200 {
        let a = random_nested_prefixes(&mut rng);
        let map: PrefixMap<usize> =
            a.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        for probe in probes(&[&a], &mut rng) {
            // Unique prefixes can tie on length only by being equal, so the
            // longest containing prefix is well defined.
            let expect = a.iter().filter(|p| p.contains(probe)).map(|p| p.len()).max();
            let got = map.lookup(probe).map(|(p, _)| p.len());
            assert_eq!(got, expect, "LPM probe {probe} over {a:?}");
        }
    }
}

#[test]
fn prefix_map_covering_matches_linear_scan() {
    let mut rng = StdRng::seed_from_u64(0xB9);
    for _ in 0..200 {
        let a = random_nested_prefixes(&mut rng);
        let map: PrefixMap<()> = a.iter().map(|p| (*p, ())).collect();
        let queries = random_nested_prefixes(&mut rng);
        for q in a.iter().chain(queries.iter()) {
            let expect = a.iter().filter(|p| p.covers(*q)).map(|p| p.len()).max();
            let got = map.covering(*q).map(|(p, _)| p.len());
            assert_eq!(got, expect, "covering query {q} over {a:?}");
        }
    }
}

#[test]
fn intersects_prefix_matches_allocating_intersection() {
    let mut rng = StdRng::seed_from_u64(0xBA);
    for _ in 0..200 {
        let a = random_nested_prefixes(&mut rng);
        let s = PrefixSet::from_prefixes(a.iter().copied());
        for q in random_nested_prefixes(&mut rng) {
            assert_eq!(
                s.intersects_prefix(q),
                !s.intersection(&PrefixSet::from_prefix(q)).is_empty(),
                "intersects query {q} over {a:?}"
            );
        }
    }
}

#[test]
fn block_tree_binary_search_matches_linear_scan() {
    let mut rng = StdRng::seed_from_u64(0xBB);
    for _ in 0..200 {
        let a = random_nested_prefixes(&mut rng);
        let tree = netaddr::recover_blocks(a.iter().copied());
        for probe in probes(&[&a], &mut rng) {
            let expect =
                tree.roots.iter().find(|b| b.prefix.contains(probe)).map(|b| b.prefix);
            assert_eq!(
                tree.block_of(probe).map(|b| b.prefix),
                expect,
                "block_of probe {probe}"
            );
        }
        for q in &a {
            let expect =
                tree.roots.iter().find(|b| b.prefix.covers(*q)).map(|b| b.prefix);
            assert_eq!(
                tree.covering_root(*q).map(|b| b.prefix),
                expect,
                "covering_root query {q}"
            );
        }
    }
}

#[test]
fn block_recovery_covers_all_inputs() {
    let mut rng = StdRng::seed_from_u64(0xB6);
    for _ in 0..200 {
        let a = random_prefixes(&mut rng);
        let tree = netaddr::recover_blocks(a.iter().copied());
        for p in &a {
            assert!(
                tree.roots.iter().any(|b| b.prefix.covers(*p)),
                "input {p} not covered by any root"
            );
        }
        let roots = tree.root_prefixes();
        for (i, x) in roots.iter().enumerate() {
            for y in &roots[i + 1..] {
                assert!(!x.overlaps(*y), "roots {x} and {y} overlap");
            }
        }
        for b in &tree.roots {
            assert!(b.used <= b.prefix.size());
        }
    }
}
