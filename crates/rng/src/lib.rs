//! A from-scratch deterministic pseudo-random number generator.
//!
//! The generator is **xoshiro256\*\*** (Blackman & Vigna), seeded through
//! **SplitMix64** so that any 64-bit seed expands into a well-mixed
//! 256-bit state. Both algorithms are public-domain reference designs of
//! a few lines each; implementing them here keeps the workspace free of
//! registry dependencies (the toolchain must build with no network
//! access) while keeping the property the `netgen` corpus relies on:
//! **the same seed always produces the same stream**, on every platform,
//! forever.
//!
//! The API mirrors the subset of `rand` the workspace used — an owned
//! generator constructed with [`StdRng::seed_from_u64`], plus
//! [`gen_range`](StdRng::gen_range), [`gen_bool`](StdRng::gen_bool) and
//! [`gen_ratio`](StdRng::gen_ratio) — so call sites read identically.
//! Range sampling is unbiased (rejection sampling over the smallest
//! covering multiple), not a bare modulo.
//!
//! This is a statistical PRNG for corpus generation and test fuzzing. It
//! is **not** cryptographic; nothing in the workspace needs that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Bound;
use std::ops::RangeBounds;

/// The workspace's standard deterministic generator: xoshiro256**.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

/// One step of SplitMix64: the recommended seeder for xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StdRng {
    /// Builds a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// The next 64 raw bits (xoshiro256** step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 raw bits (upper half of a 64-bit step, per the
    /// xoshiro authors' guidance).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value below `bound` (which must be nonzero), unbiased via
    /// rejection of the incomplete top interval.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 2^64 mod bound: values >= this threshold form an exact multiple
        // of `bound`, so reducing them keeps the distribution uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let v = self.next_u64();
            if v >= threshold {
                return (v - threshold) % bound;
            }
        }
    }

    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    /// Panics on empty ranges, like `rand`'s `gen_range`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: RangeBounds<T>,
    {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x.to_offset(),
            Bound::Excluded(&x) => x.to_offset().checked_add(1).expect("range start overflow"),
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x.to_offset(),
            Bound::Excluded(&x) => {
                x.to_offset().checked_sub(1).unwrap_or_else(|| panic!("empty range"))
            }
            Bound::Unbounded => T::MAX_OFFSET,
        };
        assert!(lo <= hi, "gen_range called with an empty range");
        let span = hi - lo; // inclusive span minus one
        let v = if span == u64::MAX { self.next_u64() } else { self.below(span + 1) };
        T::from_offset(lo + v)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// `true` with probability `numerator / denominator` (exact, no
    /// floating point). `denominator` must be nonzero.
    pub fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio denominator must be nonzero");
        self.below(denominator as u64) < numerator as u64
    }
}

/// Integer types that can be sampled uniformly: mapped order-preservingly
/// onto a `u64` offset space.
pub trait UniformInt: Copy + PartialOrd {
    /// Largest representable value, in offset space.
    const MAX_OFFSET: u64;
    /// Order-preserving map into `0..=MAX_OFFSET`.
    fn to_offset(self) -> u64;
    /// Inverse of [`to_offset`](UniformInt::to_offset).
    fn from_offset(v: u64) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            const MAX_OFFSET: u64 = <$t>::MAX as u64;
            fn to_offset(self) -> u64 {
                self as u64
            }
            fn from_offset(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty, $ut:ty),*) => {$(
        impl UniformInt for $t {
            const MAX_OFFSET: u64 = <$ut>::MAX as u64;
            fn to_offset(self) -> u64 {
                (self as $ut ^ <$t>::MIN as $ut) as u64
            }
            fn from_offset(v: u64) -> $t {
                (v as $ut ^ <$t>::MIN as $ut) as $t
            }
        }
    )*};
}

impl_uniform_signed!(i8, u8, i16, u16, i32, u32, i64, u64, isize, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_answer_pins_the_algorithm() {
        // Pin the exact stream so a refactor can never silently change
        // every generated corpus: xoshiro256** seeded via SplitMix64(0).
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let a: usize = r.gen_range(3..17);
            assert!((3..17).contains(&a));
            let b: u8 = r.gen_range(0..=255);
            let _ = b; // full domain: any value is fine
            let c: i32 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&c));
            let d: u16 = r.gen_range(1024..9000);
            assert!((1024..9000).contains(&d));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_and_ratio_hit_expected_frequencies() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..=2800).contains(&hits), "gen_bool(0.25) hit {hits}/10000");
        let hits = (0..10_000).filter(|_| r.gen_ratio(1, 100)).count();
        assert!((50..=180).contains(&hits), "gen_ratio(1,100) hit {hits}/10000");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn full_u64_range_works() {
        let mut r = StdRng::seed_from_u64(13);
        // Must not hang or overflow on the maximal span.
        let v: u64 = r.gen_range(0..=u64::MAX);
        let _ = v;
        let w: u64 = r.gen_range(u64::MAX - 1..=u64::MAX);
        assert!(w >= u64::MAX - 1);
    }

    #[test]
    fn float_unit_interval() {
        let mut r = StdRng::seed_from_u64(17);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
