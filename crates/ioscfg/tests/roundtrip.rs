//! Property tests: emit → parse round-trips on randomly generated models.
//!
//! The strategy builds arbitrary (but well-formed) `RouterConfig` values
//! covering every construct the emitter can write, renders them to IOS text,
//! reparses, and requires the models to be identical. This pins the parser
//! and emitter against each other across the whole grammar.
//!
//! Gated behind the `proptest-tests` feature because proptest is an
//! external crate and the default build must work offline; the always-on
//! fixed-seed equivalents live in `tests/fixed_seed.rs`. See DESIGN.md.

#![cfg(feature = "proptest-tests")]

use ioscfg::{
    emit_config, parse_config, AccessList, AclAction, AclAddr, AclEntry, BgpProcess,
    DistributeList, EigrpNetwork, EigrpProcess, IfAddr, Interface, InterfaceName,
    InterfaceType, OspfArea, OspfNetwork, OspfProcess, PortMatch, Redistribution,
    RedistSource, RipProcess, RouteMap, RouteMapClause, RouterConfig, RmMatch, RmSet,
    StaticRoute, StaticTarget,
};
use netaddr::{Addr, Netmask, Wildcard};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Addr> {
    any::<u32>().prop_map(Addr::from_u32)
}

fn arb_mask() -> impl Strategy<Value = Netmask> {
    (0u8..=32).prop_map(|l| Netmask::from_len(l).unwrap())
}

fn arb_contiguous_wildcard() -> impl Strategy<Value = Wildcard> {
    (0u8..=32).prop_map(|l| Netmask::from_len(l).unwrap().to_wildcard())
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_-]{0,14}".prop_map(|s| s)
}

fn arb_ifname() -> impl Strategy<Value = InterfaceName> {
    (0usize..6, 0u8..4, 0u8..4).prop_map(|(ty, a, b)| {
        let ty = match ty {
            0 => InterfaceType::Serial,
            1 => InterfaceType::Ethernet,
            2 => InterfaceType::FastEthernet,
            3 => InterfaceType::Hssi,
            4 => InterfaceType::Pos,
            _ => InterfaceType::Atm,
        };
        InterfaceName::new(ty, format!("{a}/{b}"))
    })
}

fn arb_interface() -> impl Strategy<Value = Interface> {
    (
        arb_ifname(),
        prop::option::of((arb_addr(), arb_mask())),
        prop::option::of(1u32..200),
        prop::option::of(1u32..200),
        any::<bool>(),
        prop::option::of(1u32..1000),
        prop::option::of(arb_name()),
    )
        .prop_map(|(name, addr, acl_in, acl_out, p2p, dlci, desc)| {
            let mut i = Interface::new(name);
            i.address = addr.map(|(a, m)| IfAddr { addr: a, mask: m });
            i.access_group_in = acl_in;
            i.access_group_out = acl_out;
            i.point_to_point = p2p;
            i.frame_relay_dlci = dlci;
            i.description = desc;
            if i.frame_relay_dlci.is_some() {
                i.encapsulation = Some("frame-relay".to_string());
            }
            i
        })
}

fn arb_redist() -> impl Strategy<Value = Redistribution> {
    (
        prop_oneof![
            Just(RedistSource::Connected),
            Just(RedistSource::Static),
            Just(RedistSource::Rip),
            (1u32..65000).prop_map(RedistSource::Ospf),
            (1u32..65000).prop_map(RedistSource::Eigrp),
            (1u32..65000).prop_map(RedistSource::Bgp),
        ],
        prop::option::of(1u64..10_000_000),
        prop::option::of(1u8..3),
        any::<bool>(),
        prop::option::of(arb_name()),
        prop::option::of(1u32..65536),
    )
        .prop_map(|(source, metric, metric_type, subnets, route_map, tag)| Redistribution {
            source,
            metric,
            metric_type,
            subnets,
            route_map,
            tag,
        })
}

fn arb_ospf() -> impl Strategy<Value = OspfProcess> {
    (
        1u32..65536,
        prop::collection::vec(
            (arb_addr(), arb_contiguous_wildcard(), 0u32..100),
            0..4,
        ),
        prop::collection::vec(arb_redist(), 0..3),
        prop::collection::vec((1u32..200, prop::option::of(arb_ifname())), 0..2),
        any::<bool>(),
    )
        .prop_map(|(id, nets, redist, dls, definfo)| {
            let mut p = OspfProcess::new(id);
            p.networks = nets
                .into_iter()
                .map(|(addr, wildcard, area)| OspfNetwork { addr, wildcard, area: OspfArea(area) })
                .collect();
            p.redistribute = redist;
            p.distribute_in = dls
                .into_iter()
                .map(|(acl, interface)| DistributeList { acl, interface })
                .collect();
            p.default_information = definfo;
            p
        })
}

fn arb_eigrp() -> impl Strategy<Value = EigrpProcess> {
    (
        1u32..65536,
        any::<bool>(),
        prop::collection::vec((arb_addr(), prop::option::of(arb_contiguous_wildcard())), 0..4),
        prop::collection::vec(arb_redist(), 0..3),
        any::<bool>(),
    )
        .prop_map(|(asn, is_igrp, nets, redist, nas)| {
            let mut p = EigrpProcess::new(asn);
            p.is_igrp = is_igrp;
            p.networks = nets
                .into_iter()
                .map(|(addr, wildcard)| EigrpNetwork { addr, wildcard })
                .collect();
            p.redistribute = redist;
            p.no_auto_summary = nas;
            p
        })
}

fn arb_rip() -> impl Strategy<Value = RipProcess> {
    (
        prop::option::of(1u8..3),
        prop::collection::vec(arb_addr(), 0..3),
        prop::collection::vec(arb_redist(), 0..2),
    )
        .prop_map(|(version, networks, redistribute)| {
            let mut p = RipProcess::new();
            p.version = version;
            p.networks = networks;
            p.redistribute = redistribute;
            p
        })
}

fn arb_bgp() -> impl Strategy<Value = BgpProcess> {
    (
        1u32..65536,
        prop::collection::vec(
            (
                arb_addr(),
                1u32..65536,
                any::<bool>(),
                prop::option::of(arb_name()),
                prop::option::of(1u32..200),
            ),
            0..4,
        ),
        prop::collection::vec(arb_redist(), 0..2),
        any::<bool>(),
        prop::collection::vec((arb_addr(), prop::option::of(arb_mask())), 0..3),
    )
        .prop_map(|(asn, neighbors, redistribute, nosync, networks)| {
            let mut p = BgpProcess::new(asn);
            for (addr, remote_as, nhs, rm_out, dl_in) in neighbors {
                let n = p.neighbor_mut(addr);
                n.remote_as = Some(remote_as);
                n.next_hop_self = nhs;
                n.route_map_out = rm_out;
                n.distribute_in = dl_in;
            }
            p.redistribute = redistribute;
            p.no_synchronization = nosync;
            p.networks = networks;
            p
        })
}

fn arb_acl() -> impl Strategy<Value = AccessList> {
    (1u32..100, prop::collection::vec(arb_std_entry(), 1..5)).prop_map(|(id, entries)| {
        AccessList { id, entries }
    })
}

fn arb_std_entry() -> impl Strategy<Value = AclEntry> {
    (
        any::<bool>(),
        prop_oneof![
            Just(AclAddr::Any),
            arb_addr().prop_map(AclAddr::Host),
            (arb_addr(), arb_contiguous_wildcard())
                .prop_map(|(a, w)| AclAddr::Wild(a, w)),
        ],
    )
        .prop_map(|(permit, addr)| AclEntry::Standard {
            action: if permit { AclAction::Permit } else { AclAction::Deny },
            addr,
        })
}

fn arb_ext_acl() -> impl Strategy<Value = AccessList> {
    (100u32..200, prop::collection::vec(arb_ext_entry(), 1..4)).prop_map(|(id, entries)| {
        AccessList { id, entries }
    })
}

fn arb_ext_entry() -> impl Strategy<Value = AclEntry> {
    (
        any::<bool>(),
        prop_oneof![Just("ip"), Just("tcp"), Just("udp"), Just("icmp"), Just("pim")],
        arb_acl_addr(),
        arb_acl_addr(),
        prop::option::of(arb_port_match()),
        any::<bool>(),
    )
        .prop_map(|(permit, protocol, src, dst, dst_port, established)| {
            let ports_ok = protocol == "tcp" || protocol == "udp";
            AclEntry::Extended {
                action: if permit { AclAction::Permit } else { AclAction::Deny },
                protocol: protocol.to_string(),
                src,
                src_port: None,
                dst,
                dst_port: if ports_ok { dst_port } else { None },
                established: established && protocol == "tcp",
            }
        })
}

fn arb_acl_addr() -> impl Strategy<Value = AclAddr> {
    prop_oneof![
        Just(AclAddr::Any),
        arb_addr().prop_map(AclAddr::Host),
        (arb_addr(), arb_contiguous_wildcard()).prop_map(|(a, w)| AclAddr::Wild(a, w)),
    ]
}

fn arb_port_match() -> impl Strategy<Value = PortMatch> {
    prop_oneof![
        (1u16..65535).prop_map(PortMatch::Eq),
        (1u16..65535).prop_map(PortMatch::Lt),
        (1u16..65535).prop_map(PortMatch::Gt),
        (1u16..1000, 1000u16..65535).prop_map(|(a, b)| PortMatch::Range(a, b)),
    ]
}

fn arb_route_map() -> impl Strategy<Value = RouteMap> {
    (
        arb_name(),
        prop::collection::vec(
            (
                any::<bool>(),
                prop::collection::vec(1u32..200, 0..3),
                prop::collection::vec(1u32..65536, 0..2),
                prop::option::of(1u32..65536),
            ),
            1..4,
        ),
    )
        .prop_map(|(name, clause_specs)| {
            let mut map = RouteMap::new(name);
            for (i, (permit, acls, tags, set_tag)) in clause_specs.into_iter().enumerate() {
                let mut clause = RouteMapClause {
                    seq: (i as u32 + 1) * 10,
                    action: if permit { AclAction::Permit } else { AclAction::Deny },
                    matches: Vec::new(),
                    sets: Vec::new(),
                };
                if !acls.is_empty() {
                    clause.matches.push(RmMatch::IpAddress(acls));
                }
                if !tags.is_empty() {
                    clause.matches.push(RmMatch::Tag(tags));
                }
                if let Some(t) = set_tag {
                    clause.sets.push(RmSet::Tag(t));
                }
                map.clauses.push(clause);
            }
            map
        })
}

fn arb_static() -> impl Strategy<Value = StaticRoute> {
    (
        arb_addr(),
        arb_mask(),
        prop_oneof![
            arb_addr().prop_map(StaticTarget::NextHop),
            arb_ifname().prop_map(StaticTarget::Interface),
        ],
        prop::option::of(1u8..255),
        prop::option::of(1u32..65536),
    )
        .prop_map(|(dest, mask, target, distance, tag)| StaticRoute {
            dest: mask.apply(dest), // emitter writes canonical destinations
            mask,
            target,
            distance,
            tag,
        })
}

prop_compose! {
    fn arb_config()(
        hostname in prop::option::of(arb_name()),
        interfaces in prop::collection::vec(arb_interface(), 0..5),
        ospf in prop::collection::vec(arb_ospf(), 0..3),
        eigrp in prop::collection::vec(arb_eigrp(), 0..2),
        rip in prop::option::of(arb_rip()),
        bgp in prop::option::of(arb_bgp()),
        static_routes in prop::collection::vec(arb_static(), 0..4),
        std_acls in prop::collection::vec(arb_acl(), 0..3),
        ext_acls in prop::collection::vec(arb_ext_acl(), 0..2),
        route_maps in prop::collection::vec(arb_route_map(), 0..3),
    ) -> RouterConfig {
        let mut cfg = RouterConfig {
            hostname,
            interfaces,
            ospf,
            eigrp,
            rip,
            bgp,
            static_routes,
            ..RouterConfig::default()
        };
        // Deduplicate process ids/names so the model is well-formed.
        cfg.ospf.sort_by_key(|p| p.id);
        cfg.ospf.dedup_by_key(|p| p.id);
        cfg.eigrp.sort_by_key(|p| (p.asn, p.is_igrp));
        cfg.eigrp.dedup_by_key(|p| (p.asn, p.is_igrp));
        for acl in std_acls.into_iter().chain(ext_acls) {
            cfg.access_lists.insert(acl.id, acl);
        }
        for map in route_maps {
            cfg.route_maps.insert(map.name.clone(), map);
        }
        cfg
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn emit_then_parse_is_identity(cfg in arb_config()) {
        let text = emit_config(&cfg);
        let reparsed = parse_config(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- emitted ---\n{text}"));
        prop_assert!(
            reparsed.unparsed.is_empty(),
            "emitter produced lines the parser does not understand: {:?}",
            reparsed.unparsed
        );
        prop_assert_eq!(reparsed, cfg);
    }

    #[test]
    fn emitted_text_is_stable(cfg in arb_config()) {
        // Emitting the reparsed model yields identical text (canonical form).
        let text = emit_config(&cfg);
        let reparsed = parse_config(&text).unwrap();
        prop_assert_eq!(emit_config(&reparsed), text);
    }
}
