//! Fixed-seed sampled versions of the proptest suites in
//! `tests/roundtrip.rs` and `tests/fuzz_tolerance.rs`: emit → parse
//! round-trips on randomly generated well-formed models, plus
//! never-panics fuzzing of the lexer/parser/anonymizer — all driven by a
//! deterministic `rd_rng` stream so they run in every offline build.

use ioscfg::{
    emit_config, parse_config, AccessList, AclAction, AclAddr, AclEntry, BgpProcess,
    DistributeList, EigrpNetwork, EigrpProcess, IfAddr, Interface, InterfaceName,
    InterfaceType, OspfArea, OspfNetwork, OspfProcess, PortMatch, Redistribution,
    RedistSource, RipProcess, RouteMap, RouteMapClause, RouterConfig, RmMatch, RmSet,
    StaticRoute, StaticTarget,
};
use netaddr::{Addr, Netmask, Wildcard};
use rd_rng::StdRng;

fn addr(rng: &mut StdRng) -> Addr {
    Addr::from_u32(rng.next_u32())
}

fn mask(rng: &mut StdRng) -> Netmask {
    Netmask::from_len(rng.gen_range(0..=32u8)).unwrap()
}

fn contiguous_wildcard(rng: &mut StdRng) -> Wildcard {
    Netmask::from_len(rng.gen_range(0..=32u8)).unwrap().to_wildcard()
}

fn name(rng: &mut StdRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";
    let mut out = String::from(FIRST[rng.gen_range(0..FIRST.len())] as char);
    for _ in 0..rng.gen_range(0..=14usize) {
        out.push(REST[rng.gen_range(0..REST.len())] as char);
    }
    out
}

fn opt<T>(rng: &mut StdRng, f: impl FnOnce(&mut StdRng) -> T) -> Option<T> {
    rng.gen_bool(0.5).then(|| f(rng))
}

fn vec_of<T>(rng: &mut StdRng, max: usize, mut f: impl FnMut(&mut StdRng) -> T) -> Vec<T> {
    let n: usize = rng.gen_range(0..=max);
    (0..n).map(|_| f(rng)).collect()
}

fn ifname(rng: &mut StdRng) -> InterfaceName {
    let ty = match rng.gen_range(0..6usize) {
        0 => InterfaceType::Serial,
        1 => InterfaceType::Ethernet,
        2 => InterfaceType::FastEthernet,
        3 => InterfaceType::Hssi,
        4 => InterfaceType::Pos,
        _ => InterfaceType::Atm,
    };
    let (a, b): (u8, u8) = (rng.gen_range(0..4), rng.gen_range(0..4));
    InterfaceName::new(ty, format!("{a}/{b}"))
}

fn interface(rng: &mut StdRng) -> Interface {
    let mut i = Interface::new(ifname(rng));
    i.address = opt(rng, |r| IfAddr { addr: addr(r), mask: mask(r) });
    i.access_group_in = opt(rng, |r| r.gen_range(1..200u32));
    i.access_group_out = opt(rng, |r| r.gen_range(1..200u32));
    i.point_to_point = rng.gen_bool(0.5);
    i.frame_relay_dlci = opt(rng, |r| r.gen_range(1..1000u32));
    i.description = opt(rng, name);
    if i.frame_relay_dlci.is_some() {
        i.encapsulation = Some("frame-relay".to_string());
    }
    i
}

fn redist(rng: &mut StdRng) -> Redistribution {
    let source = match rng.gen_range(0..6usize) {
        0 => RedistSource::Connected,
        1 => RedistSource::Static,
        2 => RedistSource::Rip,
        3 => RedistSource::Ospf(rng.gen_range(1..65000u32)),
        4 => RedistSource::Eigrp(rng.gen_range(1..65000u32)),
        _ => RedistSource::Bgp(rng.gen_range(1..65000u32)),
    };
    Redistribution {
        source,
        metric: opt(rng, |r| r.gen_range(1..10_000_000u64)),
        metric_type: opt(rng, |r| r.gen_range(1..3u8)),
        subnets: rng.gen_bool(0.5),
        route_map: opt(rng, name),
        tag: opt(rng, |r| r.gen_range(1..65536u32)),
    }
}

fn ospf(rng: &mut StdRng) -> OspfProcess {
    let mut p = OspfProcess::new(rng.gen_range(1..65536u32));
    p.networks = vec_of(rng, 3, |r| OspfNetwork {
        addr: addr(r),
        wildcard: contiguous_wildcard(r),
        area: OspfArea(r.gen_range(0..100u32)),
    });
    p.redistribute = vec_of(rng, 2, redist);
    p.distribute_in = vec_of(rng, 1, |r| DistributeList {
        acl: r.gen_range(1..200u32),
        interface: opt(r, ifname),
    });
    p.default_information = rng.gen_bool(0.5);
    p
}

fn eigrp(rng: &mut StdRng) -> EigrpProcess {
    let mut p = EigrpProcess::new(rng.gen_range(1..65536u32));
    p.is_igrp = rng.gen_bool(0.5);
    p.networks = vec_of(rng, 3, |r| EigrpNetwork {
        addr: addr(r),
        wildcard: opt(r, contiguous_wildcard),
    });
    p.redistribute = vec_of(rng, 2, redist);
    p.no_auto_summary = rng.gen_bool(0.5);
    p
}

fn rip(rng: &mut StdRng) -> RipProcess {
    let mut p = RipProcess::new();
    p.version = opt(rng, |r| r.gen_range(1..3u8));
    p.networks = vec_of(rng, 2, addr);
    p.redistribute = vec_of(rng, 1, redist);
    p
}

fn bgp(rng: &mut StdRng) -> BgpProcess {
    let mut p = BgpProcess::new(rng.gen_range(1..65536u32));
    for _ in 0..rng.gen_range(0..=3usize) {
        let peer = addr(rng);
        let remote_as = rng.gen_range(1..65536u32);
        let nhs = rng.gen_bool(0.5);
        let rm_out = opt(rng, name);
        let dl_in = opt(rng, |r| r.gen_range(1..200u32));
        let n = p.neighbor_mut(peer);
        n.remote_as = Some(remote_as);
        n.next_hop_self = nhs;
        n.route_map_out = rm_out;
        n.distribute_in = dl_in;
    }
    p.redistribute = vec_of(rng, 1, redist);
    p.no_synchronization = rng.gen_bool(0.5);
    p.networks = vec_of(rng, 2, |r| (addr(r), opt(r, mask)));
    p
}

fn acl_addr(rng: &mut StdRng) -> AclAddr {
    match rng.gen_range(0..3usize) {
        0 => AclAddr::Any,
        1 => AclAddr::Host(addr(rng)),
        _ => AclAddr::Wild(addr(rng), contiguous_wildcard(rng)),
    }
}

fn std_acl(rng: &mut StdRng) -> AccessList {
    let id = rng.gen_range(1..100u32);
    let n: usize = rng.gen_range(1..5);
    let entries = (0..n)
        .map(|_| AclEntry::Standard {
            action: if rng.gen_bool(0.5) { AclAction::Permit } else { AclAction::Deny },
            addr: acl_addr(rng),
        })
        .collect();
    AccessList { id, entries }
}

fn port_match(rng: &mut StdRng) -> PortMatch {
    match rng.gen_range(0..4usize) {
        0 => PortMatch::Eq(rng.gen_range(1..65535u16)),
        1 => PortMatch::Lt(rng.gen_range(1..65535u16)),
        2 => PortMatch::Gt(rng.gen_range(1..65535u16)),
        _ => PortMatch::Range(rng.gen_range(1..1000u16), rng.gen_range(1000..65535u16)),
    }
}

fn ext_acl(rng: &mut StdRng) -> AccessList {
    let id = rng.gen_range(100..200u32);
    let n: usize = rng.gen_range(1..4);
    let entries = (0..n)
        .map(|_| {
            let protocol = ["ip", "tcp", "udp", "icmp", "pim"][rng.gen_range(0..5usize)];
            let ports_ok = protocol == "tcp" || protocol == "udp";
            let dst_port = opt(rng, port_match);
            AclEntry::Extended {
                action: if rng.gen_bool(0.5) { AclAction::Permit } else { AclAction::Deny },
                protocol: protocol.to_string(),
                src: acl_addr(rng),
                src_port: None,
                dst: acl_addr(rng),
                dst_port: if ports_ok { dst_port } else { None },
                established: rng.gen_bool(0.5) && protocol == "tcp",
            }
        })
        .collect();
    AccessList { id, entries }
}

fn route_map(rng: &mut StdRng) -> RouteMap {
    let mut map = RouteMap::new(name(rng));
    let clauses: usize = rng.gen_range(1..4);
    for i in 0..clauses {
        let mut clause = RouteMapClause {
            seq: (i as u32 + 1) * 10,
            action: if rng.gen_bool(0.5) { AclAction::Permit } else { AclAction::Deny },
            matches: Vec::new(),
            sets: Vec::new(),
        };
        let acls = vec_of(rng, 2, |r| r.gen_range(1..200u32));
        let tags = vec_of(rng, 1, |r| r.gen_range(1..65536u32));
        if !acls.is_empty() {
            clause.matches.push(RmMatch::IpAddress(acls));
        }
        if !tags.is_empty() {
            clause.matches.push(RmMatch::Tag(tags));
        }
        if let Some(t) = opt(rng, |r| r.gen_range(1..65536u32)) {
            clause.sets.push(RmSet::Tag(t));
        }
        map.clauses.push(clause);
    }
    map
}

fn static_route(rng: &mut StdRng) -> StaticRoute {
    let m = mask(rng);
    StaticRoute {
        dest: m.apply(addr(rng)), // emitter writes canonical destinations
        mask: m,
        target: if rng.gen_bool(0.5) {
            StaticTarget::NextHop(addr(rng))
        } else {
            StaticTarget::Interface(ifname(rng))
        },
        distance: opt(rng, |r| r.gen_range(1..255u8)),
        tag: opt(rng, |r| r.gen_range(1..65536u32)),
    }
}

/// A well-formed random `RouterConfig`, mirroring the proptest
/// `arb_config` strategy in `tests/roundtrip.rs`.
fn random_config(rng: &mut StdRng) -> RouterConfig {
    let mut cfg = RouterConfig {
        hostname: opt(rng, name),
        interfaces: vec_of(rng, 4, interface),
        ospf: vec_of(rng, 2, ospf),
        eigrp: vec_of(rng, 1, eigrp),
        rip: opt(rng, rip),
        bgp: opt(rng, bgp),
        static_routes: vec_of(rng, 3, static_route),
        ..RouterConfig::default()
    };
    // Deduplicate process ids/names so the model is well-formed.
    cfg.ospf.sort_by_key(|p| p.id);
    cfg.ospf.dedup_by_key(|p| p.id);
    cfg.eigrp.sort_by_key(|p| (p.asn, p.is_igrp));
    cfg.eigrp.dedup_by_key(|p| (p.asn, p.is_igrp));
    for acl in vec_of(rng, 2, std_acl).into_iter().chain(vec_of(rng, 1, ext_acl)) {
        cfg.access_lists.insert(acl.id, acl);
    }
    for map in vec_of(rng, 2, route_map) {
        cfg.route_maps.insert(map.name.clone(), map);
    }
    cfg
}

#[test]
fn emit_then_parse_is_identity() {
    let mut rng = StdRng::seed_from_u64(0xC1);
    for case in 0..300 {
        let cfg = random_config(&mut rng);
        let text = emit_config(&cfg);
        let reparsed = parse_config(&text)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n--- emitted ---\n{text}"));
        assert!(
            reparsed.unparsed.is_empty(),
            "case {case}: emitter produced lines the parser does not understand: {:?}",
            reparsed.unparsed
        );
        assert_eq!(reparsed, cfg, "case {case}");
    }
}

#[test]
fn emitted_text_is_stable() {
    let mut rng = StdRng::seed_from_u64(0xC2);
    for case in 0..300 {
        // Emitting the reparsed model yields identical text (canonical form).
        let cfg = random_config(&mut rng);
        let text = emit_config(&cfg);
        let reparsed = parse_config(&text).unwrap();
        assert_eq!(emit_config(&reparsed), text, "case {case}");
    }
}

/// Random config-looking text, mirroring `arb_configish` in
/// `tests/fuzz_tolerance.rs`: biased toward real keywords so the fuzz
/// reaches deep parser paths, not just the "unknown command" bailout.
fn random_configish(rng: &mut StdRng) -> String {
    const WORDS: &[&str] = &[
        "interface", "router", "ospf", "bgp", "eigrp", "rip", "network", "neighbor",
        "redistribute", "access-list", "route-map", "ip", "address", "permit", "deny",
        "match", "set", "area", "remote-as", "!",
    ];
    let word = |rng: &mut StdRng| match rng.gen_range(0..23usize) {
        n if n < 20 => WORDS[n].to_string(),
        20 => rng.gen_range(0..100_000u32).to_string(),
        21 => format!(
            "{}.{}.{}.{}",
            rng.gen_range(0..=255u32),
            rng.gen_range(0..=255u32),
            rng.gen_range(0..=255u32),
            rng.gen_range(0..=255u32)
        ),
        _ => {
            const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ!/.-";
            let n: usize = rng.gen_range(1..=8);
            (0..n).map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char).collect()
        }
    };
    let lines: usize = rng.gen_range(0..25);
    (0..lines)
        .map(|_| {
            let indent = " ".repeat(rng.gen_range(0..3usize));
            let words: usize = rng.gen_range(0..7);
            let body: Vec<String> = (0..words).map(|_| word(rng)).collect();
            format!("{indent}{}", body.join(" "))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn lexer_never_panics_and_counts_command_lines() {
    let mut rng = StdRng::seed_from_u64(0xC3);
    for _ in 0..500 {
        let text = random_configish(&mut rng);
        let raw = ioscfg::lex_config(&text);
        let mut expected = 0usize;
        for line in text.lines() {
            let t = line.trim();
            if t.eq_ignore_ascii_case("end") {
                break;
            }
            if !t.is_empty() && !t.starts_with('!') {
                expected += 1;
            }
        }
        assert_eq!(raw.command_lines, expected, "text:\n{text}");
    }
}

#[test]
fn parser_never_panics_and_errors_carry_locations() {
    let mut rng = StdRng::seed_from_u64(0xC4);
    for _ in 0..500 {
        let text = random_configish(&mut rng);
        match ioscfg::parse_config(&text) {
            Ok(cfg) => {
                let emitted = ioscfg::emit_config(&cfg);
                assert!(ioscfg::parse_config(&emitted).is_ok(), "text:\n{text}");
            }
            Err(e) => {
                assert!(e.line >= 1);
                assert!(e.line <= text.lines().count().max(1), "text:\n{text}");
            }
        }
    }
}

#[test]
fn parser_survives_arbitrary_text() {
    let mut rng = StdRng::seed_from_u64(0xC5);
    for _ in 0..300 {
        let n: usize = rng.gen_range(0..300);
        let text: String = (0..n)
            .map(|_| {
                // Printable-ish unicode: ASCII plus some multibyte points.
                match rng.gen_range(0..4usize) {
                    0..=2 => char::from(rng.gen_range(0x20..0x7fu8)),
                    _ => char::from_u32(rng.gen_range(0xa0..0x2000u32)).unwrap_or('ö'),
                }
            })
            .collect();
        let _ = ioscfg::parse_config(&text);
    }
}

#[test]
fn anonymizer_never_panics_and_preserves_line_structure() {
    let mut rng = StdRng::seed_from_u64(0xC6);
    for _ in 0..500 {
        let text = random_configish(&mut rng);
        let key: u64 = rng.gen_range(0..=u64::MAX);
        let anon = anonymizer::Anonymizer::new(&key.to_be_bytes());
        let out = anon.anonymize_config(&text);
        // Line structure is preserved (comments collapse to bare "!").
        assert_eq!(out.lines().count(), text.lines().count(), "text:\n{text}");
    }
}
