//! Robustness fuzzing: the lexer and parser must never panic, whatever
//! bytes arrive. Real corpora contain mangled lines, and a tool meant to
//! ingest 8,035 files cannot die on file 7,214.
//!
//! Gated behind the `proptest-tests` feature because proptest is an
//! external crate and the default build must work offline; the always-on
//! fixed-seed equivalents live in `tests/fixed_seed.rs`. See DESIGN.md.

#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;

/// Arbitrary printable-ish text, biased toward config-looking content so
/// the fuzz reaches deep parser paths, not just the "unknown command"
/// bailout.
fn arb_configish() -> impl Strategy<Value = String> {
    let word = prop_oneof![
        Just("interface".to_string()),
        Just("router".to_string()),
        Just("ospf".to_string()),
        Just("bgp".to_string()),
        Just("eigrp".to_string()),
        Just("rip".to_string()),
        Just("network".to_string()),
        Just("neighbor".to_string()),
        Just("redistribute".to_string()),
        Just("access-list".to_string()),
        Just("route-map".to_string()),
        Just("ip".to_string()),
        Just("address".to_string()),
        Just("permit".to_string()),
        Just("deny".to_string()),
        Just("match".to_string()),
        Just("set".to_string()),
        Just("area".to_string()),
        Just("remote-as".to_string()),
        Just("!".to_string()),
        "[0-9]{1,5}",
        "[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}",
        "[a-zA-Z!/.-]{1,8}",
    ];
    let line = (prop::collection::vec(word, 0..7), 0usize..3).prop_map(|(words, indent)| {
        format!("{}{}", " ".repeat(indent), words.join(" "))
    });
    prop::collection::vec(line, 0..25).prop_map(|lines| lines.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lexing never panics and never loses command lines.
    #[test]
    fn lexer_never_panics(text in arb_configish()) {
        let raw = ioscfg::lex_config(&text);
        // Command-line count matches a direct count of candidate lines up
        // to the first `end`.
        let mut expected = 0usize;
        for line in text.lines() {
            let t = line.trim();
            if t.eq_ignore_ascii_case("end") {
                break;
            }
            if !t.is_empty() && !t.starts_with('!') {
                expected += 1;
            }
        }
        prop_assert_eq!(raw.command_lines, expected);
    }

    /// Parsing never panics: it either produces a model or a located
    /// error, for any input.
    #[test]
    fn parser_never_panics(text in arb_configish()) {
        match ioscfg::parse_config(&text) {
            Ok(cfg) => {
                // Emitting whatever was understood never panics either,
                // and the emitted text reparses.
                let emitted = ioscfg::emit_config(&cfg);
                prop_assert!(ioscfg::parse_config(&emitted).is_ok());
            }
            Err(e) => {
                // Errors carry a plausible location.
                prop_assert!(e.line >= 1);
                prop_assert!(e.line <= text.lines().count().max(1));
            }
        }
    }

    /// Fully arbitrary (non-config-shaped) unicode text never panics.
    #[test]
    fn parser_survives_arbitrary_text(text in "\\PC{0,300}") {
        let _ = ioscfg::parse_config(&text);
    }

    /// The anonymizer never panics and always produces reparseable
    /// structure when the input parses.
    #[test]
    fn anonymizer_never_panics(text in arb_configish(), key in any::<u64>()) {
        let anon = anonymizer::Anonymizer::new(&key.to_be_bytes());
        let out = anon.anonymize_config(&text);
        // Line structure is preserved (comments collapse to bare "!").
        prop_assert_eq!(out.lines().count(), text.lines().count());
    }
}
