//! Lossless stanza-tree lexing of IOS configuration text.
//!
//! IOS `show running-config` output is line-oriented: top-level commands
//! start in column zero, mode sub-commands are indented by one (or more)
//! spaces, and `!` lines separate sections (and introduce comments). The
//! lexer turns that into a tree of [`Stanza`]s, preserving original line
//! numbers so later passes can report precise locations.

use std::fmt;

/// One configuration command with its sub-commands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stanza {
    /// 1-based line number in the source text.
    pub line: usize,
    /// The command text, trimmed of indentation and trailing whitespace.
    pub text: String,
    /// Indented sub-commands.
    pub children: Vec<Stanza>,
}

impl Stanza {
    /// The whitespace-separated words of the command.
    pub fn words(&self) -> Vec<&str> {
        self.text.split_whitespace().collect()
    }

    /// The first word (the command verb), if any.
    pub fn verb(&self) -> Option<&str> {
        self.text.split_whitespace().next()
    }

    /// True if the command starts with the given words (case-insensitive).
    pub fn starts_with(&self, expected: &[&str]) -> bool {
        let words = self.words();
        words.len() >= expected.len()
            && words.iter().zip(expected).all(|(w, e)| w.eq_ignore_ascii_case(e))
    }
}

impl fmt::Display for Stanza {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.text)?;
        for child in &self.children {
            write!(f, " {child}")?;
        }
        Ok(())
    }
}

/// The stanza tree of one configuration file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RawConfig {
    /// Top-level stanzas in file order.
    pub stanzas: Vec<Stanza>,
    /// Total number of non-blank, non-comment command lines (the unit
    /// counted by the paper's Figure 4: "lines of configuration commands").
    pub command_lines: usize,
}

impl RawConfig {
    /// Finds all top-level stanzas whose command starts with `words`.
    pub fn find_all<'a>(&'a self, words: &'a [&'a str]) -> impl Iterator<Item = &'a Stanza> {
        self.stanzas.iter().filter(move |s| s.starts_with(words))
    }

    /// Finds the first top-level stanza starting with `words`.
    pub fn find(&self, words: &[&str]) -> Option<&Stanza> {
        self.stanzas.iter().find(|s| s.starts_with(words))
    }
}

/// Lexes configuration text into a stanza tree.
///
/// Indentation defines nesting: a line indented deeper than the previous
/// command becomes its child. `!` lines and blank lines are structural
/// separators and are dropped (the paper's anonymizer strips comments the
/// same way). `end` terminates the file.
pub fn lex_config(text: &str) -> RawConfig {
    let mut root: Vec<Stanza> = Vec::new();
    // Stack of (indent, child-index) pairs: the index path from the root to
    // the most recent stanza at each open indentation level.
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let mut command_lines = 0usize;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed_end = raw_line.trim_end();
        let content = trimmed_end.trim_start();
        if content.is_empty() || content.starts_with('!') {
            continue;
        }
        if content.eq_ignore_ascii_case("end") {
            break;
        }
        command_lines += 1;
        let indent = trimmed_end.len() - content.len();
        let stanza = Stanza { line: line_no, text: content.to_string(), children: Vec::new() };

        // Pop anything at the same or deeper indentation: this stanza is a
        // sibling (or uncle) of those, not a child.
        while stack.last().is_some_and(|(i, _)| *i >= indent) {
            stack.pop();
        }

        // Walk the index path to the insertion point. Depth is tiny in IOS
        // configs (≤3), so the walk is effectively O(1) per line.
        let mut slot: &mut Vec<Stanza> = &mut root;
        for &(_, child_idx) in &stack {
            slot = &mut slot[child_idx].children;
        }
        slot.push(stanza);
        stack.push((indent, slot.len() - 1));
    }

    RawConfig { stanzas: root, command_lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
hostname r1
!
interface Ethernet0
 ip address 10.0.0.1 255.255.255.0
 ip access-group 143 in
!
router ospf 64
 redistribute connected metric-type 1 subnets
 network 10.0.0.0 0.0.0.255 area 0
!
ip route 10.235.240.0 255.255.255.0 10.234.12.7
end
ignored after end
";

    #[test]
    fn builds_nested_stanzas() {
        let cfg = lex_config(SAMPLE);
        assert_eq!(cfg.stanzas.len(), 4);
        assert_eq!(cfg.stanzas[0].text, "hostname r1");
        let iface = &cfg.stanzas[1];
        assert_eq!(iface.verb(), Some("interface"));
        assert_eq!(iface.children.len(), 2);
        assert_eq!(iface.children[0].text, "ip address 10.0.0.1 255.255.255.0");
        let ospf = &cfg.stanzas[2];
        assert!(ospf.starts_with(&["router", "ospf"]));
        assert_eq!(ospf.children.len(), 2);
    }

    #[test]
    fn counts_command_lines_excluding_separators() {
        let cfg = lex_config(SAMPLE);
        // hostname, interface + 2 children, router + 2 children, ip route.
        assert_eq!(cfg.command_lines, 8);
    }

    #[test]
    fn line_numbers_are_source_positions() {
        let cfg = lex_config(SAMPLE);
        assert_eq!(cfg.stanzas[0].line, 1);
        assert_eq!(cfg.stanzas[1].line, 3);
        assert_eq!(cfg.stanzas[1].children[1].line, 5);
        assert_eq!(cfg.stanzas[3].line, 11);
    }

    #[test]
    fn end_terminates_lexing() {
        let cfg = lex_config(SAMPLE);
        assert!(cfg
            .stanzas
            .iter()
            .all(|s| !s.text.contains("ignored")));
    }

    #[test]
    fn deeper_indentation_nests_further() {
        let text = "a\n b\n  c\n b2\nd\n";
        let cfg = lex_config(text);
        assert_eq!(cfg.stanzas.len(), 2);
        let a = &cfg.stanzas[0];
        assert_eq!(a.children.len(), 2);
        assert_eq!(a.children[0].children.len(), 1);
        assert_eq!(a.children[0].children[0].text, "c");
        assert_eq!(a.children[1].text, "b2");
        assert_eq!(cfg.stanzas[1].text, "d");
    }

    #[test]
    fn find_helpers() {
        let cfg = lex_config(SAMPLE);
        assert!(cfg.find(&["router", "ospf"]).is_some());
        assert!(cfg.find(&["router", "bgp"]).is_none());
        assert_eq!(cfg.find_all(&["interface"]).count(), 1);
    }

    #[test]
    fn empty_and_comment_only_input() {
        assert_eq!(lex_config("").stanzas.len(), 0);
        assert_eq!(lex_config("!\n! comment\n\n").command_lines, 0);
    }
}
