//! Parse errors with source locations.

use std::fmt;

/// What went wrong while parsing a known command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// An IP address field failed to parse.
    BadAddress(String),
    /// A netmask/wildcard field failed to parse.
    BadMask(String),
    /// A numeric field failed to parse.
    BadNumber(String),
    /// An interface name failed to parse.
    BadInterfaceName(String),
    /// A known command was missing a required argument.
    MissingArgument(&'static str),
    /// A known command had an argument outside its grammar.
    UnexpectedArgument(String),
    /// Two conflicting definitions (e.g. two `router bgp` with different ASNs).
    Conflict(String),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::BadAddress(t) => write!(f, "bad IP address {t:?}"),
            ParseErrorKind::BadMask(t) => write!(f, "bad mask {t:?}"),
            ParseErrorKind::BadNumber(t) => write!(f, "bad number {t:?}"),
            ParseErrorKind::BadInterfaceName(t) => write!(f, "bad interface name {t:?}"),
            ParseErrorKind::MissingArgument(what) => write!(f, "missing {what}"),
            ParseErrorKind::UnexpectedArgument(t) => write!(f, "unexpected argument {t:?}"),
            ParseErrorKind::Conflict(t) => write!(f, "conflicting configuration: {t}"),
        }
    }
}

/// A parse error, located at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// The offending command text.
    pub command: String,
    /// The failure.
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {} (in {:?})", self.line, self.kind, self.command)
    }
}

impl std::error::Error for ParseError {}
