//! Tolerant parsing from the raw stanza tree to the typed model.
//!
//! Unknown commands are collected into [`RouterConfig::unparsed`]; malformed
//! arguments to *known* commands are hard [`ParseError`]s. This split
//! matches how a real corpus must be handled: the grammar will never cover
//! every IOS feature, but silently mis-reading a command the analyses rely
//! on would corrupt the extracted design.

use netaddr::{Addr, Netmask, Wildcard};

use crate::error::{ParseError, ParseErrorKind};
use crate::ifname::InterfaceName;
use crate::model::{
    AccessList, AclAction, AclAddr, AclEntry, BgpProcess, DistributeList, EigrpNetwork,
    EigrpProcess, IfAddr, Interface, OspfArea, OspfNetwork, OspfProcess, PortMatch,
    Redistribution, RedistSource, RouteMap, RouteMapClause, RouterConfig,
    RmMatch, RmSet, StaticRoute, StaticTarget,
};
use crate::raw::{lex_config, RawConfig, Stanza};

/// Parses IOS configuration text into the typed model.
pub fn parse_config(text: &str) -> Result<RouterConfig, ParseError> {
    parse_raw(&lex_config(text))
}

/// Parses an already-lexed stanza tree.
pub fn parse_raw(raw: &RawConfig) -> Result<RouterConfig, ParseError> {
    let mut cfg = RouterConfig::default();
    for stanza in &raw.stanzas {
        let words = stanza.words();
        match words.as_slice() {
            ["hostname", name, ..] => cfg.hostname = Some(name.to_string()),
            ["interface", ..] => parse_interface(stanza, &mut cfg)?,
            ["router", "ospf", ..] => parse_ospf(stanza, &mut cfg)?,
            ["router", "eigrp", ..] => parse_eigrp(stanza, &mut cfg, false)?,
            ["router", "igrp", ..] => parse_eigrp(stanza, &mut cfg, true)?,
            ["router", "rip", ..] => parse_rip(stanza, &mut cfg)?,
            ["router", "bgp", ..] => parse_bgp(stanza, &mut cfg)?,
            ["ip", "route", ..] => parse_static_route(stanza, &mut cfg)?,
            ["access-list", ..] => parse_access_list(stanza, &mut cfg)?,
            ["route-map", ..] => parse_route_map(stanza, &mut cfg)?,
            // Common commands that carry no routing-design information are
            // accepted silently rather than polluting `unparsed`.
            ["version", ..] | ["ip", "classless"] | ["ip", "subnet-zero"]
            | ["service", ..] | ["no", ..] | ["boot", ..] | ["logging", ..]
            | ["snmp-server", ..] | ["line", ..] | ["banner", ..]
            | ["enable", ..] | ["clock", ..] | ["ntp", ..] => {}
            _ => record_unparsed(stanza, &mut cfg),
        }
    }
    Ok(cfg)
}

fn record_unparsed(stanza: &Stanza, cfg: &mut RouterConfig) {
    cfg.unparsed.push((stanza.line, stanza.text.clone()));
    for child in &stanza.children {
        record_unparsed(child, cfg);
    }
}

// ---------- shared field parsers ----------

fn err(stanza: &Stanza, kind: ParseErrorKind) -> ParseError {
    ParseError { line: stanza.line, command: stanza.text.clone(), kind }
}

fn parse_addr(stanza: &Stanza, text: &str) -> Result<Addr, ParseError> {
    text.parse()
        .map_err(|_| err(stanza, ParseErrorKind::BadAddress(text.to_string())))
}

fn parse_mask(stanza: &Stanza, text: &str) -> Result<Netmask, ParseError> {
    text.parse()
        .map_err(|_| err(stanza, ParseErrorKind::BadMask(text.to_string())))
}

fn parse_wildcard(stanza: &Stanza, text: &str) -> Result<Wildcard, ParseError> {
    text.parse()
        .map_err(|_| err(stanza, ParseErrorKind::BadMask(text.to_string())))
}

fn parse_num<T: std::str::FromStr>(stanza: &Stanza, text: &str) -> Result<T, ParseError> {
    text.parse()
        .map_err(|_| err(stanza, ParseErrorKind::BadNumber(text.to_string())))
}

fn parse_ifname(stanza: &Stanza, text: &str) -> Result<InterfaceName, ParseError> {
    text.parse()
        .map_err(|_| err(stanza, ParseErrorKind::BadInterfaceName(text.to_string())))
}

fn need<'a>(
    stanza: &Stanza,
    words: &[&'a str],
    idx: usize,
    what: &'static str,
) -> Result<&'a str, ParseError> {
    words
        .get(idx)
        .copied()
        .ok_or_else(|| err(stanza, ParseErrorKind::MissingArgument(what)))
}

// ---------- interface ----------

fn parse_interface(stanza: &Stanza, cfg: &mut RouterConfig) -> Result<(), ParseError> {
    let words = stanza.words();
    let name_text = need(stanza, &words, 1, "interface name")?;
    let name = parse_ifname(stanza, name_text)?;
    let mut iface = Interface::new(name);
    iface.point_to_point = words.iter().any(|w| w.eq_ignore_ascii_case("point-to-point"));

    for child in &stanza.children {
        let cw = child.words();
        match cw.as_slice() {
            ["ip", "address", addr, mask, rest @ ..] => {
                let ifaddr = IfAddr {
                    addr: parse_addr(child, addr)?,
                    mask: parse_mask(child, mask)?,
                };
                if rest.first().is_some_and(|w| w.eq_ignore_ascii_case("secondary")) {
                    iface.secondary.push(ifaddr);
                } else {
                    iface.address = Some(ifaddr);
                }
            }
            ["ip", "unnumbered", other] => {
                iface.unnumbered = Some(parse_ifname(child, other)?);
            }
            ["ip", "access-group", acl, dir] => {
                let acl_id: u32 = parse_num(child, acl)?;
                match *dir {
                    "in" => iface.access_group_in = Some(acl_id),
                    "out" => iface.access_group_out = Some(acl_id),
                    other => {
                        return Err(err(
                            child,
                            ParseErrorKind::UnexpectedArgument(other.to_string()),
                        ))
                    }
                }
            }
            ["description", ..] => {
                iface.description =
                    Some(child.text.trim_start_matches("description").trim().to_string());
            }
            ["encapsulation", kind, ..] => iface.encapsulation = Some(kind.to_string()),
            ["frame-relay", "interface-dlci", dlci, ..] => {
                iface.frame_relay_dlci = Some(parse_num(child, dlci)?);
            }
            ["bandwidth", kbps] => iface.bandwidth_kbps = Some(parse_num(child, kbps)?),
            ["shutdown"] => iface.shutdown = true,
            ["no", "ip", "address"] => iface.address = None,
            ["no", ..] => {}
            _ => record_unparsed(child, cfg),
        }
    }
    cfg.interfaces.push(iface);
    Ok(())
}

// ---------- redistribution (shared by all process types) ----------

fn parse_redistribute(stanza: &Stanza) -> Result<Redistribution, ParseError> {
    let words = stanza.words();
    debug_assert!(words[0].eq_ignore_ascii_case("redistribute"));
    let source_word = need(stanza, &words, 1, "redistribution source")?;
    let mut idx = 2;
    let source = match source_word.to_ascii_lowercase().as_str() {
        "connected" => RedistSource::Connected,
        "static" => RedistSource::Static,
        "rip" => RedistSource::Rip,
        "ospf" => {
            let id = parse_num(stanza, need(stanza, &words, idx, "ospf pid")?)?;
            idx += 1;
            RedistSource::Ospf(id)
        }
        "eigrp" => {
            let asn = parse_num(stanza, need(stanza, &words, idx, "eigrp asn")?)?;
            idx += 1;
            RedistSource::Eigrp(asn)
        }
        "igrp" => {
            let asn = parse_num(stanza, need(stanza, &words, idx, "igrp asn")?)?;
            idx += 1;
            RedistSource::Igrp(asn)
        }
        "bgp" => {
            let asn = parse_num(stanza, need(stanza, &words, idx, "bgp asn")?)?;
            idx += 1;
            RedistSource::Bgp(asn)
        }
        other => {
            return Err(err(stanza, ParseErrorKind::UnexpectedArgument(other.to_string())))
        }
    };

    let mut redist = Redistribution::plain(source);
    while idx < words.len() {
        match words[idx].to_ascii_lowercase().as_str() {
            "metric" => {
                idx += 1;
                redist.metric = Some(parse_num(stanza, need(stanza, &words, idx, "metric")?)?);
            }
            "metric-type" => {
                idx += 1;
                redist.metric_type =
                    Some(parse_num(stanza, need(stanza, &words, idx, "metric-type")?)?);
            }
            "subnets" => redist.subnets = true,
            "route-map" => {
                idx += 1;
                redist.route_map =
                    Some(need(stanza, &words, idx, "route-map name")?.to_string());
            }
            "tag" => {
                idx += 1;
                redist.tag = Some(parse_num(stanza, need(stanza, &words, idx, "tag")?)?);
            }
            // `match route-map X` appears in some BGP redistribute forms
            // (Fig. 2 line 25: "redistribute ospf 64 match route-map ...").
            "match" => {}
            other => {
                return Err(err(stanza, ParseErrorKind::UnexpectedArgument(other.to_string())))
            }
        }
        idx += 1;
    }
    Ok(redist)
}

fn parse_distribute_list(
    stanza: &Stanza,
) -> Result<(DistributeList, /*inbound*/ bool), ParseError> {
    let words = stanza.words();
    let acl: u32 = parse_num(stanza, need(stanza, &words, 1, "acl number")?)?;
    let dir = need(stanza, &words, 2, "direction")?;
    let inbound = match dir {
        "in" => true,
        "out" => false,
        other => {
            return Err(err(stanza, ParseErrorKind::UnexpectedArgument(other.to_string())))
        }
    };
    let interface = match words.get(3) {
        Some(text) => Some(parse_ifname(stanza, text)?),
        None => None,
    };
    Ok((DistributeList { acl, interface }, inbound))
}

// ---------- OSPF ----------

fn parse_ospf(stanza: &Stanza, cfg: &mut RouterConfig) -> Result<(), ParseError> {
    let words = stanza.words();
    let id: u32 = parse_num(stanza, need(stanza, &words, 2, "ospf pid")?)?;
    let mut proc = OspfProcess::new(id);

    for child in &stanza.children {
        let cw = child.words();
        match cw.as_slice() {
            ["network", addr, wildcard, "area", area] => {
                proc.networks.push(OspfNetwork {
                    addr: parse_addr(child, addr)?,
                    wildcard: parse_wildcard(child, wildcard)?,
                    area: parse_area(child, area)?,
                });
            }
            ["redistribute", ..] => proc.redistribute.push(parse_redistribute(child)?),
            ["distribute-list", ..] => {
                let (dl, inbound) = parse_distribute_list(child)?;
                if inbound {
                    proc.distribute_in.push(dl);
                } else {
                    proc.distribute_out.push(dl);
                }
            }
            ["passive-interface", name] => {
                proc.passive.push(parse_ifname(child, name)?);
            }
            ["default-information", "originate", ..] => proc.default_information = true,
            ["router-id", ..] | ["area", ..] | ["maximum-paths", ..] | ["no", ..]
            | ["auto-cost", ..] | ["timers", ..] | ["log-adjacency-changes", ..] => {}
            _ => record_unparsed(child, cfg),
        }
    }
    if cfg.ospf.iter().any(|p| p.id == id) {
        return Err(err(stanza, ParseErrorKind::Conflict(format!("duplicate router ospf {id}"))));
    }
    cfg.ospf.push(proc);
    Ok(())
}

fn parse_area(stanza: &Stanza, text: &str) -> Result<OspfArea, ParseError> {
    if let Ok(n) = text.parse::<u32>() {
        return Ok(OspfArea(n));
    }
    // Dotted-quad area ids are permitted by IOS.
    let addr: Addr = text
        .parse()
        .map_err(|_| err(stanza, ParseErrorKind::BadNumber(text.to_string())))?;
    Ok(OspfArea(addr.to_u32()))
}

// ---------- EIGRP / IGRP ----------

fn parse_eigrp(stanza: &Stanza, cfg: &mut RouterConfig, is_igrp: bool) -> Result<(), ParseError> {
    let words = stanza.words();
    let asn: u32 = parse_num(stanza, need(stanza, &words, 2, "asn")?)?;
    let mut proc = EigrpProcess::new(asn);
    proc.is_igrp = is_igrp;

    for child in &stanza.children {
        let cw = child.words();
        match cw.as_slice() {
            ["network", addr] => {
                proc.networks
                    .push(EigrpNetwork { addr: parse_addr(child, addr)?, wildcard: None });
            }
            ["network", addr, wildcard] => {
                proc.networks.push(EigrpNetwork {
                    addr: parse_addr(child, addr)?,
                    wildcard: Some(parse_wildcard(child, wildcard)?),
                });
            }
            ["redistribute", ..] => proc.redistribute.push(parse_redistribute(child)?),
            ["distribute-list", ..] => {
                let (dl, inbound) = parse_distribute_list(child)?;
                if inbound {
                    proc.distribute_in.push(dl);
                } else {
                    proc.distribute_out.push(dl);
                }
            }
            ["passive-interface", name] => proc.passive.push(parse_ifname(child, name)?),
            ["no", "auto-summary"] => proc.no_auto_summary = true,
            ["no", ..] | ["eigrp", ..] | ["variance", ..] | ["default-metric", ..] => {}
            _ => record_unparsed(child, cfg),
        }
    }
    let kind = if is_igrp { "igrp" } else { "eigrp" };
    if cfg.eigrp.iter().any(|p| p.asn == asn && p.is_igrp == is_igrp) {
        return Err(err(
            stanza,
            ParseErrorKind::Conflict(format!("duplicate router {kind} {asn}")),
        ));
    }
    cfg.eigrp.push(proc);
    Ok(())
}

// ---------- RIP ----------

fn parse_rip(stanza: &Stanza, cfg: &mut RouterConfig) -> Result<(), ParseError> {
    let mut proc = cfg.rip.take().unwrap_or_default();
    for child in &stanza.children {
        let cw = child.words();
        match cw.as_slice() {
            ["version", v] => proc.version = Some(parse_num(child, v)?),
            ["network", addr] => proc.networks.push(parse_addr(child, addr)?),
            ["redistribute", ..] => proc.redistribute.push(parse_redistribute(child)?),
            ["distribute-list", ..] => {
                let (dl, inbound) = parse_distribute_list(child)?;
                if inbound {
                    proc.distribute_in.push(dl);
                } else {
                    proc.distribute_out.push(dl);
                }
            }
            ["passive-interface", name] => proc.passive.push(parse_ifname(child, name)?),
            ["no", ..] | ["default-metric", ..] | ["timers", ..] => {}
            _ => record_unparsed(child, cfg),
        }
    }
    cfg.rip = Some(proc);
    Ok(())
}

// ---------- BGP ----------

fn parse_bgp(stanza: &Stanza, cfg: &mut RouterConfig) -> Result<(), ParseError> {
    let words = stanza.words();
    let asn: u32 = parse_num(stanza, need(stanza, &words, 2, "asn")?)?;
    if let Some(existing) = &cfg.bgp {
        if existing.asn != asn {
            return Err(err(
                stanza,
                ParseErrorKind::Conflict(format!(
                    "router bgp {asn} conflicts with router bgp {}",
                    existing.asn
                )),
            ));
        }
    }
    let mut proc = cfg.bgp.take().unwrap_or_else(|| BgpProcess::new(asn));

    for child in &stanza.children {
        let cw = child.words();
        match cw.as_slice() {
            ["bgp", "router-id", addr] => proc.router_id = Some(parse_addr(child, addr)?),
            ["network", addr] => proc.networks.push((parse_addr(child, addr)?, None)),
            ["network", addr, "mask", mask] => proc
                .networks
                .push((parse_addr(child, addr)?, Some(parse_mask(child, mask)?))),
            ["redistribute", ..] => proc.redistribute.push(parse_redistribute(child)?),
            ["no", "synchronization"] => proc.no_synchronization = true,
            ["neighbor", addr, rest @ ..] => {
                let peer = parse_addr(child, addr)?;
                let n = proc.neighbor_mut(peer);
                match rest {
                    ["remote-as", asn_text] => n.remote_as = Some(parse_num(child, asn_text)?),
                    ["description", ..] => {
                        n.description = Some(rest[1..].join(" "));
                    }
                    ["update-source", ifname] => {
                        n.update_source = Some(parse_ifname(child, ifname)?)
                    }
                    ["next-hop-self"] => n.next_hop_self = true,
                    ["route-reflector-client"] => n.route_reflector_client = true,
                    ["send-community", ..] => n.send_community = true,
                    ["route-map", name, "in"] => n.route_map_in = Some(name.to_string()),
                    ["route-map", name, "out"] => n.route_map_out = Some(name.to_string()),
                    ["distribute-list", acl, "in"] => {
                        n.distribute_in = Some(parse_num(child, acl)?)
                    }
                    ["distribute-list", acl, "out"] => {
                        n.distribute_out = Some(parse_num(child, acl)?)
                    }
                    ["soft-reconfiguration", ..] | ["version", ..] | ["timers", ..] => {}
                    _ => record_unparsed(child, cfg),
                }
            }
            ["bgp", ..] | ["no", ..] | ["timers", ..] => {}
            _ => record_unparsed(child, cfg),
        }
    }
    cfg.bgp = Some(proc);
    Ok(())
}

// ---------- static routes ----------

fn parse_static_route(stanza: &Stanza, cfg: &mut RouterConfig) -> Result<(), ParseError> {
    let words = stanza.words();
    let dest = parse_addr(stanza, need(stanza, &words, 2, "destination")?)?;
    let mask = parse_mask(stanza, need(stanza, &words, 3, "mask")?)?;
    let target_text = need(stanza, &words, 4, "next hop")?;
    let target = match target_text.parse::<Addr>() {
        Ok(a) => StaticTarget::NextHop(a),
        Err(_) => StaticTarget::Interface(parse_ifname(stanza, target_text)?),
    };
    let mut route = StaticRoute { dest, mask, target, distance: None, tag: None };
    let mut idx = 5;
    while idx < words.len() {
        match words[idx] {
            "tag" => {
                idx += 1;
                route.tag = Some(parse_num(stanza, need(stanza, &words, idx, "tag")?)?);
            }
            other => {
                if let Ok(d) = other.parse::<u8>() {
                    route.distance = Some(d);
                } else {
                    return Err(err(
                        stanza,
                        ParseErrorKind::UnexpectedArgument(other.to_string()),
                    ));
                }
            }
        }
        idx += 1;
    }
    cfg.static_routes.push(route);
    Ok(())
}

// ---------- access lists ----------

fn parse_acl_action(stanza: &Stanza, text: &str) -> Result<AclAction, ParseError> {
    match text {
        "permit" => Ok(AclAction::Permit),
        "deny" => Ok(AclAction::Deny),
        other => Err(err(stanza, ParseErrorKind::UnexpectedArgument(other.to_string()))),
    }
}

/// Parses an address matcher, consuming 1 (`any`), 2 (`host A`), or 2
/// (`A W`) words; returns the matcher and words consumed.
fn parse_acl_addr(stanza: &Stanza, words: &[&str]) -> Result<(AclAddr, usize), ParseError> {
    match words {
        ["any", ..] => Ok((AclAddr::Any, 1)),
        ["host", addr, ..] => Ok((AclAddr::Host(parse_addr(stanza, addr)?), 2)),
        [addr, wild, ..] => Ok((
            AclAddr::Wild(parse_addr(stanza, addr)?, parse_wildcard(stanza, wild)?),
            2,
        )),
        [addr] => Ok((AclAddr::Host(parse_addr(stanza, addr)?), 1)),
        [] => Err(err(stanza, ParseErrorKind::MissingArgument("acl address"))),
    }
}

/// Parses an optional port matcher; returns (match, words consumed).
fn parse_port_match(
    stanza: &Stanza,
    words: &[&str],
) -> Result<(Option<PortMatch>, usize), ParseError> {
    match words {
        ["eq", p, ..] => Ok((Some(PortMatch::Eq(parse_num(stanza, p)?)), 2)),
        ["lt", p, ..] => Ok((Some(PortMatch::Lt(parse_num(stanza, p)?)), 2)),
        ["gt", p, ..] => Ok((Some(PortMatch::Gt(parse_num(stanza, p)?)), 2)),
        ["range", lo, hi, ..] => Ok((
            Some(PortMatch::Range(parse_num(stanza, lo)?, parse_num(stanza, hi)?)),
            3,
        )),
        _ => Ok((None, 0)),
    }
}

fn parse_access_list(stanza: &Stanza, cfg: &mut RouterConfig) -> Result<(), ParseError> {
    let words = stanza.words();
    let id: u32 = parse_num(stanza, need(stanza, &words, 1, "acl number")?)?;
    let action = parse_acl_action(stanza, need(stanza, &words, 2, "permit/deny")?)?;
    let rest = &words[3..];

    // Numbers 1-99 are standard lists; 100-199 are extended. The paper's
    // Figure 2 nonetheless writes list 143 with standard (source-only)
    // syntax, so for the extended range we dispatch on whether the first
    // operand is a protocol keyword and fall back to standard parsing.
    const PROTOCOLS: &[&str] =
        &["ip", "tcp", "udp", "icmp", "pim", "igmp", "gre", "esp", "ahp", "ospf", "eigrp"];
    let extended = id >= 100
        && rest
            .first()
            .is_some_and(|w| PROTOCOLS.contains(&w.to_ascii_lowercase().as_str()));
    let entry = if !extended {
        let (addr, _) = parse_acl_addr(stanza, rest)?;
        AclEntry::Standard { action, addr }
    } else {
        let protocol = rest
            .first()
            .ok_or_else(|| err(stanza, ParseErrorKind::MissingArgument("protocol")))?
            .to_string();
        let mut pos = 1;
        let (src, used) = parse_acl_addr(stanza, &rest[pos..])?;
        pos += used;
        let (src_port, used) = parse_port_match(stanza, &rest[pos..])?;
        pos += used;
        let (dst, used) = parse_acl_addr(stanza, &rest[pos..])?;
        pos += used;
        let (dst_port, used) = parse_port_match(stanza, &rest[pos..])?;
        pos += used;
        let established = rest[pos..].iter().any(|w| *w == "established");
        AclEntry::Extended { action, protocol, src, src_port, dst, dst_port, established }
    };

    cfg.access_lists.entry(id).or_insert_with(|| AccessList::new(id)).entries.push(entry);
    Ok(())
}

// ---------- route maps ----------

fn parse_route_map(stanza: &Stanza, cfg: &mut RouterConfig) -> Result<(), ParseError> {
    let words = stanza.words();
    let name = need(stanza, &words, 1, "route-map name")?.to_string();
    let action = match words.get(2) {
        Some(text) => parse_acl_action(stanza, text)?,
        None => AclAction::Permit,
    };
    let seq: u32 = match words.get(3) {
        Some(text) => parse_num(stanza, text)?,
        None => 10,
    };

    let mut clause = RouteMapClause { seq, action, matches: Vec::new(), sets: Vec::new() };
    for child in &stanza.children {
        let cw = child.words();
        match cw.as_slice() {
            ["match", "ip", "address", acls @ ..] => {
                let ids = acls
                    .iter()
                    .map(|t| parse_num(child, t))
                    .collect::<Result<Vec<u32>, _>>()?;
                clause.matches.push(RmMatch::IpAddress(ids));
            }
            ["match", "tag", tags @ ..] => {
                let ids = tags
                    .iter()
                    .map(|t| parse_num(child, t))
                    .collect::<Result<Vec<u32>, _>>()?;
                clause.matches.push(RmMatch::Tag(ids));
            }
            ["match", "as-path", acl] => {
                clause.matches.push(RmMatch::AsPath(parse_num(child, acl)?))
            }
            ["match", "community", list] => {
                clause.matches.push(RmMatch::Community(parse_num(child, list)?))
            }
            ["set", "metric", n] => clause.sets.push(RmSet::Metric(parse_num(child, n)?)),
            ["set", "metric-type", t] => {
                let ty = match *t {
                    "type-1" => 1,
                    "type-2" => 2,
                    other => parse_num(child, other)?,
                };
                clause.sets.push(RmSet::MetricType(ty));
            }
            ["set", "tag", n] => clause.sets.push(RmSet::Tag(parse_num(child, n)?)),
            ["set", "local-preference", n] => {
                clause.sets.push(RmSet::LocalPreference(parse_num(child, n)?))
            }
            ["set", "weight", n] => clause.sets.push(RmSet::Weight(parse_num(child, n)?)),
            ["set", "community", v, ..] => {
                clause.sets.push(RmSet::Community(v.to_string()))
            }
            _ => record_unparsed(child, cfg),
        }
    }

    let map = cfg
        .route_maps
        .entry(name.clone())
        .or_insert_with(|| RouteMap::new(name));
    map.clauses.push(clause);
    map.clauses.sort_by_key(|c| c.seq);
    Ok(())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::ifname::InterfaceType;

    /// The verbatim configlet from Figure 2 of the paper.
    pub(crate) const FIGURE2: &str = "\
interface Ethernet0
 ip address 66.251.75.144 255.255.255.128
 ip access-group 143 in
!
interface Serial1/0.5 point-to-point
 ip address 66.253.32.85 255.255.255.252
 ip access-group 143 in
 frame-relay interface-dlci 28
!
interface Hssi2/0 point-to-point
 ip address 66.253.160.67 255.255.255.252
!
router ospf 64
 redistribute connected metric-type 1 subnets
 redistribute bgp 64780 metric 1 subnets
 network 66.251.75.128 0.0.0.127 area 0
!
router ospf 128
 redistribute connected metric-type 1 subnets
 network 66.253.32.84 0.0.0.3 area 11
 distribute-list 44 in Serial1/0.5
 distribute-list 45 out
!
router bgp 64780
 redistribute ospf 64 match route-map 8aTzlvBrbaW
 neighbor 66.253.160.68 remote-as 12762
 neighbor 66.253.160.68 distribute-list 4 in
 neighbor 66.253.160.68 distribute-list 3 out
!
access-list 143 deny 134.161.0.0 0.0.255.255
access-list 143 permit any
route-map 8aTzlvBrbaW deny 10
 match ip address 4
route-map 8aTzlvBrbaW permit 20
 match ip address 7
ip route 10.235.240.71 255.255.0.0 10.234.12.7
";

    #[test]
    fn parses_figure2_interfaces() {
        let cfg = parse_config(FIGURE2).unwrap();
        assert_eq!(cfg.interfaces.len(), 3);
        let eth = &cfg.interfaces[0];
        assert_eq!(eth.name.ty, InterfaceType::Ethernet);
        assert_eq!(eth.address.unwrap().subnet().to_string(), "66.251.75.128/25");
        assert_eq!(eth.access_group_in, Some(143));
        let serial = &cfg.interfaces[1];
        assert!(serial.point_to_point);
        assert_eq!(serial.frame_relay_dlci, Some(28));
        assert_eq!(serial.address.unwrap().subnet().to_string(), "66.253.32.84/30");
        let hssi = &cfg.interfaces[2];
        assert_eq!(hssi.name.ty, InterfaceType::Hssi);
        assert_eq!(hssi.address.unwrap().subnet().to_string(), "66.253.160.64/30");
    }

    #[test]
    fn parses_figure2_ospf_processes() {
        let cfg = parse_config(FIGURE2).unwrap();
        assert_eq!(cfg.ospf.len(), 2);
        let ospf64 = &cfg.ospf[0];
        assert_eq!(ospf64.id, 64);
        assert_eq!(ospf64.redistribute.len(), 2);
        assert_eq!(ospf64.redistribute[0].source, RedistSource::Connected);
        assert_eq!(ospf64.redistribute[0].metric_type, Some(1));
        assert!(ospf64.redistribute[0].subnets);
        assert_eq!(ospf64.redistribute[1].source, RedistSource::Bgp(64780));
        assert_eq!(ospf64.redistribute[1].metric, Some(1));
        assert_eq!(ospf64.networks.len(), 1);
        assert_eq!(ospf64.networks[0].area, OspfArea(0));
        assert!(ospf64.covers("66.251.75.144".parse().unwrap()));

        let ospf128 = &cfg.ospf[1];
        assert_eq!(ospf128.id, 128);
        assert_eq!(ospf128.networks[0].area, OspfArea(11));
        assert_eq!(ospf128.distribute_in.len(), 1);
        assert_eq!(ospf128.distribute_in[0].acl, 44);
        assert_eq!(
            ospf128.distribute_in[0].interface.as_ref().unwrap().to_string(),
            "Serial1/0.5"
        );
        assert_eq!(ospf128.distribute_out.len(), 1);
        assert_eq!(ospf128.distribute_out[0].acl, 45);
        assert!(ospf128.distribute_out[0].interface.is_none());
    }

    #[test]
    fn parses_figure2_bgp() {
        let cfg = parse_config(FIGURE2).unwrap();
        let bgp = cfg.bgp.as_ref().unwrap();
        assert_eq!(bgp.asn, 64780);
        assert_eq!(bgp.redistribute.len(), 1);
        assert_eq!(bgp.redistribute[0].source, RedistSource::Ospf(64));
        assert_eq!(bgp.redistribute[0].route_map.as_deref(), Some("8aTzlvBrbaW"));
        assert_eq!(bgp.neighbors.len(), 1);
        let n = &bgp.neighbors[0];
        assert_eq!(n.addr.to_string(), "66.253.160.68");
        assert_eq!(n.remote_as, Some(12762));
        assert_eq!(n.distribute_in, Some(4));
        assert_eq!(n.distribute_out, Some(3));
        assert_eq!(bgp.ebgp_neighbors().count(), 1);
    }

    #[test]
    fn parses_figure2_policies_and_static() {
        let cfg = parse_config(FIGURE2).unwrap();
        let acl = &cfg.access_lists[&143];
        assert_eq!(acl.entries.len(), 2);
        assert_eq!(acl.entries[0].action(), AclAction::Deny);
        let rm = &cfg.route_maps["8aTzlvBrbaW"];
        assert_eq!(rm.clauses.len(), 2);
        assert_eq!(rm.clauses[0].seq, 10);
        assert_eq!(rm.clauses[0].action, AclAction::Deny);
        assert_eq!(rm.clauses[0].matches, vec![RmMatch::IpAddress(vec![4])]);
        assert_eq!(rm.clauses[1].action, AclAction::Permit);
        assert_eq!(cfg.static_routes.len(), 1);
        assert_eq!(cfg.static_routes[0].prefix().to_string(), "10.235.0.0/16");
        assert!(cfg.unparsed.is_empty(), "unexpected unparsed lines: {:?}", cfg.unparsed);
    }

    #[test]
    fn unknown_commands_are_tolerated() {
        let cfg = parse_config("mystery command here\ninterface Ethernet0\n exotic subcommand\n").unwrap();
        assert_eq!(cfg.unparsed.len(), 2);
        assert_eq!(cfg.unparsed[0].0, 1);
        assert_eq!(cfg.interfaces.len(), 1);
    }

    #[test]
    fn malformed_known_commands_fail_with_location() {
        let e = parse_config("interface Ethernet0\n ip address banana 255.0.0.0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, ParseErrorKind::BadAddress(_)));
        let e = parse_config("router bgp 100\nrouter bgp 200\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Conflict(_)));
    }

    #[test]
    fn secondary_addresses_and_unnumbered() {
        let text = "\
interface Loopback0
 ip address 10.0.0.1 255.255.255.255
interface Serial0
 ip unnumbered Loopback0
interface Ethernet0
 ip address 10.1.0.1 255.255.255.0
 ip address 10.2.0.1 255.255.255.0 secondary
";
        let cfg = parse_config(text).unwrap();
        assert!(cfg.interfaces[1].is_unnumbered());
        assert_eq!(cfg.interfaces[2].secondary.len(), 1);
        assert_eq!(cfg.interfaces[2].subnets().len(), 2);
    }

    #[test]
    fn extended_acl_with_ports() {
        let text = "access-list 101 permit tcp 10.0.0.0 0.0.0.255 any eq 80\n\
                    access-list 101 deny udp any range 5000 5010 host 10.1.1.1\n\
                    access-list 101 permit ip any any\n";
        let cfg = parse_config(text).unwrap();
        let acl = &cfg.access_lists[&101];
        assert_eq!(acl.entries.len(), 3);
        match &acl.entries[0] {
            AclEntry::Extended { protocol, dst_port, .. } => {
                assert_eq!(protocol, "tcp");
                assert_eq!(*dst_port, Some(PortMatch::Eq(80)));
            }
            other => panic!("wrong entry: {other:?}"),
        }
        match &acl.entries[1] {
            AclEntry::Extended { src_port, dst, .. } => {
                assert_eq!(*src_port, Some(PortMatch::Range(5000, 5010)));
                assert_eq!(*dst, AclAddr::Host("10.1.1.1".parse().unwrap()));
            }
            other => panic!("wrong entry: {other:?}"),
        }
    }

    #[test]
    fn static_route_with_distance_tag_and_interface_target() {
        let cfg = parse_config(
            "ip route 0.0.0.0 0.0.0.0 192.0.2.1 250 tag 77\nip route 10.0.0.0 255.0.0.0 Null0\n",
        )
        .unwrap();
        assert_eq!(cfg.static_routes[0].distance, Some(250));
        assert_eq!(cfg.static_routes[0].tag, Some(77));
        assert!(cfg.static_routes[0].is_default());
        assert!(matches!(cfg.static_routes[1].target, StaticTarget::Interface(_)));
    }

    #[test]
    fn rip_and_eigrp_processes() {
        let text = "\
router rip
 version 2
 network 10.0.0.0
 redistribute static
router eigrp 109
 network 10.0.0.0
 network 172.16.1.0 0.0.0.255
 no auto-summary
router igrp 7
 network 192.168.1.0
";
        let cfg = parse_config(text).unwrap();
        let rip = cfg.rip.as_ref().unwrap();
        assert_eq!(rip.version, Some(2));
        assert!(rip.covers("10.9.9.9".parse().unwrap()));
        assert_eq!(cfg.eigrp.len(), 2);
        assert!(!cfg.eigrp[0].is_igrp);
        assert!(cfg.eigrp[0].no_auto_summary);
        assert!(cfg.eigrp[0].covers("10.1.1.1".parse().unwrap()));
        assert!(cfg.eigrp[0].covers("172.16.1.5".parse().unwrap()));
        assert!(!cfg.eigrp[0].covers("172.16.2.5".parse().unwrap()));
        assert!(cfg.eigrp[1].is_igrp);
    }
}
