//! Per-configuration diagnostics: everything the tolerant parser skipped
//! or cannot vouch for, reported with file/line/severity instead of being
//! silently dropped (`rd-obs` diagnostics channel, surfaced by
//! `rdx <dir> diag`).
//!
//! Severity policy:
//!
//! - **warning** — input was skipped: unknown stanzas/subcommands
//!   (`unknown-stanza`), duplicate interface definitions
//!   (`duplicate-interface`). The analyses run, but on less than the file
//!   said.
//! - **error** — the configuration references policy objects that do not
//!   exist in the file: `undefined-acl`, `undefined-route-map`,
//!   `undefined-unnumbered-target`. The derived design is likely wrong
//!   around these, because a missing filter parses as "no filter".

use rd_obs::{Diagnostic, Severity};

use crate::model::{RmMatch, RouterConfig};

fn diag(
    file: &str,
    line: usize,
    severity: Severity,
    code: &'static str,
    message: String,
) -> Diagnostic {
    Diagnostic { file: file.to_string(), line, severity, code, message }
}

/// Collects every diagnostic one parsed configuration warrants, in a
/// deterministic order (unparsed lines by line number, then reference
/// checks in model order).
pub fn config_diagnostics(file: &str, cfg: &RouterConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Unknown stanzas and subcommands the parser preserved but skipped.
    for (line, text) in &cfg.unparsed {
        out.push(diag(
            file,
            *line,
            Severity::Warning,
            "unknown-stanza",
            format!("skipped unrecognized command {text:?}"),
        ));
    }

    // Interfaces defined twice shadow each other in by-name lookups.
    for (i, iface) in cfg.interfaces.iter().enumerate() {
        if cfg.interfaces[..i].iter().any(|other| other.name == iface.name) {
            out.push(diag(
                file,
                0,
                Severity::Warning,
                "duplicate-interface",
                format!("interface {} is defined more than once", iface.name),
            ));
        }
    }

    let acl_defined = |id: u32| cfg.access_lists.contains_key(&id);
    let map_defined = |name: &str| cfg.route_maps.contains_key(name);
    let missing_acl = |out: &mut Vec<Diagnostic>, id: u32, context: String| {
        if !acl_defined(id) {
            out.push(diag(
                file,
                0,
                Severity::Error,
                "undefined-acl",
                format!("{context} references access-list {id}, which is not defined"),
            ));
        }
    };
    let missing_map = |out: &mut Vec<Diagnostic>, name: &str, context: String| {
        if !map_defined(name) {
            out.push(diag(
                file,
                0,
                Severity::Error,
                "undefined-route-map",
                format!("{context} references route-map {name:?}, which is not defined"),
            ));
        }
    };

    // Interface-level references.
    for iface in &cfg.interfaces {
        for (dir, acl) in
            [("in", iface.access_group_in), ("out", iface.access_group_out)]
        {
            if let Some(id) = acl {
                missing_acl(
                    &mut out,
                    id,
                    format!("interface {} ip access-group {dir}", iface.name),
                );
            }
        }
        if let Some(target) = &iface.unnumbered {
            if cfg.interface(target).is_none() {
                out.push(diag(
                    file,
                    0,
                    Severity::Error,
                    "undefined-unnumbered-target",
                    format!(
                        "interface {} is unnumbered to {target}, which is not defined",
                        iface.name
                    ),
                ));
            }
        }
    }

    // Routing-process policy references (distribute lists + redistribution
    // route maps), in model order: OSPF, EIGRP/IGRP, RIP, BGP.
    let mut process_refs: Vec<(String, Vec<u32>, Vec<&str>)> = Vec::new();
    for p in &cfg.ospf {
        process_refs.push((
            format!("router ospf {}", p.id),
            p.distribute_in
                .iter()
                .chain(&p.distribute_out)
                .map(|dl| dl.acl)
                .collect(),
            p.redistribute.iter().filter_map(|r| r.route_map.as_deref()).collect(),
        ));
    }
    for p in &cfg.eigrp {
        process_refs.push((
            format!("router {} {}", if p.is_igrp { "igrp" } else { "eigrp" }, p.asn),
            p.distribute_in
                .iter()
                .chain(&p.distribute_out)
                .map(|dl| dl.acl)
                .collect(),
            p.redistribute.iter().filter_map(|r| r.route_map.as_deref()).collect(),
        ));
    }
    if let Some(p) = &cfg.rip {
        process_refs.push((
            "router rip".to_string(),
            p.distribute_in
                .iter()
                .chain(&p.distribute_out)
                .map(|dl| dl.acl)
                .collect(),
            p.redistribute.iter().filter_map(|r| r.route_map.as_deref()).collect(),
        ));
    }
    if let Some(p) = &cfg.bgp {
        process_refs.push((
            format!("router bgp {}", p.asn),
            Vec::new(),
            p.redistribute.iter().filter_map(|r| r.route_map.as_deref()).collect(),
        ));
        for n in &p.neighbors {
            for acl in [n.distribute_in, n.distribute_out].into_iter().flatten() {
                missing_acl(&mut out, acl, format!("neighbor {} distribute-list", n.addr));
            }
            for map in [&n.route_map_in, &n.route_map_out].into_iter().flatten() {
                missing_map(&mut out, map, format!("neighbor {} route-map", n.addr));
            }
        }
    }
    for (context, acls, maps) in process_refs {
        for acl in acls {
            missing_acl(&mut out, acl, format!("{context} distribute-list"));
        }
        for map in maps {
            missing_map(&mut out, map, context.clone());
        }
    }

    // Route-map clauses matching on undefined access lists.
    for (name, map) in &cfg.route_maps {
        for clause in &map.clauses {
            for m in &clause.matches {
                if let RmMatch::IpAddress(ids) = m {
                    for id in ids {
                        missing_acl(
                            &mut out,
                            *id,
                            format!("route-map {name} seq {} match ip address", clause.seq),
                        );
                    }
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_config;

    #[test]
    fn clean_config_yields_no_diagnostics() {
        let cfg = parse_config(crate::parse::tests::FIGURE2).unwrap();
        // Figure 2 references access lists 3, 4, 44, 45, and route-map
        // matches on 4 and 7, none of which the configlet defines — the
        // paper's own excerpt is partial. Those must surface as errors.
        let diags = config_diagnostics("config1", &cfg);
        assert!(diags.iter().all(|d| d.code == "undefined-acl"), "{diags:?}");
        assert_eq!(diags.len(), 6);

        // A self-contained config is clean.
        let cfg = parse_config(
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n \
             ip access-group 10 in\naccess-list 10 permit any\n",
        )
        .unwrap();
        assert!(config_diagnostics("config1", &cfg).is_empty());
    }

    #[test]
    fn unknown_stanzas_surface_with_lines() {
        let cfg = parse_config("mystery command\ninterface Ethernet0\n exotic sub\n").unwrap();
        let diags = config_diagnostics("config7", &cfg);
        assert_eq!(diags.len(), 2);
        assert_eq!(
            (diags[0].file.as_str(), diags[0].line, diags[0].severity, diags[0].code),
            ("config7", 1, Severity::Warning, "unknown-stanza"),
        );
        assert_eq!(diags[1].line, 3);
    }

    #[test]
    fn dangling_references_are_errors() {
        let text = "\
interface Serial0
 ip address 10.0.0.1 255.255.255.252
 ip access-group 120 out
interface Serial1
 ip unnumbered Loopback9
router ospf 1
 network 10.0.0.0 0.0.0.255 area 0
 redistribute static route-map GHOST
 distribute-list 55 in
";
        let cfg = parse_config(text).unwrap();
        let diags = config_diagnostics("config2", &cfg);
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                "undefined-acl",
                "undefined-unnumbered-target",
                "undefined-acl",
                "undefined-route-map",
            ],
        );
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
        assert!(diags[1].message.contains("Loopback9"));
    }

    #[test]
    fn duplicate_interfaces_warn_once_per_extra_definition() {
        let text = "interface Ethernet0\ninterface Ethernet0\ninterface Ethernet0\n";
        let cfg = parse_config(text).unwrap();
        let diags = config_diagnostics("config3", &cfg);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == "duplicate-interface"));
    }
}
