//! Interface names and types.
//!
//! Table 3 of the paper is a census over interface *types* — the leading
//! alphabetic part of the interface name (`Serial1/0.5` → `Serial`). The
//! [`InterfaceType`] enum enumerates exactly the nineteen types found in the
//! paper's corpus, plus `Loopback` (ubiquitous in practice even though the
//! paper's table omits it) and a tolerant `Other` catch-all.

use std::fmt;
use std::str::FromStr;

/// The hardware/virtual type of an interface, per Table 3 of the paper.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // variants are self-describing interface kinds
pub enum InterfaceType {
    Serial,
    FastEthernet,
    Atm,
    Pos,
    Ethernet,
    Hssi,
    GigabitEthernet,
    TokenRing,
    Dialer,
    Bri,
    Tunnel,
    PortChannel,
    Async,
    Virtual,
    Channel,
    Cbr,
    Fddi,
    Multilink,
    Null,
    Loopback,
    /// Any type outside the known set; the name prefix is preserved.
    Other(String),
}

impl InterfaceType {
    /// The canonical IOS spelling of this type.
    pub fn as_str(&self) -> &str {
        match self {
            InterfaceType::Serial => "Serial",
            InterfaceType::FastEthernet => "FastEthernet",
            InterfaceType::Atm => "ATM",
            InterfaceType::Pos => "POS",
            InterfaceType::Ethernet => "Ethernet",
            InterfaceType::Hssi => "Hssi",
            InterfaceType::GigabitEthernet => "GigabitEthernet",
            InterfaceType::TokenRing => "TokenRing",
            InterfaceType::Dialer => "Dialer",
            InterfaceType::Bri => "BRI",
            InterfaceType::Tunnel => "Tunnel",
            InterfaceType::PortChannel => "Port-channel",
            InterfaceType::Async => "Async",
            InterfaceType::Virtual => "Virtual-Template",
            InterfaceType::Channel => "Channel",
            InterfaceType::Cbr => "CBR",
            InterfaceType::Fddi => "Fddi",
            InterfaceType::Multilink => "Multilink",
            InterfaceType::Null => "Null",
            InterfaceType::Loopback => "Loopback",
            InterfaceType::Other(s) => s,
        }
    }

    /// The label used in the paper's Table 3 for this type.
    pub fn census_label(&self) -> &str {
        match self {
            InterfaceType::PortChannel => "Port",
            InterfaceType::Virtual => "Virtual",
            other => other.as_str(),
        }
    }

    /// Parses the alphabetic prefix of an interface name (case-insensitive,
    /// accepting common IOS abbreviations).
    pub fn from_prefix(prefix: &str) -> InterfaceType {
        let lower = prefix.to_ascii_lowercase();
        match lower.as_str() {
            "serial" | "se" => InterfaceType::Serial,
            "fastethernet" | "fa" => InterfaceType::FastEthernet,
            "atm" => InterfaceType::Atm,
            "pos" => InterfaceType::Pos,
            "ethernet" | "eth" | "et" => InterfaceType::Ethernet,
            "hssi" | "hs" => InterfaceType::Hssi,
            "gigabitethernet" | "gi" | "gige" => InterfaceType::GigabitEthernet,
            "tokenring" | "to" | "token" => InterfaceType::TokenRing,
            "dialer" | "di" => InterfaceType::Dialer,
            "bri" => InterfaceType::Bri,
            "tunnel" | "tu" => InterfaceType::Tunnel,
            "port-channel" | "po" => InterfaceType::PortChannel,
            "async" | "as" => InterfaceType::Async,
            "virtual-template" | "virtual-access" | "virtual" | "vi" => InterfaceType::Virtual,
            "channel" | "ch" => InterfaceType::Channel,
            "cbr" => InterfaceType::Cbr,
            "fddi" | "fd" => InterfaceType::Fddi,
            "multilink" | "mu" => InterfaceType::Multilink,
            "null" | "nu" => InterfaceType::Null,
            "loopback" | "lo" => InterfaceType::Loopback,
            _ => InterfaceType::Other(prefix.to_string()),
        }
    }

    /// All known (non-`Other`) types, in the order of the paper's Table 3
    /// (ascending count order as printed there), `Loopback` last.
    pub fn all_known() -> Vec<InterfaceType> {
        vec![
            InterfaceType::Null,
            InterfaceType::Multilink,
            InterfaceType::Fddi,
            InterfaceType::Cbr,
            InterfaceType::Channel,
            InterfaceType::Virtual,
            InterfaceType::Async,
            InterfaceType::PortChannel,
            InterfaceType::Tunnel,
            InterfaceType::Bri,
            InterfaceType::Dialer,
            InterfaceType::TokenRing,
            InterfaceType::GigabitEthernet,
            InterfaceType::Hssi,
            InterfaceType::Ethernet,
            InterfaceType::Pos,
            InterfaceType::Atm,
            InterfaceType::FastEthernet,
            InterfaceType::Serial,
            InterfaceType::Loopback,
        ]
    }
}

impl fmt::Display for InterfaceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A full interface name: type plus unit designator
/// (e.g. `Serial1/0.5` = [`InterfaceType::Serial`] + `"1/0.5"`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InterfaceName {
    /// The interface's hardware/virtual type.
    pub ty: InterfaceType,
    /// The unit designator: slot/port/subinterface text after the type.
    pub unit: String,
}

impl InterfaceName {
    /// Builds a name from parts.
    pub fn new(ty: InterfaceType, unit: impl Into<String>) -> InterfaceName {
        InterfaceName { ty, unit: unit.into() }
    }

    /// True if this is a subinterface (`Serial1/0.5`).
    pub fn is_subinterface(&self) -> bool {
        self.unit.contains('.')
    }

    /// The parent interface of a subinterface (`Serial1/0.5` → `Serial1/0`),
    /// or `None` if this is not a subinterface.
    pub fn parent(&self) -> Option<InterfaceName> {
        let (parent, _) = self.unit.rsplit_once('.')?;
        Some(InterfaceName { ty: self.ty.clone(), unit: parent.to_string() })
    }
}

impl fmt::Display for InterfaceName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.ty, self.unit)
    }
}

/// Error for unparseable interface names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseInterfaceNameError(String);

impl fmt::Display for ParseInterfaceNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid interface name: {:?}", self.0)
    }
}

impl std::error::Error for ParseInterfaceNameError {}

impl FromStr for InterfaceName {
    type Err = ParseInterfaceNameError;

    fn from_str(s: &str) -> Result<InterfaceName, ParseInterfaceNameError> {
        // The type is the longest leading run of letters and interior
        // hyphens (Port-channel, Virtual-Template); the unit is the rest.
        let split = s
            .char_indices()
            .find(|(_, c)| c.is_ascii_digit())
            .map(|(i, _)| i)
            .unwrap_or(s.len());
        let (prefix, unit) = s.split_at(split);
        let prefix = prefix.trim_end_matches('-');
        if prefix.is_empty() {
            return Err(ParseInterfaceNameError(s.to_string()));
        }
        Ok(InterfaceName {
            ty: InterfaceType::from_prefix(prefix),
            unit: unit.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure2_names() {
        let e: InterfaceName = "Ethernet0".parse().unwrap();
        assert_eq!(e.ty, InterfaceType::Ethernet);
        assert_eq!(e.unit, "0");
        let s: InterfaceName = "Serial1/0.5".parse().unwrap();
        assert_eq!(s.ty, InterfaceType::Serial);
        assert_eq!(s.unit, "1/0.5");
        assert!(s.is_subinterface());
        assert_eq!(s.parent().unwrap().to_string(), "Serial1/0");
        let h: InterfaceName = "Hssi2/0".parse().unwrap();
        assert_eq!(h.ty, InterfaceType::Hssi);
        assert!(!h.is_subinterface());
        assert!(h.parent().is_none());
    }

    #[test]
    fn display_roundtrip() {
        for name in ["Serial1/0.5", "FastEthernet0/1", "POS3/0", "Port-channel1", "Null0"] {
            let parsed: InterfaceName = name.parse().unwrap();
            assert_eq!(parsed.to_string(), name, "roundtrip of {name}");
        }
    }

    #[test]
    fn unknown_types_preserved() {
        let x: InterfaceName = "Vlan100".parse().unwrap();
        assert_eq!(x.ty, InterfaceType::Other("Vlan".into()));
        assert_eq!(x.to_string(), "Vlan100");
    }

    #[test]
    fn census_labels_match_table3() {
        assert_eq!(InterfaceType::PortChannel.census_label(), "Port");
        assert_eq!(InterfaceType::Virtual.census_label(), "Virtual");
        assert_eq!(InterfaceType::Pos.census_label(), "POS");
        assert_eq!(InterfaceType::all_known().len(), 20);
    }

    #[test]
    fn abbreviations() {
        assert_eq!(InterfaceType::from_prefix("Gi"), InterfaceType::GigabitEthernet);
        assert_eq!(InterfaceType::from_prefix("fa"), InterfaceType::FastEthernet);
        assert_eq!(InterfaceType::from_prefix("po"), InterfaceType::PortChannel);
    }
}
