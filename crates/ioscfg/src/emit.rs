//! Canonical serialization of the typed model back to IOS text.
//!
//! `netgen` uses this to produce the synthetic corpus; round-trip property
//! tests (`emit` → [`crate::parse_config`] → compare models) pin the parser
//! and emitter against each other. Output follows `show running-config`
//! conventions: one-space indentation for mode sub-commands and `!`
//! separators between sections.

use std::fmt::Write as _;

use crate::model::{
    AclEntry, BgpProcess, DistributeList, EigrpProcess, Interface, OspfProcess,
    Redistribution, RipProcess, RouteMap, RouterConfig, StaticRoute,
};

/// Renders a full configuration file.
pub fn emit_config(cfg: &RouterConfig) -> String {
    let mut out = String::new();
    out.push_str("version 12.2\nservice timestamps log datetime\n!\n");
    if let Some(hostname) = &cfg.hostname {
        let _ = writeln!(out, "hostname {hostname}");
        out.push_str("!\n");
    }
    for iface in &cfg.interfaces {
        emit_interface(&mut out, iface);
        out.push_str("!\n");
    }
    for ospf in &cfg.ospf {
        emit_ospf(&mut out, ospf);
        out.push_str("!\n");
    }
    for eigrp in &cfg.eigrp {
        emit_eigrp(&mut out, eigrp);
        out.push_str("!\n");
    }
    if let Some(rip) = &cfg.rip {
        emit_rip(&mut out, rip);
        out.push_str("!\n");
    }
    if let Some(bgp) = &cfg.bgp {
        emit_bgp(&mut out, bgp);
        out.push_str("!\n");
    }
    for route in &cfg.static_routes {
        emit_static(&mut out, route);
    }
    if !cfg.static_routes.is_empty() {
        out.push_str("!\n");
    }
    for acl in cfg.access_lists.values() {
        for entry in &acl.entries {
            emit_acl_entry(&mut out, acl.id, entry);
        }
    }
    if !cfg.access_lists.is_empty() {
        out.push_str("!\n");
    }
    for map in cfg.route_maps.values() {
        emit_route_map(&mut out, map);
    }
    out.push_str("end\n");
    out
}

fn emit_interface(out: &mut String, iface: &Interface) {
    let _ = write!(out, "interface {}", iface.name);
    if iface.point_to_point {
        out.push_str(" point-to-point");
    }
    out.push('\n');
    if let Some(desc) = &iface.description {
        let _ = writeln!(out, " description {desc}");
    }
    if let Some(bw) = iface.bandwidth_kbps {
        let _ = writeln!(out, " bandwidth {bw}");
    }
    match (&iface.address, &iface.unnumbered) {
        (Some(a), _) => {
            let _ = writeln!(out, " ip address {a}");
        }
        (None, Some(other)) => {
            let _ = writeln!(out, " ip unnumbered {other}");
        }
        (None, None) => out.push_str(" no ip address\n"),
    }
    for sec in &iface.secondary {
        let _ = writeln!(out, " ip address {sec} secondary");
    }
    if let Some(acl) = iface.access_group_in {
        let _ = writeln!(out, " ip access-group {acl} in");
    }
    if let Some(acl) = iface.access_group_out {
        let _ = writeln!(out, " ip access-group {acl} out");
    }
    if let Some(encap) = &iface.encapsulation {
        let _ = writeln!(out, " encapsulation {encap}");
    }
    if let Some(dlci) = iface.frame_relay_dlci {
        let _ = writeln!(out, " frame-relay interface-dlci {dlci}");
    }
    if iface.shutdown {
        out.push_str(" shutdown\n");
    }
}

fn emit_redistribute(out: &mut String, r: &Redistribution) {
    let _ = write!(out, " redistribute {}", r.source);
    if let Some(m) = r.metric {
        let _ = write!(out, " metric {m}");
    }
    if let Some(t) = r.metric_type {
        let _ = write!(out, " metric-type {t}");
    }
    if r.subnets {
        out.push_str(" subnets");
    }
    if let Some(tag) = r.tag {
        let _ = write!(out, " tag {tag}");
    }
    if let Some(map) = &r.route_map {
        let _ = write!(out, " route-map {map}");
    }
    out.push('\n');
}

fn emit_distribute(out: &mut String, dl: &DistributeList, dir: &str) {
    let _ = write!(out, " distribute-list {} {dir}", dl.acl);
    if let Some(iface) = &dl.interface {
        let _ = write!(out, " {iface}");
    }
    out.push('\n');
}

fn emit_ospf(out: &mut String, p: &OspfProcess) {
    let _ = writeln!(out, "router ospf {}", p.id);
    for r in &p.redistribute {
        emit_redistribute(out, r);
    }
    for n in &p.networks {
        let _ = writeln!(out, " network {} {} area {}", n.addr, n.wildcard, n.area);
    }
    for p in &p.passive {
        let _ = writeln!(out, " passive-interface {p}");
    }
    for dl in &p.distribute_in {
        emit_distribute(out, dl, "in");
    }
    for dl in &p.distribute_out {
        emit_distribute(out, dl, "out");
    }
    if p.default_information {
        out.push_str(" default-information originate\n");
    }
}

fn emit_eigrp(out: &mut String, p: &EigrpProcess) {
    let kind = if p.is_igrp { "igrp" } else { "eigrp" };
    let _ = writeln!(out, "router {kind} {}", p.asn);
    for r in &p.redistribute {
        emit_redistribute(out, r);
    }
    for n in &p.networks {
        match n.wildcard {
            Some(w) => {
                let _ = writeln!(out, " network {} {w}", n.addr);
            }
            None => {
                let _ = writeln!(out, " network {}", n.addr);
            }
        }
    }
    for pi in &p.passive {
        let _ = writeln!(out, " passive-interface {pi}");
    }
    for dl in &p.distribute_in {
        emit_distribute(out, dl, "in");
    }
    for dl in &p.distribute_out {
        emit_distribute(out, dl, "out");
    }
    if p.no_auto_summary {
        out.push_str(" no auto-summary\n");
    }
}

fn emit_rip(out: &mut String, p: &RipProcess) {
    out.push_str("router rip\n");
    if let Some(v) = p.version {
        let _ = writeln!(out, " version {v}");
    }
    for r in &p.redistribute {
        emit_redistribute(out, r);
    }
    for n in &p.networks {
        let _ = writeln!(out, " network {n}");
    }
    for pi in &p.passive {
        let _ = writeln!(out, " passive-interface {pi}");
    }
    for dl in &p.distribute_in {
        emit_distribute(out, dl, "in");
    }
    for dl in &p.distribute_out {
        emit_distribute(out, dl, "out");
    }
}

fn emit_bgp(out: &mut String, p: &BgpProcess) {
    let _ = writeln!(out, "router bgp {}", p.asn);
    if p.no_synchronization {
        out.push_str(" no synchronization\n");
    }
    if let Some(id) = p.router_id {
        let _ = writeln!(out, " bgp router-id {id}");
    }
    for r in &p.redistribute {
        emit_redistribute(out, r);
    }
    for (addr, mask) in &p.networks {
        match mask {
            Some(m) => {
                let _ = writeln!(out, " network {addr} mask {m}");
            }
            None => {
                let _ = writeln!(out, " network {addr}");
            }
        }
    }
    for n in &p.neighbors {
        if let Some(asn) = n.remote_as {
            let _ = writeln!(out, " neighbor {} remote-as {asn}", n.addr);
        }
        if let Some(desc) = &n.description {
            let _ = writeln!(out, " neighbor {} description {desc}", n.addr);
        }
        if let Some(src) = &n.update_source {
            let _ = writeln!(out, " neighbor {} update-source {src}", n.addr);
        }
        if n.next_hop_self {
            let _ = writeln!(out, " neighbor {} next-hop-self", n.addr);
        }
        if n.route_reflector_client {
            let _ = writeln!(out, " neighbor {} route-reflector-client", n.addr);
        }
        if n.send_community {
            let _ = writeln!(out, " neighbor {} send-community", n.addr);
        }
        if let Some(map) = &n.route_map_in {
            let _ = writeln!(out, " neighbor {} route-map {map} in", n.addr);
        }
        if let Some(map) = &n.route_map_out {
            let _ = writeln!(out, " neighbor {} route-map {map} out", n.addr);
        }
        if let Some(acl) = n.distribute_in {
            let _ = writeln!(out, " neighbor {} distribute-list {acl} in", n.addr);
        }
        if let Some(acl) = n.distribute_out {
            let _ = writeln!(out, " neighbor {} distribute-list {acl} out", n.addr);
        }
    }
}

fn emit_static(out: &mut String, r: &StaticRoute) {
    let _ = write!(out, "ip route {} {} {}", r.dest, r.mask, r.target);
    if let Some(d) = r.distance {
        let _ = write!(out, " {d}");
    }
    if let Some(t) = r.tag {
        let _ = write!(out, " tag {t}");
    }
    out.push('\n');
}

fn emit_acl_entry(out: &mut String, id: u32, e: &AclEntry) {
    match e {
        AclEntry::Standard { action, addr } => {
            let _ = writeln!(out, "access-list {id} {action} {addr}");
        }
        AclEntry::Extended { action, protocol, src, src_port, dst, dst_port, established } => {
            let _ = write!(out, "access-list {id} {action} {protocol} {src}");
            if let Some(p) = src_port {
                let _ = write!(out, " {p}");
            }
            let _ = write!(out, " {dst}");
            if let Some(p) = dst_port {
                let _ = write!(out, " {p}");
            }
            if *established {
                out.push_str(" established");
            }
            out.push('\n');
        }
    }
}

fn emit_route_map(out: &mut String, map: &RouteMap) {
    for clause in &map.clauses {
        let _ = writeln!(out, "route-map {} {} {}", map.name, clause.action, clause.seq);
        for m in &clause.matches {
            match m {
                crate::model::RmMatch::IpAddress(ids) => {
                    let list =
                        ids.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(" ");
                    let _ = writeln!(out, " match ip address {list}");
                }
                crate::model::RmMatch::Tag(tags) => {
                    let list =
                        tags.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ");
                    let _ = writeln!(out, " match tag {list}");
                }
                crate::model::RmMatch::AsPath(acl) => {
                    let _ = writeln!(out, " match as-path {acl}");
                }
                crate::model::RmMatch::Community(list) => {
                    let _ = writeln!(out, " match community {list}");
                }
            }
        }
        for s in &clause.sets {
            match s {
                crate::model::RmSet::Metric(n) => {
                    let _ = writeln!(out, " set metric {n}");
                }
                crate::model::RmSet::MetricType(t) => {
                    let _ = writeln!(out, " set metric-type type-{t}");
                }
                crate::model::RmSet::Tag(t) => {
                    let _ = writeln!(out, " set tag {t}");
                }
                crate::model::RmSet::LocalPreference(n) => {
                    let _ = writeln!(out, " set local-preference {n}");
                }
                crate::model::RmSet::Weight(n) => {
                    let _ = writeln!(out, " set weight {n}");
                }
                crate::model::RmSet::Community(v) => {
                    let _ = writeln!(out, " set community {v}");
                }
            }
        }
        out.push_str("!\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_config;

    #[test]
    fn emit_parse_roundtrip_of_rich_config() {
        let text = "\
hostname border-1
!
interface Serial1/0.5 point-to-point
 description link-to-core
 bandwidth 1544
 ip address 66.253.32.85 255.255.255.252
 ip access-group 143 in
 encapsulation frame-relay
 frame-relay interface-dlci 28
!
router ospf 128
 redistribute connected metric-type 1 subnets
 network 66.253.32.84 0.0.0.3 area 11
 distribute-list 44 in Serial1/0.5
!
router bgp 64780
 no synchronization
 redistribute ospf 128 route-map themap
 network 66.253.0.0 mask 255.255.0.0
 neighbor 66.253.160.68 remote-as 12762
 neighbor 66.253.160.68 route-map themap out
!
ip route 10.235.0.0 255.255.0.0 10.234.12.7 200 tag 5
!
access-list 143 deny 134.161.0.0 0.0.255.255
access-list 143 permit any
!
route-map themap permit 10
 match ip address 4
 set tag 100
";
        let model = parse_config(text).unwrap();
        let emitted = emit_config(&model);
        let reparsed = parse_config(&emitted).unwrap();
        assert_eq!(model, reparsed);
    }

    #[test]
    fn unaddressed_interface_emits_no_ip_address() {
        let model = parse_config("interface Null0\n no ip address\n").unwrap();
        let emitted = emit_config(&model);
        assert!(emitted.contains("interface Null0\n no ip address"));
        let reparsed = parse_config(&emitted).unwrap();
        assert_eq!(model, reparsed);
    }
}
