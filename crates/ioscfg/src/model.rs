//! The typed router-configuration model.
//!
//! This is the "router level model of the network" the paper's method
//! populates (contribution 2): every construct the routing-design analyses
//! consume, as plain data. All types are `Clone + PartialEq` so model-level
//! isomorphism checks (e.g. the anonymization-invariance test) are direct.

use std::collections::BTreeMap;
use std::fmt;

use netaddr::{Addr, Netmask, Prefix, Wildcard};

use crate::ifname::InterfaceName;

/// A complete parsed router configuration.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RouterConfig {
    /// The router's configured hostname, if present.
    pub hostname: Option<String>,
    /// Interface definitions, in file order.
    pub interfaces: Vec<Interface>,
    /// OSPF routing processes (`router ospf <pid>`), in file order.
    pub ospf: Vec<OspfProcess>,
    /// EIGRP (and legacy IGRP) routing processes, in file order.
    pub eigrp: Vec<EigrpProcess>,
    /// The RIP process (`router rip`); IOS allows at most one.
    pub rip: Option<RipProcess>,
    /// The BGP process (`router bgp <asn>`); IOS allows at most one.
    pub bgp: Option<BgpProcess>,
    /// Static routes (`ip route ...`), in file order.
    pub static_routes: Vec<StaticRoute>,
    /// Numbered access lists, keyed by number.
    pub access_lists: BTreeMap<u32, AccessList>,
    /// Route maps, keyed by name.
    pub route_maps: BTreeMap<String, RouteMap>,
    /// Commands the grammar does not cover, preserved verbatim with their
    /// line numbers. A tolerant parser is part of the methodology: real
    /// corpora always contain such lines.
    pub unparsed: Vec<(usize, String)>,
}

impl RouterConfig {
    /// The hostname, or a placeholder for anonymized files.
    pub fn name(&self) -> &str {
        self.hostname.as_deref().unwrap_or("<unnamed>")
    }

    /// Looks up an interface by name.
    pub fn interface(&self, name: &InterfaceName) -> Option<&Interface> {
        self.interfaces.iter().find(|i| &i.name == name)
    }

    /// Iterates over all primary and secondary interface subnets.
    pub fn interface_subnets(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.interfaces.iter().flat_map(|i| i.subnets())
    }

    /// All routing-process stanzas in a uniform view (used by analyses that
    /// iterate "every routing process on this router").
    pub fn routing_stanzas(&self) -> Vec<RouterStanzaKind<'_>> {
        let mut out: Vec<RouterStanzaKind<'_>> =
            self.ospf.iter().map(RouterStanzaKind::Ospf).collect();
        out.extend(self.eigrp.iter().map(RouterStanzaKind::Eigrp));
        if let Some(rip) = &self.rip {
            out.push(RouterStanzaKind::Rip(rip));
        }
        if let Some(bgp) = &self.bgp {
            out.push(RouterStanzaKind::Bgp(bgp));
        }
        out
    }
}

/// A borrowed view of any routing-process stanza.
#[derive(Clone, Copy, Debug)]
pub enum RouterStanzaKind<'a> {
    /// An OSPF process.
    Ospf(&'a OspfProcess),
    /// An EIGRP/IGRP process.
    Eigrp(&'a EigrpProcess),
    /// The RIP process.
    Rip(&'a RipProcess),
    /// The BGP process.
    Bgp(&'a BgpProcess),
}

/// An interface address: host address plus netmask.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IfAddr {
    /// The interface's own address.
    pub addr: Addr,
    /// The subnet mask.
    pub mask: Netmask,
}

impl IfAddr {
    /// The subnet this address lives in.
    pub fn subnet(self) -> Prefix {
        Prefix::from_mask(self.addr, self.mask)
    }
}

impl fmt::Display for IfAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.addr, self.mask)
    }
}

/// An interface definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Interface {
    /// The interface name (type + unit).
    pub name: InterfaceName,
    /// `description` text (anonymized corpora hash this).
    pub description: Option<String>,
    /// Primary `ip address`, absent for unnumbered/unaddressed interfaces.
    pub address: Option<IfAddr>,
    /// `ip address ... secondary` entries.
    pub secondary: Vec<IfAddr>,
    /// `ip unnumbered <interface>`: borrow another interface's address.
    pub unnumbered: Option<InterfaceName>,
    /// Inbound packet filter (`ip access-group <n> in`).
    pub access_group_in: Option<u32>,
    /// Outbound packet filter (`ip access-group <n> out`).
    pub access_group_out: Option<u32>,
    /// `encapsulation` argument (e.g. `frame-relay`, `ppp`).
    pub encapsulation: Option<String>,
    /// `frame-relay interface-dlci <n>`.
    pub frame_relay_dlci: Option<u32>,
    /// `bandwidth <kbps>`.
    pub bandwidth_kbps: Option<u32>,
    /// Interface is administratively down.
    pub shutdown: bool,
    /// `point-to-point` mode flag from the `interface` line itself.
    pub point_to_point: bool,
}

impl Interface {
    /// Creates an interface with the given name and all else defaulted.
    pub fn new(name: InterfaceName) -> Interface {
        Interface {
            name,
            description: None,
            address: None,
            secondary: Vec::new(),
            unnumbered: None,
            access_group_in: None,
            access_group_out: None,
            encapsulation: None,
            frame_relay_dlci: None,
            bandwidth_kbps: None,
            shutdown: false,
            point_to_point: false,
        }
    }

    /// All subnets (primary first, then secondaries).
    pub fn subnets(&self) -> Vec<Prefix> {
        self.address
            .iter()
            .chain(self.secondary.iter())
            .map(|a| a.subnet())
            .collect()
    }

    /// True if the interface has no address of its own.
    pub fn is_unnumbered(&self) -> bool {
        self.address.is_none() && self.unnumbered.is_some()
    }
}

/// `redistribute <source> ...` inside a routing process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Redistribution {
    /// Where the routes come from.
    pub source: RedistSource,
    /// `metric <n>` seed metric.
    pub metric: Option<u64>,
    /// `metric-type <1|2>` (OSPF external type).
    pub metric_type: Option<u8>,
    /// OSPF `subnets` keyword (redistribute subnetted routes too).
    pub subnets: bool,
    /// `route-map <name>` policy filter.
    pub route_map: Option<String>,
    /// `tag <n>` administrative tag stamped on redistributed routes.
    pub tag: Option<u32>,
}

impl Redistribution {
    /// A plain redistribution of `source` with no options.
    pub fn plain(source: RedistSource) -> Redistribution {
        Redistribution {
            source,
            metric: None,
            metric_type: None,
            subnets: false,
            route_map: None,
            tag: None,
        }
    }
}

/// The source of a route redistribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RedistSource {
    /// Directly connected subnets (the paper's "local RIB").
    Connected,
    /// Static routes (also part of the local RIB).
    Static,
    /// An OSPF process by pid.
    Ospf(u32),
    /// An EIGRP process by AS number.
    Eigrp(u32),
    /// A legacy IGRP process by AS number.
    Igrp(u32),
    /// The RIP process.
    Rip,
    /// The BGP process by AS number.
    Bgp(u32),
}

impl fmt::Display for RedistSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedistSource::Connected => write!(f, "connected"),
            RedistSource::Static => write!(f, "static"),
            RedistSource::Ospf(id) => write!(f, "ospf {id}"),
            RedistSource::Eigrp(asn) => write!(f, "eigrp {asn}"),
            RedistSource::Igrp(asn) => write!(f, "igrp {asn}"),
            RedistSource::Rip => write!(f, "rip"),
            RedistSource::Bgp(asn) => write!(f, "bgp {asn}"),
        }
    }
}

/// `distribute-list <acl> in|out [interface|protocol]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistributeList {
    /// The access list defining the filter.
    pub acl: u32,
    /// Optional interface scope (e.g. `Serial1/0.5` on line 21 of Fig. 2).
    pub interface: Option<InterfaceName>,
}

/// An OSPF area identifier (plain number or dotted-quad form).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OspfArea(pub u32);

impl fmt::Display for OspfArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An OSPF `network <addr> <wildcard> area <area>` statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OspfNetwork {
    /// Address pattern.
    pub addr: Addr,
    /// Wildcard mask (1-bits are "don't care").
    pub wildcard: Wildcard,
    /// The area interfaces matching this statement join.
    pub area: OspfArea,
}

impl OspfNetwork {
    /// True if this statement covers the given interface address.
    pub fn covers(&self, addr: Addr) -> bool {
        self.wildcard.matches(self.addr, addr)
    }
}

/// A `router ospf <pid>` process.
#[derive(Clone, Debug, PartialEq)]
pub struct OspfProcess {
    /// Process id (router-local scope only; paper Section 3.2 stresses
    /// these carry no network-wide meaning).
    pub id: u32,
    /// `network` statements, in file order (first match wins in IOS).
    pub networks: Vec<OspfNetwork>,
    /// `redistribute` statements.
    pub redistribute: Vec<Redistribution>,
    /// Inbound distribute lists.
    pub distribute_in: Vec<DistributeList>,
    /// Outbound distribute lists.
    pub distribute_out: Vec<DistributeList>,
    /// `passive-interface` names (no adjacencies formed there).
    pub passive: Vec<InterfaceName>,
    /// `default-information originate` flag.
    pub default_information: bool,
}

impl OspfProcess {
    /// An empty process with the given pid.
    pub fn new(id: u32) -> OspfProcess {
        OspfProcess {
            id,
            networks: Vec::new(),
            redistribute: Vec::new(),
            distribute_in: Vec::new(),
            distribute_out: Vec::new(),
            passive: Vec::new(),
            default_information: false,
        }
    }

    /// True if some network statement covers `addr` (associates the owning
    /// interface with this process).
    pub fn covers(&self, addr: Addr) -> bool {
        self.networks.iter().any(|n| n.covers(addr))
    }
}

/// A `network` statement in EIGRP (classful address, optional wildcard).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EigrpNetwork {
    /// Network address.
    pub addr: Addr,
    /// Optional wildcard; when absent the statement is classful.
    pub wildcard: Option<Wildcard>,
}

impl EigrpNetwork {
    /// True if this statement covers the given interface address.
    pub fn covers(&self, addr: Addr) -> bool {
        match self.wildcard {
            Some(w) => w.matches(self.addr, addr),
            None => classful_prefix(self.addr).contains(addr),
        }
    }
}

/// The classful prefix implied by a bare network address (A/B/C).
pub fn classful_prefix(addr: Addr) -> Prefix {
    let first = addr.octets()[0];
    let len = if first < 128 {
        8
    } else if first < 192 {
        16
    } else {
        24
    };
    // Invariant: len is one of 8/16/24, always <= 32.
    Prefix::new(addr, len).expect("classful lengths are valid")
}

/// A `router eigrp <asn>` (or legacy `router igrp <asn>`) process.
#[derive(Clone, Debug, PartialEq)]
pub struct EigrpProcess {
    /// The autonomous-system number scoping this process.
    pub asn: u32,
    /// True for legacy `router igrp` (the paper folds its two IGRP
    /// instances into the EIGRP counts).
    pub is_igrp: bool,
    /// `network` statements.
    pub networks: Vec<EigrpNetwork>,
    /// `redistribute` statements.
    pub redistribute: Vec<Redistribution>,
    /// Inbound distribute lists.
    pub distribute_in: Vec<DistributeList>,
    /// Outbound distribute lists.
    pub distribute_out: Vec<DistributeList>,
    /// `passive-interface` names.
    pub passive: Vec<InterfaceName>,
    /// `no auto-summary` present.
    pub no_auto_summary: bool,
}

impl EigrpProcess {
    /// An empty EIGRP process with the given ASN.
    pub fn new(asn: u32) -> EigrpProcess {
        EigrpProcess {
            asn,
            is_igrp: false,
            networks: Vec::new(),
            redistribute: Vec::new(),
            distribute_in: Vec::new(),
            distribute_out: Vec::new(),
            passive: Vec::new(),
            no_auto_summary: false,
        }
    }

    /// True if some network statement covers `addr`.
    pub fn covers(&self, addr: Addr) -> bool {
        self.networks.iter().any(|n| n.covers(addr))
    }
}

/// The `router rip` process.
#[derive(Clone, Debug, PartialEq)]
pub struct RipProcess {
    /// `version 1|2`.
    pub version: Option<u8>,
    /// Classful `network` statements.
    pub networks: Vec<Addr>,
    /// `redistribute` statements.
    pub redistribute: Vec<Redistribution>,
    /// Inbound distribute lists.
    pub distribute_in: Vec<DistributeList>,
    /// Outbound distribute lists.
    pub distribute_out: Vec<DistributeList>,
    /// `passive-interface` names.
    pub passive: Vec<InterfaceName>,
}

impl RipProcess {
    /// An empty RIP process.
    pub fn new() -> RipProcess {
        RipProcess {
            version: None,
            networks: Vec::new(),
            redistribute: Vec::new(),
            distribute_in: Vec::new(),
            distribute_out: Vec::new(),
            passive: Vec::new(),
        }
    }

    /// True if some classful network statement covers `addr`.
    pub fn covers(&self, addr: Addr) -> bool {
        self.networks.iter().any(|n| classful_prefix(*n).contains(addr))
    }
}

impl Default for RipProcess {
    fn default() -> RipProcess {
        RipProcess::new()
    }
}

/// A BGP neighbor definition (the union of that neighbor's
/// `neighbor <ip> ...` lines).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BgpNeighbor {
    /// Peer address.
    pub addr: Addr,
    /// `remote-as <asn>` — determines IBGP vs EBGP.
    pub remote_as: Option<u32>,
    /// `description` text.
    pub description: Option<String>,
    /// `update-source <interface>`.
    pub update_source: Option<InterfaceName>,
    /// `next-hop-self` flag.
    pub next_hop_self: bool,
    /// Inbound `route-map <name> in`.
    pub route_map_in: Option<String>,
    /// Outbound `route-map <name> out`.
    pub route_map_out: Option<String>,
    /// Inbound `distribute-list <acl> in`.
    pub distribute_in: Option<u32>,
    /// Outbound `distribute-list <acl> out`.
    pub distribute_out: Option<u32>,
    /// `route-reflector-client` flag.
    pub route_reflector_client: bool,
    /// `send-community` flag.
    pub send_community: bool,
}

impl BgpNeighbor {
    /// A neighbor with only the address set.
    pub fn new(addr: Addr) -> BgpNeighbor {
        BgpNeighbor {
            addr,
            remote_as: None,
            description: None,
            update_source: None,
            next_hop_self: false,
            route_map_in: None,
            route_map_out: None,
            distribute_in: None,
            distribute_out: None,
            route_reflector_client: false,
            send_community: false,
        }
    }
}

/// The `router bgp <asn>` process.
#[derive(Clone, Debug, PartialEq)]
pub struct BgpProcess {
    /// The local autonomous-system number.
    pub asn: u32,
    /// `bgp router-id <addr>`.
    pub router_id: Option<Addr>,
    /// `network <addr> [mask <mask>]` originations.
    pub networks: Vec<(Addr, Option<Netmask>)>,
    /// Neighbor definitions, keyed in file order.
    pub neighbors: Vec<BgpNeighbor>,
    /// `redistribute` statements.
    pub redistribute: Vec<Redistribution>,
    /// `no synchronization` present.
    pub no_synchronization: bool,
}

impl BgpProcess {
    /// An empty BGP process with the given ASN.
    pub fn new(asn: u32) -> BgpProcess {
        BgpProcess {
            asn,
            router_id: None,
            networks: Vec::new(),
            neighbors: Vec::new(),
            redistribute: Vec::new(),
            no_synchronization: false,
        }
    }

    /// Finds (or creates) the neighbor entry for `addr`.
    pub fn neighbor_mut(&mut self, addr: Addr) -> &mut BgpNeighbor {
        if let Some(pos) = self.neighbors.iter().position(|n| n.addr == addr) {
            return &mut self.neighbors[pos];
        }
        self.neighbors.push(BgpNeighbor::new(addr));
        // Invariant: the push above makes the vec non-empty.
        self.neighbors.last_mut().expect("just pushed")
    }

    /// Neighbors whose `remote-as` differs from the local ASN (EBGP peers).
    pub fn ebgp_neighbors(&self) -> impl Iterator<Item = &BgpNeighbor> {
        self.neighbors
            .iter()
            .filter(|n| n.remote_as.is_some_and(|asn| asn != self.asn))
    }

    /// Neighbors whose `remote-as` equals the local ASN (IBGP peers).
    pub fn ibgp_neighbors(&self) -> impl Iterator<Item = &BgpNeighbor> {
        self.neighbors
            .iter()
            .filter(|n| n.remote_as.is_some_and(|asn| asn == self.asn))
    }
}

/// The target of a static route: a next-hop address or an exit interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StaticTarget {
    /// Forward toward this next-hop address.
    NextHop(Addr),
    /// Send out this interface.
    Interface(InterfaceName),
}

impl fmt::Display for StaticTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticTarget::NextHop(a) => write!(f, "{a}"),
            StaticTarget::Interface(i) => write!(f, "{i}"),
        }
    }
}

/// An `ip route <dest> <mask> <target> [distance] [tag <t>]` command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticRoute {
    /// Destination network address (as written; host bits preserved by the
    /// emitter but the analyses use [`StaticRoute::prefix`]).
    pub dest: Addr,
    /// Destination mask.
    pub mask: Netmask,
    /// Next hop or exit interface.
    pub target: StaticTarget,
    /// Administrative distance override.
    pub distance: Option<u8>,
    /// Route tag.
    pub tag: Option<u32>,
}

impl StaticRoute {
    /// The canonical destination prefix.
    pub fn prefix(&self) -> Prefix {
        Prefix::from_mask(self.dest, self.mask)
    }

    /// True for a default route (`0.0.0.0 0.0.0.0`).
    pub fn is_default(&self) -> bool {
        self.prefix() == Prefix::DEFAULT
    }
}

/// Permit or deny.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AclAction {
    /// Matching traffic/routes are allowed.
    Permit,
    /// Matching traffic/routes are dropped.
    Deny,
}

impl fmt::Display for AclAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AclAction::Permit => write!(f, "permit"),
            AclAction::Deny => write!(f, "deny"),
        }
    }
}

/// An address matcher inside an ACL entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AclAddr {
    /// `any`.
    Any,
    /// `host <addr>`.
    Host(Addr),
    /// `<addr> <wildcard>`.
    Wild(Addr, Wildcard),
}

impl AclAddr {
    /// True if `addr` matches.
    pub fn matches(&self, addr: Addr) -> bool {
        match self {
            AclAddr::Any => true,
            AclAddr::Host(h) => *h == addr,
            AclAddr::Wild(base, w) => w.matches(*base, addr),
        }
    }

    /// The matched address set as a prefix set (exact when the wildcard is
    /// contiguous; discontiguous wildcards over-approximate to the covering
    /// prefix, which is the conservative direction for reachability).
    pub fn to_prefix_set(&self) -> netaddr::PrefixSet {
        match self {
            AclAddr::Any => netaddr::PrefixSet::all(),
            AclAddr::Host(h) => netaddr::PrefixSet::from_prefix(Prefix::host(*h)),
            AclAddr::Wild(base, w) => match w.to_netmask() {
                Some(mask) => {
                    netaddr::PrefixSet::from_prefix(Prefix::from_mask(*base, mask))
                }
                None => {
                    // Over-approximate: cover with the contiguous prefix of
                    // the leading fixed bits.
                    let fixed = w.bits().leading_zeros() as u8;
                    netaddr::PrefixSet::from_prefix(
                        // Invariant: leading_zeros of a u32 is at most 32.
                        Prefix::new(*base, fixed).expect("fixed <= 32"),
                    )
                }
            },
        }
    }
}

impl fmt::Display for AclAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AclAddr::Any => write!(f, "any"),
            AclAddr::Host(a) => write!(f, "host {a}"),
            AclAddr::Wild(a, w) => write!(f, "{a} {w}"),
        }
    }
}

/// A port match in an extended ACL entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortMatch {
    /// `eq <port>`.
    Eq(u16),
    /// `lt <port>`.
    Lt(u16),
    /// `gt <port>`.
    Gt(u16),
    /// `range <lo> <hi>`.
    Range(u16, u16),
}

impl PortMatch {
    /// True if `port` matches.
    pub fn matches(&self, port: u16) -> bool {
        match *self {
            PortMatch::Eq(p) => port == p,
            PortMatch::Lt(p) => port < p,
            PortMatch::Gt(p) => port > p,
            PortMatch::Range(lo, hi) => (lo..=hi).contains(&port),
        }
    }
}

impl fmt::Display for PortMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortMatch::Eq(p) => write!(f, "eq {p}"),
            PortMatch::Lt(p) => write!(f, "lt {p}"),
            PortMatch::Gt(p) => write!(f, "gt {p}"),
            PortMatch::Range(lo, hi) => write!(f, "range {lo} {hi}"),
        }
    }
}

/// One `access-list` clause ("filter rule" in the paper's Fig. 11 metric).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AclEntry {
    /// A standard (1–99) entry: matches source addresses only.
    Standard {
        /// Permit or deny.
        action: AclAction,
        /// The matched source addresses.
        addr: AclAddr,
    },
    /// An extended (100–199) entry.
    Extended {
        /// Permit or deny.
        action: AclAction,
        /// Protocol keyword (`ip`, `tcp`, `udp`, `icmp`, `pim`, ...).
        protocol: String,
        /// Source address matcher.
        src: AclAddr,
        /// Source port matcher (tcp/udp only).
        src_port: Option<PortMatch>,
        /// Destination address matcher.
        dst: AclAddr,
        /// Destination port matcher (tcp/udp only).
        dst_port: Option<PortMatch>,
        /// `established` flag.
        established: bool,
    },
}

impl AclEntry {
    /// The clause's action.
    pub fn action(&self) -> AclAction {
        match self {
            AclEntry::Standard { action, .. } => *action,
            AclEntry::Extended { action, .. } => *action,
        }
    }
}

/// A numbered access list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessList {
    /// The list number (1–99 standard, 100–199 extended).
    pub id: u32,
    /// Clauses in match order; IOS appends an implicit `deny any`.
    pub entries: Vec<AclEntry>,
}

impl AccessList {
    /// An empty list.
    pub fn new(id: u32) -> AccessList {
        AccessList { id, entries: Vec::new() }
    }

    /// True if the list is a standard (source-only) list by number.
    pub fn is_standard(&self) -> bool {
        self.id < 100
    }

    /// Evaluates the list against a source address (standard-list
    /// semantics; the implicit trailing rule denies).
    pub fn permits_source(&self, addr: Addr) -> bool {
        for e in &self.entries {
            let (action, matched) = match e {
                AclEntry::Standard { action, addr: m } => (*action, m.matches(addr)),
                AclEntry::Extended { action, src, .. } => (*action, src.matches(addr)),
            };
            if matched {
                return action == AclAction::Permit;
            }
        }
        false
    }

    /// The set of source addresses the list permits, as exact set algebra
    /// over the clauses (first match wins, implicit deny at the end).
    pub fn permitted_source_set(&self) -> netaddr::PrefixSet {
        let mut permitted = netaddr::PrefixSet::empty();
        let mut already_matched = netaddr::PrefixSet::empty();
        for e in &self.entries {
            let (action, set) = match e {
                AclEntry::Standard { action, addr } => (*action, addr.to_prefix_set()),
                AclEntry::Extended { action, src, .. } => (*action, src.to_prefix_set()),
            };
            let fresh = set.difference(&already_matched);
            if action == AclAction::Permit {
                permitted = permitted.union(&fresh);
            }
            already_matched = already_matched.union(&set);
        }
        permitted
    }
}

/// A `match` condition inside a route-map clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RmMatch {
    /// `match ip address <acl>...`.
    IpAddress(Vec<u32>),
    /// `match tag <t>...`.
    Tag(Vec<u32>),
    /// `match as-path <acl>`.
    AsPath(u32),
    /// `match community <list>`.
    Community(u32),
}

/// A `set` action inside a route-map clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RmSet {
    /// `set metric <n>`.
    Metric(u64),
    /// `set metric-type type-1|type-2`.
    MetricType(u8),
    /// `set tag <t>`.
    Tag(u32),
    /// `set local-preference <n>`.
    LocalPreference(u32),
    /// `set weight <n>`.
    Weight(u32),
    /// `set community <value>`.
    Community(String),
}

/// One clause of a route map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMapClause {
    /// Sequence number.
    pub seq: u32,
    /// Permit or deny.
    pub action: AclAction,
    /// Match conditions (all must hold).
    pub matches: Vec<RmMatch>,
    /// Set actions applied on permit.
    pub sets: Vec<RmSet>,
}

/// A named route map (ordered clauses; first matching clause decides).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMap {
    /// The route-map name (hashed in anonymized corpora).
    pub name: String,
    /// Clauses in sequence order.
    pub clauses: Vec<RouteMapClause>,
}

impl RouteMap {
    /// An empty route map.
    pub fn new(name: impl Into<String>) -> RouteMap {
        RouteMap { name: name.into(), clauses: Vec::new() }
    }

    /// Total number of clauses ("filter rules" for Fig. 11 accounting).
    pub fn rule_count(&self) -> usize {
        self.clauses.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn classful_prefixes() {
        assert_eq!(classful_prefix(addr("10.0.0.0")).to_string(), "10.0.0.0/8");
        assert_eq!(classful_prefix(addr("172.16.0.0")).to_string(), "172.16.0.0/16");
        assert_eq!(classful_prefix(addr("192.168.1.0")).to_string(), "192.168.1.0/24");
    }

    #[test]
    fn acl_first_match_wins() {
        // Mirrors Fig. 2 lines 30-31: deny 134.161/16 then permit any.
        let acl = AccessList {
            id: 143,
            entries: vec![
                AclEntry::Standard {
                    action: AclAction::Deny,
                    addr: AclAddr::Wild(addr("134.161.0.0"), "0.0.255.255".parse().unwrap()),
                },
                AclEntry::Standard { action: AclAction::Permit, addr: AclAddr::Any },
            ],
        };
        assert!(!acl.permits_source(addr("134.161.5.5")));
        assert!(acl.permits_source(addr("8.8.8.8")));
        let set = acl.permitted_source_set();
        assert!(!set.contains(addr("134.161.255.255")));
        assert!(set.contains(addr("134.162.0.0")));
    }

    #[test]
    fn acl_implicit_deny() {
        let acl = AccessList {
            id: 4,
            entries: vec![AclEntry::Standard {
                action: AclAction::Permit,
                addr: AclAddr::Host(addr("10.0.0.1")),
            }],
        };
        assert!(acl.permits_source(addr("10.0.0.1")));
        assert!(!acl.permits_source(addr("10.0.0.2")));
        assert_eq!(acl.permitted_source_set().size(), 1);
    }

    #[test]
    fn bgp_neighbor_classification() {
        let mut bgp = BgpProcess::new(64780);
        bgp.neighbor_mut(addr("66.253.160.68")).remote_as = Some(12762);
        bgp.neighbor_mut(addr("10.0.0.2")).remote_as = Some(64780);
        assert_eq!(bgp.ebgp_neighbors().count(), 1);
        assert_eq!(bgp.ibgp_neighbors().count(), 1);
        // Updating an existing neighbor does not duplicate it.
        bgp.neighbor_mut(addr("10.0.0.2")).next_hop_self = true;
        assert_eq!(bgp.neighbors.len(), 2);
    }

    #[test]
    fn ospf_network_coverage() {
        let mut ospf = OspfProcess::new(64);
        ospf.networks.push(OspfNetwork {
            addr: addr("66.251.75.128"),
            wildcard: "0.0.0.127".parse().unwrap(),
            area: OspfArea(0),
        });
        assert!(ospf.covers(addr("66.251.75.144")));
        assert!(!ospf.covers(addr("66.251.75.1")));
    }

    #[test]
    fn static_route_prefix_and_default() {
        let r = StaticRoute {
            dest: addr("10.235.240.71"),
            mask: "255.255.0.0".parse().unwrap(),
            target: StaticTarget::NextHop(addr("10.234.12.7")),
            distance: None,
            tag: None,
        };
        assert_eq!(r.prefix().to_string(), "10.235.0.0/16");
        assert!(!r.is_default());
        let d = StaticRoute {
            dest: Addr::ZERO,
            mask: Netmask::ANY,
            target: StaticTarget::NextHop(addr("10.0.0.1")),
            distance: None,
            tag: None,
        };
        assert!(d.is_default());
    }

    #[test]
    fn interface_subnets_include_secondaries() {
        let mut i = Interface::new("Ethernet0".parse().unwrap());
        i.address = Some(IfAddr { addr: addr("10.0.0.1"), mask: "255.255.255.0".parse().unwrap() });
        i.secondary.push(IfAddr { addr: addr("10.0.1.1"), mask: "255.255.255.0".parse().unwrap() });
        let subnets = i.subnets();
        assert_eq!(subnets.len(), 2);
        assert_eq!(subnets[0].to_string(), "10.0.0.0/24");
        assert!(!i.is_unnumbered());
    }

    #[test]
    fn port_match_semantics() {
        assert!(PortMatch::Eq(80).matches(80));
        assert!(PortMatch::Lt(1024).matches(1023));
        assert!(!PortMatch::Lt(1024).matches(1024));
        assert!(PortMatch::Gt(1024).matches(1025));
        assert!(PortMatch::Range(20, 21).matches(21));
        assert!(!PortMatch::Range(20, 21).matches(22));
    }
}
