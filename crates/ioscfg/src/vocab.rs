//! The grammar's keyword vocabulary.
//!
//! The paper's anonymizer (Section 4.1) whitelists "all of the words found
//! in the published Cisco IOS command reference guide" and hashes every
//! other non-numeric token. Our equivalent whitelist is the set of bare
//! keywords this crate's grammar emits or accepts; the anonymizer treats
//! everything outside it (hostnames, descriptions, route-map names) as
//! user data to be hashed.

/// Returns the sorted list of known IOS keywords.
///
/// The list covers every literal word the parser matches and the emitter
/// writes, so an emitted configuration anonymizes to a configuration with
/// identical structure.
pub fn vocabulary() -> &'static [&'static str] {
    &[
        "access-group",
        "access-list",
        "address",
        "ahp",
        "any",
        "area",
        "as-path",
        "auto-cost",
        "auto-summary",
        "bandwidth",
        "banner",
        "bgp",
        "boot",
        "classless",
        "clock",
        "community",
        "connected",
        "datetime",
        "default-information",
        "default-metric",
        "deny",
        "description",
        "distribute-list",
        "eigrp",
        "enable",
        "encapsulation",
        "end",
        "eq",
        "esp",
        "established",
        "frame-relay",
        "gre",
        "gt",
        "hdlc",
        "host",
        "hostname",
        "icmp",
        "igmp",
        "igrp",
        "in",
        "interface",
        "interface-dlci",
        "ip",
        "line",
        "local-preference",
        "log",
        "log-adjacency-changes",
        "logging",
        "lt",
        "mask",
        "match",
        "maximum-paths",
        "metric",
        "metric-type",
        "multipoint",
        "neighbor",
        "network",
        "next-hop-self",
        "no",
        "ntp",
        "originate",
        "ospf",
        "out",
        "passive-interface",
        "permit",
        "pim",
        "point-to-point",
        "ppp",
        "range",
        "redistribute",
        "remote-as",
        "rip",
        "route",
        "route-map",
        "route-reflector-client",
        "router",
        "router-id",
        "secondary",
        "send-community",
        "service",
        "set",
        "shutdown",
        "snmp-server",
        "soft-reconfiguration",
        "static",
        "subnet-zero",
        "subnets",
        "synchronization",
        "tag",
        "tcp",
        "timestamps",
        "type-1",
        "type-2",
        "udp",
        "unnumbered",
        "update-source",
        "variance",
        "version",
        "weight",
    ]
}

/// True if `word` is a known IOS keyword (case-insensitive).
pub fn is_keyword(word: &str) -> bool {
    vocabulary()
        .binary_search_by(|k| {
            k.to_ascii_lowercase()
                .as_str()
                .cmp(&word.to_ascii_lowercase() as &str)
        })
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_is_sorted_for_binary_search() {
        let v = vocabulary();
        let mut sorted = v.to_vec();
        sorted.sort_unstable();
        assert_eq!(v, sorted.as_slice());
    }

    #[test]
    fn keyword_membership() {
        assert!(is_keyword("redistribute"));
        assert!(is_keyword("REDISTRIBUTE"));
        assert!(!is_keyword("8aTzlvBrbaW"));
        assert!(!is_keyword("my-route-map"));
    }
}
