//! A Cisco IOS-style router-configuration toolchain: lexer, typed model,
//! parser, and emitter.
//!
//! The paper's entire methodology starts from "dumps of the local
//! configuration state of each router" — IOS `show running-config` text.
//! This crate turns that text into a typed [`RouterConfig`] model and back:
//!
//! - [`raw`]: a lossless, indentation-structured stanza tree ([`RawConfig`]),
//!   the direct analogue of what the paper's scripts walk over.
//! - [`model`]: the typed router model — [`Interface`]s, routing processes
//!   ([`OspfProcess`], [`EigrpProcess`], [`RipProcess`], [`BgpProcess`]),
//!   [`StaticRoute`]s, [`AccessList`]s and [`RouteMap`]s.
//! - [`parse`]: tolerant parsing. Real configuration corpora always contain
//!   commands outside any parser's grammar; unknown lines are preserved in
//!   [`RouterConfig::unparsed`] rather than failing the file, while
//!   malformed *known* commands are hard errors with line numbers.
//! - [`diagnose`]: per-configuration diagnostics — everything the tolerant
//!   parser skipped (unknown stanzas) or cannot vouch for (dangling ACL /
//!   route-map / unnumbered references), as `rd_obs::Diagnostic`s with
//!   file, line, and severity.
//! - [`emit`]: canonical serialization back to IOS text. `netgen` uses this
//!   to produce the synthetic corpus, and round-trip property tests pin the
//!   parser and emitter against each other.
//! - [`vocabulary`]: the set of bare keywords the grammar knows, which the
//!   anonymizer uses as its "published command reference" whitelist
//!   (paper Section 4.1).
//!
//! The grammar covers the 2004-era constructs the paper's analyses consume:
//! interface addressing and packet-filter bindings, OSPF/EIGRP/IGRP/RIP/BGP
//! processes with `network`, `neighbor`, `redistribute` and
//! `distribute-list` statements, standard and extended access lists, route
//! maps, and static routes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnose;
pub mod emit;
mod error;
mod ifname;
pub mod model;
pub mod parse;
pub mod raw;
mod vocab;

pub use diagnose::config_diagnostics;
pub use error::{ParseError, ParseErrorKind};
pub use ifname::{InterfaceName, InterfaceType};
pub use emit::emit_config;
pub use model::{
    classful_prefix, AccessList, AclAction, AclAddr, AclEntry, BgpNeighbor, BgpProcess,
    DistributeList, EigrpNetwork, EigrpProcess, IfAddr, Interface, OspfArea, OspfNetwork,
    OspfProcess, PortMatch, Redistribution, RedistSource, RipProcess, RouteMap,
    RouteMapClause, RouterConfig, RouterStanzaKind, RmMatch, RmSet, StaticRoute,
    StaticTarget,
};
pub use parse::{parse_config, parse_raw};
pub use raw::{lex_config, RawConfig, Stanza};
pub use vocab::{is_keyword, vocabulary};
