//! Programmatic construction of router configurations.

use ioscfg::{IfAddr, Interface, InterfaceName, InterfaceType, RouterConfig};
use netaddr::Prefix;

/// Builds a network as a list of typed router configurations, handling
/// interface numbering and link address assignment.
#[derive(Clone, Debug, Default)]
pub struct NetworkBuilder {
    /// The routers built so far (index = router id in emission order).
    pub routers: Vec<RouterConfig>,
}

impl NetworkBuilder {
    /// An empty builder.
    pub fn new() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// Adds a router with the given hostname; returns its index.
    pub fn add_router(&mut self, hostname: impl Into<String>) -> usize {
        let mut cfg = RouterConfig::default();
        cfg.hostname = Some(hostname.into());
        self.routers.push(cfg);
        self.routers.len() - 1
    }

    /// Mutable access to a router's configuration.
    pub fn router(&mut self, idx: usize) -> &mut RouterConfig {
        &mut self.routers[idx]
    }

    /// Next unit number for an interface type on a router (`Serial0`,
    /// `Serial1`, ...).
    fn next_unit(&self, idx: usize, ty: &InterfaceType) -> String {
        let count = self.routers[idx]
            .interfaces
            .iter()
            .filter(|i| &i.name.ty == ty)
            .count();
        count.to_string()
    }

    /// Adds an interface of type `ty` with an optional address; returns
    /// its name.
    pub fn add_iface(
        &mut self,
        idx: usize,
        ty: InterfaceType,
        addr: Option<IfAddr>,
    ) -> InterfaceName {
        let name = InterfaceName::new(ty.clone(), self.next_unit(idx, &ty));
        let mut iface = Interface::new(name.clone());
        iface.address = addr;
        if let Some(a) = addr {
            // /30s on serial-style interfaces are point-to-point.
            if a.mask.len() == 30
                && matches!(ty, InterfaceType::Serial | InterfaceType::Hssi | InterfaceType::Pos)
            {
                iface.point_to_point = true;
            }
        }
        self.routers[idx].interfaces.push(iface);
        name
    }

    /// Wires a point-to-point /30 between two routers; returns the two
    /// interface names. `a` receives the first usable address.
    pub fn p2p_link(
        &mut self,
        a: usize,
        b: usize,
        subnet: Prefix,
        ty: InterfaceType,
    ) -> (InterfaceName, InterfaceName) {
        let (addr_a, addr_b) = subnet
            .p2p_hosts()
            .unwrap_or_else(|| panic!("p2p_link requires a /30, got {subnet}"));
        let mask = subnet.mask();
        let ia = self.add_iface(a, ty.clone(), Some(IfAddr { addr: addr_a, mask }));
        let ib = self.add_iface(b, ty, Some(IfAddr { addr: addr_b, mask }));
        (ia, ib)
    }

    /// Adds an external-facing /30: only our side exists in the corpus.
    pub fn external_stub(
        &mut self,
        idx: usize,
        subnet: Prefix,
        ty: InterfaceType,
    ) -> (InterfaceName, netaddr::Addr) {
        let (ours, theirs) = subnet
            .p2p_hosts()
            .unwrap_or_else(|| panic!("external_stub requires a /30, got {subnet}"));
        let name =
            self.add_iface(idx, ty, Some(IfAddr { addr: ours, mask: subnet.mask() }));
        (name, theirs)
    }

    /// Adds a LAN interface on one router (first usable host address).
    pub fn lan(&mut self, idx: usize, subnet: Prefix, ty: InterfaceType) -> InterfaceName {
        let addr = netaddr::Addr::from_u32(subnet.first().to_u32() + 1);
        self.add_iface(idx, ty, Some(IfAddr { addr, mask: subnet.mask() }))
    }

    /// Puts several routers on one shared LAN (host addresses .1, .2, ...).
    pub fn multi_lan(
        &mut self,
        routers: &[usize],
        subnet: Prefix,
        ty: InterfaceType,
    ) -> Vec<InterfaceName> {
        routers
            .iter()
            .enumerate()
            .map(|(i, &idx)| {
                let addr = netaddr::Addr::from_u32(subnet.first().to_u32() + 1 + i as u32);
                self.add_iface(idx, ty.clone(), Some(IfAddr { addr, mask: subnet.mask() }))
            })
            .collect()
    }

    /// Emits all configurations as `(file_name, text)` pairs named
    /// `config1..configN`, the layout of the paper's anonymized corpora.
    pub fn to_texts(&self) -> Vec<(String, String)> {
        self.routers
            .iter()
            .enumerate()
            .map(|(i, cfg)| (format!("config{}", i + 1), ioscfg::emit_config(cfg)))
            .collect()
    }

    /// Number of routers so far.
    pub fn len(&self) -> usize {
        self.routers.len()
    }

    /// True if no routers have been added.
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_link_assigns_both_ends() {
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("a");
        let r1 = b.add_router("b");
        let (ia, ib) = b.p2p_link(r0, r1, "10.0.0.0/30".parse().unwrap(), InterfaceType::Serial);
        assert_eq!(ia.to_string(), "Serial0");
        assert_eq!(ib.to_string(), "Serial0");
        assert_eq!(
            b.routers[0].interfaces[0].address.unwrap().addr.to_string(),
            "10.0.0.1"
        );
        assert_eq!(
            b.routers[1].interfaces[0].address.unwrap().addr.to_string(),
            "10.0.0.2"
        );
        assert!(b.routers[0].interfaces[0].point_to_point);
    }

    #[test]
    fn interface_numbering_increments_per_type() {
        let mut b = NetworkBuilder::new();
        let r = b.add_router("a");
        b.add_iface(r, InterfaceType::Serial, None);
        b.add_iface(r, InterfaceType::Serial, None);
        let fe = b.add_iface(r, InterfaceType::FastEthernet, None);
        assert_eq!(b.routers[0].interfaces[1].name.to_string(), "Serial1");
        assert_eq!(fe.to_string(), "FastEthernet0");
    }

    #[test]
    fn emitted_corpus_parses_back() {
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("a");
        let r1 = b.add_router("b");
        b.p2p_link(r0, r1, "10.0.0.0/30".parse().unwrap(), InterfaceType::Serial);
        b.lan(r0, "10.1.0.0/24".parse().unwrap(), InterfaceType::FastEthernet);
        let texts = b.to_texts();
        assert_eq!(texts.len(), 2);
        assert_eq!(texts[0].0, "config1");
        let net = nettopo::Network::from_texts(texts).unwrap();
        assert_eq!(net.len(), 2);
        let links = nettopo::LinkMap::build(&net);
        assert_eq!(links.links.len(), 2);
    }

    #[test]
    fn multi_lan_spreads_hosts() {
        let mut b = NetworkBuilder::new();
        let ids: Vec<usize> = (0..3).map(|i| b.add_router(format!("r{i}"))).collect();
        b.multi_lan(&ids, "10.5.0.0/24".parse().unwrap(), InterfaceType::Ethernet);
        let addrs: Vec<String> = (0..3)
            .map(|i| b.routers[i].interfaces[0].address.unwrap().addr.to_string())
            .collect();
        assert_eq!(addrs, vec!["10.5.0.1", "10.5.0.2", "10.5.0.3"]);
    }
}
