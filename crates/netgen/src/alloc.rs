//! Structured address plans.
//!
//! Real designers "carefully lay out" address blocks (Section 6.1): each
//! compartment draws its LANs, point-to-point links, and external-facing
//! links from distinct blocks. [`AddressPlan`] hands out /30s and /24s
//! from such blocks sequentially, which both mirrors operational practice
//! and gives the Section 3.4 block-recovery algorithm real structure to
//! find.

use netaddr::{Addr, Prefix};

/// A sequential allocator over one address block.
#[derive(Clone, Debug)]
pub struct BlockAlloc {
    block: Prefix,
    cursor: u32,
}

impl BlockAlloc {
    /// Creates an allocator over `block`.
    pub fn new(block: Prefix) -> BlockAlloc {
        BlockAlloc { block, cursor: block.first().to_u32() }
    }

    /// The governing block.
    pub fn block(&self) -> Prefix {
        self.block
    }

    /// Allocates the next subnet of the given prefix length.
    ///
    /// # Panics
    /// Panics if the block is exhausted — generator parameters are static,
    /// so exhaustion is a bug in the roster, not a runtime condition.
    pub fn alloc(&mut self, len: u8) -> Prefix {
        let size = 1u64 << (32 - len);
        // Align the cursor.
        let aligned = (u64::from(self.cursor)).div_ceil(size) * size;
        let subnet = Prefix::new(Addr::from_u32(aligned as u32), len)
            .expect("alloc length is valid");
        assert!(
            self.block.covers(subnet),
            "address block {} exhausted allocating /{len}",
            self.block
        );
        self.cursor = (aligned + size) as u32;
        subnet
    }

    /// Remaining capacity in addresses.
    pub fn remaining(&self) -> u64 {
        u64::from(self.block.last().to_u32()) + 1 - u64::from(self.cursor)
    }
}

/// A full network address plan: separate pools for infrastructure
/// point-to-point links, LANs, and external-facing links, mirroring the
/// paper's observation that external-facing interfaces often come from a
/// different block than internal ones.
#[derive(Clone, Debug)]
pub struct AddressPlan {
    /// Pool for internal /30 point-to-point links.
    pub p2p: BlockAlloc,
    /// Pool for internal LAN /24s (and /25s).
    pub lan: BlockAlloc,
    /// Pool for external-facing /30s.
    pub external: BlockAlloc,
}

impl AddressPlan {
    /// A plan carved out of one /8-style base at a compartment index
    /// (0–15): compartment `i` owns the /12 at `base.(16i).0.0`, split
    /// into a /16 point-to-point pool, a /16 external pool, and a /13 LAN
    /// pool. Compartment space is disjoint, so the Section 3.4 block
    /// recovery can tell compartments apart.
    pub fn for_compartment(base_octet: u8, compartment: u16) -> AddressPlan {
        assert!(compartment < 16, "at most 16 compartments per /8 base");
        let slab = Addr::new(base_octet, 0, 0, 0).to_u32() + (u32::from(compartment) << 20);
        let at = |offset_slots: u32, len: u8| {
            Prefix::new(Addr::from_u32(slab + (offset_slots << 16)), len)
                .expect("fixed length")
        };
        AddressPlan {
            p2p: BlockAlloc::new(at(0, 16)),
            external: BlockAlloc::new(at(1, 16)),
            lan: BlockAlloc::new(at(8, 13)),
        }
    }

    /// A plan over explicit blocks.
    pub fn over(p2p: Prefix, lan: Prefix, external: Prefix) -> AddressPlan {
        AddressPlan {
            p2p: BlockAlloc::new(p2p),
            lan: BlockAlloc::new(lan),
            external: BlockAlloc::new(external),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_disjoint_allocation() {
        let mut a = BlockAlloc::new("10.0.0.0/24".parse().unwrap());
        let s1 = a.alloc(30);
        let s2 = a.alloc(30);
        let lan = a.alloc(25);
        assert_eq!(s1.to_string(), "10.0.0.0/30");
        assert_eq!(s2.to_string(), "10.0.0.4/30");
        assert_eq!(lan.to_string(), "10.0.0.128/25");
        assert!(!s1.overlaps(s2));
        assert!(!s2.overlaps(lan));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut a = BlockAlloc::new("10.0.0.0/29".parse().unwrap());
        a.alloc(30);
        a.alloc(30);
        a.alloc(30);
    }

    #[test]
    fn compartment_plans_are_disjoint() {
        let p0 = AddressPlan::for_compartment(10, 0);
        let p1 = AddressPlan::for_compartment(10, 1);
        for a in [&p0.p2p, &p0.lan, &p0.external] {
            for b in [&p1.p2p, &p1.lan, &p1.external] {
                assert!(!a.block().overlaps(b.block()), "{} vs {}", a.block(), b.block());
            }
        }
        // Pools within one plan are disjoint too.
        assert!(!p0.p2p.block().overlaps(p0.lan.block()));
        assert!(!p0.lan.block().overlaps(p0.external.block()));
    }

    #[test]
    fn remaining_decreases() {
        let mut a = BlockAlloc::new("10.0.0.0/24".parse().unwrap());
        let before = a.remaining();
        a.alloc(30);
        assert_eq!(a.remaining(), before - 4);
    }
}
