//! Writes the generated study corpus to disk as directories of config
//! files (`<out>/net1/config1` ...), for use with `rdx` or any external
//! tool.
//!
//! ```sh
//! cargo run --release -p netgen --bin emit_study -- <out-dir> [--small] [netNN ...]
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(out) = args.first() else {
        eprintln!("usage: emit_study <out-dir> [--small] [netNN ...]");
        std::process::exit(1);
    };
    let small = args.iter().any(|a| a == "--small");
    let scale = if small { netgen::StudyScale::Small } else { netgen::StudyScale::Full };
    let wanted: Vec<&String> =
        args.iter().skip(1).filter(|a| !a.starts_with("--")).collect();
    for spec in netgen::study_roster(scale) {
        if !wanted.is_empty() && !wanted.iter().any(|w| **w == spec.name) {
            continue;
        }
        let dir = std::path::Path::new(out).join(&spec.name);
        std::fs::create_dir_all(&dir).expect("create network dir");
        let generated = netgen::study::generate_network(&spec, scale);
        for (name, text) in &generated.texts {
            std::fs::write(dir.join(name), text).expect("write config");
        }
        eprintln!("{}: {} configs", spec.name, generated.texts.len());
    }
}
