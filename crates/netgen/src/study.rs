//! The 31-network study roster and the Figure 8 repository model.
//!
//! The roster reproduces every population parameter the paper publishes:
//!
//! - 8,035 router configurations across 31 networks;
//! - 4 backbones of 400–600 routers (mean 540), three POS-based and one
//!   HSSI/ATM-based (Section 7.2/7.3);
//! - 7 textbook enterprises of 19–101 routers, the largest splitting its
//!   101 routers across two IGP instances;
//! - 20 further networks of 4–1750 routers (median ≈36) including net5
//!   (881 routers), net15 (79), three networks with no BGP, two tier-2
//!   providers (1430 and 1750 routers — two of the four networks larger
//!   than any backbone, alongside 760 and net5's ≈890), and a dozen
//!   unclassifiable hybrids;
//! - packet-filter profiles spread so that, as in Figure 11, three
//!   networks have no filters and more than 30% of networks put at least
//!   40% of their filter rules on internal links.

use rd_rng::StdRng;

use crate::designs::{backbone, ebgpwan, enterprise, hybrid, net15, net5, nobgp, tier2, DesignOutput};
use crate::dressing::{self, FilterProfile, InterfaceMix};

/// Which design archetype a roster entry uses.
#[derive(Clone, Debug, PartialEq)]
pub enum DesignKind {
    /// Textbook backbone; `use_pos` selects the long-haul technology.
    Backbone {
        /// POS long-haul (3 of 4) vs HSSI/ATM.
        use_pos: bool,
    },
    /// Textbook enterprise; `split_igp` reproduces the two-instance case.
    Enterprise {
        /// Divide routers across two IGP instances.
        split_igp: bool,
        /// Hierarchical OSPF areas (the two largest enterprises).
        multi_area: bool,
    },
    /// Tier-2 provider with staging IGP instances.
    Tier2,
    /// No BGP anywhere.
    NoBgp {
        /// RIP instead of OSPF.
        use_rip: bool,
    },
    /// Unclassifiable hybrid.
    Hybrid {
        /// Number of IGP compartments.
        compartments: usize,
        /// Internal-EBGP glue fraction in eighths.
        ebgp_glue_eighths: u8,
    },
    /// Managed WAN where every spoke site is its own private AS speaking
    /// EBGP to the hub (the intra-network EBGP bulk of Table 1).
    EbgpWan,
    /// The net5 case study.
    Net5,
    /// The net15 case study.
    Net15,
}

/// One roster entry.
#[derive(Clone, Debug)]
pub struct NetworkSpec {
    /// Stable name (`net1` … `net31`, numbered as in the paper's spirit).
    pub name: String,
    /// Archetype.
    pub kind: DesignKind,
    /// Target router count.
    pub routers: usize,
    /// Packet-filter placement target (Figure 11).
    pub filter: FilterProfile,
    /// Extra dressing interfaces per router (Table 3 calibration).
    pub dress_extra: usize,
    /// Deterministic seed.
    pub seed: u64,
}

/// Study scale: `Full` regenerates the paper-sized corpus; `Small` shrinks
/// router counts ~10× for fast test runs while preserving every design's
/// structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StudyScale {
    /// Paper-sized (8,035 routers total).
    Full,
    /// ≈10% size for tests.
    Small,
}

impl StudyScale {
    fn routers(self, full: usize) -> usize {
        match self {
            StudyScale::Full => full,
            StudyScale::Small => (full / 10).max(4),
        }
    }

    fn dress(self, full: usize) -> usize {
        match self {
            StudyScale::Full => full,
            StudyScale::Small => (full / 3).max(1),
        }
    }

    /// The net5/net15 scale factor.
    pub fn case_scale(self) -> f64 {
        match self {
            StudyScale::Full => 1.0,
            StudyScale::Small => 0.12,
        }
    }
}

/// A generated network: its spec and its emitted configuration files.
#[derive(Clone, Debug)]
pub struct GeneratedNetwork {
    /// The roster entry.
    pub spec: NetworkSpec,
    /// `(file_name, config_text)` pairs.
    pub texts: Vec<(String, String)>,
}

/// Builds the 31-network roster.
pub fn study_roster(scale: StudyScale) -> Vec<NetworkSpec> {
    let mut roster: Vec<(DesignKind, usize, usize)> = Vec::new(); // kind, routers, dress

    // 4 backbones (mean 540; the HSSI/ATM one is net4).
    for (routers, use_pos) in [(420, true), (560, true), (600, true), (580, false)] {
        roster.push((DesignKind::Backbone { use_pos }, routers, 6));
    }
    // 7 textbook enterprises; the two largest use hierarchical areas.
    for routers in [19, 25, 30, 40, 55] {
        roster.push((DesignKind::Enterprise { split_igp: false, multi_area: false }, routers, 6));
    }
    roster.push((DesignKind::Enterprise { split_igp: false, multi_area: true }, 70, 6));
    roster.push((DesignKind::Enterprise { split_igp: true, multi_area: true }, 101, 6));
    // net5 and net15.
    roster.push((DesignKind::Net5, 881, 7));
    roster.push((DesignKind::Net15, 79, 6));
    // 3 no-BGP networks.
    roster.push((DesignKind::NoBgp { use_rip: true }, 4, 6));
    roster.push((DesignKind::NoBgp { use_rip: false }, 9, 6));
    roster.push((DesignKind::NoBgp { use_rip: true }, 15, 6));
    // 2 tier-2 providers (the 1430- and 1750-router giants).
    roster.push((DesignKind::Tier2, 1430, 6));
    roster.push((DesignKind::Tier2, 1750, 6));
    // 13 remaining networks: three EBGP-WANs (760 — the last
    // larger-than-backbone network — plus 162 and 105) and ten hybrids.
    roster.push((DesignKind::EbgpWan, 760, 6));
    roster.push((DesignKind::EbgpWan, 162, 6));
    roster.push((DesignKind::EbgpWan, 105, 6));
    let hybrid_sizes = [6, 14, 20, 26, 31, 34, 38, 44, 52, 75];
    for (i, routers) in hybrid_sizes.iter().enumerate() {
        roster.push((
            DesignKind::Hybrid {
                compartments: 2 + i % 5,
                ebgp_glue_eighths: (i as u8 * 3) % 9,
            },
            *routers,
            6,
        ));
    }

    assert_eq!(roster.len(), 31);
    debug_assert_eq!(
        roster.iter().map(|(_, r, _)| r).sum::<usize>(),
        8035,
        "full-scale roster must total 8,035 routers"
    );

    // Filter profiles: three networks with none; the rest spread so ≥40%
    // internal-rule fractions cover >30% of networks (Figure 11).
    let fractions = [
        0.02, 0.05, 0.08, 0.10, 0.12, 0.15, 0.18, 0.20, 0.22, 0.25, 0.28, 0.30, 0.32,
        0.35, 0.38, 0.42, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90,
        0.95, 0.98,
    ];

    // Names: the two case studies keep the paper's labels (net5, net15);
    // the rest take the remaining numbers in roster order.
    let mut next_number = 1u32;
    let mut take_number = move || {
        while next_number == 5 || next_number == 15 {
            next_number += 1;
        }
        let n = next_number;
        next_number += 1;
        n
    };

    let mut out = Vec::with_capacity(31);
    let mut fraction_idx = 0;
    for (i, (kind, routers, dress)) in roster.into_iter().enumerate() {
        let filter = if matches!(kind, DesignKind::NoBgp { .. }) {
            // The three no-BGP networks double as the three filterless
            // networks.
            FilterProfile { internal_fraction: None }
        } else {
            let f = fractions[fraction_idx % fractions.len()];
            fraction_idx += 1;
            FilterProfile { internal_fraction: Some(f) }
        };
        let name = match kind {
            DesignKind::Net5 => "net5".to_string(),
            DesignKind::Net15 => "net15".to_string(),
            _ => format!("net{}", take_number()),
        };
        out.push(NetworkSpec {
            name,
            kind,
            routers: scale.routers(routers),
            filter,
            dress_extra: scale.dress(dress),
            seed: 0x5157_2004 + i as u64,
        });
    }
    out
}

/// Generates one network from its spec.
pub fn generate_network(spec: &NetworkSpec, scale: StudyScale) -> GeneratedNetwork {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut design: DesignOutput = match &spec.kind {
        DesignKind::Backbone { use_pos } => backbone::generate(
            backbone::BackboneSpec {
                routers: spec.routers,
                use_pos: *use_pos,
                asn: 65100,
                peers_per_edge: 2,
            },
            &mut rng,
        ),
        DesignKind::Enterprise { split_igp, multi_area } => enterprise::generate(
            enterprise::EnterpriseSpec {
                routers: spec.routers,
                split_igp: *split_igp && spec.routers >= 12,
                upstreams: 1 + (spec.seed as usize % 2),
                multi_area: *multi_area,
            },
            &mut rng,
        ),
        DesignKind::Tier2 => tier2::generate(
            tier2::Tier2Spec {
                routers: spec.routers,
                asn: 65200,
                staging_customers_per_edge: 3,
            },
            &mut rng,
        ),
        DesignKind::NoBgp { use_rip } => nobgp::generate(
            nobgp::NoBgpSpec { routers: spec.routers, use_rip: *use_rip },
            &mut rng,
        ),
        DesignKind::Hybrid { compartments, ebgp_glue_eighths } => hybrid::generate(
            hybrid::HybridSpec {
                routers: spec.routers,
                compartments: *compartments,
                ebgp_glue_eighths: *ebgp_glue_eighths,
                igp_edge_customers: 2,
                has_upstream: true,
            },
            &mut rng,
        ),
        DesignKind::EbgpWan => ebgpwan::generate(
            ebgpwan::EbgpWanSpec {
                routers: spec.routers,
                hubs: 2,
                hub_asn: 65000,
            },
            &mut rng,
        ),
        DesignKind::Net5 => {
            net5::generate(net5::Net5Spec { scale: scale.case_scale() }, &mut rng)
        }
        DesignKind::Net15 => {
            net15::generate(net15::Net15Spec { scale: scale.case_scale() }, &mut rng)
        }
    };

    // Dressing: interface mix + rare-type sprinkles + filters.
    let mix = match spec.kind {
        DesignKind::Backbone { .. } | DesignKind::Tier2 => InterfaceMix::backbone(),
        _ => InterfaceMix::enterprise(),
    };
    dressing::dress_interfaces(&mut design.builder, &mut rng, &mix, spec.dress_extra);
    // Site-local IGP processes: the intra-domain bulk of Table 1. The
    // case studies keep fewer so their headline instance counts stay
    // exact.
    let site_igps = match spec.kind {
        DesignKind::Net5 | DesignKind::Net15 => 0,
        DesignKind::NoBgp { .. } => 1,
        _ => 3,
    };
    dressing::add_site_igps(&mut design.builder, &mut rng, site_igps);
    // Configuration bulk (Figure 4): the case-study network gets the
    // paper's heavy profile (≈270 command lines per router).
    let verbosity = match spec.kind {
        DesignKind::Net5 => dressing::Verbosity::heavy(),
        _ => dressing::Verbosity::light(),
    };
    dressing::add_verbosity(&mut design.builder, &mut rng, verbosity);
    match spec.kind {
        DesignKind::Net5 => {
            dressing::sprinkle(&mut design.builder, &mut rng, ioscfg::InterfaceType::Cbr, 14);
            dressing::sprinkle(&mut design.builder, &mut rng, ioscfg::InterfaceType::Null, 2);
        }
        DesignKind::Backbone { use_pos: false } => {
            dressing::sprinkle(&mut design.builder, &mut rng, ioscfg::InterfaceType::Fddi, 6);
        }
        DesignKind::Tier2 => {
            dressing::sprinkle(
                &mut design.builder,
                &mut rng,
                ioscfg::InterfaceType::Multilink,
                2,
            );
        }
        _ => {}
    }
    dressing::apply_filters(
        &mut design.builder,
        &mut rng,
        spec.filter,
        &design.external_ifaces,
        &design.internal_ifaces,
    );

    let texts = design.builder.to_texts();
    rd_obs::metrics::counter_add("netgen.configs", texts.len() as u64);
    rd_obs::trace::event(
        "netgen.network",
        &[("name", spec.name.as_str().into()), ("configs", texts.len().into())],
    );
    GeneratedNetwork { spec: spec.clone(), texts }
}

/// Generates the whole study.
///
/// Networks are generated in parallel (`RD_THREADS` workers). Every
/// network owns its seed, so the corpus is byte-identical whatever the
/// thread count; results come back in roster order.
pub fn generate_study(scale: StudyScale) -> Vec<GeneratedNetwork> {
    let roster = study_roster(scale);
    rd_par::par_map(&roster, |_, spec| generate_network(spec, scale))
}

/// Sizes of the 2,400-network repository behind Figure 8, sampled from
/// the paper's published distribution shape ("known networks": heavily
/// skewed toward small networks).
pub fn repository_sizes(seed: u64) -> Vec<usize> {
    // (bucket upper bound exclusive, share per mille).
    const SHAPE: [(usize, usize, u32); 9] = [
        (1, 10, 560),
        (10, 20, 150),
        (20, 40, 115),
        (40, 80, 80),
        (80, 160, 50),
        (160, 320, 25),
        (320, 640, 12),
        (640, 1280, 6),
        (1280, 2200, 2),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let total = 2400usize;
    let mut out = Vec::with_capacity(total);
    for (lo, hi, share) in SHAPE {
        let count = total * share as usize / 1000;
        for _ in 0..count {
            out.push(rng.gen_range(lo..hi));
        }
    }
    while out.len() < total {
        out.push(rng.gen_range(1..10));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_paper_population() {
        let roster = study_roster(StudyScale::Full);
        assert_eq!(roster.len(), 31);
        assert_eq!(roster.iter().map(|s| s.routers).sum::<usize>(), 8035);
        let backbones: Vec<&NetworkSpec> = roster
            .iter()
            .filter(|s| matches!(s.kind, DesignKind::Backbone { .. }))
            .collect();
        assert_eq!(backbones.len(), 4);
        let mean: f64 = backbones.iter().map(|s| s.routers as f64).sum::<f64>() / 4.0;
        assert!((500.0..=580.0).contains(&mean), "backbone mean {mean}");
        // Exactly three filterless networks.
        assert_eq!(
            roster.iter().filter(|s| s.filter.internal_fraction.is_none()).count(),
            3
        );
        // >30% of networks target ≥40% internal rules.
        let heavy = roster
            .iter()
            .filter(|s| s.filter.internal_fraction.is_some_and(|f| f >= 0.4))
            .count();
        assert!(heavy * 10 > 31 * 3, "only {heavy} heavy-filter networks");
        // The four larger-than-backbone networks.
        let max_backbone = backbones.iter().map(|s| s.routers).max().unwrap();
        let bigger = roster.iter().filter(|s| s.routers > max_backbone).count();
        assert_eq!(bigger, 4);
    }

    #[test]
    fn small_scale_preserves_structure() {
        let roster = study_roster(StudyScale::Small);
        assert_eq!(roster.len(), 31);
        assert!(roster.iter().all(|s| s.routers >= 4));
    }

    #[test]
    fn generation_is_deterministic() {
        let roster = study_roster(StudyScale::Small);
        let spec = &roster[5];
        let a = generate_network(spec, StudyScale::Small);
        let b = generate_network(spec, StudyScale::Small);
        assert_eq!(a.texts, b.texts);
    }

    #[test]
    fn generated_networks_parse_and_match_size() {
        // Spot-check three archetypes at small scale.
        let roster = study_roster(StudyScale::Small);
        for idx in [0usize, 4, 30] {
            let spec = &roster[idx];
            let generated = generate_network(spec, StudyScale::Small);
            let net = nettopo::Network::from_texts(generated.texts).unwrap();
            if !matches!(spec.kind, DesignKind::Net5 | DesignKind::Net15) {
                assert_eq!(net.len(), spec.routers, "{}", spec.name);
            }
            // Everything parsed cleanly.
            for (_, r) in net.iter() {
                assert!(
                    r.config.unparsed.is_empty(),
                    "{}: unparsed lines {:?}",
                    spec.name,
                    r.config.unparsed
                );
            }
        }
    }

    #[test]
    fn repository_distribution_is_skewed_small() {
        let sizes = repository_sizes(8);
        assert_eq!(sizes.len(), 2400);
        let small = sizes.iter().filter(|&&s| s < 10).count();
        assert!(small as f64 / 2400.0 > 0.5, "small fraction {small}/2400");
        assert!(sizes.iter().any(|&s| s > 1280));
    }
}
