//! Deterministic synthetic-network generator.
//!
//! The paper's corpus — 8,035 Cisco IOS configuration files from 31
//! production networks — is proprietary. This crate is the substitution
//! DESIGN.md documents: it *generates* configuration corpora whose design
//! archetypes and aggregate statistics are calibrated to everything the
//! paper publishes about its population, then hands plain IOS text to the
//! same reverse-engineering pipeline the paper ran. The pipeline never
//! sees the generator's internal model, only emitted configuration files.
//!
//! - [`alloc`]: structured address plans (compartment blocks, /30 pools,
//!   LAN pools) — "the address blocks used in the network were carefully
//!   laid out" (Section 6.1).
//! - [`builder`]: programmatic construction of router configurations and
//!   links on top of `ioscfg`'s typed model and emitter.
//! - [`dressing`]: the realism layer — extra interfaces matching Table 3's
//!   census mix, packet-filter profiles matching Figure 11's placement
//!   distribution, static routes and secondary addresses.
//! - [`designs`]: one generator per archetype: textbook enterprise,
//!   textbook backbone, tier-2 with staging IGP instances, no-BGP,
//!   "unclassifiable" hybrids, and faithful models of the two case-study
//!   networks **net5** (Section 5.1/6.1) and **net15** (Section 6.2).
//! - [`study`]: the 31-network roster with the paper's size distribution,
//!   plus the 2,400-network repository model behind Figure 8.
//!
//! Everything is deterministic given a seed: the same roster regenerates
//! byte-identical corpora, which the benchmark harness relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod builder;
pub mod designs;
pub mod dressing;
pub mod study;

pub use alloc::AddressPlan;
pub use builder::NetworkBuilder;
pub use study::{repository_sizes, study_roster, GeneratedNetwork, NetworkSpec, StudyScale};
