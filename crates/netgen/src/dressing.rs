//! The realism layer: interface mixes, packet-filter profiles, and other
//! configuration bulk.
//!
//! Real routers carry far more configuration than the minimum needed to
//! route: unused ports, dial backup, tunnels, filters, static routes. The
//! paper's population statistics (Table 3's interface census, Figure 4's
//! config sizes, Figure 11's filter placement) all reflect that bulk, so
//! the generator reproduces it here, calibrated to the published mix.

use ioscfg::{
    AccessList, AclAction, AclAddr, AclEntry, InterfaceType, PortMatch,
};
use netaddr::{Addr, Wildcard};
use rd_rng::StdRng;

use crate::builder::NetworkBuilder;

/// Weighted interface mix for dressing (per mille).
///
/// Derived from Table 3 of the paper: Serial dominates (~55%), then
/// FastEthernet (~21%), ATM, POS, Ethernet, Hssi, GigabitEthernet, and a
/// long tail. POS weight is zero outside backbone-style networks — the
/// paper notes POS appears in three of four backbones and only two
/// enterprises.
#[derive(Clone, Debug)]
pub struct InterfaceMix {
    weights: Vec<(InterfaceType, u32)>,
    total: u32,
}

impl InterfaceMix {
    /// The mix for ordinary enterprise-style networks.
    pub fn enterprise() -> InterfaceMix {
        InterfaceMix::from_weights(vec![
            (InterfaceType::Serial, 425),
            (InterfaceType::FastEthernet, 290),
            (InterfaceType::Atm, 75),
            (InterfaceType::Ethernet, 55),
            (InterfaceType::Hssi, 20),
            (InterfaceType::GigabitEthernet, 22),
            (InterfaceType::TokenRing, 16),
            (InterfaceType::Dialer, 15),
            (InterfaceType::Bri, 13),
            (InterfaceType::Tunnel, 3),
            (InterfaceType::PortChannel, 2),
            (InterfaceType::Async, 2),
            (InterfaceType::Virtual, 1),
            (InterfaceType::Channel, 1),
        ])
    }

    /// The mix for backbone/tier-2 networks (adds POS, more ATM/GigE).
    pub fn backbone() -> InterfaceMix {
        InterfaceMix::from_weights(vec![
            (InterfaceType::Serial, 410),
            (InterfaceType::FastEthernet, 200),
            (InterfaceType::Atm, 110),
            (InterfaceType::Pos, 120),
            (InterfaceType::Ethernet, 35),
            (InterfaceType::Hssi, 55),
            (InterfaceType::GigabitEthernet, 40),
            (InterfaceType::TokenRing, 5),
            (InterfaceType::Dialer, 8),
            (InterfaceType::Bri, 6),
            (InterfaceType::Tunnel, 5),
            (InterfaceType::PortChannel, 3),
            (InterfaceType::Async, 2),
            (InterfaceType::Virtual, 1),
        ])
    }

    fn from_weights(weights: Vec<(InterfaceType, u32)>) -> InterfaceMix {
        let total = weights.iter().map(|(_, w)| w).sum();
        InterfaceMix { weights, total }
    }

    /// Samples one interface type.
    pub fn sample(&self, rng: &mut StdRng) -> InterfaceType {
        let mut roll = rng.gen_range(0..self.total);
        for (ty, w) in &self.weights {
            if roll < *w {
                return ty.clone();
            }
            roll -= w;
        }
        InterfaceType::Serial
    }
}

/// Adds `extra_per_router` unaddressed interfaces per router from the
/// mix, with roughly 0.5% of them configured `ip unnumbered` (Section 2.1
/// reports 528 unnumbered of 96,487 total).
pub fn dress_interfaces(
    builder: &mut NetworkBuilder,
    rng: &mut StdRng,
    mix: &InterfaceMix,
    extra_per_router: usize,
) {
    for idx in 0..builder.len() {
        // Vary per-router counts around the mean (hubs are dressed more
        // heavily by the design generators themselves).
        let count = if extra_per_router > 1 {
            rng.gen_range(extra_per_router / 2..=extra_per_router + extra_per_router / 2)
        } else {
            extra_per_router
        };
        let anchor = builder.routers[idx]
            .interfaces
            .first()
            .map(|i| i.name.clone());
        for _ in 0..count {
            let ty = mix.sample(rng);
            let name = builder.add_iface(idx, ty, None);
            // A sliver of unnumbered serials, as in the paper's corpus.
            if let Some(anchor_name) = &anchor {
                if rng.gen_ratio(1, 100) {
                    let n = builder.routers[idx]
                        .interfaces
                        .iter_mut()
                        .find(|i| i.name == name)
                        .expect("interface just added");
                    n.unnumbered = Some(anchor_name.clone());
                }
            }
        }
    }
}

/// Adds exactly `count` interfaces of a rare type somewhere in the
/// network (the Table 3 long tail: CBR 14, Fddi 6, Multilink 4, Null 2
/// across the whole corpus — too rare to sample).
pub fn sprinkle(
    builder: &mut NetworkBuilder,
    rng: &mut StdRng,
    ty: InterfaceType,
    count: usize,
) {
    for _ in 0..count {
        let idx = rng.gen_range(0..builder.len());
        builder.add_iface(idx, ty.clone(), None);
    }
}

/// Adds site-local IGP processes: single-router OSPF/EIGRP processes
/// covering one local LAN each.
///
/// Real routers carry several routing processes (Table 1's ≈23,000 IGP
/// instances over 8,035 routers imply ≈3 per router): site LAN segments,
/// legacy islands, and lab networks all run their own little IGP that
/// never touches another router. These are the *intra-domain* bulk of
/// Table 1. EIGRP ASNs are unique per router so the processes never
/// accidentally form adjacencies; OSPF processes cover only the LAN,
/// which has no second router on it.
pub fn add_site_igps(builder: &mut NetworkBuilder, rng: &mut StdRng, mean_per_router: usize) {
    if mean_per_router == 0 {
        return;
    }
    // Subnets visible from more than one router: a site OSPF/RIP process
    // speaking on one of these would form an adjacency with a neighbor's
    // process and stop being single-router, so they are excluded.
    let shared_subnets: std::collections::BTreeSet<netaddr::Prefix> = {
        let mut owner: std::collections::BTreeMap<netaddr::Prefix, usize> =
            std::collections::BTreeMap::new();
        let mut shared = std::collections::BTreeSet::new();
        for (idx, cfg) in builder.routers.iter().enumerate() {
            for subnet in cfg.interfaces.iter().filter_map(|i| i.address.map(|a| a.subnet())) {
                match owner.get(&subnet) {
                    Some(&first) if first != idx => {
                        shared.insert(subnet);
                    }
                    Some(_) => {}
                    None => {
                        owner.insert(subnet, idx);
                    }
                }
            }
        }
        shared
    };
    for idx in 0..builder.len() {
        let lan_subnets: Vec<netaddr::Prefix> = builder.routers[idx]
            .interfaces
            .iter()
            .filter(|i| {
                matches!(
                    i.name.ty,
                    InterfaceType::FastEthernet
                        | InterfaceType::Ethernet
                        | InterfaceType::GigabitEthernet
                        | InterfaceType::TokenRing
                )
            })
            .filter_map(|i| i.address.map(|a| a.subnet()))
            .filter(|s| !shared_subnets.contains(s))
            .collect();
        if lan_subnets.is_empty() {
            continue;
        }
        let count = rng.gen_range(0..=mean_per_router * 2);
        for j in 0..count {
            let subnet = lan_subnets[j % lan_subnets.len()];
            // ~55% EIGRP, ~35% OSPF, ~10% RIP: the paper's Table 1 has
            // EIGRP as the most numerous intra-domain protocol, with OSPF
            // close behind.
            let roll = rng.gen_range(0..20);
            let cfg = builder.router(idx);
            if roll < 11 {
                // Unique per (router, slot): these never form adjacencies.
                let asn = 20000 + (idx as u32) * 4 + j as u32;
                if cfg.eigrp.iter().any(|p| p.asn == asn) {
                    continue;
                }
                let mut p = ioscfg::EigrpProcess::new(asn);
                p.networks.push(ioscfg::EigrpNetwork {
                    addr: subnet.first(),
                    wildcard: Some(subnet.mask().to_wildcard()),
                });
                cfg.eigrp.push(p);
            } else if roll < 18 {
                let pid = 500 + j as u32;
                if cfg.ospf.iter().any(|p| p.id == pid) {
                    continue;
                }
                let mut p = ioscfg::OspfProcess::new(pid);
                p.networks.push(ioscfg::OspfNetwork {
                    addr: subnet.first(),
                    wildcard: subnet.mask().to_wildcard(),
                    area: ioscfg::OspfArea(0),
                });
                cfg.ospf.push(p);
            } else {
                // A site RIP segment: RIP coverage is classful, so every
                // other interface is made passive — the process speaks
                // only on its LAN and stays a single-router instance.
                if cfg.rip.is_some() {
                    continue;
                }
                let lan_iface = cfg
                    .interfaces
                    .iter()
                    .find(|i| i.address.is_some_and(|a| a.subnet() == subnet))
                    .map(|i| i.name.clone());
                let Some(lan_name) = lan_iface else { continue };
                let mut p = ioscfg::RipProcess::new();
                p.version = Some(2);
                p.networks.push(netaddr::Addr::new(10, 0, 0, 0));
                p.passive = cfg
                    .interfaces
                    .iter()
                    .filter(|i| i.name != lan_name)
                    .map(|i| i.name.clone())
                    .collect();
                cfg.rip = Some(p);
            }
        }
    }
}

/// Configuration verbosity profile (Figure 4 calibration).
///
/// Production configurations carry far more text than the routing design
/// itself: interface descriptions, bandwidth statements, static routes,
/// and — above all — access lists, many of them long and some not bound
/// to any interface at all. net5's mean of ≈270 command lines per router
/// comes from this bulk.
#[derive(Clone, Copy, Debug)]
pub struct Verbosity {
    /// Add `description`/`bandwidth` to interfaces.
    pub describe_interfaces: bool,
    /// Mean static routes per router.
    pub static_routes: usize,
    /// Mean total clauses of unapplied (standard, 60–99) ACLs per router.
    pub acl_lines: usize,
}

impl Verbosity {
    /// Light bulk for small networks.
    pub fn light() -> Verbosity {
        Verbosity { describe_interfaces: true, static_routes: 4, acl_lines: 20 }
    }

    /// The net5-style heavy bulk.
    pub fn heavy() -> Verbosity {
        Verbosity { describe_interfaces: true, static_routes: 22, acl_lines: 190 }
    }
}

/// Applies the verbosity profile.
pub fn add_verbosity(builder: &mut NetworkBuilder, rng: &mut StdRng, v: Verbosity) {
    for idx in 0..builder.len() {
        // A next hop for static routes: the far end of the router's first
        // /30 (an internal address, so externality analysis is unmoved).
        let next_hop = builder.routers[idx].interfaces.iter().find_map(|i| {
            let a = i.address?;
            let subnet = a.subnet();
            let (lo, hi) = subnet.p2p_hosts()?;
            Some(if a.addr == lo { hi } else { lo })
        });

        let cfg = builder.router(idx);
        if v.describe_interfaces {
            for iface in &mut cfg.interfaces {
                if iface.description.is_none() {
                    iface.description = Some(format!(
                        "ckt-{:05}-{}",
                        rng.gen_range(0..100_000u32),
                        iface.name.ty.census_label().to_ascii_lowercase()
                    ));
                }
                if iface.bandwidth_kbps.is_none()
                    && matches!(
                        iface.name.ty,
                        InterfaceType::Serial | InterfaceType::Hssi
                    )
                {
                    iface.bandwidth_kbps =
                        Some([64, 128, 256, 512, 1544][rng.gen_range(0..5)]);
                }
            }
        }

        if let Some(nh) = next_hop {
            let n = rng.gen_range(0..=v.static_routes * 2);
            for _ in 0..n {
                cfg.static_routes.push(ioscfg::StaticRoute {
                    dest: Addr::new(10, rng.gen_range(0..16), rng.gen_range(0..=255), 0),
                    mask: "255.255.255.0".parse().expect("mask"),
                    target: ioscfg::StaticTarget::NextHop(nh),
                    distance: None,
                    tag: None,
                });
            }
        }

        // Unapplied standard ACLs: defined but bound to nothing, the most
        // common kind of configuration cruft (and invisible to Figure 11,
        // which counts *applied* rules).
        let mut remaining = rng.gen_range(0..=v.acl_lines * 2);
        let mut id = 60u32;
        while remaining > 0 && id < 100 {
            let clauses = rng.gen_range(4..=47.min(remaining.max(4)));
            let mut entries = Vec::with_capacity(clauses);
            for k in 0..clauses {
                entries.push(AclEntry::Standard {
                    action: if k % 5 == 4 { AclAction::Permit } else { AclAction::Deny },
                    addr: AclAddr::Wild(
                        Addr::new(
                            10,
                            rng.gen_range(0..16),
                            rng.gen_range(0..=255),
                            0,
                        ),
                        Wildcard::from_bits(0xff),
                    ),
                });
            }
            remaining = remaining.saturating_sub(clauses);
            cfg.access_lists.insert(id, AccessList { id, entries });
            id += 1;
        }
    }
}

/// Filter profile for one network (Figure 11 calibration).
#[derive(Clone, Copy, Debug)]
pub struct FilterProfile {
    /// Target fraction of filter rules applied to internal links, 0..1.
    /// `None` disables filters entirely (3 of the 31 networks).
    pub internal_fraction: Option<f64>,
}

/// The starting number for generated internal-filter ACLs (extended
/// syntax, so they live in the 120–199 range).
const INTERNAL_ACL_BASE: u32 = 120;
/// The ACL number used on external-facing interfaces.
const BORDER_ACL: u32 = 110;

/// Builds a multi-clause border filter (anti-spoofing + junk-port drops).
fn border_acl() -> AccessList {
    let wild = |a: &str, w: &str| {
        AclAddr::Wild(a.parse().expect("literal address"), w.parse().expect("literal wildcard"))
    };
    AccessList {
        id: BORDER_ACL,
        entries: vec![
            AclEntry::Extended {
                action: AclAction::Deny,
                protocol: "ip".into(),
                src: wild("10.0.0.0", "0.255.255.255"),
                src_port: None,
                dst: AclAddr::Any,
                dst_port: None,
                established: false,
            },
            AclEntry::Extended {
                action: AclAction::Deny,
                protocol: "ip".into(),
                src: wild("192.168.0.0", "0.0.255.255"),
                src_port: None,
                dst: AclAddr::Any,
                dst_port: None,
                established: false,
            },
            AclEntry::Extended {
                action: AclAction::Deny,
                protocol: "udp".into(),
                src: AclAddr::Any,
                src_port: None,
                dst: AclAddr::Any,
                dst_port: Some(PortMatch::Range(135, 139)),
                established: false,
            },
            AclEntry::Extended {
                action: AclAction::Permit,
                protocol: "ip".into(),
                src: AclAddr::Any,
                src_port: None,
                dst: AclAddr::Any,
                dst_port: None,
                established: false,
            },
        ],
    }
}

/// Builds one internal-policy filter with `clauses` clauses: PIM
/// disabling, port-based application restrictions, host scoping — the
/// goals Section 5.3 observed on internal links.
fn internal_acl(id: u32, clauses: usize, rng: &mut StdRng) -> AccessList {
    let mut entries = Vec::with_capacity(clauses);
    for c in 0..clauses.saturating_sub(1) {
        let kind = rng.gen_range(0..3);
        let entry = match kind {
            0 => AclEntry::Extended {
                action: AclAction::Deny,
                protocol: "pim".into(),
                src: AclAddr::Any,
                src_port: None,
                dst: AclAddr::Any,
                dst_port: None,
                established: false,
            },
            1 => AclEntry::Extended {
                action: AclAction::Deny,
                protocol: if rng.gen_bool(0.5) { "tcp" } else { "udp" }.into(),
                src: AclAddr::Any,
                src_port: None,
                dst: AclAddr::Any,
                dst_port: Some(PortMatch::Eq(rng.gen_range(1024..9000))),
                established: false,
            },
            _ => AclEntry::Extended {
                action: if c % 2 == 0 { AclAction::Permit } else { AclAction::Deny },
                protocol: "tcp".into(),
                src: AclAddr::Host(Addr::new(
                    10,
                    rng.gen_range(0..16),
                    rng.gen_range(0..255),
                    rng.gen_range(1..255),
                )),
                src_port: None,
                dst: AclAddr::Wild(
                    Addr::new(10, rng.gen_range(0..16), 0, 0),
                    Wildcard::from_bits(0x0000_ffff),
                ),
                dst_port: Some(PortMatch::Eq(rng.gen_range(1024..9000))),
                established: false,
            },
        };
        entries.push(entry);
    }
    entries.push(AclEntry::Extended {
        action: AclAction::Permit,
        protocol: "ip".into(),
        src: AclAddr::Any,
        src_port: None,
        dst: AclAddr::Any,
        dst_port: None,
        established: false,
    });
    AccessList { id, entries }
}

/// Applies the filter profile: border ACLs on every external-facing
/// interface named in `external_ifaces` (as `(router, iface_name)`), then
/// internal ACLs sized to hit the target internal-rule fraction.
///
/// `internal_candidates` are `(router, iface_name)` pairs on internal
/// links that may carry filters.
pub fn apply_filters(
    builder: &mut NetworkBuilder,
    rng: &mut StdRng,
    profile: FilterProfile,
    external_ifaces: &[(usize, ioscfg::InterfaceName)],
    internal_candidates: &[(usize, ioscfg::InterfaceName)],
) {
    let Some(target) = profile.internal_fraction else { return };

    // Border filters.
    let mut external_rules = 0usize;
    for (router, iface) in external_ifaces {
        let cfg = builder.router(*router);
        cfg.access_lists.entry(BORDER_ACL).or_insert_with(border_acl);
        if let Some(i) = cfg.interfaces.iter_mut().find(|i| &i.name == iface) {
            i.access_group_in = Some(BORDER_ACL);
            external_rules += 4;
        }
    }
    // Internal filters: choose a rule budget R so that
    // R / (R + external_rules) ≈ target.
    let budget = if target >= 0.999 {
        24.max(external_rules * 4)
    } else {
        ((target / (1.0 - target)) * external_rules as f64).round() as usize
    };
    let mut placed = 0usize;
    let mut acl_id = INTERNAL_ACL_BASE;
    let mut candidates = internal_candidates.to_vec();
    let mut first = true;
    while placed < budget && !candidates.is_empty() {
        let pick = rng.gen_range(0..candidates.len());
        let (router, iface) = candidates.swap_remove(pick);
        // Section 5.3's anecdote: one filter crams 47 clauses of several
        // policies into a single list, because IOS allows only one filter
        // per interface. Networks with a big enough budget get one.
        let clauses = if first && budget >= 60 {
            first = false;
            47
        } else {
            rng.gen_range(3..=9).min(budget - placed).max(2)
        };
        let acl = internal_acl(acl_id, clauses, rng);
        let rules = acl.entries.len();
        let cfg = builder.router(router);
        cfg.access_lists.insert(acl_id, acl);
        if let Some(i) = cfg.interfaces.iter_mut().find(|i| i.name == iface) {
            if rng.gen_bool(0.5) {
                i.access_group_in = Some(acl_id);
            } else {
                i.access_group_out = Some(acl_id);
            }
            placed += rules;
        }
        acl_id += 1;
        if acl_id >= 200 {
            break; // end of the extended numbered-ACL range
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn mix_sampling_respects_dominance() {
        let mix = InterfaceMix::enterprise();
        let mut r = rng();
        let mut serial = 0;
        let mut pos = 0;
        for _ in 0..2000 {
            match mix.sample(&mut r) {
                InterfaceType::Serial => serial += 1,
                InterfaceType::Pos => pos += 1,
                _ => {}
            }
        }
        assert!(serial > 700, "serial only {serial}/2000");
        assert_eq!(pos, 0, "enterprise mix must not contain POS");
        let bmix = InterfaceMix::backbone();
        let pos_b = (0..2000).filter(|_| bmix.sample(&mut r) == InterfaceType::Pos).count();
        assert!(pos_b > 100, "backbone POS only {pos_b}/2000");
    }

    #[test]
    fn dressing_adds_interfaces_and_unnumbered() {
        let mut b = NetworkBuilder::new();
        for i in 0..50 {
            let r = b.add_router(format!("r{i}"));
            b.lan(r, format!("10.0.{i}.0/24").parse().unwrap(), InterfaceType::FastEthernet);
        }
        let mut r = rng();
        dress_interfaces(&mut b, &mut r, &InterfaceMix::enterprise(), 10);
        let total: usize = b.routers.iter().map(|c| c.interfaces.len()).sum();
        assert!(total >= 50 * 9, "only {total} interfaces");
        let unnumbered: usize = b
            .routers
            .iter()
            .flat_map(|c| &c.interfaces)
            .filter(|i| i.is_unnumbered())
            .count();
        assert!(unnumbered <= total / 50, "too many unnumbered: {unnumbered}");
    }

    #[test]
    fn sprinkle_exact_counts() {
        let mut b = NetworkBuilder::new();
        for i in 0..5 {
            b.add_router(format!("r{i}"));
        }
        let mut r = rng();
        sprinkle(&mut b, &mut r, InterfaceType::Fddi, 6);
        let fddi: usize = b
            .routers
            .iter()
            .flat_map(|c| &c.interfaces)
            .filter(|i| i.name.ty == InterfaceType::Fddi)
            .count();
        assert_eq!(fddi, 6);
    }

    #[test]
    fn filters_hit_internal_fraction() {
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("border");
        let mut internals = Vec::new();
        let ext = b.external_stub(r0, "192.0.2.0/30".parse().unwrap(), InterfaceType::Serial);
        for i in 0..10 {
            let r = b.add_router(format!("core{i}"));
            let (ia, _) = b.p2p_link(
                r0,
                r,
                format!("10.0.0.{}/30", i * 4).parse().unwrap(),
                InterfaceType::Serial,
            );
            internals.push((r0, ia));
        }
        let mut r = rng();
        apply_filters(
            &mut b,
            &mut r,
            FilterProfile { internal_fraction: Some(0.5) },
            &[(r0, ext.0)],
            &internals,
        );
        // Analyze with the real pipeline.
        let net = nettopo::Network::from_texts(b.to_texts()).unwrap();
        let links = nettopo::LinkMap::build(&net);
        let analysis = nettopo::ExternalAnalysis::build(&net, &links);
        let (internal, total) = analysis.filter_placement(&net);
        assert!(total > 0);
        let frac = internal as f64 / total as f64;
        assert!((0.3..=0.7).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn no_filter_profile_adds_nothing() {
        let mut b = NetworkBuilder::new();
        let r0 = b.add_router("r");
        b.lan(r0, "10.0.0.0/24".parse().unwrap(), InterfaceType::Ethernet);
        let mut r = rng();
        apply_filters(
            &mut b,
            &mut r,
            FilterProfile { internal_fraction: None },
            &[],
            &[],
        );
        assert!(b.routers[0].access_lists.is_empty());
    }
}
