//! Design-archetype generators.
//!
//! Each generator returns a [`DesignOutput`]: the built routers plus the
//! bookkeeping (`external_ifaces`, `internal_ifaces`) the dressing layer
//! needs to place packet filters per the Figure 11 profile.

pub mod backbone;
pub mod ebgpwan;
pub mod enterprise;
pub mod hybrid;
pub mod net15;
pub mod net5;
pub mod nobgp;
pub mod tier2;

use ioscfg::{InterfaceName, InterfaceType};
use netaddr::Prefix;
use rd_rng::StdRng;

use crate::alloc::AddressPlan;
use crate::builder::NetworkBuilder;

/// A generated design plus the interface bookkeeping used for dressing.
#[derive(Clone, Debug, Default)]
pub struct DesignOutput {
    /// The routers.
    pub builder: NetworkBuilder,
    /// External-facing interfaces (candidates for border filters).
    pub external_ifaces: Vec<(usize, InterfaceName)>,
    /// Internal link interfaces (candidates for internal filters).
    pub internal_ifaces: Vec<(usize, InterfaceName)>,
}

/// A hub-and-spoke compartment: `hubs` interconnected in a ring, spokes
/// attached round-robin by /30 serials, each spoke with one LAN. Returns
/// `(hub_ids, spoke_ids)`.
///
/// The hub-and-spoke shape is the one the paper calls out as the common
/// enterprise topology (Section 8.2).
pub fn hub_spoke(
    out: &mut DesignOutput,
    plan: &mut AddressPlan,
    rng: &mut StdRng,
    name_prefix: &str,
    hubs: usize,
    spokes: usize,
) -> (Vec<usize>, Vec<usize>) {
    assert!(hubs >= 1);
    let hub_ids: Vec<usize> = (0..hubs)
        .map(|i| out.builder.add_router(format!("{name_prefix}-hub{i}")))
        .collect();
    // Ring (or single link) between hubs.
    if hubs > 1 {
        for i in 0..hubs {
            let a = hub_ids[i];
            let b = hub_ids[(i + 1) % hubs];
            if hubs == 2 && i == 1 {
                break; // avoid a duplicate 2-node "ring" link
            }
            let subnet = plan.p2p.alloc(30);
            let (ia, ib) = out.builder.p2p_link(a, b, subnet, InterfaceType::Serial);
            out.internal_ifaces.push((a, ia));
            out.internal_ifaces.push((b, ib));
        }
    }
    // Hub LAN for servers (gives hubs a LAN presence).
    for &h in &hub_ids {
        let lan = plan.lan.alloc(24);
        out.builder.lan(h, lan, InterfaceType::FastEthernet);
    }
    // Spokes.
    let spoke_ids: Vec<usize> = (0..spokes)
        .map(|i| {
            let id = out.builder.add_router(format!("{name_prefix}-r{i}"));
            let hub = hub_ids[i % hubs];
            let subnet = plan.p2p.alloc(30);
            let (ih, is) = out.builder.p2p_link(hub, id, subnet, InterfaceType::Serial);
            out.internal_ifaces.push((hub, ih));
            out.internal_ifaces.push((id, is));
            let lan = plan.lan.alloc(24);
            let ty = if rng.gen_bool(0.8) {
                InterfaceType::FastEthernet
            } else {
                InterfaceType::Ethernet
            };
            out.builder.lan(id, lan, ty);
            id
        })
        .collect();
    (hub_ids, spoke_ids)
}

/// Covers all of a compartment's space with one `network` statement for an
/// OSPF process (wildcard form).
pub fn ospf_cover(block: Prefix) -> ioscfg::OspfNetwork {
    ioscfg::OspfNetwork {
        addr: block.first(),
        wildcard: block.mask().to_wildcard(),
        area: ioscfg::OspfArea(0),
    }
}

/// Covers a compartment's space for EIGRP (wildcard form).
pub fn eigrp_cover(block: Prefix) -> ioscfg::EigrpNetwork {
    ioscfg::EigrpNetwork { addr: block.first(), wildcard: Some(block.mask().to_wildcard()) }
}

/// The /12 slab a compartment plan draws from (for network statements
/// that must cover p2p + LAN + external pools at once).
pub fn compartment_slab(plan: &AddressPlan) -> Prefix {
    let base = plan.p2p.block().first();
    Prefix::new(base, 12).expect("/12 is valid")
}

/// The *internal* blocks of a compartment (point-to-point + LAN pools,
/// excluding the external pool). Main IGP processes cover these so that
/// customer-facing /30s stay outside the IGP — covering them would turn
/// the whole instance into an inter-domain protocol, which only the
/// designs that intend that (IGP-as-edge, staging) should do.
pub fn internal_blocks(plan: &AddressPlan) -> [Prefix; 2] {
    [plan.p2p.block(), plan.lan.block()]
}

/// OSPF `network` statements covering the internal blocks.
pub fn ospf_internal_covers(plan: &AddressPlan) -> Vec<ioscfg::OspfNetwork> {
    internal_blocks(plan).into_iter().map(ospf_cover).collect()
}

/// EIGRP `network` statements covering the internal blocks.
pub fn eigrp_internal_covers(plan: &AddressPlan) -> Vec<ioscfg::EigrpNetwork> {
    internal_blocks(plan).into_iter().map(eigrp_cover).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_spoke_builds_connected_topology() {
        let mut out = DesignOutput::default();
        let mut plan = AddressPlan::for_compartment(10, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let (hubs, spokes) = hub_spoke(&mut out, &mut plan, &mut rng, "t", 2, 10);
        assert_eq!(hubs.len(), 2);
        assert_eq!(spokes.len(), 10);
        assert_eq!(out.builder.len(), 12);

        let net = nettopo::Network::from_texts(out.builder.to_texts()).unwrap();
        let links = nettopo::LinkMap::build(&net);
        let graph = nettopo::RouterGraph::build(&net, &links);
        assert_eq!(graph.components().len(), 1, "hub-spoke must be connected");
    }

    #[test]
    fn covers_include_all_pools() {
        let plan = AddressPlan::for_compartment(10, 3);
        let slab = compartment_slab(&plan);
        assert!(slab.covers(plan.p2p.block()));
        assert!(slab.covers(plan.lan.block()));
        assert!(slab.covers(plan.external.block()));
        let cover = ospf_cover(slab);
        assert!(cover.covers(plan.lan.block().first()));
    }
}
