//! "Unclassifiable" hybrid designs (paper Section 7.1: twenty of the 31
//! networks "exhibited designs that were so markedly different both from
//! textbook examples and from each other as to defy classification").
//!
//! The generator composes the ingredients the paper reports seeing:
//! multiple IGP compartments (mixed OSPF/EIGRP/RIP, often relics of
//! mergers), compartments glued by mutual redistribution or by internal
//! EBGP between private ASes, IGPs used as edge protocols toward
//! customers, and partial BGP→IGP redistribution.

use ioscfg::{
    BgpProcess, EigrpProcess, InterfaceType, OspfProcess, Redistribution, RedistSource,
    RipProcess,
};
use rd_rng::StdRng;

use crate::alloc::AddressPlan;
use crate::designs::{compartment_slab, eigrp_cover, hub_spoke, ospf_cover, DesignOutput};

/// Parameters for one hybrid network.
#[derive(Clone, Copy, Debug)]
pub struct HybridSpec {
    /// Total routers (≥ 4).
    pub routers: usize,
    /// Number of IGP compartments (1..=8; clamped to fit `routers`).
    pub compartments: usize,
    /// Fraction of compartment pairs glued by internal EBGP (vs mutual
    /// IGP redistribution), 0..=1 in 1/8ths.
    pub ebgp_glue_eighths: u8,
    /// Mean IGP-as-edge customer links per compartment.
    pub igp_edge_customers: usize,
    /// Whether the network also has a real external BGP upstream.
    pub has_upstream: bool,
}

/// IGP flavour of one compartment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flavour {
    Ospf(u32),
    Eigrp(u32),
    Rip,
}

/// Generates a hybrid network.
pub fn generate(spec: HybridSpec, rng: &mut StdRng) -> DesignOutput {
    assert!(spec.routers >= 4);
    let mut out = DesignOutput::default();
    let compartments = spec.compartments.clamp(1, 8).min(spec.routers / 2).max(1);

    // Partition routers over compartments: first gets the lion's share.
    let mut sizes = vec![0usize; compartments];
    let mut left = spec.routers;
    for (i, s) in sizes.iter_mut().enumerate() {
        let remaining_groups = compartments - i;
        let take = if remaining_groups == 1 {
            left
        } else {
            let share = (left * 3 / 5).max(2).min(left - 2 * (remaining_groups - 1));
            share
        };
        *s = take;
        left -= take;
    }

    // Build each compartment with its own plan and flavour.
    let mut comp_hubs: Vec<usize> = Vec::new();
    let mut flavours: Vec<Flavour> = Vec::new();
    let mut plans: Vec<AddressPlan> = Vec::new();
    for (c, &size) in sizes.iter().enumerate() {
        let mut plan = AddressPlan::for_compartment(10, c as u16);
        let hubs = if size > 30 { 2 } else { 1 };
        let spokes = size - hubs;
        let (hub_ids, spoke_ids) =
            hub_spoke(&mut out, &mut plan, rng, &format!("c{c}"), hubs, spokes);
        let slab = compartment_slab(&plan);
        // Deterministic flavour cycle: even compartments run EIGRP, odd
        // ones alternate OSPF and RIP, so adjacent compartments always
        // differ (merged-company relics, Section 8.2).
        let flavour = if c % 2 == 0 {
            Flavour::Eigrp(10 + c as u32)
        } else if c % 4 == 1 {
            Flavour::Ospf(1 + c as u32)
        } else {
            Flavour::Rip
        };
        for &id in hub_ids.iter().chain(&spoke_ids) {
            attach_igp(&mut out, id, flavour, slab);
        }
        // IGP-as-edge: customer-facing stubs covered by the IGP.
        let customers = if spec.igp_edge_customers == 0 {
            0
        } else {
            rng.gen_range(1..=spec.igp_edge_customers * 2)
        };
        for _ in 0..customers {
            let subnet = plan.external.alloc(30);
            let (iface, _) =
                out.builder.external_stub(hub_ids[0], subnet, InterfaceType::Serial);
            out.external_ifaces.push((hub_ids[0], iface));
            cover_extra(&mut out, hub_ids[0], flavour, subnet);
        }
        comp_hubs.push(hub_ids[0]);
        flavours.push(flavour);
        plans.push(plan);
    }

    // Glue compartments into a chain (hub_i — hub_{i+1}).
    for c in 0..compartments.saturating_sub(1) {
        let (a, b) = (comp_hubs[c], comp_hubs[c + 1]);
        let subnet = plans[c].p2p.alloc(30);
        let (ia, ib) = out.builder.p2p_link(a, b, subnet, InterfaceType::Serial);
        out.internal_ifaces.push((a, ia));
        out.internal_ifaces.push((b, ib));
        let use_ebgp = rng.gen_range(0..8) < spec.ebgp_glue_eighths;
        if use_ebgp {
            // Internal EBGP between two private ASes, with redistribution
            // into each side's IGP (the net5 mechanism in miniature).
            let (addr_a, addr_b) = subnet.p2p_hosts().expect("glue /30");
            ensure_bgp(&mut out, a, 65010 + c as u32 * 2);
            ensure_bgp(&mut out, b, 65011 + c as u32 * 2);
            // A hub may already run BGP from an earlier glue segment; the
            // session and redistribution must reference its actual ASN.
            let asn_a = out.builder.router(a).bgp.as_ref().expect("ensured").asn;
            let asn_b = out.builder.router(b).bgp.as_ref().expect("ensured").asn;
            {
                let bgp = out.builder.router(a).bgp.as_mut().expect("just ensured");
                bgp.neighbor_mut(addr_b).remote_as = Some(asn_b);
                bgp.redistribute.push(redist_of(flavours[c]));
            }
            {
                let bgp = out.builder.router(b).bgp.as_mut().expect("just ensured");
                bgp.neighbor_mut(addr_a).remote_as = Some(asn_a);
                bgp.redistribute.push(redist_of(flavours[c + 1]));
            }
            push_igp_redist(
                &mut out,
                a,
                flavours[c],
                Redistribution {
                    tag: Some(900 + c as u32),
                    ..Redistribution::plain(RedistSource::Bgp(asn_a))
                },
            );
            push_igp_redist(
                &mut out,
                b,
                flavours[c + 1],
                Redistribution {
                    tag: Some(901 + c as u32),
                    ..Redistribution::plain(RedistSource::Bgp(asn_b))
                },
            );
        } else {
            // Mutual IGP redistribution: hub `a` joins compartment c+1's
            // IGP over the glue link (both ends must cover the link for
            // the adjacency to form) and leaks routes between its two
            // processes.
            attach_igp(&mut out, a, flavours[c + 1], compartment_slab(&plans[c + 1]));
            cover_extra(&mut out, a, flavours[c + 1], subnet);
            cover_extra(&mut out, b, flavours[c + 1], subnet);
            push_igp_redist(&mut out, a, flavours[c], redist_of(flavours[c + 1]));
            push_igp_redist(&mut out, a, flavours[c + 1], redist_of(flavours[c]));
        }
    }

    // Optional real upstream on compartment 0's hub.
    if spec.has_upstream {
        let hub = comp_hubs[0];
        let subnet = plans[0].external.alloc(30);
        let (iface, peer) = out.builder.external_stub(hub, subnet, InterfaceType::Serial);
        out.external_ifaces.push((hub, iface));
        let asn = 64900;
        ensure_bgp(&mut out, hub, asn);
        let bgp = out.builder.router(hub).bgp.as_mut().expect("just ensured");
        bgp.neighbor_mut(peer).remote_as = Some(7018);
        bgp.redistribute.push(redist_of(flavours[0]));
        push_igp_redist(
            &mut out,
            hub,
            flavours[0],
            Redistribution::plain(RedistSource::Bgp(asn)),
        );
    }

    out
}

fn attach_igp(out: &mut DesignOutput, id: usize, flavour: Flavour, slab: netaddr::Prefix) {
    let cfg = out.builder.router(id);
    match flavour {
        Flavour::Ospf(pid) => {
            if cfg.ospf.iter().any(|p| p.id == pid) {
                return;
            }
            let mut p = OspfProcess::new(pid);
            p.networks.push(ospf_cover(slab));
            cfg.ospf.push(p);
        }
        Flavour::Eigrp(asn) => {
            if cfg.eigrp.iter().any(|p| p.asn == asn) {
                return;
            }
            let mut p = EigrpProcess::new(asn);
            p.networks.push(eigrp_cover(slab));
            p.no_auto_summary = true;
            cfg.eigrp.push(p);
        }
        Flavour::Rip => {
            let p = cfg.rip.get_or_insert_with(|| {
                let mut p = RipProcess::new();
                p.version = Some(2);
                p
            });
            let net = netaddr::Addr::new(10, 0, 0, 0);
            if !p.networks.contains(&net) {
                p.networks.push(net);
            }
        }
    }
}

/// Extends a flavour's coverage to one extra subnet (customer stubs).
fn cover_extra(out: &mut DesignOutput, id: usize, flavour: Flavour, subnet: netaddr::Prefix) {
    let cfg = out.builder.router(id);
    match flavour {
        Flavour::Ospf(pid) => {
            if let Some(p) = cfg.ospf.iter_mut().find(|p| p.id == pid) {
                p.networks.push(ioscfg::OspfNetwork {
                    addr: subnet.first(),
                    wildcard: subnet.mask().to_wildcard(),
                    area: ioscfg::OspfArea(0),
                });
            }
        }
        Flavour::Eigrp(asn) => {
            if let Some(p) = cfg.eigrp.iter_mut().find(|p| p.asn == asn) {
                p.networks.push(eigrp_cover(subnet));
            }
        }
        Flavour::Rip => {} // classful 10.0.0.0 already covers the stubs
    }
}

fn redist_of(flavour: Flavour) -> Redistribution {
    let source = match flavour {
        Flavour::Ospf(pid) => RedistSource::Ospf(pid),
        Flavour::Eigrp(asn) => RedistSource::Eigrp(asn),
        Flavour::Rip => RedistSource::Rip,
    };
    Redistribution { subnets: true, ..Redistribution::plain(source) }
}

/// Adds a redistribution statement *into* the given flavour's process.
fn push_igp_redist(out: &mut DesignOutput, id: usize, flavour: Flavour, redist: Redistribution) {
    let cfg = out.builder.router(id);
    match flavour {
        Flavour::Ospf(pid) => {
            if let Some(p) = cfg.ospf.iter_mut().find(|p| p.id == pid) {
                p.redistribute.push(redist);
            }
        }
        Flavour::Eigrp(asn) => {
            if let Some(p) = cfg.eigrp.iter_mut().find(|p| p.asn == asn) {
                p.redistribute.push(redist);
            }
        }
        Flavour::Rip => {
            if let Some(p) = cfg.rip.as_mut() {
                p.redistribute.push(redist);
            }
        }
    }
}

fn ensure_bgp(out: &mut DesignOutput, id: usize, asn: u32) {
    let cfg = out.builder.router(id);
    if cfg.bgp.is_none() {
        let mut bgp = BgpProcess::new(asn);
        bgp.no_synchronization = true;
        cfg.bgp = Some(bgp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(seed: u64, spec: HybridSpec) -> nettopo::Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = generate(spec, &mut rng);
        nettopo::Network::from_texts(out.builder.to_texts()).unwrap()
    }

    fn summary(net: &nettopo::Network) -> routing_model::DesignSummary {
        let links = nettopo::LinkMap::build(net);
        let external = nettopo::ExternalAnalysis::build(net, &links);
        let procs = routing_model::Processes::extract(net);
        let adj = routing_model::Adjacencies::build(net, &links, &procs, &external);
        let inst = routing_model::Instances::compute(&procs, &adj);
        let graph = routing_model::InstanceGraph::build(net, &procs, &adj, &inst);
        let t1 = routing_model::Table1::compute(&inst, &graph, &adj);
        routing_model::classify_network(net, &inst, &graph, &adj, &t1)
    }

    #[test]
    fn produces_requested_router_count() {
        for (seed, n) in [(1u64, 12usize), (2, 36), (3, 80)] {
            let net = build(
                seed,
                HybridSpec {
                    routers: n,
                    compartments: 3,
                    ebgp_glue_eighths: 4,
                    igp_edge_customers: 1,
                    has_upstream: true,
                },
            );
            assert_eq!(net.len(), n);
        }
    }

    #[test]
    fn multi_compartment_hybrids_defy_classification() {
        let net = build(
            7,
            HybridSpec {
                routers: 40,
                compartments: 4,
                ebgp_glue_eighths: 8,
                igp_edge_customers: 2,
                has_upstream: true,
            },
        );
        let s = summary(&net);
        assert_eq!(s.class, routing_model::DesignClass::Unclassifiable, "{s:?}");
        assert!(s.internal_ases >= 2, "{s:?}");
        assert!(s.internal_ebgp_sessions >= 1, "{s:?}");
    }

    #[test]
    fn igp_edge_customers_produce_inter_domain_igps() {
        let net = build(
            9,
            HybridSpec {
                routers: 30,
                compartments: 2,
                ebgp_glue_eighths: 0,
                igp_edge_customers: 4,
                has_upstream: false,
            },
        );
        let links = nettopo::LinkMap::build(&net);
        let external = nettopo::ExternalAnalysis::build(&net, &links);
        let procs = routing_model::Processes::extract(&net);
        let adj = routing_model::Adjacencies::build(&net, &links, &procs, &external);
        assert!(!adj.igp_external.is_empty());
    }

    #[test]
    fn topology_stays_connected() {
        let net = build(
            5,
            HybridSpec {
                routers: 50,
                compartments: 5,
                ebgp_glue_eighths: 4,
                igp_edge_customers: 1,
                has_upstream: true,
            },
        );
        let links = nettopo::LinkMap::build(&net);
        let graph = nettopo::RouterGraph::build(&net, &links);
        assert_eq!(graph.components().len(), 1);
    }
}
