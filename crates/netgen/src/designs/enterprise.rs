//! Textbook enterprise networks (paper Sections 3.1/3.2, Figure 6 left).
//!
//! A small number of border BGP speakers peer with the provider, craft a
//! few summary routes, and inject them into the IGP; every other router
//! learns everything from the IGP. The largest of the paper's seven
//! textbook enterprises split its 101 routers across *two* IGP instances,
//! which `split_igp` reproduces.

use ioscfg::{
    AccessList, AclAction, AclAddr, AclEntry, BgpProcess, InterfaceType, OspfProcess,
    Redistribution, RedistSource, RouteMap, RouteMapClause, RmMatch, RmSet,
};
use rd_rng::StdRng;

use crate::alloc::AddressPlan;
use crate::designs::{hub_spoke, ospf_internal_covers, DesignOutput};

/// Parameters for one enterprise network.
#[derive(Clone, Copy, Debug)]
pub struct EnterpriseSpec {
    /// Total routers (≥ 3).
    pub routers: usize,
    /// Split the routers across two IGP instances (the 101-router case).
    pub split_igp: bool,
    /// Number of upstream provider ASes (1 or 2).
    pub upstreams: usize,
    /// Hierarchical OSPF areas (spoke LANs in per-region areas).
    pub multi_area: bool,
}

/// The ACL/route-map names used by the border policy.
const SUMMARY_ACL: u32 = 50;
const EXPORT_ACL: u32 = 51;

/// Generates a textbook enterprise network.
pub fn generate(spec: EnterpriseSpec, rng: &mut StdRng) -> DesignOutput {
    assert!(spec.routers >= 3, "enterprise needs at least 3 routers");
    let mut out = DesignOutput::default();

    let halves: Vec<usize> = if spec.split_igp {
        vec![spec.routers / 2, spec.routers - spec.routers / 2]
    } else {
        vec![spec.routers]
    };

    let mut border_id = None;
    for (half_idx, &count) in halves.iter().enumerate() {
        let mut plan = AddressPlan::for_compartment(10, half_idx as u16);
        let hubs = if count > 40 { 2 } else { 1 };
        let spokes = count - hubs - usize::from(half_idx == 0); // border extra
        let (hub_ids, spoke_ids) =
            hub_spoke(&mut out, &mut plan, rng, &format!("site{half_idx}"), hubs, spokes);

        // The border router lives in half 0 and links to that half's hub;
        // in split mode it also links into half 1's hub so both instances
        // learn external routes from the same border.
        let border = if half_idx == 0 {
            let b = out.builder.add_router("border");
            let subnet = plan.p2p.alloc(30);
            let (ib, ih) =
                out.builder.p2p_link(b, hub_ids[0], subnet, InterfaceType::Serial);
            out.internal_ifaces.push((b, ib));
            out.internal_ifaces.push((hub_ids[0], ih));
            border_id = Some(b);
            b
        } else {
            let b = border_id.expect("half 0 builds the border first");
            let subnet = plan.p2p.alloc(30);
            let (ib, ih) =
                out.builder.p2p_link(b, hub_ids[0], subnet, InterfaceType::Serial);
            out.internal_ifaces.push((b, ib));
            out.internal_ifaces.push((hub_ids[0], ih));
            b
        };

        // One OSPF process per half; process ids differ per half (and the
        // paper stresses ids are router-local anyway). Coverage excludes
        // the external pool: the provider link is BGP-only.
        let pid = 100 + half_idx as u32;
        let multi_area = spec.multi_area || count > 40;
        for &id in hub_ids.iter().chain(&spoke_ids).chain([&border]) {
            let mut p = OspfProcess::new(pid);
            // Larger enterprises use a hierarchical area design: spoke
            // LANs sit in per-region areas, the hub-spoke links in the
            // backbone area — making every spoke an ABR. The LAN
            // statement must precede the backbone cover (first match
            // wins in IOS).
            if multi_area && spoke_ids.contains(&id) {
                let lan = out.builder.routers[id]
                    .interfaces
                    .iter()
                    .filter(|i| {
                        matches!(
                            i.name.ty,
                            ioscfg::InterfaceType::FastEthernet
                                | ioscfg::InterfaceType::Ethernet
                        )
                    })
                    .find_map(|i| i.address.map(|a| a.subnet()));
                if let Some(lan) = lan {
                    p.networks.push(ioscfg::OspfNetwork {
                        addr: lan.first(),
                        wildcard: lan.mask().to_wildcard(),
                        area: ioscfg::OspfArea(1 + (id as u32 % 3)),
                    });
                }
            }
            p.networks.extend(ospf_internal_covers(&plan));
            // Interior routers redistribute their connected LANs.
            p.redistribute.push(Redistribution {
                source: RedistSource::Connected,
                metric: None,
                metric_type: Some(1),
                subnets: true,
                route_map: None,
                tag: None,
            });
            if id == border {
                // Inject BGP-learned summaries into the IGP.
                p.redistribute.push(Redistribution {
                    source: RedistSource::Bgp(65001),
                    metric: Some(100),
                    metric_type: Some(1),
                    subnets: true,
                    route_map: Some("bgp-to-igp".to_string()),
                    tag: None,
                });
            }
            out.builder.router(id).ospf.push(p);
        }
    }

    // Border BGP: EBGP to the upstream provider(s), summary policy.
    let border = border_id.expect("at least one half");
    let mut plan0 = AddressPlan::for_compartment(10, 0);
    let mut bgp = BgpProcess::new(65001);
    bgp.no_synchronization = true;
    for u in 0..spec.upstreams.max(1) {
        let subnet = plan0.external.alloc(30);
        let (iface, peer_addr) =
            out.builder.external_stub(border, subnet, InterfaceType::Serial);
        out.external_ifaces.push((border, iface));
        let provider_as = [7018, 1239][u % 2];
        let n = bgp.neighbor_mut(peer_addr);
        n.remote_as = Some(provider_as);
        n.route_map_in = Some("from-provider".to_string());
        n.route_map_out = Some("to-provider".to_string());
    }
    bgp.redistribute.push(Redistribution {
        source: RedistSource::Ospf(100),
        metric: None,
        metric_type: None,
        subnets: false,
        route_map: Some("igp-to-bgp".to_string()),
        tag: None,
    });
    let cfg = out.builder.router(border);
    cfg.bgp = Some(bgp);

    // Policy scaffolding: the summaries the border injects (a handful of
    // key routes, Section 3.1) and the blocks it exports.
    cfg.access_lists.insert(
        SUMMARY_ACL,
        AccessList {
            id: SUMMARY_ACL,
            entries: vec![
                std_entry("198.18.0.0", "0.0.255.255"),
                std_entry("198.19.0.0", "0.0.255.255"),
                std_entry("203.0.113.0", "0.0.0.255"),
            ],
        },
    );
    cfg.access_lists.insert(
        EXPORT_ACL,
        AccessList {
            id: EXPORT_ACL,
            entries: vec![std_entry("10.0.0.0", "0.15.255.255")],
        },
    );
    for (name, acl) in
        [("bgp-to-igp", SUMMARY_ACL), ("from-provider", SUMMARY_ACL), ("to-provider", EXPORT_ACL), ("igp-to-bgp", EXPORT_ACL)]
    {
        cfg.route_maps.insert(
            name.to_string(),
            RouteMap {
                name: name.to_string(),
                clauses: vec![RouteMapClause {
                    seq: 10,
                    action: AclAction::Permit,
                    matches: vec![RmMatch::IpAddress(vec![acl])],
                    sets: if name == "bgp-to-igp" {
                        vec![RmSet::Tag(500)]
                    } else {
                        Vec::new()
                    },
                }],
            },
        );
    }

    out
}

fn std_entry(addr: &str, wild: &str) -> AclEntry {
    AclEntry::Standard {
        action: AclAction::Permit,
        addr: AclAddr::Wild(
            addr.parse().expect("literal acl address"),
            wild.parse().expect("literal acl wildcard"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(spec: EnterpriseSpec) -> nettopo::Network {
        let mut rng = StdRng::seed_from_u64(7);
        let out = generate(spec, &mut rng);
        nettopo::Network::from_texts(out.builder.to_texts()).unwrap()
    }

    fn analyze(
        net: &nettopo::Network,
    ) -> (routing_model::Instances, routing_model::DesignSummary) {
        let links = nettopo::LinkMap::build(net);
        let external = nettopo::ExternalAnalysis::build(net, &links);
        let procs = routing_model::Processes::extract(net);
        let adj = routing_model::Adjacencies::build(net, &links, &procs, &external);
        let inst = routing_model::Instances::compute(&procs, &adj);
        let graph = routing_model::InstanceGraph::build(net, &procs, &adj, &inst);
        let t1 = routing_model::Table1::compute(&inst, &graph, &adj);
        let summary = routing_model::classify_network(net, &inst, &graph, &adj, &t1);
        (inst, summary)
    }

    #[test]
    fn classifies_as_enterprise() {
        let net = build(EnterpriseSpec { routers: 25, split_igp: false, upstreams: 1, multi_area: false });
        assert_eq!(net.len(), 25);
        let (inst, summary) = analyze(&net);
        assert_eq!(summary.class, routing_model::DesignClass::Enterprise, "{summary:?}");
        // One OSPF instance spanning all routers + one single-router BGP.
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.list[0].router_count(), 25);
    }

    #[test]
    fn split_igp_yields_two_instances() {
        let net = build(EnterpriseSpec { routers: 101, split_igp: true, upstreams: 1, multi_area: true });
        assert_eq!(net.len(), 101);
        let (inst, summary) = analyze(&net);
        let ospf_instances: Vec<_> = inst
            .list
            .iter()
            .filter(|i| i.kind == routing_model::ProtoKind::Ospf)
            .collect();
        assert_eq!(ospf_instances.len(), 2, "{summary:?}");
        // Split roughly in half, as the paper describes for the
        // 101-router enterprise.
        let sizes: Vec<usize> = ospf_instances.iter().map(|i| i.router_count()).collect();
        assert!(sizes.iter().all(|&s| s >= 45), "sizes {sizes:?}");
        assert_eq!(summary.class, routing_model::DesignClass::Enterprise, "{summary:?}");
    }

    #[test]
    fn two_upstreams_supported() {
        let net = build(EnterpriseSpec { routers: 12, split_igp: false, upstreams: 2, multi_area: false });
        let links = nettopo::LinkMap::build(&net);
        let external = nettopo::ExternalAnalysis::build(&net, &links);
        assert_eq!(external.border_routers().len(), 1);
        let (_, _, unaddressed) = external.counts();
        let _ = unaddressed;
        let procs = routing_model::Processes::extract(&net);
        let adj = routing_model::Adjacencies::build(&net, &links, &procs, &external);
        assert_eq!(
            adj.bgp
                .iter()
                .filter(|s| s.scope == routing_model::SessionScope::EbgpExternal)
                .count(),
            2
        );
    }
}
