//! Textbook backbone networks (paper Section 3.1, Figure 6 right).
//!
//! The hallmark: external routes are learned via EBGP at the borders and
//! distributed to every router via IBGP (here through a route-reflector
//! hierarchy — a full mesh over 500+ routers would be operationally
//! absurd, as the paper notes for net5). The IGP carries only
//! infrastructure routes, and external routes are *never* redistributed
//! into it. POP structure with POS long-haul links; one of the paper's
//! four backbones is HSSI/ATM-based instead, which `use_pos = false`
//! reproduces.

use ioscfg::{BgpProcess, InterfaceType, OspfProcess, Redistribution, RedistSource};
use rd_rng::StdRng;

use crate::alloc::AddressPlan;
use crate::designs::{ospf_internal_covers, DesignOutput};

/// Parameters for one backbone network.
#[derive(Clone, Copy, Debug)]
pub struct BackboneSpec {
    /// Total routers (≥ 8).
    pub routers: usize,
    /// Use POS for inter-POP links (3 of 4 paper backbones); otherwise
    /// HSSI/ATM.
    pub use_pos: bool,
    /// The backbone's public AS number.
    pub asn: u32,
    /// Mean external EBGP peers per edge router.
    pub peers_per_edge: usize,
}

/// Generates a textbook backbone.
pub fn generate(spec: BackboneSpec, rng: &mut StdRng) -> DesignOutput {
    assert!(spec.routers >= 8, "backbone needs at least 8 routers");
    let mut out = DesignOutput::default();
    let mut plan = AddressPlan::for_compartment(10, 0);

    let pops = (spec.routers / 20).clamp(2, 16);
    let long_haul =
        if spec.use_pos { InterfaceType::Pos } else { InterfaceType::Hssi };
    let intra_pop = if spec.use_pos { InterfaceType::GigabitEthernet } else { InterfaceType::Atm };

    // Each POP: 2 cores + edges.
    let per_pop = spec.routers / pops;
    let mut cores: Vec<usize> = Vec::new();
    let mut edges: Vec<usize> = Vec::new();
    let mut pop_members: Vec<Vec<usize>> = Vec::new();
    let mut built = 0usize;
    for p in 0..pops {
        let count = if p == pops - 1 { spec.routers - built } else { per_pop };
        built += count;
        let c1 = out.builder.add_router(format!("pop{p}-core0"));
        let c2 = out.builder.add_router(format!("pop{p}-core1"));
        let subnet = plan.p2p.alloc(30);
        let (i1, i2) = out.builder.p2p_link(c1, c2, subnet, intra_pop.clone());
        out.internal_ifaces.push((c1, i1));
        out.internal_ifaces.push((c2, i2));
        let mut members = vec![c1, c2];
        for e in 0..count.saturating_sub(2) {
            let edge = out.builder.add_router(format!("pop{p}-edge{e}"));
            // Edge uplinks alternate between serial and the POP fabric
            // technology (ATM or GigE), as mixed-vintage POPs do.
            let uplink = if e % 2 == 0 {
                InterfaceType::Serial
            } else {
                intra_pop.clone()
            };
            for &core in &[c1, c2] {
                let subnet = plan.p2p.alloc(30);
                let (ic, ie) =
                    out.builder.p2p_link(core, edge, subnet, uplink.clone());
                out.internal_ifaces.push((core, ic));
                out.internal_ifaces.push((edge, ie));
            }
            // Every edge router fronts a management/service LAN.
            let lan = plan.lan.alloc(24);
            out.builder.lan(edge, lan, InterfaceType::FastEthernet);
            members.push(edge);
            edges.push(edge);
        }
        cores.push(c1);
        cores.push(c2);
        pop_members.push(members);
    }

    // Long-haul: ring over core0s plus chords.
    for p in 0..pops {
        let a = pop_members[p][0];
        let b = pop_members[(p + 1) % pops][0];
        if pops == 2 && p == 1 {
            break;
        }
        let subnet = plan.p2p.alloc(30);
        let (ia, ib) = out.builder.p2p_link(a, b, subnet, long_haul.clone());
        out.internal_ifaces.push((a, ia));
        out.internal_ifaces.push((b, ib));
    }
    for p in (0..pops).step_by(3) {
        let q = (p + pops / 2) % pops;
        if q == p || (p + 1) % pops == q || (q + 1) % pops == p {
            continue;
        }
        let subnet = plan.p2p.alloc(30);
        let (ia, ib) =
            out.builder
                .p2p_link(pop_members[p][1], pop_members[q][1], subnet, long_haul.clone());
        out.internal_ifaces.push((pop_members[p][1], ia));
        out.internal_ifaces.push((pop_members[q][1], ib));
    }

    // OSPF everywhere, infrastructure only: the customer-facing external
    // pool is deliberately NOT covered (the backbone hallmark — external
    // routes never touch the IGP).
    for idx in 0..out.builder.len() {
        let mut p = OspfProcess::new(1);
        p.networks = ospf_internal_covers(&plan);
        p.redistribute.push(Redistribution::plain(RedistSource::Connected));
        out.builder.router(idx).ospf.push(p);
    }

    // IBGP route-reflector hierarchy: cores form a full mesh; each edge is
    // a client of its two local cores. Sessions peer on each router's
    // first interface address.
    let addresses: Vec<netaddr::Addr> = out
        .builder
        .routers
        .iter()
        .map(|r| {
            r.interfaces[0]
                .address
                .expect("every backbone router has an addressed first interface")
                .addr
        })
        .collect();

    for idx in 0..out.builder.len() {
        let mut bgp = BgpProcess::new(spec.asn);
        bgp.no_synchronization = true;
        out.builder.router(idx).bgp = Some(bgp);
    }
    // Core mesh.
    for (i, &a) in cores.iter().enumerate() {
        for &b in &cores[i + 1..] {
            peer(&mut out, a, addresses[b], spec.asn, false);
            peer(&mut out, b, addresses[a], spec.asn, false);
        }
    }
    // Edge clients.
    for members in &pop_members {
        let (c1, c2) = (members[0], members[1]);
        for &edge in &members[2..] {
            for &core in &[c1, c2] {
                peer(&mut out, edge, addresses[core], spec.asn, false);
                peer(&mut out, core, addresses[edge], spec.asn, true);
            }
        }
    }

    // External customers/peers on edge routers (and a couple on cores).
    let mut next_customer_as = 2000u32;
    for &edge in &edges {
        let peers = if spec.peers_per_edge == 0 {
            0
        } else {
            rng.gen_range(1..=spec.peers_per_edge * 2)
        };
        for _ in 0..peers {
            let subnet = plan.external.alloc(30);
            let (iface, peer_addr) =
                out.builder.external_stub(edge, subnet, InterfaceType::Serial);
            out.external_ifaces.push((edge, iface));
            let n = out.builder.router(edge).bgp.as_mut().expect("bgp set above");
            let nb = n.neighbor_mut(peer_addr);
            nb.remote_as = Some(next_customer_as);
            nb.route_map_in = Some("from-customer".to_string());
            next_customer_as += 1;
        }
    }
    // Transit peerings on two cores.
    for (i, &core) in cores.iter().take(2).enumerate() {
        let subnet = plan.external.alloc(30);
        let (iface, peer_addr) =
            out.builder.external_stub(core, subnet, long_haul.clone());
        out.external_ifaces.push((core, iface));
        let n = out.builder.router(core).bgp.as_mut().expect("bgp set above");
        n.neighbor_mut(peer_addr).remote_as = Some([701, 3356][i]);
    }

    // The from-customer policy (accept anything for generation purposes;
    // real filters are applied by the dressing layer).
    for &edge in &edges {
        let cfg = out.builder.router(edge);
        if cfg.bgp.as_ref().is_some_and(|b| {
            b.neighbors.iter().any(|n| n.route_map_in.is_some())
        }) {
            cfg.route_maps.insert(
                "from-customer".to_string(),
                ioscfg::RouteMap {
                    name: "from-customer".to_string(),
                    clauses: vec![ioscfg::RouteMapClause {
                        seq: 10,
                        action: ioscfg::AclAction::Permit,
                        matches: Vec::new(),
                        sets: vec![ioscfg::RmSet::LocalPreference(90)],
                    }],
                },
            );
        }
    }

    out
}

/// Adds an IBGP neighbor statement on `router` toward `addr`.
fn peer(out: &mut DesignOutput, router: usize, addr: netaddr::Addr, asn: u32, rr_client: bool) {
    let bgp = out.builder.router(router).bgp.as_mut().expect("bgp configured");
    let n = bgp.neighbor_mut(addr);
    n.remote_as = Some(asn);
    n.route_reflector_client = rr_client;
    n.send_community = true;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(routers: usize, use_pos: bool) -> nettopo::Network {
        let mut rng = StdRng::seed_from_u64(11);
        let out = generate(
            BackboneSpec { routers, use_pos, asn: 65100, peers_per_edge: 2 },
            &mut rng,
        );
        nettopo::Network::from_texts(out.builder.to_texts()).unwrap()
    }

    #[test]
    fn classifies_as_backbone() {
        let net = build(60, true);
        assert_eq!(net.len(), 60);
        let links = nettopo::LinkMap::build(&net);
        let external = nettopo::ExternalAnalysis::build(&net, &links);
        let procs = routing_model::Processes::extract(&net);
        let adj = routing_model::Adjacencies::build(&net, &links, &procs, &external);
        let inst = routing_model::Instances::compute(&procs, &adj);
        let graph = routing_model::InstanceGraph::build(&net, &procs, &adj, &inst);
        let t1 = routing_model::Table1::compute(&inst, &graph, &adj);
        let summary = routing_model::classify_network(&net, &inst, &graph, &adj, &t1);
        assert_eq!(summary.class, routing_model::DesignClass::Backbone, "{summary:?}");
        assert!(!summary.bgp_into_igp);
        assert!(summary.ibgp_sessions > 50, "{summary:?}");
        assert!(summary.external_ebgp_sessions > 10, "{summary:?}");
        // One BGP instance spanning everything + one OSPF instance.
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn pos_signature_matches_section_7_3() {
        let net_pos = build(40, true);
        let census = nettopo::stats::InterfaceCensus::of(&net_pos);
        assert!(census.uses_pos());
        let net_hssi = build(40, false);
        let census2 = nettopo::stats::InterfaceCensus::of(&net_hssi);
        assert!(!census2.uses_pos());
        assert!(census2.count("Hssi") > 0);
    }

    #[test]
    fn topology_is_connected() {
        let net = build(80, true);
        let links = nettopo::LinkMap::build(&net);
        let graph = nettopo::RouterGraph::build(&net, &links);
        assert_eq!(graph.components().len(), 1);
    }
}
