//! The paper's net15 case study (Section 6.2, Figure 12, Table 2).
//!
//! A 79-router network of two sites, six routing instances, and EBGP
//! peerings with two public ASes. Ingress/egress policies A1–A5 over
//! address blocks AB0–AB4 restrict reachability: no default route is
//! permitted in; the only external routes admitted are the two /16s and
//! three /24s listed by A1/A3/A5; and the sites are mutually isolated
//! because A2 ∩ A5 = A2 ∩ A3 = A4 ∩ A1 = ∅.
//!
//! Block map (Table 2):
//! - AB0 = the three /24s `198.18.{0,1,2}.0/24` (permitted by A1, A3, A5)
//! - AB1 = `172.20.0.0/16` (permitted by A1)
//! - AB2 = `10.2.0.0/16` — left-site hosts (exported by A2)
//! - AB3 = `172.21.0.0/16` (permitted by A3)
//! - AB4 = `10.4.0.0/16` — right-site hosts (exported by A4)

use ioscfg::{
    AccessList, AclAction, AclAddr, AclEntry, BgpProcess, InterfaceType, OspfProcess,
    Redistribution, RedistSource, RouteMap, RouteMapClause, RmMatch,
};
use netaddr::Prefix;
use rd_rng::StdRng;

use crate::alloc::AddressPlan;
use crate::builder::NetworkBuilder;
use crate::designs::{hub_spoke, DesignOutput};

/// The public AS peered by the left site (Figure 12).
pub const PUBLIC_AS_LEFT: u32 = 25286;
/// The public AS peered by the right site (Figure 12).
pub const PUBLIC_AS_RIGHT: u32 = 12762;

/// Address blocks AB0–AB4 (Table 2).
pub fn address_blocks() -> [(&'static str, Vec<Prefix>); 5] {
    let p = |s: &str| s.parse::<Prefix>().expect("literal prefix");
    [
        ("AB0", vec![p("198.18.0.0/24"), p("198.18.1.0/24"), p("198.18.2.0/24")]),
        ("AB1", vec![p("172.20.0.0/16")]),
        ("AB2", vec![p("10.2.0.0/16")]),
        ("AB3", vec![p("172.21.0.0/16")]),
        ("AB4", vec![p("10.4.0.0/16")]),
    ]
}

/// Policy contents (Table 2): which blocks each policy permits.
pub fn policy_blocks() -> [(&'static str, Vec<&'static str>); 5] {
    [
        ("A1", vec!["AB0", "AB1"]),
        ("A2", vec!["AB2"]),
        ("A3", vec!["AB0", "AB3"]),
        ("A4", vec!["AB4"]),
        ("A5", vec!["AB0"]),
    ]
}

/// Scale parameter; 1.0 = the paper's 79 routers.
#[derive(Clone, Copy, Debug)]
pub struct Net15Spec {
    /// Site size multiplier.
    pub scale: f64,
}

/// ACL numbers for policies A1..A5.
fn acl_id(policy: &str) -> u32 {
    match policy {
        "A1" => 11,
        "A2" => 12,
        "A3" => 13,
        "A4" => 14,
        "A5" => 15,
        other => panic!("unknown policy {other}"),
    }
}

fn policy_acl(policy: &str) -> AccessList {
    let blocks = address_blocks();
    let contents = policy_blocks()
        .into_iter()
        .find(|(name, _)| *name == policy)
        .expect("known policy")
        .1;
    let entries = contents
        .iter()
        .flat_map(|ab| {
            blocks
                .iter()
                .find(|(name, _)| name == ab)
                .expect("known block")
                .1
                .iter()
                .map(|p| AclEntry::Standard {
                    action: AclAction::Permit,
                    addr: AclAddr::Wild(p.first(), p.mask().to_wildcard()),
                })
                .collect::<Vec<_>>()
        })
        .collect();
    AccessList { id: acl_id(policy), entries }
}

fn policy_map(cfg: &mut ioscfg::RouterConfig, name: &str, policy: &str) {
    cfg.access_lists.insert(acl_id(policy), policy_acl(policy));
    cfg.route_maps.insert(
        name.to_string(),
        RouteMap {
            name: name.to_string(),
            clauses: vec![RouteMapClause {
                seq: 10,
                action: AclAction::Permit,
                matches: vec![RmMatch::IpAddress(vec![acl_id(policy)])],
                sets: Vec::new(),
            }],
        },
    );
}

/// One site: an OSPF instance over `site_routers` routers (two of which
/// are borders running BGP), plus a 2-router secondary BGP instance.
struct Site {
    borders: Vec<usize>,
    secondary: Vec<usize>,
}

#[allow(clippy::too_many_arguments)]
fn build_site(
    out: &mut DesignOutput,
    rng: &mut StdRng,
    name: &str,
    compartment: u16,
    site_routers: usize,
    ospf_pid: u32,
    host_block: Prefix,
    border_asn: u32,
    secondary_asn: u32,
) -> Site {
    let mut plan = AddressPlan::for_compartment(10, compartment);
    let hubs = 2.min(site_routers - 1).max(1);
    let (hub_ids, spoke_ids) =
        hub_spoke(out, &mut plan, rng, name, hubs, site_routers - hubs);
    let all: Vec<usize> = hub_ids.iter().chain(&spoke_ids).copied().collect();

    // Host LANs inside the published host block (AB2 / AB4).
    let mut host_alloc = crate::alloc::BlockAlloc::new(host_block);
    for &id in &all {
        let lan = host_alloc.alloc(24);
        out.builder.lan(id, lan, InterfaceType::FastEthernet);
    }

    // OSPF over the site: cover the compartment slab and the host block.
    for &id in &all {
        let mut p = OspfProcess::new(ospf_pid);
        p.networks.push(crate::designs::ospf_cover(crate::designs::compartment_slab(&plan)));
        p.networks.push(ioscfg::OspfNetwork {
            addr: host_block.first(),
            wildcard: host_block.mask().to_wildcard(),
            area: ioscfg::OspfArea(0),
        });
        out.builder.router(id).ospf.push(p);
    }

    // Borders: the two hubs run BGP.
    let borders: Vec<usize> = hub_ids.clone();
    for &b in &borders {
        let mut bgp = BgpProcess::new(border_asn);
        bgp.no_synchronization = true;
        out.builder.router(b).bgp = Some(bgp);
    }
    // IBGP between the borders (over the hub-hub link address).
    if borders.len() == 2 {
        let addr0 = out.builder.routers[borders[0]].interfaces[0]
            .address
            .expect("hub link addressed")
            .addr;
        let addr1 = out.builder.routers[borders[1]].interfaces[0]
            .address
            .expect("hub link addressed")
            .addr;
        out.builder.router(borders[0]).bgp.as_mut().expect("set").neighbor_mut(addr1).remote_as = Some(border_asn);
        out.builder.router(borders[1]).bgp.as_mut().expect("set").neighbor_mut(addr0).remote_as = Some(border_asn);
    }

    // Secondary BGP pair hanging off hub 0 (instances 4 and 5 of Fig 12).
    let mut secondary = Vec::new();
    for i in 0..2 {
        let id = out.builder.add_router(format!("{name}-dmz{i}"));
        let subnet = plan.p2p.alloc(30);
        let (ih, is) =
            out.builder.p2p_link(hub_ids[0], id, subnet, InterfaceType::Serial);
        out.internal_ifaces.push((hub_ids[0], ih));
        out.internal_ifaces.push((id, is));
        let mut bgp = BgpProcess::new(secondary_asn);
        bgp.no_synchronization = true;
        out.builder.router(id).bgp = Some(bgp);
        secondary.push(id);
    }
    // IBGP between the secondary pair: a shared LAN.
    let dmz_lan = plan.lan.alloc(24);
    out.builder.multi_lan(&secondary, dmz_lan, InterfaceType::Ethernet);
    let a0 = netaddr::Addr::from_u32(dmz_lan.first().to_u32() + 1);
    let a1 = netaddr::Addr::from_u32(dmz_lan.first().to_u32() + 2);
    out.builder.router(secondary[0]).bgp.as_mut().expect("set").neighbor_mut(a1).remote_as = Some(secondary_asn);
    out.builder.router(secondary[1]).bgp.as_mut().expect("set").neighbor_mut(a0).remote_as = Some(secondary_asn);
    // The secondary pair members join the site OSPF themselves (covering
    // their uplink /30), so their BGP instance can redistribute with the
    // site IGP directly.
    for &id in &secondary {
        let mut p = OspfProcess::new(ospf_pid);
        p.networks.push(crate::designs::ospf_cover(crate::designs::compartment_slab(&plan)));
        out.builder.router(id).ospf.push(p);
    }

    // External peerings and policy bindings happen in `generate` (they
    // differ per site half).
    Site { borders, secondary }
}

/// Adds an EBGP peering with policy route maps to `router`.
fn add_peering(
    builder: &mut NetworkBuilder,
    external_ifaces: &mut Vec<(usize, ioscfg::InterfaceName)>,
    plan_comp: u16,
    slot: u32,
    router: usize,
    public_as: u32,
    policy_in: &str,
    policy_out: &str,
) {
    // Each peering gets a distinct /30 from a shared external range.
    let subnet: Prefix = Prefix::new(
        netaddr::Addr::new(192, 0, 2, (plan_comp as u8) * 64 + (slot as u8) * 4),
        30,
    )
    .expect("/30");
    let (iface, peer) = builder.external_stub(router, subnet, InterfaceType::Serial);
    external_ifaces.push((router, iface));
    let map_in = format!("in-{policy_in}");
    let map_out = format!("out-{policy_out}");
    {
        let cfg = builder.router(router);
        policy_map(cfg, &map_in, policy_in);
        policy_map(cfg, &map_out, policy_out);
    }
    let bgp = builder.router(router).bgp.as_mut().expect("border runs BGP");
    let n = bgp.neighbor_mut(peer);
    n.remote_as = Some(public_as);
    n.route_map_in = Some(map_in);
    n.route_map_out = Some(map_out);
}

/// Wires mutual redistribution between a BGP border and its site OSPF.
fn redistribute_site(builder: &mut NetworkBuilder, router: usize, ospf_pid: u32, egress: &str) {
    let asn = builder.router(router).bgp.as_ref().expect("border runs BGP").asn;
    {
        let cfg = builder.router(router);
        policy_map(cfg, &format!("rd-{egress}"), egress);
    }
    let bgp = builder.router(router).bgp.as_mut().expect("border runs BGP");
    bgp.redistribute.push(Redistribution {
        route_map: Some(format!("rd-{egress}")),
        ..Redistribution::plain(RedistSource::Ospf(ospf_pid))
    });
    let ospf = builder
        .router(router)
        .ospf
        .iter_mut()
        .find(|p| p.id == ospf_pid)
        .expect("border is a site member");
    ospf.redistribute.push(Redistribution {
        subnets: true,
        metric: Some(200),
        metric_type: Some(1),
        ..Redistribution::plain(RedistSource::Bgp(asn))
    });
}

/// Generates net15.
pub fn generate(spec: Net15Spec, rng: &mut StdRng) -> DesignOutput {
    let mut out = DesignOutput::default();
    // 79 routers at scale 1.0: left site 38 + its 2-router DMZ pair,
    // right site 37 + its pair (38 + 2 + 37 + 2 = 79).
    let left_size = ((38.0 * spec.scale).round() as usize).max(4);
    let right_size = ((37.0 * spec.scale).round() as usize).max(4);

    let ab = address_blocks();
    let ab2 = ab[2].1[0];
    let ab4 = ab[4].1[0];

    let left = build_site(&mut out, rng, "left", 0, left_size, 1, ab2, 65101, 65102);
    let right = build_site(&mut out, rng, "right", 4, right_size, 2, ab4, 65201, 65202);

    // Peerings (Figure 12):
    //  left borders → public AS 25286:  in = A1, out = A2
    //  left dmz     → public AS 12762:  in = A3, out = A2
    //  right borders → public AS 12762: in = A5, out = A4
    //  right dmz    → public AS 25286:  in = A5, out = A4
    add_peering(&mut out.builder, &mut out.external_ifaces, 0, 0, left.borders[0], PUBLIC_AS_LEFT, "A1", "A2");
    add_peering(&mut out.builder, &mut out.external_ifaces, 0, 1, left.secondary[0], PUBLIC_AS_RIGHT, "A3", "A2");
    add_peering(&mut out.builder, &mut out.external_ifaces, 1, 0, right.borders[0], PUBLIC_AS_RIGHT, "A5", "A4");
    add_peering(&mut out.builder, &mut out.external_ifaces, 1, 1, right.secondary[0], PUBLIC_AS_LEFT, "A5", "A4");

    // Redistribution between BGP instances and their site OSPF.
    redistribute_site(&mut out.builder, left.borders[0], 1, "A2");
    redistribute_site(&mut out.builder, left.secondary[0], 1, "A2");
    redistribute_site(&mut out.builder, right.borders[0], 2, "A4");
    redistribute_site(&mut out.builder, right.secondary[0], 2, "A4");

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(scale: f64) -> nettopo::Network {
        let mut rng = StdRng::seed_from_u64(15);
        let out = generate(Net15Spec { scale }, &mut rng);
        nettopo::Network::from_texts(out.builder.to_texts()).unwrap()
    }

    #[test]
    fn full_scale_has_79_routers_and_6_instances() {
        let net = build(1.0);
        assert_eq!(net.len(), 79);
        let links = nettopo::LinkMap::build(&net);
        let external = nettopo::ExternalAnalysis::build(&net, &links);
        let procs = routing_model::Processes::extract(&net);
        let adj = routing_model::Adjacencies::build(&net, &links, &procs, &external);
        let inst = routing_model::Instances::compute(&procs, &adj);
        assert_eq!(
            inst.len(),
            6,
            "instances: {:?}",
            inst.list.iter().map(|i| i.label()).collect::<Vec<_>>()
        );
        let graph = routing_model::InstanceGraph::build(&net, &procs, &adj, &inst);
        let mut ases = graph.external_ases();
        ases.sort_unstable();
        assert_eq!(ases, vec![PUBLIC_AS_RIGHT, PUBLIC_AS_LEFT]);
    }

    #[test]
    fn table2_policy_disjointness() {
        // A2 ∩ A5 = A2 ∩ A3 = A4 ∩ A1 = ∅ — checked on the actual ACL
        // prefix sets.
        let set_of = |policy: &str| {
            policy_acl(policy).permitted_source_set()
        };
        assert!(set_of("A2").intersection(&set_of("A5")).is_empty());
        assert!(set_of("A2").intersection(&set_of("A3")).is_empty());
        assert!(set_of("A4").intersection(&set_of("A1")).is_empty());
        // Non-trivial policies.
        assert!(!set_of("A1").is_empty());
        assert!(!set_of("A5").is_empty());
    }

    #[test]
    fn reachability_matches_section_6_2() {
        let net = build(0.4);
        let links = nettopo::LinkMap::build(&net);
        let external = nettopo::ExternalAnalysis::build(&net, &links);
        let procs = routing_model::Processes::extract(&net);
        let adj = routing_model::Adjacencies::build(&net, &links, &procs, &external);
        let inst = routing_model::Instances::compute(&procs, &adj);
        let reach = reachability::ReachAnalysis::new(&net, &procs, &adj, &inst);

        let ab2: Prefix = "10.2.0.0/16".parse().unwrap();
        let ab4: Prefix = "10.4.0.0/16".parse().unwrap();
        // Site isolation.
        assert!(!reach.block_reachable(ab2, ab4));
        assert!(!reach.block_reachable(ab4, ab2));
        // No default route enters any instance.
        for i in &inst.list {
            let external_routes = reach.external_routes_entering(i.id);
            assert!(!external_routes.covers_prefix(Prefix::DEFAULT), "{}", i.label());
        }
        // The ingress ceiling: external routes into the left OSPF are
        // bounded by A1 ∪ A3 (two /16s + three /24s = at most 5 prefixes).
        let left_ospf = inst
            .list
            .iter()
            .find(|i| i.kind == routing_model::ProtoKind::Ospf)
            .unwrap();
        let load = reach.load_prediction(left_ospf.id);
        let max = load.max_external_routes.expect("bounded");
        assert!(max <= 5, "predicted {max} external routes");
        assert!(max >= 1);
    }
}
