//! EBGP-as-WAN designs: every spoke site is its own private AS, speaking
//! EBGP to the hub over its access link.
//!
//! This is one of the paper's headline findings (Section 5.2): about 10%
//! of all EBGP sessions in the corpus run *between routers of the same
//! network*. The hypothesized reasons — compartment scalability, merger
//! legacy, and BGP's fine-grained policy control over per-site routing —
//! all fit the managed-WAN pattern this generator produces: an ISP-run
//! enterprise WAN where the provider hands each site a private AS.

use ioscfg::{BgpProcess, InterfaceType, Redistribution, RedistSource};
use rd_rng::StdRng;

use crate::alloc::AddressPlan;
use crate::designs::DesignOutput;

/// Parameters for one EBGP-WAN network.
#[derive(Clone, Copy, Debug)]
pub struct EbgpWanSpec {
    /// Total routers (≥ 3): hubs + spokes.
    pub routers: usize,
    /// Number of hub routers (1 or 2).
    pub hubs: usize,
    /// The hub AS number.
    pub hub_asn: u32,
}

/// Generates an EBGP-WAN network.
pub fn generate(spec: EbgpWanSpec, rng: &mut StdRng) -> DesignOutput {
    assert!(spec.routers >= 3);
    let mut out = DesignOutput::default();
    let mut plan = AddressPlan::for_compartment(10, 0);
    let hubs = spec.hubs.clamp(1, 2).min(spec.routers - 1);

    // Hubs with an interconnect and the upstream peering.
    let hub_ids: Vec<usize> =
        (0..hubs).map(|i| out.builder.add_router(format!("wan-hub{i}"))).collect();
    for &h in &hub_ids {
        let mut bgp = BgpProcess::new(spec.hub_asn);
        bgp.no_synchronization = true;
        bgp.redistribute.push(Redistribution::plain(RedistSource::Connected));
        out.builder.router(h).bgp = Some(bgp);
    }
    if hubs == 2 {
        let subnet = plan.p2p.alloc(30);
        let (ia, ib) =
            out.builder.p2p_link(hub_ids[0], hub_ids[1], subnet, InterfaceType::Serial);
        out.internal_ifaces.push((hub_ids[0], ia));
        out.internal_ifaces.push((hub_ids[1], ib));
        let (a0, a1) = subnet.p2p_hosts().expect("/30");
        out.builder.router(hub_ids[0]).bgp.as_mut().expect("set").neighbor_mut(a1).remote_as =
            Some(spec.hub_asn);
        out.builder.router(hub_ids[1]).bgp.as_mut().expect("set").neighbor_mut(a0).remote_as =
            Some(spec.hub_asn);
    }
    // Upstream on hub 0.
    {
        let subnet = plan.external.alloc(30);
        let (iface, peer) =
            out.builder.external_stub(hub_ids[0], subnet, InterfaceType::Serial);
        out.external_ifaces.push((hub_ids[0], iface));
        out.builder
            .router(hub_ids[0])
            .bgp
            .as_mut()
            .expect("set")
            .neighbor_mut(peer)
            .remote_as = Some(7018);
    }

    // Spokes: one private AS each, EBGP to a hub over the access /30,
    // local LAN redistributed via `redistribute connected`.
    for i in 0..(spec.routers - hubs) {
        let spoke = out.builder.add_router(format!("wan-site{i}"));
        let hub = hub_ids[i % hubs];
        let subnet = plan.p2p.alloc(30);
        let (ih, is) = out.builder.p2p_link(hub, spoke, subnet, InterfaceType::Serial);
        out.internal_ifaces.push((hub, ih));
        out.internal_ifaces.push((spoke, is));
        let lan = plan.lan.alloc(24);
        let lan_ty = if rng.gen_bool(0.7) {
            InterfaceType::FastEthernet
        } else {
            InterfaceType::TokenRing
        };
        out.builder.lan(spoke, lan, lan_ty);

        // Private ASNs repeat across spokes (they never peer with each
        // other, so reuse is safe and common practice).
        let spoke_asn = 64512 + (i as u32 % 1000);
        let (hub_addr, spoke_addr) = subnet.p2p_hosts().expect("/30");
        let mut bgp = BgpProcess::new(spoke_asn);
        bgp.no_synchronization = true;
        bgp.redistribute.push(Redistribution::plain(RedistSource::Connected));
        bgp.neighbor_mut(hub_addr).remote_as = Some(spec.hub_asn);
        out.builder.router(spoke).bgp = Some(bgp);
        out.builder
            .router(hub)
            .bgp
            .as_mut()
            .expect("hub bgp set")
            .neighbor_mut(spoke_addr)
            .remote_as = Some(spoke_asn);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> nettopo::Network {
        let mut rng = StdRng::seed_from_u64(77);
        let out = generate(EbgpWanSpec { routers: n, hubs: 2, hub_asn: 65000 }, &mut rng);
        nettopo::Network::from_texts(out.builder.to_texts()).unwrap()
    }

    #[test]
    fn every_spoke_is_an_internal_ebgp_session() {
        let net = build(20);
        assert_eq!(net.len(), 20);
        let links = nettopo::LinkMap::build(&net);
        let external = nettopo::ExternalAnalysis::build(&net, &links);
        let procs = routing_model::Processes::extract(&net);
        let adj = routing_model::Adjacencies::build(&net, &links, &procs, &external);
        let internal = adj
            .bgp
            .iter()
            .filter(|s| s.scope == routing_model::SessionScope::EbgpInternal)
            .count();
        assert_eq!(internal, 18, "18 spokes = 18 internal EBGP sessions");
        let inst = routing_model::Instances::compute(&procs, &adj);
        // Each spoke is its own BGP instance, plus the hub AS.
        assert_eq!(inst.len(), 19);
        let graph = routing_model::InstanceGraph::build(&net, &procs, &adj, &inst);
        let t1 = routing_model::Table1::compute(&inst, &graph, &adj);
        let summary = routing_model::classify_network(&net, &inst, &graph, &adj, &t1);
        assert_eq!(
            summary.class,
            routing_model::DesignClass::Unclassifiable,
            "{summary:?}"
        );
    }
}
