//! The paper's net5 case study (Sections 5.1 and 6.1, Figures 9 and 10).
//!
//! net5 is an 881-router enterprise with a deliberately compartmentalized
//! design: ten EIGRP compartments glued by fourteen internal BGP ASes,
//! EBGP sessions to sixteen external ASes, EIGRP used as an *inter-domain*
//! protocol (carrying external routes between BGP instances) and EBGP used
//! as an *intra-domain* protocol. The designer avoided an IBGP mesh by
//! (a) laying out addresses so compartment policies are expressible as
//! address-based route maps, and (b) tagging external routes at
//! redistribution points and keying route selection off the tags.
//!
//! The generator reproduces that structure at a configurable scale:
//! `scale = 1.0` yields the paper's 881 routers / 24 routing instances /
//! 14 internal ASes / 16 external peer ASes, including the six redundant
//! redistribution routers between EIGRP instance 1 and BGP instance 4.

use ioscfg::{
    AccessList, AclAction, AclAddr, AclEntry, BgpProcess, InterfaceType, Redistribution,
    RedistSource, RouteMap, RouteMapClause, RmMatch, RmSet,
};
use rd_rng::StdRng;

use crate::alloc::AddressPlan;
use crate::designs::{compartment_slab, eigrp_internal_covers, hub_spoke, DesignOutput};

/// Scale parameter for net5.
#[derive(Clone, Copy, Debug)]
pub struct Net5Spec {
    /// 1.0 reproduces the paper's sizes; smaller values shrink the
    /// compartments while preserving the instance structure.
    pub scale: f64,
}

/// Derived concrete sizes.
#[derive(Clone, Debug)]
pub struct Net5Params {
    /// Routers per EIGRP compartment (compartment `i` runs EIGRP AS
    /// `10 + i`).
    pub eigrp_sizes: Vec<usize>,
    /// Internal BGP ASes: `(asn, compartment, member_count)`.
    pub bgp_groups: Vec<(u32, usize, usize)>,
    /// External peer ASes.
    pub external_ases: Vec<u32>,
}

/// Figure 9's "instance 4": the AS whose six routers redundantly
/// redistribute with EIGRP instance 1.
pub const AS_INSTANCE4: u32 = 65001;
/// Figure 9's "instance 2" (39 routers).
pub const AS_INSTANCE2: u32 = 65010;
/// Figure 9's "instance 3" (7 routers).
pub const AS_INSTANCE3: u32 = 65040;
/// Figure 9's "instance 5" (3 routers).
pub const AS_INSTANCE5: u32 = 10436;

impl Net5Spec {
    /// Computes the concrete sizes for this scale.
    pub fn params(&self) -> Net5Params {
        let s = self.scale;
        let scaled = |base: usize, floor: usize| -> usize {
            ((base as f64 * s).round() as usize).max(floor)
        };
        // Figure 9's three labelled compartments first (445 / 32 / 64),
        // then seven more, including the single-router instance the paper
        // mentions as the smallest.
        let bgp_groups: Vec<(u32, usize, usize)> = {
            let mut g = vec![
                (AS_INSTANCE4, 0, 6), // always exactly six (the headline)
                (AS_INSTANCE2, 0, scaled(39, 2)),
                (AS_INSTANCE3, 2, scaled(7, 2)),
                (AS_INSTANCE5, 1, scaled(3, 2)),
            ];
            for i in 0..10u32 {
                // Ten more small internal ASes over compartments 3..=9.
                g.push((64600 + i, 3 + (i as usize % 6), 2));
            }
            g
        };
        // Compartments must be large enough to host their BGP members.
        let base_sizes = [445usize, 32, 64, 151, 80, 40, 30, 20, 18, 1];
        let eigrp_sizes: Vec<usize> = base_sizes
            .iter()
            .enumerate()
            .map(|(c, &b)| {
                let members: usize = bgp_groups
                    .iter()
                    .filter(|(_, comp, _)| *comp == c)
                    .map(|(_, _, m)| m)
                    .sum();
                scaled(b, 1).max(members + 1).max(if c == 9 { 1 } else { 2 })
            })
            .collect();
        let external_ases = vec![
            1629, 6470, 2914, 3549, 6453, 7132, 19262, 22773, 209, 3561, 4323, 6939,
            174, 2828, 3257, 3300,
        ];
        Net5Params { eigrp_sizes, bgp_groups, external_ases }
    }
}

/// Generates net5.
pub fn generate(spec: Net5Spec, rng: &mut StdRng) -> DesignOutput {
    let params = spec.params();
    let mut out = DesignOutput::default();

    // --- EIGRP compartments ---
    let mut comp_members: Vec<Vec<usize>> = Vec::new();
    let mut plans: Vec<AddressPlan> = Vec::new();
    for (c, &size) in params.eigrp_sizes.iter().enumerate() {
        let mut plan = AddressPlan::for_compartment(10, c as u16);
        let hubs = if size > 100 {
            3
        } else if size > 20 {
            2
        } else {
            1
        };
        let hubs = hubs.min(size);
        let (hub_ids, spoke_ids) =
            hub_spoke(&mut out, &mut plan, rng, &format!("c{c}"), hubs, size - hubs);
        let members: Vec<usize> = hub_ids.into_iter().chain(spoke_ids).collect();
        for &id in &members {
            let mut p = ioscfg::EigrpProcess::new(10 + c as u32);
            // Internal pools only: net5's external world is reached via
            // BGP, never via the EIGRP compartments (Figure 9).
            p.networks = eigrp_internal_covers(&plan);
            p.no_auto_summary = true;
            out.builder.router(id).eigrp.push(p);
        }
        comp_members.push(members);
        plans.push(plan);
    }

    // The singleton compartment (the paper's "smallest instance contains
    // only a single router") still needs a physical uplink; the link is
    // covered by neither side's EIGRP, so its routing instance stays a
    // singleton — its routes travel via static routes only.
    {
        let lone = *comp_members[9].first().expect("compartment 9 exists");
        let hub0 = comp_members[0][0];
        let subnet = plans[0].p2p.alloc(30);
        let (ia, ib) = out.builder.p2p_link(hub0, lone, subnet, InterfaceType::Serial);
        out.internal_ifaces.push((hub0, ia));
        out.internal_ifaces.push((lone, ib));
        let (hub_addr, _) = subnet.p2p_hosts().expect("/30");
        out.builder.router(lone).static_routes.push(ioscfg::StaticRoute {
            dest: netaddr::Addr::ZERO,
            mask: netaddr::Netmask::ANY,
            target: ioscfg::StaticTarget::NextHop(hub_addr),
            distance: None,
            tag: None,
        });
    }

    // --- Compartment address ACLs (the "careful address layout" that
    //     lets policies be expressed by address, Section 6.1) ---
    let comp_acl = |c: usize| 60 + c as u32;
    let comp_block = |plans: &[AddressPlan], c: usize| compartment_slab(&plans[c]);

    // --- Internal BGP glue ---
    let member_addr: Vec<netaddr::Addr> = out
        .builder
        .routers
        .iter()
        .map(|r| r.interfaces[0].address.expect("all net5 routers addressed").addr)
        .collect();

    let mut bgp_members: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
    // BGP groups sharing a compartment take disjoint member slices (a
    // router runs at most one BGP process).
    let mut comp_offset = vec![0usize; comp_members.len()];
    for (asn, comp, count) in &params.bgp_groups {
        let start = comp_offset[*comp];
        let members: Vec<usize> =
            comp_members[*comp].iter().copied().skip(start).take(*count).collect();
        comp_offset[*comp] = start + count;
        assert_eq!(members.len(), *count, "compartment {comp} too small for AS{asn}");
        // IBGP mesh within the group (keeps the AS one routing instance).
        for &m in &members {
            let mut bgp = BgpProcess::new(*asn);
            bgp.no_synchronization = true;
            out.builder.router(m).bgp = Some(bgp);
        }
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                let (addr_a, addr_b) = (member_addr[a], member_addr[b]);
                out.builder.router(a).bgp.as_mut().expect("set above").neighbor_mut(addr_b).remote_as = Some(*asn);
                out.builder.router(b).bgp.as_mut().expect("set above").neighbor_mut(addr_a).remote_as = Some(*asn);
            }
        }
        // Mutual redistribution with the home compartment's EIGRP, using
        // the tag discipline: BGP→EIGRP stamps tag = asn % 1000; the
        // EIGRP→BGP direction matches compartment addresses and refuses
        // tagged (already-injected) routes — the loop-free, mesh-free
        // design the paper praises.
        let tag = asn % 1000;
        let block = comp_block(&plans, *comp);
        for &m in &members {
            let cfg = out.builder.router(m);
            cfg.access_lists.insert(
                comp_acl(*comp),
                AccessList {
                    id: comp_acl(*comp),
                    entries: vec![AclEntry::Standard {
                        action: AclAction::Permit,
                        addr: AclAddr::Wild(
                            block.first(),
                            block.mask().to_wildcard(),
                        ),
                    }],
                },
            );
            cfg.route_maps.insert(
                "from-eigrp".to_string(),
                RouteMap {
                    name: "from-eigrp".to_string(),
                    clauses: vec![
                        RouteMapClause {
                            seq: 10,
                            action: AclAction::Deny,
                            matches: vec![RmMatch::Tag(vec![tag])],
                            sets: Vec::new(),
                        },
                        RouteMapClause {
                            seq: 20,
                            action: AclAction::Permit,
                            matches: vec![RmMatch::IpAddress(vec![comp_acl(*comp)])],
                            sets: Vec::new(),
                        },
                    ],
                },
            );
            let bgp = cfg.bgp.as_mut().expect("set above");
            bgp.redistribute.push(Redistribution {
                route_map: Some("from-eigrp".to_string()),
                ..Redistribution::plain(RedistSource::Eigrp(10 + *comp as u32))
            });
            let eigrp = cfg
                .eigrp
                .iter_mut()
                .find(|p| p.asn == 10 + *comp as u32)
                .expect("member belongs to its compartment");
            eigrp.redistribute.push(Redistribution {
                tag: Some(tag),
                metric: Some(1000),
                ..Redistribution::plain(RedistSource::Bgp(*asn))
            });
        }
        bgp_members.insert(*asn, members);
    }

    // --- Internal EBGP sessions between BGP instances (EBGP used
    //     intra-domain): instance 5 ↔ instance 4, instance 3 ↔ instance 2,
    //     and each small AS ↔ instance 2 ---
    let mut ebgp_pairs: Vec<(u32, u32)> =
        vec![(AS_INSTANCE5, AS_INSTANCE4), (AS_INSTANCE3, AS_INSTANCE2)];
    for (asn, _, _) in params.bgp_groups.iter().skip(4) {
        ebgp_pairs.push((*asn, AS_INSTANCE2));
    }
    for (x, y) in ebgp_pairs {
        let a = bgp_members[&x][0];
        let b = bgp_members[&y][0];
        // A dedicated /30 between the two border routers.
        let subnet = plans[0].p2p.alloc(30);
        let (ia, ib) = out.builder.p2p_link(a, b, subnet, InterfaceType::Serial);
        out.internal_ifaces.push((a, ia));
        out.internal_ifaces.push((b, ib));
        let (addr_a, addr_b) = subnet.p2p_hosts().expect("/30");
        out.builder.router(a).bgp.as_mut().expect("member has bgp").neighbor_mut(addr_b).remote_as = Some(y);
        out.builder.router(b).bgp.as_mut().expect("member has bgp").neighbor_mut(addr_a).remote_as = Some(x);
    }

    // --- External EBGP peerings: 16 external ASes spread over the BGP
    //     groups (instance 5 → AS1629 and instance 3 → AS6470 first, as in
    //     Figure 9) ---
    let mut hosts: Vec<u32> = vec![AS_INSTANCE5, AS_INSTANCE3];
    for (asn, _, _) in params.bgp_groups.iter().skip(4) {
        hosts.push(*asn);
    }
    hosts.push(AS_INSTANCE2);
    hosts.push(AS_INSTANCE2);
    hosts.push(AS_INSTANCE4);
    hosts.push(AS_INSTANCE2);
    for (i, ext_as) in params.external_ases.iter().enumerate() {
        let host_asn = hosts[i % hosts.len()];
        let member = bgp_members[&host_asn][i % bgp_members[&host_asn].len()];
        let subnet = plans[0].external.alloc(30);
        let (iface, peer) = out.builder.external_stub(member, subnet, InterfaceType::Serial);
        out.external_ifaces.push((member, iface));
        let bgp = out.builder.router(member).bgp.as_mut().expect("member has bgp");
        bgp.neighbor_mut(peer).remote_as = Some(*ext_as);
    }

    // Interior routers select on tags: a representative route map exists
    // on every hub so the configuration records the tag discipline.
    for members in &comp_members {
        let hub = members[0];
        let cfg = out.builder.router(hub);
        cfg.route_maps.entry("prefer-tagged".to_string()).or_insert_with(|| RouteMap {
            name: "prefer-tagged".to_string(),
            clauses: vec![RouteMapClause {
                seq: 10,
                action: AclAction::Permit,
                matches: vec![RmMatch::Tag(vec![1, 10, 40, 436])],
                sets: vec![RmSet::Weight(200)],
            }],
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(scale: f64) -> (Net5Params, nettopo::Network) {
        let spec = Net5Spec { scale };
        let params = spec.params();
        let mut rng = StdRng::seed_from_u64(55);
        let out = generate(spec, &mut rng);
        (params, nettopo::Network::from_texts(out.builder.to_texts()).unwrap())
    }

    struct Analysis {
        instances: routing_model::Instances,
        graph: routing_model::InstanceGraph,
        summary: routing_model::DesignSummary,
    }

    fn analyze(net: &nettopo::Network) -> Analysis {
        let links = nettopo::LinkMap::build(net);
        let external = nettopo::ExternalAnalysis::build(net, &links);
        let procs = routing_model::Processes::extract(net);
        let adj = routing_model::Adjacencies::build(net, &links, &procs, &external);
        let instances = routing_model::Instances::compute(&procs, &adj);
        let graph = routing_model::InstanceGraph::build(net, &procs, &adj, &instances);
        let t1 = routing_model::Table1::compute(&instances, &graph, &adj);
        let summary = routing_model::classify_network(net, &instances, &graph, &adj, &t1);
        Analysis { instances, graph, summary }
    }

    #[test]
    fn small_scale_matches_figure9_structure() {
        let (params, net) = build(0.12);
        let total: usize = params.eigrp_sizes.iter().sum();
        assert_eq!(net.len(), total);
        let a = analyze(&net);
        // 24 routing instances: 10 EIGRP + 14 BGP.
        assert_eq!(a.instances.len(), 24, "instances: {:#?}", a.instances.list.iter().map(|i| i.label()).collect::<Vec<_>>());
        let eigrp = a
            .instances
            .list
            .iter()
            .filter(|i| i.kind == routing_model::ProtoKind::Eigrp)
            .count();
        assert_eq!(eigrp, 10);
        // 14 distinct internal ASes.
        assert_eq!(a.summary.internal_ases, 14);
        // 16 external peer ASes.
        assert_eq!(a.graph.external_ases().len(), 16);
        // The design defies textbook classification.
        assert_eq!(a.summary.class, routing_model::DesignClass::Unclassifiable);
        // EBGP used internally.
        assert!(a.summary.internal_ebgp_sessions >= 12, "{:?}", a.summary);
    }

    #[test]
    fn six_redundant_redistribution_routers() {
        let (_, net) = build(0.12);
        let a = analyze(&net);
        // Find EIGRP compartment 0's instance (the largest) and BGP
        // AS65001's instance.
        let inst1 = a.instances.list.iter().find(|i| i.kind == routing_model::ProtoKind::Eigrp).unwrap();
        let inst4 = a
            .instances
            .list
            .iter()
            .find(|i| i.asn == Some(AS_INSTANCE4))
            .unwrap();
        let routers = a.graph.redistribution_routers(inst4.id, inst1.id);
        assert_eq!(routers.len(), 6, "redundant redistributors: {routers:?}");
        let back = a.graph.redistribution_routers(inst1.id, inst4.id);
        assert_eq!(back.len(), 6);
    }

    #[test]
    fn largest_instance_dominates() {
        let (params, net) = build(0.12);
        let a = analyze(&net);
        assert_eq!(
            a.instances.list[0].router_count(),
            params.eigrp_sizes[0],
            "instance 0 must be the big compartment"
        );
        // Smallest instance is a single router (the paper's observation).
        assert_eq!(a.instances.list.last().unwrap().router_count(), 1);
    }

    #[test]
    fn full_scale_params_match_paper() {
        let params = Net5Spec { scale: 1.0 }.params();
        assert_eq!(params.eigrp_sizes.iter().sum::<usize>(), 881);
        assert_eq!(params.eigrp_sizes[0], 445);
        assert_eq!(params.eigrp_sizes[1], 32);
        assert_eq!(params.eigrp_sizes[2], 64);
        assert_eq!(params.bgp_groups.len(), 14);
        assert_eq!(params.external_ases.len(), 16);
        assert_eq!(params.bgp_groups[0], (AS_INSTANCE4, 0, 6));
        assert_eq!(params.bgp_groups[1].2, 39);
    }

    #[test]
    fn pathway_depth_reaches_three_layers() {
        // Router 3 of Figure 10 sits behind ≥3 layers of protocols; any
        // plain compartment-0 spoke reproduces that depth.
        let (_, net) = build(0.12);
        let links = nettopo::LinkMap::build(&net);
        let external = nettopo::ExternalAnalysis::build(&net, &links);
        let procs = routing_model::Processes::extract(&net);
        let adj = routing_model::Adjacencies::build(&net, &links, &procs, &external);
        let instances = routing_model::Instances::compute(&procs, &adj);
        let graph = routing_model::InstanceGraph::build(&net, &procs, &adj, &instances);
        // Pick a compartment-0 spoke with no BGP process.
        let spoke = net
            .iter()
            .find(|(_, r)| {
                r.config.bgp.is_none()
                    && r.config.eigrp.first().is_some_and(|p| p.asn == 10)
            })
            .map(|(id, _)| id)
            .expect("compartment 0 has plain spokes");
        let pathway = routing_model::PathwayGraph::trace(spoke, &instances, &graph);
        assert!(pathway.max_depth() >= 3, "depth {}", pathway.max_depth());
        assert!(pathway.reaches_external_world());
    }
}
