//! Tier-2 provider networks (paper Section 7.1).
//!
//! "The large tier-2 ISP has the BGP structure of a backbone network, but
//! contains a very large number of staging IGP instances. These are
//! routing instances of a traditional IGP protocol, like OSPF or EIGRP,
//! that have only a single router inside the network, but a large number
//! of external peers. Presumably these are used to connect customers that
//! do not run BGP ... in preference to using static routes because the
//! IGP provides ongoing validation that the link to the customer is still
//! up."

use ioscfg::{InterfaceType, OspfProcess, Redistribution, RedistSource, RipProcess};
use rd_rng::StdRng;

use crate::designs::{backbone, DesignOutput};

/// Parameters for one tier-2 network.
#[derive(Clone, Copy, Debug)]
pub struct Tier2Spec {
    /// Total routers.
    pub routers: usize,
    /// The provider's AS number.
    pub asn: u32,
    /// Mean non-BGP customers (staging-instance peers) per edge router.
    pub staging_customers_per_edge: usize,
}

/// Generates a tier-2 provider.
pub fn generate(spec: Tier2Spec, rng: &mut StdRng) -> DesignOutput {
    // Start from a backbone core (BGP everywhere, IBGP reflection, OSPF 1
    // for infrastructure, BGP customers).
    let mut out = backbone::generate(
        backbone::BackboneSpec {
            routers: spec.routers,
            use_pos: true,
            asn: spec.asn,
            peers_per_edge: 2,
        },
        rng,
    );

    // Staging instances: every router named "...-edge..." gets a second
    // IGP process covering only customer-facing /30 stubs. OSPF pids vary
    // per router — the paper stresses pids carry no network-wide meaning,
    // and this produces same-pid processes in different instances.
    // Customer links draw from compartment 15 of the same base: disjoint
    // from the backbone's compartment-0 plan.
    let mut plan = crate::alloc::AddressPlan::for_compartment(10, 15);

    let edge_ids: Vec<usize> = out
        .builder
        .routers
        .iter()
        .enumerate()
        .filter(|(_, r)| r.hostname.as_deref().is_some_and(|h| h.contains("-edge")))
        .map(|(i, _)| i)
        .collect();

    for (k, &edge) in edge_ids.iter().enumerate() {
        // Two of every three edges host staging customers; the rest serve
        // BGP-speaking customers only.
        if k % 3 == 2 {
            continue;
        }
        let customers = if spec.staging_customers_per_edge == 0 {
            0
        } else {
            rng.gen_range(1..=spec.staging_customers_per_edge * 2)
        };
        if customers == 0 {
            continue;
        }
        let mut stub_subnets = Vec::with_capacity(customers);
        for _ in 0..customers {
            let subnet = plan.external.alloc(30);
            let (iface, _) =
                out.builder.external_stub(edge, subnet, InterfaceType::Serial);
            out.external_ifaces.push((edge, iface));
            stub_subnets.push(subnet);
        }
        // Staging protocol: mostly OSPF, RIP on a minority of staging
        // edges (the "easier to configure than BGP" flavour of
        // Section 5.2).
        if k % 6 != 1 {
            let mut p = OspfProcess::new(200 + (k as u32 % 3)); // colliding pids on purpose
            for s in &stub_subnets {
                p.networks.push(ioscfg::OspfNetwork {
                    addr: s.first(),
                    wildcard: s.mask().to_wildcard(),
                    area: ioscfg::OspfArea(0),
                });
            }
            // Customer routes flow into BGP for network-wide distribution.
            out.builder.router(edge).ospf.push(p);
            let bgp = out.builder.router(edge).bgp.as_mut().expect("backbone set bgp");
            bgp.redistribute
                .push(Redistribution::plain(RedistSource::Ospf(200 + (k as u32 % 3))));
        } else {
            let mut p = RipProcess::new();
            p.version = Some(2);
            for s in &stub_subnets {
                p.networks.push(s.first());
            }
            out.builder.router(edge).rip = Some(p);
            let bgp = out.builder.router(edge).bgp.as_mut().expect("backbone set bgp");
            bgp.redistribute.push(Redistribution::plain(RedistSource::Rip));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> nettopo::Network {
        let mut rng = StdRng::seed_from_u64(23);
        let out = generate(
            Tier2Spec { routers: 60, asn: 65200, staging_customers_per_edge: 3 },
            &mut rng,
        );
        nettopo::Network::from_texts(out.builder.to_texts()).unwrap()
    }

    #[test]
    fn classifies_as_tier2_with_staging_instances() {
        let net = build();
        let links = nettopo::LinkMap::build(&net);
        let external = nettopo::ExternalAnalysis::build(&net, &links);
        let procs = routing_model::Processes::extract(&net);
        let adj = routing_model::Adjacencies::build(&net, &links, &procs, &external);
        let inst = routing_model::Instances::compute(&procs, &adj);
        let graph = routing_model::InstanceGraph::build(&net, &procs, &adj, &inst);
        let t1 = routing_model::Table1::compute(&inst, &graph, &adj);
        let summary = routing_model::classify_network(&net, &inst, &graph, &adj, &t1);
        assert_eq!(summary.class, routing_model::DesignClass::Tier2, "{summary:?}");
        assert!(summary.staging_instances >= 10, "{summary:?}");
        // Staging instances are single-router and inter-domain.
        for s in inst.staging_instances() {
            assert_eq!(s.router_count(), 1);
        }
        // Same-pid OSPF processes appear in different instances (the
        // paper's Section 3.2 observation).
        let mut by_pid: std::collections::BTreeMap<u32, usize> = Default::default();
        for i in inst.list.iter().filter(|i| i.kind == routing_model::ProtoKind::Ospf) {
            for p in &i.processes {
                if let routing_model::Proto::Ospf(pid) = p.proto {
                    if pid >= 200 {
                        *by_pid.entry(pid).or_default() += 1;
                    }
                }
            }
        }
        assert!(
            by_pid.values().any(|&c| c > 1),
            "expected a pid shared across instances: {by_pid:?}"
        );
    }

    #[test]
    fn rip_staging_counts_as_inter_domain() {
        let net = build();
        let links = nettopo::LinkMap::build(&net);
        let external = nettopo::ExternalAnalysis::build(&net, &links);
        let procs = routing_model::Processes::extract(&net);
        let adj = routing_model::Adjacencies::build(&net, &links, &procs, &external);
        let inst = routing_model::Instances::compute(&procs, &adj);
        let graph = routing_model::InstanceGraph::build(&net, &procs, &adj, &inst);
        let t1 = routing_model::Table1::compute(&inst, &graph, &adj);
        assert!(t1.igp_row("RIP").inter > 0, "{t1}");
        assert!(t1.igp_row("OSPF").inter > 0, "{t1}");
    }
}
