//! Networks that use no BGP at all (3 of the paper's 31 networks).
//!
//! A single IGP instance plus static default routes toward the provider.
//! External connectivity exists — it just is not visible to any routing
//! protocol, which is exactly why these networks stand out in Table 1.

use ioscfg::{InterfaceType, Redistribution, RedistSource, RipProcess, StaticRoute, StaticTarget};
use netaddr::{Addr, Netmask};
use rd_rng::StdRng;

use crate::alloc::AddressPlan;
use crate::designs::{hub_spoke, ospf_internal_covers, DesignOutput};

/// Parameters for a no-BGP network.
#[derive(Clone, Copy, Debug)]
pub struct NoBgpSpec {
    /// Total routers (≥ 2).
    pub routers: usize,
    /// Use RIP instead of OSPF.
    pub use_rip: bool,
}

/// Generates a no-BGP network.
pub fn generate(spec: NoBgpSpec, rng: &mut StdRng) -> DesignOutput {
    assert!(spec.routers >= 2);
    let mut out = DesignOutput::default();
    let mut plan = AddressPlan::for_compartment(10, 0);
    let hubs = if spec.routers > 30 { 2 } else { 1 };
    let (hub_ids, spoke_ids) =
        hub_spoke(&mut out, &mut plan, rng, "site", hubs, spec.routers - hubs);

    for &id in hub_ids.iter().chain(&spoke_ids) {
        if spec.use_rip {
            let mut p = RipProcess::new();
            p.version = Some(2);
            // RIP network statements are classful; 10.0.0.0 covers the plan.
            p.networks.push(Addr::new(10, 0, 0, 0));
            p.redistribute.push(Redistribution::plain(RedistSource::Static));
            out.builder.router(id).rip = Some(p);
        } else {
            let mut p = ioscfg::OspfProcess::new(1);
            // OSPF covers internal pools only; RIP's classful statement
            // (above) intentionally covers the external link too — one of
            // the paper's IGP-at-the-edge cases.
            p.networks = ospf_internal_covers(&plan);
            p.redistribute.push(Redistribution::plain(RedistSource::Static));
            out.builder.router(id).ospf.push(p);
        }
    }

    // The hub has an external /30 with a static default toward it — an
    // external-facing link with no routing protocol on it.
    let hub = hub_ids[0];
    let subnet = plan.external.alloc(30);
    let (iface, provider) = out.builder.external_stub(hub, subnet, InterfaceType::Serial);
    out.external_ifaces.push((hub, iface));
    out.builder.router(hub).static_routes.push(StaticRoute {
        dest: Addr::ZERO,
        mask: Netmask::ANY,
        target: StaticTarget::NextHop(provider),
        distance: None,
        tag: None,
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(use_rip: bool) -> nettopo::Network {
        let mut rng = StdRng::seed_from_u64(3);
        let out = generate(NoBgpSpec { routers: 9, use_rip }, &mut rng);
        nettopo::Network::from_texts(out.builder.to_texts()).unwrap()
    }

    #[test]
    fn classifies_as_no_bgp() {
        for use_rip in [true, false] {
            let net = build(use_rip);
            assert_eq!(net.len(), 9);
            let links = nettopo::LinkMap::build(&net);
            let external = nettopo::ExternalAnalysis::build(&net, &links);
            let procs = routing_model::Processes::extract(&net);
            let adj = routing_model::Adjacencies::build(&net, &links, &procs, &external);
            let inst = routing_model::Instances::compute(&procs, &adj);
            let graph = routing_model::InstanceGraph::build(&net, &procs, &adj, &inst);
            let t1 = routing_model::Table1::compute(&inst, &graph, &adj);
            let summary = routing_model::classify_network(&net, &inst, &graph, &adj, &t1);
            assert_eq!(summary.class, routing_model::DesignClass::NoBgp);
            assert_eq!(summary.bgp_speakers, 0);
            assert_eq!(t1.ebgp_sessions.total(), 0);
        }
    }

    #[test]
    fn single_igp_instance_spans_network() {
        let net = build(false);
        let links = nettopo::LinkMap::build(&net);
        let external = nettopo::ExternalAnalysis::build(&net, &links);
        let procs = routing_model::Processes::extract(&net);
        let adj = routing_model::Adjacencies::build(&net, &links, &procs, &external);
        let inst = routing_model::Instances::compute(&procs, &adj);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.list[0].router_count(), 9);
    }
}
