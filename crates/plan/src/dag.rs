//! Dependency-DAG construction over change units.
//!
//! Edges are derived from analysis facts, not from config syntax: a unit
//! `u` must precede a unit `r` when applying `r` first would predictably
//! strand routers that the later application of `u` needs. All rules
//! point *into* Remove units (drain before remove, replace before
//! retire), so the graph is acyclic by construction; a deterministic
//! cycle-skip guards the invariant anyway in case future rules relax it.

use crate::{bit, ChangeKind, ChangeUnit, StateFacts};

/// The dependency DAG: `preds[i]` is the bitmask of units that must be
/// applied before unit `i` becomes ready.
#[derive(Clone, Debug, Default)]
pub struct Dag {
    /// Predecessor mask per unit.
    pub preds: Vec<u128>,
    /// The kept edges as `(before, after, rule)` triples, sorted — for
    /// rendering and tests.
    pub edges: Vec<(usize, usize, &'static str)>,
    /// Candidate edges dropped because they would have closed a cycle
    /// (0 with the current rules; counted for future-proofing).
    pub cycles_skipped: usize,
}

fn shares_any(a: &[String], b: &[String]) -> bool {
    // Both sides are sorted; a merge walk keeps this allocation-free.
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Would adding `before -> after` close a cycle, i.e. is `before`
/// already reachable from `after` through `preds`? (`preds` edges point
/// backwards: `x in preds[y]` means `x -> y`.)
fn reaches(preds: &[u128], from: usize, to: usize) -> bool {
    let mut seen = bit(from);
    let mut frontier = bit(from);
    while frontier != 0 {
        let mut next = 0u128;
        for (i, &p) in preds.iter().enumerate() {
            if seen & bit(i) == 0 && p & frontier != 0 {
                if i == to {
                    return true;
                }
                seen |= bit(i);
                next |= bit(i);
            }
        }
        frontier = next;
    }
    false
}

/// Builds the dependency DAG over `units` from the endpoint facts.
///
/// Rules (edges `u -> r`, "u before r"):
///
/// 1. **Drain before remove** — a non-Remove unit whose router currently
///    shares a routing instance or a link subnet with a to-be-removed
///    router must be applied before that removal: the shared fate is
///    exactly what the migration is untangling.
/// 2. **External replacement first** — an Add whose router is
///    external-facing in the target precedes every Remove of a currently
///    external-facing router, so the network is never without its new
///    border before losing the old one.
/// 3. **Redistribution replacement first** — likewise for routers that
///    redistribute between instances.
///
/// Candidate edges are processed in sorted `(before, after)` order and
/// any edge that would close a cycle is skipped deterministically.
pub fn build_dag(units: &[ChangeUnit], current: &StateFacts, target: &StateFacts) -> Dag {
    let mut candidates: Vec<(usize, usize, &'static str)> = Vec::new();
    for (ri, removal) in units.iter().enumerate() {
        if removal.kind != ChangeKind::Remove {
            continue;
        }
        let Some(removed) = current.router(&removal.router) else {
            continue;
        };
        for (ui, unit) in units.iter().enumerate() {
            if ui == ri || unit.kind == ChangeKind::Remove {
                continue;
            }
            // Rule 1: the unit's router, *in its current state*, shares
            // an instance or a link with the removed router. Adds have no
            // current state and are covered by rules 2-3.
            if let Some(state) = current.router(&unit.router) {
                if shares_any(&state.instance_keys, &removed.instance_keys)
                    || shares_any(&state.link_subnets, &removed.link_subnets)
                {
                    candidates.push((ui, ri, "drain-before-remove"));
                    continue;
                }
            }
            let Some(target_state) = target.router(&unit.router) else {
                continue;
            };
            // Rule 2: replacement border router exists before the old
            // border is retired.
            if removed.external_facing
                && unit.kind == ChangeKind::Add
                && target_state.external_facing
            {
                candidates.push((ui, ri, "external-replacement-first"));
                continue;
            }
            // Rule 3: replacement redistributor before the old one goes.
            if removed.redistributes && target_state.redistributes {
                candidates.push((ui, ri, "redistribution-replacement-first"));
            }
        }
    }
    candidates.sort();
    candidates.dedup();

    let mut dag = Dag { preds: vec![0u128; units.len()], ..Dag::default() };
    for (before, after, rule) in candidates {
        if reaches(&dag.preds, before, after) {
            // `after` already (transitively) precedes `before`: adding
            // this edge would close a cycle. Skip deterministically.
            dag.cycles_skipped += 1;
            continue;
        }
        dag.preds[after] |= bit(before);
        dag.edges.push((before, after, rule));
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouterState;

    fn unit(kind: ChangeKind, router: &str) -> ChangeUnit {
        ChangeUnit {
            kind,
            router: router.to_string(),
            old_file: (kind != ChangeKind::Add).then(|| format!("{router}.cfg")),
            new_file: (kind != ChangeKind::Remove).then(|| format!("{router}.cfg")),
            bytes: (kind != ChangeKind::Remove).then(|| b"cfg".to_vec()),
        }
    }

    fn state(name: &str, instances: &[&str], subnets: &[&str]) -> RouterState {
        RouterState {
            name: name.to_string(),
            file_name: format!("{name}.cfg"),
            instance_keys: instances.iter().map(|s| s.to_string()).collect(),
            link_subnets: subnets.iter().map(|s| s.to_string()).collect(),
            ..RouterState::default()
        }
    }

    #[test]
    fn drain_before_remove_edges_from_shared_instance_and_link() {
        // remove:b shares the IGP with a (instance) and a subnet with c.
        let units = vec![
            unit(ChangeKind::Modify, "a"),
            unit(ChangeKind::Modify, "c"),
            unit(ChangeKind::Remove, "b"),
        ];
        let current = StateFacts {
            routers: vec![
                state("a", &["ospf"], &["10.0.0.0/30"]),
                state("b", &["ospf"], &["10.0.1.0/30"]),
                state("c", &["bgp:65001"], &["10.0.1.0/30"]),
            ],
            ..StateFacts::default()
        };
        let target = StateFacts {
            routers: vec![state("a", &["ospf"], &[]), state("c", &["bgp:65001"], &[])],
            ..StateFacts::default()
        };
        let dag = build_dag(&units, &current, &target);
        assert_eq!(dag.preds[2], bit(0) | bit(1), "both drains precede remove:b");
        assert_eq!(dag.preds[0], 0);
        assert_eq!(dag.preds[1], 0);
        assert_eq!(dag.cycles_skipped, 0);
        assert!(dag.edges.iter().all(|&(_, _, rule)| rule == "drain-before-remove"));
    }

    #[test]
    fn border_and_redistributor_replacements_precede_retirement() {
        let units = vec![
            unit(ChangeKind::Add, "new-edge"),
            unit(ChangeKind::Modify, "mid"),
            unit(ChangeKind::Remove, "old-edge"),
        ];
        let mut old_edge = state("old-edge", &["bgp:65001"], &[]);
        old_edge.external_facing = true;
        old_edge.redistributes = true;
        let current = StateFacts {
            routers: vec![state("mid", &["ospf"], &[]), old_edge],
            ..StateFacts::default()
        };
        let mut new_edge = state("new-edge", &["bgp:65001"], &[]);
        new_edge.external_facing = true;
        let mut mid_t = state("mid", &["ospf"], &[]);
        mid_t.redistributes = true;
        let target = StateFacts {
            routers: vec![mid_t, new_edge],
            ..StateFacts::default()
        };
        let dag = build_dag(&units, &current, &target);
        // add:new-edge (rule 2) and modify:mid (rule 3) both precede the
        // removal of the old edge router.
        assert_eq!(dag.preds[2], bit(0) | bit(1));
        let rules: Vec<&str> = dag.edges.iter().map(|&(_, _, r)| r).collect();
        assert!(rules.contains(&"external-replacement-first"));
        assert!(rules.contains(&"redistribution-replacement-first"));
    }

    #[test]
    fn cycle_candidates_are_skipped_deterministically() {
        // reaches() itself: 0 -> 1 -> 2 chains make 2 -> 0 a cycle edge.
        let mut preds = vec![0u128; 3];
        preds[1] |= bit(0);
        preds[2] |= bit(1);
        assert!(reaches(&preds, 0, 2));
        assert!(!reaches(&preds, 2, 0));
    }
}
