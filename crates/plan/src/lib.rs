//! `rd-plan`: safe reconfiguration planning over router-config corpora.
//!
//! The paper reverse-engineers what an operational routing design *is*;
//! this crate plans how to *change* one safely — the Section 8.1
//! maintenance workflow taken to its conclusion. Given a *current* and a
//! *target* corpus of per-router configuration files, [`plan`]:
//!
//! 1. decomposes the delta into **atomic change units** — per-router
//!    config additions, removals, and replacements, detected by semantic
//!    FNV-1a-64 fingerprints so cosmetic churn (comment lines, `!`
//!    separators) produces no unit at all;
//! 2. builds a **dependency DAG** over the units from analysis facts:
//!    routers sharing a routing instance or a link subnet with a
//!    to-be-removed router must change first (drain before remove), and
//!    replacement border/redistribution routers must exist before the old
//!    ones go;
//! 3. **searches for a safe ordering**: every intermediate corpus state is
//!    materialized in memory, re-analyzed, and checked against an
//!    invariant envelope (connectivity, instance connectivity, no new
//!    external ASes, border reachability of every target router, parse
//!    coverage) derived from the two endpoint states. All ready candidates
//!    of a search step are evaluated in parallel via
//!    [`rd_par::par_map_cost`], and the first passing candidate *in sorted
//!    unit order* is taken — so the emitted plan is byte-identical at any
//!    `RD_THREADS` setting;
//! 4. **emits the plan** as an ordered step list with a per-step
//!    verification report, plus a counter-factual: where the naive
//!    lexicographic ordering of the same units first violates an
//!    invariant.
//!
//! The engine is deliberately analysis-agnostic: it never parses a config
//! itself. The caller supplies an `analyze` closure turning a corpus of
//! `(file_name, bytes)` pairs into [`StateFacts`]; the `routing-design`
//! crate bridges its full pipeline into that shape (and `rdx plan`
//! exposes the result on the command line). This inversion keeps the
//! crate graph acyclic — `routing-design` depends on `rd-plan`, not the
//! other way around — and makes the search unit-testable with synthetic
//! fact tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dag;
mod emit;
mod search;
pub mod scenario;

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

pub use dag::{build_dag, Dag};
pub use emit::{render_json, render_table};
pub use search::{
    check_state, Envelope, InvariantCheck, NaiveReport, NaiveViolation, SearchStats,
    StepVerdict,
};

/// A corpus as the planner sees it: `(file_name, bytes)` pairs, sorted by
/// file name. Bytes, not text — the planner must cope with whatever is on
/// disk, including files the analysis quarantines.
pub type CorpusFiles = Vec<(String, Vec<u8>)>;

/// The most units one plan may hold: intermediate states are memoized by
/// a `u128` applied-set bitmask.
pub const MAX_UNITS: usize = 128;

/// Everything the planner needs to know about one router in one analyzed
/// state. Produced by the caller's `analyze` closure.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterState {
    /// Stable identity: configured hostname, else file name.
    pub name: String,
    /// The configuration file carrying this router.
    pub file_name: String,
    /// Semantic fingerprint of the full parsed configuration
    /// (FNV-1a-64 over its canonical encoding).
    pub fingerprint: u64,
    /// [`fingerprint`](RouterState::fingerprint) with the hostname
    /// cleared — equal body fingerprints across a remove/add pair mean a
    /// rename, not a redesign.
    pub body_fingerprint: u64,
    /// True when the analysis classifies any interface of this router as
    /// external-facing (a border router).
    pub external_facing: bool,
    /// True when this router redistributes routes between instances.
    pub redistributes: bool,
    /// Index of the connectivity component this router sits in.
    pub component: usize,
    /// Keys of the routing instances this router participates in
    /// (e.g. `"ospf"`, `"bgp:65001"`), sorted.
    pub instance_keys: Vec<String>,
    /// Rendered subnets of its addressed interfaces, sorted — the
    /// link-sharing test behind the drain-before-remove DAG rule.
    pub link_subnets: Vec<String>,
}

/// The analysis facts of one corpus state — the planner's entire view of
/// a network. Cheap to produce from any analysis pipeline; rich enough to
/// check the invariant envelope.
#[derive(Clone, Debug, Default)]
pub struct StateFacts {
    /// Per-router facts, in analysis order.
    pub routers: Vec<RouterState>,
    /// Number of connectivity components over the inferred links.
    pub components: usize,
    /// Routing instances per instance key (a partitioned IGP shows up as
    /// a count increase under the same key).
    pub instance_counts: BTreeMap<String, usize>,
    /// External AS numbers peered with.
    pub external_ases: std::collections::BTreeSet<u32>,
    /// Config files the analysis quarantined (unparseable, empty, ...).
    pub quarantined: usize,
}

impl StateFacts {
    /// The router state behind a stable identity, if present.
    pub fn router(&self, name: &str) -> Option<&RouterState> {
        self.routers.iter().find(|r| r.name == name)
    }
}

/// What one change unit does to its router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChangeKind {
    /// A router exists only in the target: its file is created.
    Add,
    /// A router exists in both but its semantic fingerprint differs: its
    /// file is replaced with the target version.
    Modify,
    /// A router exists only in the current corpus: its file is deleted.
    Remove,
}

impl ChangeKind {
    /// Lowercase verb used in keys, tables, and JSON.
    pub fn verb(self) -> &'static str {
        match self {
            ChangeKind::Add => "add",
            ChangeKind::Modify => "modify",
            ChangeKind::Remove => "remove",
        }
    }
}

/// One atomic change: a per-router config addition, removal, or
/// replacement. Applying a unit is a pure function of the file set, so an
/// intermediate state is fully determined by the *set* of applied units —
/// which is what makes bitmask memoization sound.
#[derive(Clone, Debug)]
pub struct ChangeUnit {
    /// What happens.
    pub kind: ChangeKind,
    /// The router's stable identity (hostname, else file name).
    pub router: String,
    /// File removed from the corpus (Remove and Modify).
    pub old_file: Option<String>,
    /// File written into the corpus (Add and Modify).
    pub new_file: Option<String>,
    /// The target bytes written (Add and Modify).
    pub bytes: Option<Vec<u8>>,
}

impl ChangeUnit {
    /// Deterministic sort/display key: `"<verb>:<router>"`.
    pub fn key(&self) -> String {
        format!("{}:{}", self.kind.verb(), self.router)
    }
}

/// Derives the atomic change units between two analyzed states. Routers
/// are matched by stable identity; equal fingerprints produce no unit
/// (cosmetic byte churn is not a change). Returned sorted by
/// [`ChangeUnit::key`] — adds, then modifies, then removes, each
/// alphabetical — which fixes both the naive baseline order and the
/// search's deterministic tie-breaking.
pub fn diff_units(
    current: &StateFacts,
    target: &StateFacts,
    target_files: &CorpusFiles,
) -> Vec<ChangeUnit> {
    let bytes_of = |file: &str| -> Option<Vec<u8>> {
        target_files.iter().find(|(name, _)| name == file).map(|(_, b)| b.clone())
    };
    let mut units = Vec::new();
    for r in &current.routers {
        match target.router(&r.name) {
            None => units.push(ChangeUnit {
                kind: ChangeKind::Remove,
                router: r.name.clone(),
                old_file: Some(r.file_name.clone()),
                new_file: None,
                bytes: None,
            }),
            Some(t) if t.fingerprint != r.fingerprint => units.push(ChangeUnit {
                kind: ChangeKind::Modify,
                router: r.name.clone(),
                old_file: Some(r.file_name.clone()),
                new_file: Some(t.file_name.clone()),
                bytes: bytes_of(&t.file_name),
            }),
            Some(_) => {}
        }
    }
    for t in &target.routers {
        if current.router(&t.name).is_none() {
            units.push(ChangeUnit {
                kind: ChangeKind::Add,
                router: t.name.clone(),
                old_file: None,
                new_file: Some(t.file_name.clone()),
                bytes: bytes_of(&t.file_name),
            });
        }
    }
    units.sort_by_key(ChangeUnit::key);
    units
}

/// The bit of unit `i` in an applied-set mask.
pub(crate) fn bit(i: usize) -> u128 {
    1u128 << i
}

/// Materializes the intermediate corpus reached by applying the units in
/// `applied` (a bitmask over `units`) to `current`. Order-independent by
/// construction: each unit touches only its own router's files.
pub fn materialize(current: &CorpusFiles, units: &[ChangeUnit], applied: u128) -> CorpusFiles {
    let mut files: BTreeMap<&str, &[u8]> =
        current.iter().map(|(name, bytes)| (name.as_str(), bytes.as_slice())).collect();
    for (i, unit) in units.iter().enumerate() {
        if applied & bit(i) == 0 {
            continue;
        }
        if let Some(old) = &unit.old_file {
            files.remove(old.as_str());
        }
        if let (Some(new), Some(bytes)) = (&unit.new_file, &unit.bytes) {
            files.insert(new.as_str(), bytes.as_slice());
        }
    }
    files.into_iter().map(|(name, bytes)| (name.to_string(), bytes.to_vec())).collect()
}

/// A verified reconfiguration plan: the ordered units, a per-step
/// invariant report, the naive-ordering counter-factual, and search
/// statistics. Everything except [`timings`](Plan::timings) is a pure
/// function of the two input corpora — render it with [`render_json`] or
/// [`render_table`] and the bytes are identical at any `RD_THREADS`.
#[derive(Clone, Debug)]
pub struct Plan {
    /// All change units, sorted by key; `order` indexes into this.
    pub units: Vec<ChangeUnit>,
    /// The safe application order (indices into `units`).
    pub order: Vec<usize>,
    /// Per-step verification: `verdicts[i]` checks the state after
    /// applying `order[..=i]`. Every check in an emitted plan passed.
    pub verdicts: Vec<StepVerdict>,
    /// Where the naive lexicographic ordering first goes wrong.
    pub naive: NaiveReport,
    /// Search effort (states analyzed, backtracks, memo hits).
    pub stats: SearchStats,
    /// Dependency edges the DAG construction kept.
    pub dag_edges: usize,
    /// Routers in the analyzed current state.
    pub current_routers: usize,
    /// Routers in the analyzed target state.
    pub target_routers: usize,
    /// Phase wall-clock times (`diff`, `dag`, `search`). Machine-dependent
    /// — deliberately excluded from the rendered plan so plan bytes stay
    /// comparable across runs; surfaced by `rdx --timings` and
    /// `bench_plan` instead.
    pub timings: Vec<(&'static str, Duration)>,
}

impl Plan {
    /// Iterates the plan's steps as `(unit, verdict)` pairs, in order.
    pub fn steps(&self) -> impl Iterator<Item = (&ChangeUnit, &StepVerdict)> {
        self.order.iter().zip(&self.verdicts).map(move |(&i, v)| (&self.units[i], v))
    }

    /// True when the two corpora were semantically identical.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }
}

/// Why planning failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// More change units than the bitmask state space supports
    /// ([`MAX_UNITS`]). Split the migration.
    TooManyUnits(usize),
    /// Every ordering compatible with the DAG violates an invariant
    /// somewhere. The change set cannot be sequenced per-router; it needs
    /// to be split differently (or the endpoints are themselves broken).
    NoSafeOrder {
        /// Intermediate states analyzed before giving up.
        states_analyzed: usize,
        /// Dead-end states backtracked out of.
        backtracks: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::TooManyUnits(n) => write!(
                f,
                "{n} change units exceed the planner's limit of {MAX_UNITS}; \
                 split the migration"
            ),
            PlanError::NoSafeOrder { states_analyzed, backtracks } => write!(
                f,
                "no safe per-router ordering exists ({states_analyzed} intermediate \
                 state(s) analyzed, {backtracks} backtrack(s))"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Plans a safe migration from `current` to `target`.
///
/// `analyze` turns any corpus of `(file_name, bytes)` pairs into
/// [`StateFacts`]; it is called once per endpoint and once per candidate
/// intermediate state (memoized by applied-set, fanned out with
/// [`rd_par::par_map_cost`]). It must be a pure function of the corpus —
/// the determinism guarantee of the emitted plan rests on that.
pub fn plan<F>(current: &CorpusFiles, target: &CorpusFiles, analyze: F) -> Result<Plan, PlanError>
where
    F: Fn(&CorpusFiles) -> StateFacts + Sync,
{
    let diff_started = Instant::now();
    let (current_facts, target_facts, units) = {
        let _span = rd_obs::span!("plan.diff");
        let current_facts = analyze(current);
        let target_facts = analyze(target);
        let units = diff_units(&current_facts, &target_facts, target);
        (current_facts, target_facts, units)
    };
    let diff_time = diff_started.elapsed();
    if units.len() > MAX_UNITS {
        return Err(PlanError::TooManyUnits(units.len()));
    }

    let dag_started = Instant::now();
    let dag = {
        let _span = rd_obs::span!("plan.dag");
        build_dag(&units, &current_facts, &target_facts)
    };
    let dag_time = dag_started.elapsed();

    let envelope = Envelope::between(&current_facts, &target_facts);
    let search_started = Instant::now();
    let (order, verdicts, naive, stats) = {
        let _span = rd_obs::span!("plan.search");
        search::search(current, &units, &dag, &envelope, &analyze)?
    };
    let search_time = search_started.elapsed();

    Ok(Plan {
        dag_edges: dag.edges.len(),
        current_routers: current_facts.routers.len(),
        target_routers: target_facts.routers.len(),
        units,
        order,
        verdicts,
        naive,
        stats,
        timings: vec![("diff", diff_time), ("dag", dag_time), ("search", search_time)],
    })
}

/// Independently re-verifies an emitted plan: replays every step against
/// a fresh analysis (no memo, no search state) and re-checks the
/// invariant envelope. Returns the number of verified steps, or a
/// description of the first violation. This is what `rdx plan --check`
/// and the verify.sh plan stage run.
pub fn verify_plan<F>(
    current: &CorpusFiles,
    target: &CorpusFiles,
    plan: &Plan,
    analyze: F,
) -> Result<usize, String>
where
    F: Fn(&CorpusFiles) -> StateFacts + Sync,
{
    if plan.order.len() != plan.units.len() {
        return Err(format!(
            "plan covers {} of {} units",
            plan.order.len(),
            plan.units.len()
        ));
    }
    let envelope = Envelope::between(&analyze(current), &analyze(target));
    let mut applied = 0u128;
    for (step, &idx) in plan.order.iter().enumerate() {
        applied |= bit(idx);
        let corpus = materialize(current, &plan.units, applied);
        let verdict = check_state(&envelope, &analyze(&corpus));
        if let Some(check) = verdict.checks.iter().find(|c| !c.ok) {
            return Err(format!(
                "step {} ({}) violates {}: {}",
                step + 1,
                plan.units[idx].key(),
                check.invariant,
                check.detail
            ));
        }
    }
    Ok(plan.order.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(name: &str, bytes: &str) -> (String, Vec<u8>) {
        (name.to_string(), bytes.as_bytes().to_vec())
    }

    fn router(name: &str, fingerprint: u64) -> RouterState {
        RouterState {
            name: name.to_string(),
            file_name: format!("{name}.cfg"),
            fingerprint,
            body_fingerprint: fingerprint,
            ..RouterState::default()
        }
    }

    fn facts(routers: Vec<RouterState>) -> StateFacts {
        let mut f = StateFacts { components: 1, ..StateFacts::default() };
        f.routers = routers;
        f
    }

    #[test]
    fn diff_units_detects_add_modify_remove_and_ignores_cosmetic() {
        let current = facts(vec![router("a", 1), router("b", 2), router("c", 3)]);
        // a modified, b untouched, c removed, d added.
        let target = facts(vec![router("a", 10), router("b", 2), router("d", 4)]);
        let target_files =
            vec![file("a.cfg", "new-a"), file("b.cfg", "same-b"), file("d.cfg", "new-d")];
        let units = diff_units(&current, &target, &target_files);
        let keys: Vec<String> = units.iter().map(ChangeUnit::key).collect();
        assert_eq!(keys, vec!["add:d", "modify:a", "remove:c"]);
        assert_eq!(units[0].bytes.as_deref(), Some(b"new-d".as_slice()));
        assert_eq!(units[1].old_file.as_deref(), Some("a.cfg"));
        assert_eq!(units[2].new_file, None);
    }

    #[test]
    fn materialize_is_a_pure_function_of_the_applied_set() {
        let current = vec![file("a.cfg", "old-a"), file("c.cfg", "old-c")];
        let units = vec![
            ChangeUnit {
                kind: ChangeKind::Add,
                router: "d".into(),
                old_file: None,
                new_file: Some("d.cfg".into()),
                bytes: Some(b"new-d".to_vec()),
            },
            ChangeUnit {
                kind: ChangeKind::Modify,
                router: "a".into(),
                old_file: Some("a.cfg".into()),
                new_file: Some("a.cfg".into()),
                bytes: Some(b"new-a".to_vec()),
            },
            ChangeUnit {
                kind: ChangeKind::Remove,
                router: "c".into(),
                old_file: Some("c.cfg".into()),
                new_file: None,
                bytes: None,
            },
        ];
        let all = materialize(&current, &units, 0b111);
        assert_eq!(all, vec![file("a.cfg", "new-a"), file("d.cfg", "new-d")]);
        let none = materialize(&current, &units, 0);
        assert_eq!(none, current);
        let only_remove = materialize(&current, &units, 0b100);
        assert_eq!(only_remove, vec![file("a.cfg", "old-a")]);
    }

    /// A synthetic three-unit migration where the lexicographically first
    /// candidate (`add:c`) is unsafe until `modify:a` has been applied:
    /// the stub analysis reports 2 components whenever `c` exists without
    /// the new `a`. The search must reject it, pick `modify:a`, and only
    /// then admit `add:c` — and the naive report must pinpoint step 1.
    #[test]
    fn search_rejects_unsafe_candidate_and_naive_report_flags_it() {
        let current = vec![file("a.cfg", "old-a"), file("b.cfg", "old-b")];
        let target = vec![file("a.cfg", "new-a"), file("c.cfg", "new-c")];
        let analyze = |corpus: &CorpusFiles| -> StateFacts {
            let has = |n: &str, b: &str| {
                corpus.iter().any(|(name, bytes)| name == n && bytes == b.as_bytes())
            };
            let routers: Vec<RouterState> = corpus
                .iter()
                .map(|(name, _)| {
                    router(name.trim_end_matches(".cfg"), u64::from(has(name, "new-a")))
                })
                .collect();
            let mut f = facts(routers);
            // c is only attached once the new a (with the bridging link)
            // is in place; a removed b never disconnects anything.
            f.components = if has("c.cfg", "new-c") && !has("a.cfg", "new-a") { 2 } else { 1 };
            f
        };
        // Make the analyze closure also assign distinct fingerprints so
        // diff_units sees modify:a, remove:b, add:c.
        let wrap = |corpus: &CorpusFiles| -> StateFacts {
            let mut f = analyze(corpus);
            for r in &mut f.routers {
                let body: u64 = corpus
                    .iter()
                    .find(|(name, _)| name.trim_end_matches(".cfg") == r.name)
                    .map(|(_, bytes)| bytes.iter().map(|&b| u64::from(b)).sum())
                    .unwrap_or(0);
                r.fingerprint = body;
                r.body_fingerprint = body;
            }
            f
        };
        let plan = plan(&current, &target, wrap).expect("plan found");
        let order: Vec<String> = plan.steps().map(|(u, _)| u.key()).collect();
        assert_eq!(order, vec!["modify:a", "add:c", "remove:b"]);
        assert!(plan.verdicts.iter().all(|v| v.ok()));
        let naive = plan.naive.violation.as_ref().expect("naive order must fail");
        assert_eq!(naive.step, 1);
        assert_eq!(naive.unit, "add:c");
        assert!(naive.failed.iter().any(|c| c.invariant == "connectivity"));
        assert!(plan.stats.states_analyzed > 0);
        assert!(verify_plan(&current, &target, &plan, wrap).is_ok());
    }

    #[test]
    fn identical_corpora_plan_empty() {
        let corpus = vec![file("a.cfg", "same")];
        let analyze = |c: &CorpusFiles| {
            facts(c.iter().map(|(n, _)| router(n.trim_end_matches(".cfg"), 7)).collect())
        };
        let plan = plan(&corpus, &corpus, analyze).expect("empty plan");
        assert!(plan.is_empty());
        assert!(plan.order.is_empty());
        assert!(plan.naive.violation.is_none());
        assert_eq!(verify_plan(&corpus, &corpus, &plan, analyze), Ok(0));
    }

    #[test]
    fn too_many_units_is_a_typed_error() {
        let current: CorpusFiles = Vec::new();
        let target: CorpusFiles =
            (0..MAX_UNITS + 1).map(|i| file(&format!("r{i:03}.cfg"), "x")).collect();
        let analyze = |c: &CorpusFiles| {
            facts(
                c.iter()
                    .map(|(n, _)| router(n.trim_end_matches(".cfg"), 1))
                    .collect(),
            )
        };
        let err = plan(&current, &target, analyze).expect_err("too many units");
        assert_eq!(err, PlanError::TooManyUnits(MAX_UNITS + 1));
    }

    #[test]
    fn unsatisfiable_invariants_report_no_safe_order() {
        // Two units (modify:a, remove:b), but every strict intermediate
        // state "partitions" under the stub analysis — only the exact
        // endpoints are 1-component, so the envelope pins components at 1
        // and no per-router ordering can thread the needle.
        let current = vec![file("a.cfg", "old-a"), file("b.cfg", "old-b")];
        let target = vec![file("a.cfg", "new-a")];
        let analyze = |corpus: &CorpusFiles| -> StateFacts {
            let mut f = facts(
                corpus
                    .iter()
                    .map(|(n, bytes)| RouterState {
                        name: n.trim_end_matches(".cfg").to_string(),
                        file_name: n.clone(),
                        fingerprint: bytes.iter().map(|&b| u64::from(b)).sum(),
                        body_fingerprint: bytes.iter().map(|&b| u64::from(b)).sum(),
                        ..RouterState::default()
                    })
                    .collect(),
            );
            let endpoint = corpus
                == &vec![file("a.cfg", "old-a"), file("b.cfg", "old-b")]
                || corpus == &vec![file("a.cfg", "new-a")];
            f.components = if endpoint { 1 } else { 9 };
            f
        };
        let err = plan(&current, &target, analyze).expect_err("no safe order");
        assert!(matches!(err, PlanError::NoSafeOrder { .. }), "{err}");
    }
}
