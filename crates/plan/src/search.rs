//! The safe-ordering search: invariant envelope, per-state checking, and
//! an iterative depth-first search over DAG-compatible orderings with
//! parallel candidate evaluation and bitmask memoization.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::{bit, materialize, ChangeUnit, CorpusFiles, Dag, PlanError, StateFacts};

/// The invariant envelope: the loosest bound justified by the two
/// endpoint states. An intermediate state may be no worse than the worse
/// endpoint on every axis — the migration may pass *through* whatever
/// degradation the endpoints already accept, but may not introduce new
/// partitions, new instance splits, new external peers, new parse
/// failures, or strand a target router away from every border.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Most connectivity components any intermediate state may have.
    pub max_components: usize,
    /// Most instances per instance key (union of keys; a key absent here
    /// must not appear at all).
    pub max_instances: BTreeMap<String, usize>,
    /// External AS numbers an intermediate state may peer with.
    pub allowed_ases: BTreeSet<u32>,
    /// Most quarantined files any intermediate state may have.
    pub max_quarantined: usize,
    /// Whether border reachability is checked (only when both endpoints
    /// actually have border routers — otherwise the check is vacuous).
    pub require_border: bool,
    /// The routers of the target design: the ones whose reachability the
    /// migration must preserve.
    pub target_routers: BTreeSet<String>,
}

impl Envelope {
    /// Derives the envelope from the two endpoint states.
    pub fn between(current: &StateFacts, target: &StateFacts) -> Envelope {
        let mut max_instances = BTreeMap::new();
        for (key, &count) in current.instance_counts.iter().chain(&target.instance_counts) {
            let entry = max_instances.entry(key.clone()).or_insert(0usize);
            *entry = (*entry).max(count);
        }
        let has_border = |f: &StateFacts| f.routers.iter().any(|r| r.external_facing);
        Envelope {
            max_components: current.components.max(target.components),
            max_instances,
            allowed_ases: current.external_ases.union(&target.external_ases).copied().collect(),
            max_quarantined: current.quarantined.max(target.quarantined),
            require_border: has_border(current) && has_border(target),
            target_routers: target.routers.iter().map(|r| r.name.clone()).collect(),
        }
    }
}

/// One named invariant check of one intermediate state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantCheck {
    /// Stable check name (`connectivity`, `instances`, `external`,
    /// `reachability`, `coverage`).
    pub invariant: &'static str,
    /// Whether the state passed.
    pub ok: bool,
    /// Human-readable evidence, deterministic for a given state.
    pub detail: String,
}

/// The verification result of one intermediate state: all five invariant
/// checks, in fixed order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepVerdict {
    /// The checks, in fixed order.
    pub checks: Vec<InvariantCheck>,
}

impl StepVerdict {
    /// True when every check passed.
    pub fn ok(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }
}

/// Checks one analyzed state against the envelope. Pure and
/// deterministic: equal facts yield byte-equal verdicts.
pub fn check_state(envelope: &Envelope, facts: &StateFacts) -> StepVerdict {
    let mut checks = Vec::with_capacity(5);

    let connectivity_ok = facts.components <= envelope.max_components;
    checks.push(InvariantCheck {
        invariant: "connectivity",
        ok: connectivity_ok,
        detail: format!(
            "{} component(s) (envelope {})",
            facts.components, envelope.max_components
        ),
    });

    let mut instance_violation = None;
    for (key, &count) in &facts.instance_counts {
        let allowed = envelope.max_instances.get(key).copied().unwrap_or(0);
        if count > allowed {
            instance_violation = Some(format!(
                "{key}: {count} instance(s) (envelope {allowed})"
            ));
            break;
        }
    }
    checks.push(InvariantCheck {
        invariant: "instances",
        ok: instance_violation.is_none(),
        detail: instance_violation
            .unwrap_or_else(|| "instance counts within envelope".to_string()),
    });

    let leaked: Vec<u32> = facts
        .external_ases
        .difference(&envelope.allowed_ases)
        .copied()
        .collect();
    checks.push(InvariantCheck {
        invariant: "external",
        ok: leaked.is_empty(),
        detail: if leaked.is_empty() {
            "no new external ASes".to_string()
        } else {
            format!("new external AS(es): {leaked:?}")
        },
    });

    if envelope.require_border {
        let border_components: BTreeSet<usize> = facts
            .routers
            .iter()
            .filter(|r| r.external_facing)
            .map(|r| r.component)
            .collect();
        let stranded: Vec<&str> = facts
            .routers
            .iter()
            .filter(|r| {
                envelope.target_routers.contains(&r.name)
                    && !border_components.contains(&r.component)
            })
            .map(|r| r.name.as_str())
            .collect();
        let present = facts
            .routers
            .iter()
            .filter(|r| envelope.target_routers.contains(&r.name))
            .count();
        checks.push(InvariantCheck {
            invariant: "reachability",
            ok: stranded.is_empty(),
            detail: if stranded.is_empty() {
                format!("all {present} target router(s) reach a border router")
            } else {
                format!("cut off from every border router: {}", stranded.join(", "))
            },
        });
    } else {
        checks.push(InvariantCheck {
            invariant: "reachability",
            ok: true,
            detail: "no border routers in either endpoint (vacuous)".to_string(),
        });
    }

    let coverage_ok = facts.quarantined <= envelope.max_quarantined;
    checks.push(InvariantCheck {
        invariant: "coverage",
        ok: coverage_ok,
        detail: format!(
            "{} quarantined file(s) (envelope {})",
            facts.quarantined, envelope.max_quarantined
        ),
    });

    StepVerdict { checks }
}

/// Search effort counters. Deterministic at any `RD_THREADS`: the DFS
/// visits states in a fixed order and batches are formed before any
/// parallel work starts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distinct intermediate states materialized and analyzed.
    pub states_analyzed: usize,
    /// Dead-end states the DFS backtracked out of.
    pub backtracks: usize,
    /// Verdict lookups served from the bitmask memo.
    pub memo_hits: usize,
}

/// Where the naive (sorted-key) ordering of the same units first
/// violates an invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaiveViolation {
    /// 1-based step at which the violation occurs.
    pub step: usize,
    /// The unit key applied at that step.
    pub unit: String,
    /// The failing checks of the resulting state.
    pub failed: Vec<InvariantCheck>,
}

/// The naive-ordering counter-factual carried in every plan: what would
/// have happened if the units were simply applied in sorted order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NaiveReport {
    /// The naive order, as unit keys.
    pub order: Vec<String>,
    /// The first violation, if the naive order is unsafe. `None` means
    /// the naive order happens to be safe too (the plan may still
    /// reorder for DAG reasons).
    pub violation: Option<NaiveViolation>,
}

struct Evaluator<'a, F> {
    current: &'a CorpusFiles,
    units: &'a [ChangeUnit],
    envelope: &'a Envelope,
    analyze: &'a F,
    corpus_bytes: u64,
    memo: HashMap<u128, StepVerdict>,
    stats: SearchStats,
}

impl<'a, F> Evaluator<'a, F>
where
    F: Fn(&CorpusFiles) -> StateFacts + Sync,
{
    fn new(
        current: &'a CorpusFiles,
        units: &'a [ChangeUnit],
        envelope: &'a Envelope,
        analyze: &'a F,
    ) -> Self {
        let corpus_bytes = current
            .iter()
            .map(|(_, b)| b.len() as u64)
            .chain(units.iter().map(|u| u.bytes.as_ref().map_or(0, |b| b.len() as u64)))
            .sum();
        Evaluator {
            current,
            units,
            envelope,
            analyze,
            corpus_bytes,
            memo: HashMap::new(),
            stats: SearchStats::default(),
        }
    }

    /// Ensures a verdict exists for every mask in `masks`, evaluating
    /// all uncached ones in one parallel batch. The batch is formed
    /// before any parallel work starts and results land keyed by mask,
    /// so thread count cannot change anything observable.
    fn evaluate_batch(&mut self, masks: &[u128]) {
        let uncached: Vec<u128> =
            masks.iter().copied().filter(|m| !self.memo.contains_key(m)).collect();
        self.stats.memo_hits += masks.len() - uncached.len();
        if uncached.is_empty() {
            return;
        }
        let (current, units, envelope, analyze) =
            (self.current, self.units, self.envelope, self.analyze);
        let cost = self.corpus_bytes.saturating_mul(uncached.len() as u64);
        let verdicts = rd_par::par_map_cost(cost, &uncached, |_, &mask| {
            let corpus = materialize(current, units, mask);
            check_state(envelope, &analyze(&corpus))
        });
        self.stats.states_analyzed += uncached.len();
        for (mask, verdict) in uncached.into_iter().zip(verdicts) {
            self.memo.insert(mask, verdict);
        }
    }

    fn verdict(&mut self, mask: u128) -> StepVerdict {
        self.evaluate_batch(&[mask]);
        // The batch above guarantees presence; an empty-verdict fallback
        // keeps this path unwrap-free without changing behavior.
        self.memo.get(&mask).cloned().unwrap_or(StepVerdict { checks: Vec::new() })
    }
}

struct Frame {
    candidates: Vec<usize>,
    next: usize,
}

/// Runs the safe-ordering DFS, then replays the naive sorted-key order
/// against the (shared) memo for the counter-factual report.
pub(crate) fn search<F>(
    current: &CorpusFiles,
    units: &[ChangeUnit],
    dag: &Dag,
    envelope: &Envelope,
    analyze: &F,
) -> Result<(Vec<usize>, Vec<StepVerdict>, NaiveReport, SearchStats), PlanError>
where
    F: Fn(&CorpusFiles) -> StateFacts + Sync,
{
    let n = units.len();
    let full: u128 = if n == 0 {
        0
    } else if n == 128 {
        u128::MAX
    } else {
        bit(n) - 1
    };

    let mut evaluator = Evaluator::new(current, units, envelope, analyze);
    let mut mask = 0u128;
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut frames: Vec<Frame> = Vec::with_capacity(n);
    let mut dead: HashSet<u128> = HashSet::new();

    while mask != full {
        if frames.len() == order.len() {
            // First visit of this state: gather the DAG-ready candidates
            // (already in sorted unit order, the deterministic
            // tie-break) and evaluate them all in one parallel batch.
            let _step = rd_obs::span!("step:{}", order.len());
            let candidates: Vec<usize> = (0..n)
                .filter(|&i| mask & bit(i) == 0 && dag.preds[i] & !mask == 0)
                .collect();
            let masks: Vec<u128> = candidates
                .iter()
                .map(|&c| mask | bit(c))
                .filter(|m| !dead.contains(m))
                .collect();
            evaluator.evaluate_batch(&masks);
            frames.push(Frame { candidates, next: 0 });
        }
        let mut chosen = None;
        if let Some(frame) = frames.last_mut() {
            while frame.next < frame.candidates.len() {
                let candidate = frame.candidates[frame.next];
                frame.next += 1;
                let next_mask = mask | bit(candidate);
                if dead.contains(&next_mask) {
                    continue;
                }
                if evaluator.verdict(next_mask).ok() {
                    chosen = Some(candidate);
                    break;
                }
            }
        }
        match chosen {
            Some(candidate) => {
                mask |= bit(candidate);
                order.push(candidate);
            }
            None => {
                // Every remaining candidate is unsafe or leads to a dead
                // subtree: mark this state dead and back out one step.
                dead.insert(mask);
                frames.pop();
                match order.pop() {
                    Some(undone) => {
                        mask &= !bit(undone);
                        evaluator.stats.backtracks += 1;
                    }
                    None => {
                        return Err(PlanError::NoSafeOrder {
                            states_analyzed: evaluator.stats.states_analyzed,
                            backtracks: evaluator.stats.backtracks,
                        })
                    }
                }
            }
        }
    }

    let mut verdicts = Vec::with_capacity(n);
    let mut step_mask = 0u128;
    for &idx in &order {
        step_mask |= bit(idx);
        verdicts.push(evaluator.verdict(step_mask));
    }

    // Naive counter-factual: units are already sorted by key, so the
    // naive order is simply index order. Prefix masks share the memo.
    let mut naive = NaiveReport {
        order: units.iter().map(ChangeUnit::key).collect(),
        violation: None,
    };
    let mut naive_mask = 0u128;
    for (step, unit) in units.iter().enumerate() {
        naive_mask |= bit(step);
        let verdict = evaluator.verdict(naive_mask);
        if !verdict.ok() {
            naive.violation = Some(NaiveViolation {
                step: step + 1,
                unit: unit.key(),
                failed: verdict.checks.iter().filter(|c| !c.ok).cloned().collect(),
            });
            break;
        }
    }

    Ok((order, verdicts, naive, evaluator.stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(components: usize) -> StateFacts {
        StateFacts { components, ..StateFacts::default() }
    }

    #[test]
    fn envelope_takes_the_worse_endpoint_on_every_axis() {
        let mut current = facts(1);
        current.instance_counts.insert("ospf".into(), 1);
        current.external_ases.insert(65010);
        current.quarantined = 2;
        let mut target = facts(3);
        target.instance_counts.insert("ospf".into(), 2);
        target.instance_counts.insert("bgp:65001".into(), 1);
        target.external_ases.insert(65020);
        let envelope = Envelope::between(&current, &target);
        assert_eq!(envelope.max_components, 3);
        assert_eq!(envelope.max_instances.get("ospf"), Some(&2));
        assert_eq!(envelope.max_instances.get("bgp:65001"), Some(&1));
        assert!(envelope.allowed_ases.contains(&65010));
        assert!(envelope.allowed_ases.contains(&65020));
        assert_eq!(envelope.max_quarantined, 2);
        assert!(!envelope.require_border, "no external-facing routers anywhere");
    }

    #[test]
    fn check_state_flags_each_axis() {
        let mut current = facts(1);
        current.instance_counts.insert("ospf".into(), 1);
        let target = {
            let mut t = facts(1);
            t.instance_counts.insert("ospf".into(), 1);
            t
        };
        let envelope = Envelope::between(&current, &target);

        let good = check_state(&envelope, &current);
        assert!(good.ok());
        assert_eq!(good.checks.len(), 5);

        let mut partitioned = facts(2);
        partitioned.instance_counts.insert("ospf".into(), 2);
        partitioned.external_ases.insert(64999);
        partitioned.quarantined = 1;
        let bad = check_state(&envelope, &partitioned);
        let failing: Vec<&str> =
            bad.checks.iter().filter(|c| !c.ok).map(|c| c.invariant).collect();
        assert_eq!(failing, vec!["connectivity", "instances", "external", "coverage"]);
    }

    #[test]
    fn unknown_instance_key_violates() {
        let current = {
            let mut f = facts(1);
            f.instance_counts.insert("ospf".into(), 1);
            f
        };
        let envelope = Envelope::between(&current, &current);
        let mut rogue = facts(1);
        rogue.instance_counts.insert("eigrp:9".into(), 1);
        let verdict = check_state(&envelope, &rogue);
        let inst = &verdict.checks[1];
        assert_eq!(inst.invariant, "instances");
        assert!(!inst.ok);
        assert!(inst.detail.contains("eigrp:9"), "{}", inst.detail);
    }
}
