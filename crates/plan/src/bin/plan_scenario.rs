//! Materializes a seeded planner scenario onto disk as two config
//! directories — `<out>/current` and `<out>/target` — ready for
//! `rdx plan`. Used by the verify.sh plan stage and EXPERIMENTS.md.
//!
//! Usage: `plan_scenario <out-dir> [--seed N] [--star SPOKES]`

use std::path::Path;
use std::process::ExitCode;

fn write_corpus(dir: &Path, corpus: &rd_plan::CorpusFiles) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    for (name, bytes) in corpus {
        let path = dir.join(name);
        std::fs::write(&path, bytes).map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir: Option<String> = None;
    let mut seed = 42u64;
    let mut star: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let value = it.next().ok_or("--seed requires a value")?;
                seed = value.parse().map_err(|_| format!("bad --seed '{value}'"))?;
            }
            "--star" => {
                let value = it.next().ok_or("--star requires a value")?;
                star = Some(value.parse().map_err(|_| format!("bad --star '{value}'"))?);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag '{flag}'"));
            }
            dir if out_dir.is_none() => out_dir = Some(dir.to_string()),
            extra => return Err(format!("unexpected argument '{extra}'")),
        }
    }
    let out_dir = out_dir.ok_or("usage: plan_scenario <out-dir> [--seed N] [--star SPOKES]")?;
    let (current, target) = match star {
        Some(spokes) => rd_plan::scenario::star(spokes, seed),
        None => rd_plan::scenario::demo(seed),
    };
    let out = Path::new(&out_dir);
    write_corpus(&out.join("current"), &current)?;
    write_corpus(&out.join("target"), &target)?;
    println!(
        "wrote {} current + {} target config(s) under {} (seed {seed})",
        current.len(),
        target.len(),
        out.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("plan_scenario: {message}");
            ExitCode::from(2)
        }
    }
}
