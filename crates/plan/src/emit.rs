//! Plan rendering: the human step table and the canonical JSON document.
//!
//! Both renderings are pure functions of the [`Plan`] (wall-clock
//! timings are deliberately excluded), so plan output is byte-identical
//! across runs and thread counts — the property verify.sh's plan stage
//! pins with `cmp`.

use rd_obs::json::escape;

use crate::{Plan, StepVerdict};

fn push_checks(out: &mut String, verdict: &StepVerdict, indent: &str) {
    out.push_str("[\n");
    for (i, check) in verdict.checks.iter().enumerate() {
        out.push_str(&format!(
            "{indent}  {{\"invariant\": \"{}\", \"ok\": {}, \"detail\": \"{}\"}}{}\n",
            check.invariant,
            check.ok,
            escape(&check.detail),
            if i + 1 < verdict.checks.len() { "," } else { "" },
        ));
    }
    out.push_str(indent);
    out.push(']');
}

/// Renders the plan as the canonical JSON document — the exact bytes
/// `rdx plan --json` prints and rd-serve's `/plan` endpoint serves.
pub fn render_json(plan: &Plan) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"plan\": {\n");
    out.push_str(&format!(
        "    \"current_routers\": {},\n    \"target_routers\": {},\n",
        plan.current_routers, plan.target_routers
    ));
    out.push_str(&format!(
        "    \"units\": {},\n    \"dag_edges\": {},\n",
        plan.units.len(),
        plan.dag_edges
    ));
    out.push_str("    \"steps\": [");
    let steps: Vec<_> = plan.steps().collect();
    for (i, (unit, verdict)) in steps.iter().enumerate() {
        out.push_str("\n      {\n");
        out.push_str(&format!(
            "        \"step\": {},\n        \"action\": \"{}\",\n        \"router\": \"{}\",\n",
            i + 1,
            unit.kind.verb(),
            escape(&unit.router)
        ));
        if let Some(old) = &unit.old_file {
            out.push_str(&format!("        \"old_file\": \"{}\",\n", escape(old)));
        }
        if let Some(new) = &unit.new_file {
            out.push_str(&format!("        \"new_file\": \"{}\",\n", escape(new)));
        }
        out.push_str("        \"checks\": ");
        push_checks(&mut out, verdict, "        ");
        out.push_str("\n      }");
        if i + 1 < steps.len() {
            out.push(',');
        }
    }
    if steps.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n    ],\n");
    }
    out.push_str("    \"naive\": {\n      \"order\": [");
    for (i, key) in plan.naive.order.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", escape(key)));
    }
    out.push_str("],\n");
    match &plan.naive.violation {
        Some(violation) => {
            out.push_str(&format!(
                "      \"violation\": {{\n        \"step\": {},\n        \"unit\": \"{}\",\n        \"failed\": ",
                violation.step,
                escape(&violation.unit)
            ));
            push_checks(
                &mut out,
                &StepVerdict { checks: violation.failed.clone() },
                "        ",
            );
            out.push_str("\n      }\n");
        }
        None => out.push_str("      \"violation\": null\n"),
    }
    out.push_str("    },\n");
    out.push_str(&format!(
        "    \"search\": {{\"states_analyzed\": {}, \"backtracks\": {}, \"memo_hits\": {}}}\n",
        plan.stats.states_analyzed, plan.stats.backtracks, plan.stats.memo_hits
    ));
    out.push_str("  }\n}\n");
    out
}

/// Renders the plan as a human-readable step table.
pub fn render_table(plan: &Plan) -> String {
    let mut out = String::with_capacity(2048);
    if plan.is_empty() {
        out.push_str("no semantic changes between the corpora; nothing to plan\n");
        return out;
    }
    out.push_str(&format!(
        "reconfiguration plan: {} change unit(s), {} dependency edge(s), \
         {} -> {} router(s)\n\n",
        plan.units.len(),
        plan.dag_edges,
        plan.current_routers,
        plan.target_routers
    ));
    out.push_str("step  action  router            invariants\n");
    out.push_str("----  ------  ----------------  ----------\n");
    for (i, (unit, verdict)) in plan.steps().enumerate() {
        let passed = verdict.checks.iter().filter(|c| c.ok).count();
        out.push_str(&format!(
            "{:>4}  {:<6}  {:<16}  {}/{} ok\n",
            i + 1,
            unit.kind.verb(),
            unit.router,
            passed,
            verdict.checks.len()
        ));
    }
    out.push('\n');
    match &plan.naive.violation {
        Some(violation) => {
            out.push_str(&format!(
                "naive sorted order is UNSAFE: step {} ({}) violates {}\n",
                violation.step,
                violation.unit,
                violation
                    .failed
                    .iter()
                    .map(|c| format!("{} ({})", c.invariant, c.detail))
                    .collect::<Vec<_>>()
                    .join("; ")
            ));
        }
        None => out.push_str("naive sorted order happens to be safe too\n"),
    }
    out.push_str(&format!(
        "search: {} state(s) analyzed, {} backtrack(s), {} memo hit(s)\n",
        plan.stats.states_analyzed, plan.stats.backtracks, plan.stats.memo_hits
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChangeKind, ChangeUnit, InvariantCheck, NaiveReport, SearchStats};

    fn tiny_plan() -> Plan {
        let unit = ChangeUnit {
            kind: ChangeKind::Modify,
            router: "alpha".into(),
            old_file: Some("alpha.cfg".into()),
            new_file: Some("alpha.cfg".into()),
            bytes: Some(b"x".to_vec()),
        };
        let verdict = StepVerdict {
            checks: vec![InvariantCheck {
                invariant: "connectivity",
                ok: true,
                detail: "1 component(s) (envelope 1)".into(),
            }],
        };
        Plan {
            units: vec![unit],
            order: vec![0],
            verdicts: vec![verdict],
            naive: NaiveReport { order: vec!["modify:alpha".into()], violation: None },
            stats: SearchStats { states_analyzed: 1, backtracks: 0, memo_hits: 2 },
            dag_edges: 0,
            current_routers: 1,
            target_routers: 1,
            timings: Vec::new(),
        }
    }

    #[test]
    fn json_is_stable_and_mentions_every_section() {
        let json = render_json(&tiny_plan());
        for needle in
            ["\"plan\"", "\"steps\"", "\"naive\"", "\"search\"", "\"violation\": null"]
        {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(json, render_json(&tiny_plan()), "rendering must be deterministic");
    }

    #[test]
    fn table_mentions_the_step_and_the_naive_outcome() {
        let table = render_table(&tiny_plan());
        assert!(table.contains("modify  alpha"));
        assert!(table.contains("naive sorted order happens to be safe too"));
    }
}
