//! Seeded demo scenarios for the planner — the corpora behind
//! `plan_scenario`, the `tests/plan_safety.rs` acceptance test, the
//! verify.sh plan stage, and `bench_plan`.

use rd_chaos::{mutate_config, ConfigMutator};
use rd_rng::StdRng;

use crate::CorpusFiles;

fn file(name: &str, text: String) -> (String, Vec<u8>) {
    (name.to_string(), text.into_bytes())
}

fn ospf_stanza() -> &'static str {
    "router ospf 1\n network 10.0.0.0 0.255.255.255 area 0\n"
}

/// The demo migration: a four-router OSPF chain re-homed around a new
/// aggregation router, with the old mid-chain router retired.
///
/// Current design: `alpha` (border, EBGP to AS 65010) — `beta` — `gamma`
/// in a chain, `omega` hanging off `alpha`. Target design: new router
/// `delta` takes over aggregation (`alpha` — `delta` — `gamma`), `beta`
/// is removed, `omega` is untouched except for cosmetic byte churn (the
/// seeded `drop-bangs` chaos mutator) that must NOT become a change
/// unit. `alpha` keeps its now-dangling `beta`-facing interface — a
/// follow-up cleanup pass, exactly how operators stage such migrations;
/// retiring it in the same change set would make every per-router
/// ordering unsafe.
///
/// The naive sorted order starts with `add:delta`, which creates an
/// isolated component (no peer subnet exists yet) — the planner must
/// discover `modify:alpha → add:delta → modify:gamma → remove:beta`.
pub fn demo(seed: u64) -> (CorpusFiles, CorpusFiles) {
    let alpha_current = format!(
        "hostname alpha\n!\n\
         interface Serial0\n ip address 192.0.2.1 255.255.255.252\n!\n\
         interface Serial1\n ip address 10.0.0.1 255.255.255.252\n!\n\
         interface Serial2\n ip address 10.0.4.1 255.255.255.252\n!\n\
         {}router bgp 65001\n neighbor 192.0.2.2 remote-as 65010\n",
        ospf_stanza()
    );
    let alpha_target = format!(
        "hostname alpha\n!\n\
         interface Serial0\n ip address 192.0.2.1 255.255.255.252\n!\n\
         interface Serial1\n ip address 10.0.0.1 255.255.255.252\n!\n\
         interface Serial2\n ip address 10.0.4.1 255.255.255.252\n!\n\
         interface Serial3\n ip address 10.0.2.1 255.255.255.252\n!\n\
         {}router bgp 65001\n neighbor 192.0.2.2 remote-as 65010\n",
        ospf_stanza()
    );
    let beta = format!(
        "hostname beta\n!\n\
         interface Serial0\n ip address 10.0.0.2 255.255.255.252\n!\n\
         interface Serial1\n ip address 10.0.1.1 255.255.255.252\n!\n\
         {}",
        ospf_stanza()
    );
    let gamma_current = format!(
        "hostname gamma\n!\n\
         interface Serial0\n ip address 10.0.1.2 255.255.255.252\n!\n\
         {}",
        ospf_stanza()
    );
    let gamma_target = format!(
        "hostname gamma\n!\n\
         interface Serial0\n ip address 10.0.3.2 255.255.255.252\n!\n\
         {}",
        ospf_stanza()
    );
    let delta = format!(
        "hostname delta\n!\n\
         interface Serial0\n ip address 10.0.2.2 255.255.255.252\n!\n\
         interface Serial1\n ip address 10.0.3.1 255.255.255.252\n!\n\
         {}",
        ospf_stanza()
    );
    let omega = format!(
        "hostname omega\n!\n\
         interface Serial0\n ip address 10.0.4.2 255.255.255.252\n!\n\
         {}",
        ospf_stanza()
    );
    // Cosmetic churn on omega's target bytes: the seeded drop-bangs
    // mutator strips the `!` separator lines, changing the file's bytes
    // but not its parsed meaning — the fingerprint diff must not emit a
    // unit for it.
    let mut rng = StdRng::seed_from_u64(seed);
    let omega_target = mutate_config(&mut rng, ConfigMutator::DropBangs, omega.as_bytes())
        .unwrap_or_else(|| omega.clone().into_bytes());

    let current = vec![
        file("alpha.cfg", alpha_current),
        file("beta.cfg", beta),
        file("gamma.cfg", gamma_current),
        file("omega.cfg", omega),
    ];
    let target = vec![
        file("alpha.cfg", alpha_target),
        file("delta.cfg", delta),
        file("gamma.cfg", gamma_target),
        ("omega.cfg".to_string(), omega_target),
    ];
    (current, target)
}

/// A hub-and-spoke renumbering used by `bench_plan`: every spoke moves
/// from `10.1.<i>.0/30` to `10.2.<i>.0/30`, and the hub (which also
/// holds the external peering) grows the new subnets while keeping the
/// old ones. Spokes only become safe to move after the hub change, so
/// the search evaluates the full candidate fan at every step —
/// `spokes + 1` units, O(spokes²) intermediate states.
pub fn star(spokes: usize, seed: u64) -> (CorpusFiles, CorpusFiles) {
    let spokes = spokes.min(96);
    let mut hub_current = String::from(
        "hostname alpha\n!\n\
         interface Serial0\n ip address 192.0.2.1 255.255.255.252\n!\n",
    );
    let mut hub_target = hub_current.clone();
    let mut current = Vec::new();
    let mut target = Vec::new();
    for i in 0..spokes {
        hub_current.push_str(&format!(
            "interface Ethernet{i}\n ip address 10.1.{i}.1 255.255.255.252\n!\n"
        ));
        hub_target.push_str(&format!(
            "interface Ethernet{i}\n ip address 10.1.{i}.1 255.255.255.252\n!\n\
             interface Ethernet1{i:02}\n ip address 10.2.{i}.1 255.255.255.252\n!\n"
        ));
        let name = format!("s{i:02}");
        current.push(file(
            &format!("{name}.cfg"),
            format!(
                "hostname {name}\n!\n\
                 interface Serial0\n ip address 10.1.{i}.2 255.255.255.252\n!\n\
                 {}",
                ospf_stanza()
            ),
        ));
        target.push(file(
            &format!("{name}.cfg"),
            format!(
                "hostname {name}\n!\n\
                 interface Serial0\n ip address 10.2.{i}.2 255.255.255.252\n!\n\
                 {}",
                ospf_stanza()
            ),
        ));
    }
    let bgp = "router bgp 65001\n neighbor 192.0.2.2 remote-as 65010\n";
    hub_current.push_str(ospf_stanza());
    hub_current.push_str(bgp);
    hub_target.push_str(ospf_stanza());
    hub_target.push_str(bgp);
    current.insert(0, file("alpha.cfg", hub_current));
    target.insert(0, file("alpha.cfg", hub_target));
    // Seeded cosmetic churn on one spoke's target bytes, as in `demo`.
    if let Some((_, bytes)) = target.last_mut() {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(mutated) = mutate_config(&mut rng, ConfigMutator::DropBangs, bytes) {
            *bytes = mutated;
        }
    }
    current.sort();
    target.sort();
    (current, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_target_differs_only_where_intended() {
        let (current, target) = demo(42);
        assert_eq!(current.len(), 4);
        assert_eq!(target.len(), 4);
        let names = |c: &CorpusFiles| {
            c.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>()
        };
        assert_eq!(names(&current), vec!["alpha.cfg", "beta.cfg", "gamma.cfg", "omega.cfg"]);
        assert_eq!(names(&target), vec!["alpha.cfg", "delta.cfg", "gamma.cfg", "omega.cfg"]);
        // omega's target bytes are churned but still parse-equivalent:
        // the mutator only removed separator lines.
        let omega_cur = &current[3].1;
        let omega_tgt = &target[3].1;
        assert_ne!(omega_cur, omega_tgt, "cosmetic churn must change bytes");
        assert!(!omega_tgt.windows(2).any(|w| w == b"!\n"), "bangs dropped");
    }

    #[test]
    fn star_scales_with_spokes_and_stays_sorted() {
        let (current, target) = star(6, 7);
        assert_eq!(current.len(), 7);
        assert_eq!(target.len(), 7);
        assert!(current.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(target.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
