//! Byte-level codec for the snapshot format.
//!
//! The encoding is deliberately simple and deterministic:
//!
//! - unsigned integers are LEB128 varints,
//! - signed integers are zigzag-mapped onto varints,
//! - strings and byte slices are length-prefixed,
//! - containers (`Option`, `Vec`, `BTreeMap`, `BTreeSet`, tuples) compose
//!   structurally.
//!
//! There is no self-description in the stream: reader and writer must agree
//! on the layout, which is pinned by [`crate::FORMAT_VERSION`]. Decoding is
//! defensive — every read is bounds-checked and enum tags are validated — so
//! a truncated or corrupted snapshot yields a [`DecodeError`] rather than a
//! panic or garbage data.

use std::collections::{BTreeMap, BTreeSet};

/// Error produced when a snapshot cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl DecodeError {
    /// Build an error from anything stringy.
    pub fn new(message: impl Into<String>) -> DecodeError {
        DecodeError { message: message.into() }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Append-only encoder over a growable byte buffer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a single raw byte.
    pub fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Write raw bytes verbatim (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Write a LEB128 varint.
    pub fn u64(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    /// Write a zigzag-encoded signed varint.
    pub fn i64(&mut self, v: i64) {
        self.u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
}

/// Bounds-checked decoder over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// New reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining to be read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole buffer has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Read one raw byte.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| DecodeError::new("unexpected end of snapshot"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Read `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| DecodeError::new("unexpected end of snapshot"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read a LEB128 varint.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(DecodeError::new("varint overflows u64"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a zigzag-encoded signed varint.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        let z = self.u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Read a `usize`, rejecting values that cannot index this platform.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DecodeError::new("length exceeds usize"))
    }

    /// Read a length prefix that must fit in the remaining buffer.
    ///
    /// Used for element counts: each element encodes to at least one byte,
    /// so any valid count is bounded by `remaining()`. Checking up front
    /// keeps a corrupted length from triggering a huge allocation.
    pub fn len(&mut self) -> Result<usize, DecodeError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(DecodeError::new(format!(
                "length {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let n = self.len()?;
        let bytes = self.raw(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError::new("invalid UTF-8 in string"))
    }

    /// Read a bool, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::new(format!("invalid bool byte {b}"))),
        }
    }
}

/// Types that can round-trip through the snapshot byte format.
pub trait Snap: Sized {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
    /// Decode a value previously written by [`Snap::encode`].
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

impl Snap for u8 {
    fn encode(&self, w: &mut Writer) {
        w.byte(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.byte()
    }
}

impl Snap for u16 {
    fn encode(&self, w: &mut Writer) {
        w.u64(u64::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        u16::try_from(r.u64()?).map_err(|_| DecodeError::new("u16 out of range"))
    }
}

impl Snap for u32 {
    fn encode(&self, w: &mut Writer) {
        w.u64(u64::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        u32::try_from(r.u64()?).map_err(|_| DecodeError::new("u32 out of range"))
    }
}

impl Snap for u64 {
    fn encode(&self, w: &mut Writer) {
        w.u64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u64()
    }
}

impl Snap for usize {
    fn encode(&self, w: &mut Writer) {
        w.u64(*self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.usize()
    }
}

impl Snap for i64 {
    fn encode(&self, w: &mut Writer) {
        w.i64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.i64()
    }
}

impl Snap for bool {
    fn encode(&self, w: &mut Writer) {
        w.bool(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.bool()
    }
}

impl Snap for String {
    fn encode(&self, w: &mut Writer) {
        w.string(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.string()
    }
}

impl<T: Snap> Snap for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.byte(0),
            Some(v) => {
                w.byte(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(DecodeError::new(format!("invalid Option tag {b}"))),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Snap + Ord> Snap for BTreeSet<T> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.len()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// FNV-1a 64-bit hash, used as the snapshot trailer checksum.
///
/// Not cryptographic — it guards against truncation and bit rot, not
/// adversaries, matching the format's "trusted local artifact" threat model.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = Writer::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(T::decode(&mut r).unwrap(), v);
        assert!(r.is_at_end());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            roundtrip(v);
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            roundtrip(v);
        }
    }

    #[test]
    fn container_roundtrip() {
        roundtrip(String::from("hello ü"));
        roundtrip(Option::<u32>::None);
        roundtrip(Some(42u32));
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(BTreeMap::from([(1u32, String::from("a")), (2, String::from("b"))]));
        roundtrip(BTreeSet::from([3u64, 1, 2]));
        roundtrip((1u32, String::from("x"), true));
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = Writer::new();
        vec![1u32, 2, 3].encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(Vec::<u32>::decode(&mut r).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn hostile_length_rejected() {
        // A varint claiming 2^40 elements must fail fast, not allocate.
        let mut w = Writer::new();
        w.u64(1 << 40);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(Vec::<u8>::decode(&mut r).is_err());
    }

    #[test]
    fn invalid_tags_rejected() {
        let mut r = Reader::new(&[2]);
        assert!(Option::<u8>::decode(&mut r).is_err());
        let mut r = Reader::new(&[7]);
        assert!(bool::decode(&mut r).is_err());
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
