//! `rd-snap`: a versioned, compact binary snapshot format for fully
//! analyzed routing-design corpora.
//!
//! Re-running the analysis pipeline over a config corpus costs parse +
//! topology + routing-model time on every `rdx`/`repro` invocation. A
//! snapshot pays that cost once: `rdx snap <dir> -o study.rdsnap`
//! serializes every derived product — parsed configs, links, external
//! classification, processes, adjacencies, instances, both graphs,
//! address blocks, Table 1, the design summary and all diagnostics — and
//! the loader restores the whole corpus without ever touching the IOS
//! parser (`repro --bench` proves load is ≥10x faster than re-analysis).
//!
//! # Container format
//!
//! ```text
//! +---------------------------+
//! | magic  "RDSNAP"  (6 B)    |
//! | format version   (varint) |
//! | section count    (varint) |
//! +---------------------------+
//! | section: name    (string) |  repeated `section count` times;
//! |          length  (varint) |  one section per network, sorted
//! |          payload (bytes)  |  by network name
//! +---------------------------+
//! | manifest: count  (varint) |  per section: name (string),
//! |   entries        (bytes)  |  absolute payload offset (varint),
//! |                           |  payload length (varint)
//! | manifest length  (8 B LE) |  fixed width, so the manifest is
//! |                           |  locatable from the end of the file
//! +---------------------------+
//! | FNV-1a-64 checksum (8 B,  |  over every preceding byte
//! |   little endian)          |
//! +---------------------------+
//! ```
//!
//! All multi-byte integers inside payloads are LEB128 varints (see
//! [`codec`]); the only fixed-width fields are the 8-byte manifest length
//! and the 8-byte checksum trailer. The loader validates magic, version
//! and checksum before looking at any section, so truncation and bit rot
//! are detected up front. Sections are length-prefixed, which lets a
//! reader skip networks it does not care about without decoding them.
//!
//! The manifest footer ([`Manifest`]) indexes each section's payload by
//! absolute byte range. It is purely structural — derivable from the
//! sections themselves — so re-encoding a decoded corpus reproduces it
//! byte for byte. Its purpose is incremental splicing: the delta engine
//! copies an unchanged network's encoded bytes straight out of the
//! previous container (located via the manifest) instead of re-encoding
//! the network, and [`assemble_container`] glues pre-encoded payloads
//! back into a valid container.
//!
//! The payload layout is *not* self-describing: it is pinned by
//! [`FORMAT_VERSION`], which must be bumped whenever any `Snap`
//! implementation in [`model`] changes shape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod model;

pub use codec::{fnv1a64, DecodeError, Reader, Snap, Writer};

use ioscfg::RouterConfig;
use netaddr::BlockTree;
use nettopo::{ExternalAnalysis, LinkMap, Network};
use routing_model::{
    Adjacencies, DesignSummary, InstanceGraph, Instances, ProcessGraph, Processes, Table1,
};

/// Magic bytes at the start of every snapshot file.
pub const MAGIC: &[u8; 6] = b"RDSNAP";

/// Current snapshot format version. Bump on any layout change.
/// Version 2 added per-network corpus coverage (`nettopo::Coverage`).
/// Version 3 added the manifest footer (per-network section offsets)
/// and per-network config file hashes (`NetworkSnapshot::file_hashes`).
pub const FORMAT_VERSION: u16 = 3;

/// Hard cap on the section count a reader will accept. Sections are one
/// per network; no plausible corpus approaches this, so anything larger
/// is treated as a corrupted or hostile length prefix rather than an
/// allocation request.
pub const MAX_SECTIONS: usize = 65_536;

/// Hard cap on a single section's declared payload length (1 GiB). The
/// byte-level `Reader::len` already bounds every length prefix by the
/// bytes actually present; this coarser cap additionally bounds what a
/// `write_file`/`read_file` round trip will ever produce per network.
pub const MAX_SECTION_BYTES: usize = 1 << 30;

/// The complete analysis of one network, as stored in a snapshot.
///
/// This mirrors `routing_design::NetworkAnalysis` minus its stage timings
/// (timings describe the run that produced the analysis, not the analysis
/// itself, so they are not part of the artifact).
#[derive(Clone, Debug)]
pub struct NetworkSnapshot {
    /// Corpus-level network name (e.g. `net15`).
    pub name: String,
    /// The parsed configurations (with parse-time diagnostics).
    pub network: Network,
    /// Inferred logical links.
    pub links: LinkMap,
    /// Internal/external interface classification.
    pub external: ExternalAnalysis,
    /// Routing processes.
    pub processes: Processes,
    /// IGP adjacencies and BGP sessions.
    pub adjacencies: Adjacencies,
    /// Routing instances.
    pub instances: Instances,
    /// The routing instance graph.
    pub instance_graph: InstanceGraph,
    /// The routing process graph.
    pub process_graph: ProcessGraph,
    /// Recovered address-space structure.
    pub blocks: BlockTree,
    /// Intra/inter role counts (Table 1).
    pub table1: Table1,
    /// Design classification.
    pub design: DesignSummary,
    /// End-to-end pipeline diagnostics (parse + topology + design).
    pub diagnostics: rd_obs::Diagnostics,
    /// Raw-byte FNV-1a-64 hash of each input config file, in the input
    /// order the analysis consumed them. This is what lets a delta engine
    /// decide, file by file, whether a restored network is still current
    /// without re-reading any parse product. Empty for analyses built
    /// from sources that never materialized raw bytes.
    pub file_hashes: Vec<(String, u64)>,
}

impl Snap for NetworkSnapshot {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.network.encode(w);
        self.links.encode(w);
        self.external.encode(w);
        self.processes.encode(w);
        self.adjacencies.encode(w);
        self.instances.encode(w);
        self.instance_graph.encode(w);
        self.process_graph.encode(w);
        self.blocks.encode(w);
        self.table1.encode(w);
        self.design.encode(w);
        self.diagnostics.encode(w);
        self.file_hashes.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(NetworkSnapshot {
            name: Snap::decode(r)?,
            network: Snap::decode(r)?,
            links: Snap::decode(r)?,
            external: Snap::decode(r)?,
            processes: Snap::decode(r)?,
            adjacencies: Snap::decode(r)?,
            instances: Snap::decode(r)?,
            instance_graph: Snap::decode(r)?,
            process_graph: Snap::decode(r)?,
            blocks: Snap::decode(r)?,
            table1: Snap::decode(r)?,
            design: Snap::decode(r)?,
            diagnostics: Snap::decode(r)?,
            file_hashes: Snap::decode(r)?,
        })
    }
}

/// A snapshotted corpus: one or more fully analyzed networks.
///
/// Networks are held behind [`Arc`] so a corpus clone — handing the same
/// snapshot to a server, a watcher publish, or an incremental-refresh
/// result — is a refcount bump per network, not a deep copy of every
/// parsed structure. Snapshots are immutable once captured, so sharing
/// is safe; encoding reads through the `Arc` and produces the same
/// bytes as an owned corpus would.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    /// The networks, sorted by name (the encoder enforces the order, so
    /// equal corpora produce byte-identical snapshots).
    pub networks: Vec<std::sync::Arc<NetworkSnapshot>>,
}

impl Corpus {
    /// Builds a corpus, sorting networks into canonical (name) order.
    pub fn new(networks: Vec<NetworkSnapshot>) -> Corpus {
        Corpus::from_shared(networks.into_iter().map(std::sync::Arc::new).collect())
    }

    /// Builds a corpus from already-shared networks (no re-allocation),
    /// sorting into canonical (name) order.
    pub fn from_shared(mut networks: Vec<std::sync::Arc<NetworkSnapshot>>) -> Corpus {
        networks.sort_by(|a, b| a.name.cmp(&b.name));
        Corpus { networks }
    }

    /// Looks up a network by name.
    pub fn get(&self, name: &str) -> Option<&NetworkSnapshot> {
        self.networks.iter().find(|n| n.name == name).map(|n| n.as_ref())
    }

    /// Serializes the corpus into the container format. Sections are
    /// independent, so their payloads encode in parallel over `rd-par`
    /// (`RD_THREADS` applies); assembly order is canonical regardless,
    /// so the bytes never depend on the worker count.
    pub fn to_bytes(&self) -> Vec<u8> {
        // Canonical order regardless of how the corpus was assembled.
        let mut order: Vec<usize> = (0..self.networks.len()).collect();
        order.sort_by(|&a, &b| self.networks[a].name.cmp(&self.networks[b].name));
        let payloads = rd_par::par_map(&order, |_, &i| {
            let mut section = Writer::new();
            self.networks[i].encode(&mut section);
            section.into_bytes()
        });
        let sections: Vec<(&str, &[u8])> = order
            .iter()
            .zip(&payloads)
            .map(|(&i, payload)| (self.networks[i].name.as_str(), payload.as_slice()))
            .collect();
        assemble_container(&sections)
    }

    /// Deserializes a corpus, validating magic, version and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Corpus, DecodeError> {
        let body = validated_body(bytes)?;
        let mut r = Reader::new(body);
        let count = read_header(&mut r)?;
        // First pass: slice out the (name, payload) frames sequentially —
        // cheap, no decoding. Second pass: decode section payloads in
        // parallel over `rd-par`; results come back in input order, so
        // the corpus is identical at any `RD_THREADS`.
        let mut sections = Vec::with_capacity(count);
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let name = r.string()?;
            let len = r.len()?;
            if len > MAX_SECTION_BYTES {
                return Err(DecodeError::new(format!(
                    "section '{name}' declares {len} bytes, over the {MAX_SECTION_BYTES} cap"
                )));
            }
            let offset = r.position();
            sections.push((name.clone(), r.raw(len)?));
            entries.push(ManifestEntry { name, offset, len });
        }
        // What remains must be exactly the manifest payload plus its
        // 8-byte length field, and the manifest must agree with the
        // frames just sliced — the splicing index is only trustworthy if
        // it matches the data it indexes.
        let declared = read_manifest_len(body)?;
        if r.remaining() != declared + 8 {
            return Err(DecodeError::new(format!(
                "{} bytes between last section and manifest length field \
                 (manifest declares {declared})",
                r.remaining().saturating_sub(8),
            )));
        }
        let manifest = decode_manifest(r.raw(declared)?)?;
        if manifest.entries != entries {
            return Err(DecodeError::new(
                "manifest does not match the section frames it indexes",
            ));
        }
        let decoded = rd_par::par_map(&sections, |_, (name, payload)| {
            let mut pr = Reader::new(payload);
            let net = NetworkSnapshot::decode(&mut pr)?;
            if !pr.is_at_end() {
                return Err(DecodeError::new(format!(
                    "section '{name}' has {} trailing bytes",
                    pr.remaining()
                )));
            }
            if net.name != *name {
                return Err(DecodeError::new(format!(
                    "section name '{name}' does not match network name '{}'",
                    net.name
                )));
            }
            Ok(net)
        });
        let mut networks = Vec::with_capacity(count);
        for result in decoded {
            networks.push(std::sync::Arc::new(result?));
        }
        Ok(Corpus { networks })
    }

    /// Writes the snapshot to a file via [`write_atomic`]: a crash at any
    /// point leaves either the previous file or the new one, never a torn
    /// mix.
    pub fn write_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        write_atomic(path, &self.to_bytes())
    }

    /// Reads a snapshot from a file.
    pub fn read_file(path: &std::path::Path) -> Result<Corpus, String> {
        Self::read_file_with_trailer(path).map(|(corpus, _)| corpus)
    }

    /// Reads a snapshot from a file, also returning its FNV-1a-64
    /// checksum trailer — the content identity `rd-serve` exposes as the
    /// `ETag` of every snapshot-derived response. The trailer comes
    /// straight from the validated container bytes, so equal corpora have
    /// equal trailers and any re-analysis that changes a single byte of
    /// the snapshot changes it.
    pub fn read_file_with_trailer(path: &std::path::Path) -> Result<(Corpus, u64), String> {
        let bytes = std::fs::read(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let corpus =
            Corpus::from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        let trailer = trailer_of(&bytes)
            .ok_or_else(|| format!("{}: snapshot shorter than its trailer", path.display()))?;
        Ok((corpus, trailer))
    }

    /// The FNV-1a-64 trailer this corpus would serialize with. Encodes
    /// the whole container to compute it — cheap for query-server reloads
    /// (once per snapshot swap), not something to call per request.
    pub fn trailer(&self) -> u64 {
        let bytes = self.to_bytes();
        trailer_of(&bytes).unwrap_or_default()
    }
}

/// One manifest entry: a section's name and the absolute byte range its
/// encoded payload occupies in the container.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Section (network) name, matching the frame's name field.
    pub name: String,
    /// Absolute offset of the payload's first byte from the start of the
    /// container.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
}

/// The per-section offset table stored as the container's footer.
///
/// Purely structural — [`Corpus::to_bytes`] regenerates it from the
/// sections, so it never carries state of its own — but it lets a reader
/// locate any network's encoded payload without walking the frames:
/// [`Manifest::read`] validates only the checksum/magic/version and the
/// footer itself, never decoding a section. The delta engine uses this
/// to splice unchanged networks' bytes from a previous container, and
/// `rdx snap --info` prints it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Entries in container (canonical name) order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Reads the manifest footer from full container bytes, validating
    /// the checksum, magic, and version but decoding no section payload.
    pub fn read(bytes: &[u8]) -> Result<Manifest, DecodeError> {
        let body = validated_body(bytes)?;
        let mut r = Reader::new(body);
        let count = read_header(&mut r)?;
        let declared = read_manifest_len(body)?;
        let manifest_start = body
            .len()
            .checked_sub(8 + declared)
            .filter(|&s| s >= r.position())
            .ok_or_else(|| {
                DecodeError::new("manifest length field overlaps the container header")
            })?;
        let manifest = decode_manifest(&body[manifest_start..body.len() - 8])?;
        if manifest.entries.len() != count {
            return Err(DecodeError::new(format!(
                "manifest holds {} entries but the header declares {count} sections",
                manifest.entries.len()
            )));
        }
        for e in &manifest.entries {
            let end = e.offset.checked_add(e.len);
            if e.offset < MAGIC.len() || end.map_or(true, |end| end > manifest_start) {
                return Err(DecodeError::new(format!(
                    "manifest entry '{}' points outside the section region",
                    e.name
                )));
            }
        }
        Ok(manifest)
    }

    /// The payload byte range of section `name`, sliced out of the same
    /// container bytes the manifest was read from.
    pub fn payload<'a>(&self, bytes: &'a [u8], name: &str) -> Option<&'a [u8]> {
        let e = self.entries.iter().find(|e| e.name == name)?;
        bytes.get(e.offset..e.offset + e.len)
    }
}

/// Glues pre-encoded section payloads (already in canonical sorted name
/// order) into a complete container: header, frames, manifest footer,
/// checksum. [`Corpus::to_bytes`] is exactly this over freshly encoded
/// payloads, so splicing a cached payload for an unchanged network
/// produces bytes identical to a cold re-encode.
pub fn assemble_container(sections: &[(&str, &[u8])]) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(MAGIC);
    w.u64(u64::from(FORMAT_VERSION));
    w.u64(sections.len() as u64);
    let mut offsets = Vec::with_capacity(sections.len());
    for (name, payload) in sections {
        w.string(name);
        w.u64(payload.len() as u64);
        offsets.push(w.len());
        w.raw(payload);
    }
    let mut m = Writer::new();
    m.u64(sections.len() as u64);
    for ((name, payload), offset) in sections.iter().zip(&offsets) {
        m.string(name);
        m.u64(*offset as u64);
        m.u64(payload.len() as u64);
    }
    let manifest = m.into_bytes();
    w.raw(&manifest);
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(&(manifest.len() as u64).to_le_bytes());
    let sum = fnv1a64(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

/// Validates the container's length and checksum, returning the body
/// (everything before the 8-byte trailer).
fn validated_body(bytes: &[u8]) -> Result<&[u8], DecodeError> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err(DecodeError::new("snapshot shorter than header + checksum"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let mut trailer_bytes = [0u8; 8];
    trailer_bytes.copy_from_slice(trailer);
    let stored = u64::from_le_bytes(trailer_bytes);
    let actual = fnv1a64(body);
    if stored != actual {
        return Err(DecodeError::new(format!(
            "checksum mismatch: stored {stored:016x}, computed {actual:016x}"
        )));
    }
    Ok(body)
}

/// Reads and validates the container header (magic, version, section
/// count), leaving `r` positioned at the first section frame.
fn read_header(r: &mut Reader<'_>) -> Result<usize, DecodeError> {
    if r.raw(MAGIC.len())? != MAGIC {
        return Err(DecodeError::new("bad magic: not an rd-snap file"));
    }
    let version = r.u64()?;
    if version != u64::from(FORMAT_VERSION) {
        return Err(DecodeError::new(format!(
            "unsupported snapshot format version {version} (this tool reads {FORMAT_VERSION})"
        )));
    }
    let count = r.len()?;
    if count > MAX_SECTIONS {
        return Err(DecodeError::new(format!(
            "section count {count} exceeds hard cap {MAX_SECTIONS}"
        )));
    }
    Ok(count)
}

/// Reads the fixed-width manifest length field from the last 8 bytes of
/// the body, bounds-checked against the body itself.
fn read_manifest_len(body: &[u8]) -> Result<usize, DecodeError> {
    if body.len() < MAGIC.len() + 8 {
        return Err(DecodeError::new("container too short for a manifest length field"));
    }
    let mut field = [0u8; 8];
    field.copy_from_slice(&body[body.len() - 8..]);
    let declared = u64::from_le_bytes(field);
    usize::try_from(declared)
        .ok()
        .filter(|&d| d + 8 <= body.len())
        .ok_or_else(|| {
            DecodeError::new(format!("manifest length {declared} exceeds the container"))
        })
}

/// Decodes the manifest payload (count + entries).
fn decode_manifest(payload: &[u8]) -> Result<Manifest, DecodeError> {
    let mut r = Reader::new(payload);
    let count = r.len()?;
    if count > MAX_SECTIONS {
        return Err(DecodeError::new(format!(
            "manifest entry count {count} exceeds hard cap {MAX_SECTIONS}"
        )));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let name = r.string()?;
        let offset = r.usize()?;
        let len = r.usize()?;
        entries.push(ManifestEntry { name, offset, len });
    }
    if !r.is_at_end() {
        return Err(DecodeError::new(format!(
            "{} trailing bytes after the manifest entries",
            r.remaining()
        )));
    }
    Ok(Manifest { entries })
}

/// Extracts the stored FNV-1a-64 trailer from raw snapshot bytes without
/// decoding them. `None` when `bytes` is too short to carry one.
pub fn trailer_of(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < 8 {
        return None;
    }
    let mut trailer = [0u8; 8];
    trailer.copy_from_slice(&bytes[bytes.len() - 8..]);
    Some(u64::from_le_bytes(trailer))
}

/// Convenience: snapshot-encode a single router config (used by tests and
/// by size accounting in the bench harness).
pub fn config_bytes(config: &RouterConfig) -> Vec<u8> {
    let mut w = Writer::new();
    config.encode(&mut w);
    w.into_bytes()
}

/// The staging path [`write_atomic`] writes through: `<path>.tmp`, in the
/// same directory so the final rename stays within one filesystem.
pub fn tmp_path(path: &std::path::Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// The quarantine path [`recover_dir`] moves a stale `.tmp` to:
/// `<path>.tmp.quarantined`. Quarantined files are never loaded and never
/// collide with a concurrent [`write_atomic`] of the same target.
pub fn quarantine_path(tmp: &std::path::Path) -> std::path::PathBuf {
    let mut name = tmp.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".quarantined");
    tmp.with_file_name(name)
}

/// Crash-safe file write: `bytes` go to `<path>.tmp`, the file is fsynced,
/// renamed over `path`, and the parent directory is fsynced so the rename
/// itself is durable. A crash at any point leaves either the old `path`
/// (plus at worst a stale `.tmp` for [`recover_dir`] to sweep) or the
/// complete new one — never a torn file under the final name.
pub fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let tmp = tmp_path(path);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            // Persist the rename in the directory entry. Directories open
            // read-only; on platforms where fsync-of-directory is not
            // supported the data fsync above still bounds the damage.
            if let Ok(d) = std::fs::File::open(dir) {
                d.sync_all().ok();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Startup recovery sweep: quarantines every stale `.tmp` left in `dir` by
/// an interrupted [`write_atomic`] (renaming it to `.tmp.quarantined`, so
/// it can be inspected but never mistaken for live data or clobbered by
/// the next write). Returns the quarantined paths in sorted order. Missing
/// `dir` is not an error — there is simply nothing to recover.
pub fn recover_dir(dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut quarantined = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        let is_tmp = path.is_file()
            && path.extension().map(|e| e == "tmp").unwrap_or(false);
        if is_tmp {
            let dest = quarantine_path(&path);
            std::fs::rename(&path, &dest)?;
            quarantined.push(dest);
        }
    }
    quarantined.sort();
    Ok(quarantined)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny two-router corpus assembled through the real pipeline
    /// (parse → topology → routing model), without depending on netgen
    /// or core.
    fn tiny_snapshot(name: &str) -> NetworkSnapshot {
        let r1 = "\
hostname r1
interface Loopback0
 ip address 10.0.0.1 255.255.255.255
interface Serial0/0
 ip address 10.1.0.1 255.255.255.252
router ospf 1
 network 10.0.0.0 0.0.255.255 area 0
 network 10.1.0.0 0.0.255.255 area 0
router bgp 65000
 neighbor 10.0.0.2 remote-as 65000
";
        let r2 = "\
hostname r2
interface Loopback0
 ip address 10.0.0.2 255.255.255.255
interface Serial0/0
 ip address 10.1.0.2 255.255.255.252
 ip access-group 101 in
access-list 101 permit ip any any
router ospf 1
 network 10.0.0.0 0.0.255.255 area 0
 network 10.1.0.0 0.0.255.255 area 0
router bgp 65000
 neighbor 10.0.0.1 remote-as 65000
 neighbor 192.168.50.1 remote-as 7018
";
        let texts = vec![
            ("config1".to_string(), r1.to_string()),
            ("config2".to_string(), r2.to_string()),
        ];
        let network = Network::from_texts(texts).expect("tiny corpus parses");
        let links = LinkMap::build(&network);
        let external = ExternalAnalysis::build(&network, &links);
        let processes = Processes::extract(&network);
        let adjacencies = Adjacencies::build(&network, &links, &processes, &external);
        let instances = Instances::compute(&processes, &adjacencies);
        let instance_graph =
            InstanceGraph::build(&network, &processes, &adjacencies, &instances);
        let process_graph = ProcessGraph::build(&network, &processes, &adjacencies);
        let blocks = network.address_blocks();
        let table1 = Table1::compute(&instances, &instance_graph, &adjacencies);
        let design = routing_model::classify_network(
            &network,
            &instances,
            &instance_graph,
            &adjacencies,
            &table1,
        );
        let diagnostics = network.diagnostics.clone();
        let file_hashes = vec![
            ("config1".to_string(), fnv1a64(r1.as_bytes())),
            ("config2".to_string(), fnv1a64(r2.as_bytes())),
        ];
        NetworkSnapshot {
            name: name.to_string(),
            network,
            links,
            external,
            processes,
            adjacencies,
            instances,
            instance_graph,
            process_graph,
            blocks,
            table1,
            design,
            diagnostics,
            file_hashes,
        }
    }

    #[test]
    fn corpus_roundtrip() {
        let corpus = Corpus::new(vec![tiny_snapshot("beta"), tiny_snapshot("alpha")]);
        let bytes = corpus.to_bytes();
        let restored = Corpus::from_bytes(&bytes).expect("roundtrip decodes");
        // Canonical order: sorted by name.
        assert_eq!(restored.networks.len(), 2);
        assert_eq!(restored.networks[0].name, "alpha");
        assert_eq!(restored.networks[1].name, "beta");
        // Re-encoding the restored corpus is byte-identical.
        assert_eq!(restored.to_bytes(), bytes);
        // Derived lookups survive the roundtrip (index/membership rebuilt).
        let orig = corpus.get("alpha").unwrap();
        let back = restored.get("alpha").unwrap();
        assert_eq!(back.processes.list.len(), orig.processes.list.len());
        for p in &orig.processes.list {
            assert_eq!(back.processes.position(p.key), orig.processes.position(p.key));
            assert_eq!(back.instances.instance_of(p.key), orig.instances.instance_of(p.key));
        }
        assert_eq!(back.design, orig.design);
        assert_eq!(back.table1.igp_instances, orig.table1.igp_instances);
        assert_eq!(back.diagnostics.len(), orig.diagnostics.len());
    }

    #[test]
    fn truncation_detected() {
        let corpus = Corpus::new(vec![tiny_snapshot("alpha")]);
        let bytes = corpus.to_bytes();
        for cut in [0, 1, MAGIC.len(), bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Corpus::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn corruption_detected() {
        let corpus = Corpus::new(vec![tiny_snapshot("alpha")]);
        let bytes = corpus.to_bytes();
        // Flip one bit in the middle: the checksum must catch it.
        let mut corrupted = bytes.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0x40;
        let err = Corpus::from_bytes(&corrupted).unwrap_err();
        assert!(err.message.contains("checksum"), "got: {err}");
    }

    #[test]
    fn bad_magic_and_version_detected() {
        let corpus = Corpus::new(vec![tiny_snapshot("alpha")]);
        let mut bytes = corpus.to_bytes();
        // Wrong magic (re-checksum so the magic check is what fires).
        bytes[0] = b'X';
        let body_len = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        let err = Corpus::from_bytes(&bytes).unwrap_err();
        assert!(err.message.contains("magic"), "got: {err}");

        // Unsupported version.
        let mut w = Writer::new();
        w.raw(MAGIC);
        w.u64(u64::from(FORMAT_VERSION) + 1);
        w.u64(0);
        let mut v = w.into_bytes();
        let sum = fnv1a64(&v);
        v.extend_from_slice(&sum.to_le_bytes());
        let err = Corpus::from_bytes(&v).unwrap_err();
        assert!(err.message.contains("version"), "got: {err}");
    }

    #[test]
    fn empty_corpus_roundtrip() {
        let corpus = Corpus::default();
        let bytes = corpus.to_bytes();
        let restored = Corpus::from_bytes(&bytes).unwrap();
        assert!(restored.networks.is_empty());
        let manifest = Manifest::read(&bytes).expect("empty manifest reads");
        assert!(manifest.entries.is_empty());
    }

    #[test]
    fn manifest_indexes_every_section() {
        let corpus = Corpus::new(vec![tiny_snapshot("beta"), tiny_snapshot("alpha")]);
        let bytes = corpus.to_bytes();
        let manifest = Manifest::read(&bytes).expect("manifest reads");
        assert_eq!(manifest.entries.len(), 2);
        assert_eq!(manifest.entries[0].name, "alpha");
        assert_eq!(manifest.entries[1].name, "beta");
        // Each entry's byte range decodes to exactly its network.
        for e in &manifest.entries {
            let payload = manifest.payload(&bytes, &e.name).expect("payload slice");
            assert_eq!(payload.len(), e.len);
            let mut r = Reader::new(payload);
            let net = NetworkSnapshot::decode(&mut r).expect("payload decodes");
            assert_eq!(net.name, e.name);
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn spliced_container_is_byte_identical() {
        // Reassembling from manifest-located payload slices reproduces
        // the container exactly — the property the delta engine's
        // unchanged-network splicing rests on.
        let corpus = Corpus::new(vec![tiny_snapshot("beta"), tiny_snapshot("alpha")]);
        let bytes = corpus.to_bytes();
        let manifest = Manifest::read(&bytes).expect("manifest reads");
        let sections: Vec<(&str, &[u8])> = manifest
            .entries
            .iter()
            .map(|e| (e.name.as_str(), manifest.payload(&bytes, &e.name).expect("slice")))
            .collect();
        assert_eq!(assemble_container(&sections), bytes);
    }

    #[test]
    fn tampered_manifest_rejected() {
        let corpus = Corpus::new(vec![tiny_snapshot("alpha")]);
        let bytes = corpus.to_bytes();
        let manifest_len = read_manifest_len(&bytes[..bytes.len() - 8]).expect("length");
        // Flip a byte inside the manifest region and re-checksum: the
        // frames still decode, but the index no longer matches them.
        let mut tampered = bytes.clone();
        let body_len = tampered.len() - 8;
        let in_manifest = body_len - 8 - manifest_len + 2;
        tampered[in_manifest] ^= 0x01;
        let sum = fnv1a64(&tampered[..body_len]).to_le_bytes();
        tampered[body_len..].copy_from_slice(&sum);
        assert!(Corpus::from_bytes(&tampered).is_err(), "tampered manifest must not decode");
    }
}
