//! [`Snap`] implementations for the analysis model types.
//!
//! Everything a fully analyzed network consists of — parsed configs
//! (`ioscfg`), topology (`nettopo`), routing design (`routing-model`),
//! address blocks (`netaddr`) and diagnostics (`rd-obs`) — round-trips
//! through the snapshot byte format here. The layout of each type is part
//! of [`crate::FORMAT_VERSION`]: changing any field order or enum tag
//! below requires a version bump.
//!
//! Two types need interning on decode. `rd_obs::Diagnostic::code` and the
//! `Table1` protocol labels are `&'static str` in the model; known values
//! map back to the original statics, and unknown ones (from a newer
//! writer) are leaked once per distinct string, which is bounded by the
//! snapshot's vocabulary.

use crate::codec::{DecodeError, Reader, Snap, Writer};
use ioscfg::{
    AccessList, AclAction, AclAddr, AclEntry, BgpNeighbor, BgpProcess, DistributeList,
    EigrpNetwork, EigrpProcess, IfAddr, Interface, InterfaceName, InterfaceType, OspfArea,
    OspfNetwork, OspfProcess, PortMatch, Redistribution, RedistSource, RipProcess, RouteMap,
    RouteMapClause, RouterConfig, RmMatch, RmSet, StaticRoute, StaticTarget,
};
use netaddr::{Addr, AddressBlock, BlockTree, Netmask, Prefix, Wildcard};
use nettopo::{
    Coverage, ExternalAnalysis, IfaceClass, IfaceClasses, IfaceRef, Link, LinkMap,
    MissingRouterHint, Network, Router, RouterId,
};
use routing_model::{
    Adjacencies, BgpSession, DesignClass, DesignSummary, EdgeKind, ExchangeKind, IgpAdjacency,
    InstanceEdge, InstanceGraph, InstanceId, InstanceNode, Instances, ProcKey, ProcessEdge,
    ProcessGraph, Processes, Proto, ProtoKind, RibNode, RoleCounts, RoutingInstance,
    RoutingProcess, SessionScope, Table1,
};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Encode every struct field in order; decode rebuilds the struct.
macro_rules! snap_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl Snap for $ty {
            fn encode(&self, w: &mut Writer) {
                $(self.$field.encode(w);)+
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                $(let $field = Snap::decode(r)?;)+
                Ok(Self { $($field),+ })
            }
        }
    };
}

/// Encode a fieldless enum as a one-byte tag.
macro_rules! snap_enum_unit {
    ($ty:ty { $($tag:literal => $variant:ident),+ $(,)? }) => {
        impl Snap for $ty {
            fn encode(&self, w: &mut Writer) {
                w.byte(match self { $(Self::$variant => $tag),+ });
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                match r.byte()? {
                    $($tag => Ok(Self::$variant),)+
                    b => Err(DecodeError::new(format!(
                        concat!("invalid ", stringify!($ty), " tag {}"), b))),
                }
            }
        }
    };
}

// ---------------------------------------------------------------------------
// netaddr

impl Snap for Addr {
    fn encode(&self, w: &mut Writer) {
        w.u64(u64::from(self.to_u32()));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Addr::from_u32(u32::decode(r)?))
    }
}

impl Snap for Netmask {
    fn encode(&self, w: &mut Writer) {
        w.byte(self.len());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = r.byte()?;
        Netmask::from_len(len).ok_or_else(|| DecodeError::new(format!("invalid netmask /{len}")))
    }
}

impl Snap for Wildcard {
    fn encode(&self, w: &mut Writer) {
        w.u64(u64::from(self.bits()));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Wildcard::from_bits(u32::decode(r)?))
    }
}

impl Snap for Prefix {
    fn encode(&self, w: &mut Writer) {
        self.addr().encode(w);
        w.byte(self.len());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let addr = Addr::decode(r)?;
        let len = r.byte()?;
        Prefix::new(addr, len)
            .ok_or_else(|| DecodeError::new(format!("invalid prefix {addr}/{len}")))
    }
}

snap_struct!(AddressBlock { prefix, used, children });
snap_struct!(BlockTree { roots });

// ---------------------------------------------------------------------------
// ioscfg

impl Snap for InterfaceType {
    // A tag byte rather than the spelled-out name: interface names are
    // the single most numerous string in a snapshot (one per interface,
    // plus unnumbered/static-route references), so this both shrinks the
    // container and spares the decoder a string allocation and prefix
    // match per occurrence.
    fn encode(&self, w: &mut Writer) {
        let tag: u8 = match self {
            InterfaceType::Serial => 0,
            InterfaceType::FastEthernet => 1,
            InterfaceType::Atm => 2,
            InterfaceType::Pos => 3,
            InterfaceType::Ethernet => 4,
            InterfaceType::Hssi => 5,
            InterfaceType::GigabitEthernet => 6,
            InterfaceType::TokenRing => 7,
            InterfaceType::Dialer => 8,
            InterfaceType::Bri => 9,
            InterfaceType::Tunnel => 10,
            InterfaceType::PortChannel => 11,
            InterfaceType::Async => 12,
            InterfaceType::Virtual => 13,
            InterfaceType::Channel => 14,
            InterfaceType::Cbr => 15,
            InterfaceType::Fddi => 16,
            InterfaceType::Multilink => 17,
            InterfaceType::Null => 18,
            InterfaceType::Loopback => 19,
            InterfaceType::Other(name) => {
                w.byte(20);
                w.string(name);
                return;
            }
        };
        w.byte(tag);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => InterfaceType::Serial,
            1 => InterfaceType::FastEthernet,
            2 => InterfaceType::Atm,
            3 => InterfaceType::Pos,
            4 => InterfaceType::Ethernet,
            5 => InterfaceType::Hssi,
            6 => InterfaceType::GigabitEthernet,
            7 => InterfaceType::TokenRing,
            8 => InterfaceType::Dialer,
            9 => InterfaceType::Bri,
            10 => InterfaceType::Tunnel,
            11 => InterfaceType::PortChannel,
            12 => InterfaceType::Async,
            13 => InterfaceType::Virtual,
            14 => InterfaceType::Channel,
            15 => InterfaceType::Cbr,
            16 => InterfaceType::Fddi,
            17 => InterfaceType::Multilink,
            18 => InterfaceType::Null,
            19 => InterfaceType::Loopback,
            20 => InterfaceType::Other(r.string()?),
            b => return Err(DecodeError::new(format!("invalid InterfaceType tag {b}"))),
        })
    }
}

snap_struct!(InterfaceName { ty, unit });

snap_struct!(IfAddr { addr, mask });
snap_struct!(Interface {
    name,
    description,
    address,
    secondary,
    unnumbered,
    access_group_in,
    access_group_out,
    encapsulation,
    frame_relay_dlci,
    bandwidth_kbps,
    shutdown,
    point_to_point,
});

impl Snap for RedistSource {
    fn encode(&self, w: &mut Writer) {
        match self {
            RedistSource::Connected => w.byte(0),
            RedistSource::Static => w.byte(1),
            RedistSource::Ospf(id) => {
                w.byte(2);
                id.encode(w);
            }
            RedistSource::Eigrp(asn) => {
                w.byte(3);
                asn.encode(w);
            }
            RedistSource::Igrp(asn) => {
                w.byte(4);
                asn.encode(w);
            }
            RedistSource::Rip => w.byte(5),
            RedistSource::Bgp(asn) => {
                w.byte(6);
                asn.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => RedistSource::Connected,
            1 => RedistSource::Static,
            2 => RedistSource::Ospf(u32::decode(r)?),
            3 => RedistSource::Eigrp(u32::decode(r)?),
            4 => RedistSource::Igrp(u32::decode(r)?),
            5 => RedistSource::Rip,
            6 => RedistSource::Bgp(u32::decode(r)?),
            b => return Err(DecodeError::new(format!("invalid RedistSource tag {b}"))),
        })
    }
}

snap_struct!(Redistribution { source, metric, metric_type, subnets, route_map, tag });
snap_struct!(DistributeList { acl, interface });

impl Snap for OspfArea {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(OspfArea(u32::decode(r)?))
    }
}

snap_struct!(OspfNetwork { addr, wildcard, area });
snap_struct!(OspfProcess {
    id,
    networks,
    redistribute,
    distribute_in,
    distribute_out,
    passive,
    default_information,
});
snap_struct!(EigrpNetwork { addr, wildcard });
snap_struct!(EigrpProcess {
    asn,
    is_igrp,
    networks,
    redistribute,
    distribute_in,
    distribute_out,
    passive,
    no_auto_summary,
});
snap_struct!(RipProcess {
    version,
    networks,
    redistribute,
    distribute_in,
    distribute_out,
    passive,
});
snap_struct!(BgpNeighbor {
    addr,
    remote_as,
    description,
    update_source,
    next_hop_self,
    route_map_in,
    route_map_out,
    distribute_in,
    distribute_out,
    route_reflector_client,
    send_community,
});
snap_struct!(BgpProcess {
    asn,
    router_id,
    networks,
    neighbors,
    redistribute,
    no_synchronization,
});

impl Snap for StaticTarget {
    fn encode(&self, w: &mut Writer) {
        match self {
            StaticTarget::NextHop(a) => {
                w.byte(0);
                a.encode(w);
            }
            StaticTarget::Interface(n) => {
                w.byte(1);
                n.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => StaticTarget::NextHop(Addr::decode(r)?),
            1 => StaticTarget::Interface(InterfaceName::decode(r)?),
            b => return Err(DecodeError::new(format!("invalid StaticTarget tag {b}"))),
        })
    }
}

snap_struct!(StaticRoute { dest, mask, target, distance, tag });

snap_enum_unit!(AclAction { 0 => Permit, 1 => Deny });

impl Snap for AclAddr {
    fn encode(&self, w: &mut Writer) {
        match self {
            AclAddr::Any => w.byte(0),
            AclAddr::Host(a) => {
                w.byte(1);
                a.encode(w);
            }
            AclAddr::Wild(a, wc) => {
                w.byte(2);
                a.encode(w);
                wc.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => AclAddr::Any,
            1 => AclAddr::Host(Addr::decode(r)?),
            2 => AclAddr::Wild(Addr::decode(r)?, Wildcard::decode(r)?),
            b => return Err(DecodeError::new(format!("invalid AclAddr tag {b}"))),
        })
    }
}

impl Snap for PortMatch {
    fn encode(&self, w: &mut Writer) {
        match self {
            PortMatch::Eq(p) => {
                w.byte(0);
                p.encode(w);
            }
            PortMatch::Lt(p) => {
                w.byte(1);
                p.encode(w);
            }
            PortMatch::Gt(p) => {
                w.byte(2);
                p.encode(w);
            }
            PortMatch::Range(a, b) => {
                w.byte(3);
                a.encode(w);
                b.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => PortMatch::Eq(u16::decode(r)?),
            1 => PortMatch::Lt(u16::decode(r)?),
            2 => PortMatch::Gt(u16::decode(r)?),
            3 => PortMatch::Range(u16::decode(r)?, u16::decode(r)?),
            b => return Err(DecodeError::new(format!("invalid PortMatch tag {b}"))),
        })
    }
}

impl Snap for AclEntry {
    fn encode(&self, w: &mut Writer) {
        match self {
            AclEntry::Standard { action, addr } => {
                w.byte(0);
                action.encode(w);
                addr.encode(w);
            }
            AclEntry::Extended { action, protocol, src, src_port, dst, dst_port, established } => {
                w.byte(1);
                action.encode(w);
                protocol.encode(w);
                src.encode(w);
                src_port.encode(w);
                dst.encode(w);
                dst_port.encode(w);
                established.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => AclEntry::Standard {
                action: AclAction::decode(r)?,
                addr: AclAddr::decode(r)?,
            },
            1 => AclEntry::Extended {
                action: AclAction::decode(r)?,
                protocol: String::decode(r)?,
                src: AclAddr::decode(r)?,
                src_port: Option::decode(r)?,
                dst: AclAddr::decode(r)?,
                dst_port: Option::decode(r)?,
                established: bool::decode(r)?,
            },
            b => return Err(DecodeError::new(format!("invalid AclEntry tag {b}"))),
        })
    }
}

snap_struct!(AccessList { id, entries });

impl Snap for RmMatch {
    fn encode(&self, w: &mut Writer) {
        match self {
            RmMatch::IpAddress(acls) => {
                w.byte(0);
                acls.encode(w);
            }
            RmMatch::Tag(tags) => {
                w.byte(1);
                tags.encode(w);
            }
            RmMatch::AsPath(n) => {
                w.byte(2);
                n.encode(w);
            }
            RmMatch::Community(n) => {
                w.byte(3);
                n.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => RmMatch::IpAddress(Vec::decode(r)?),
            1 => RmMatch::Tag(Vec::decode(r)?),
            2 => RmMatch::AsPath(u32::decode(r)?),
            3 => RmMatch::Community(u32::decode(r)?),
            b => return Err(DecodeError::new(format!("invalid RmMatch tag {b}"))),
        })
    }
}

impl Snap for RmSet {
    fn encode(&self, w: &mut Writer) {
        match self {
            RmSet::Metric(v) => {
                w.byte(0);
                v.encode(w);
            }
            RmSet::MetricType(v) => {
                w.byte(1);
                v.encode(w);
            }
            RmSet::Tag(v) => {
                w.byte(2);
                v.encode(w);
            }
            RmSet::LocalPreference(v) => {
                w.byte(3);
                v.encode(w);
            }
            RmSet::Weight(v) => {
                w.byte(4);
                v.encode(w);
            }
            RmSet::Community(v) => {
                w.byte(5);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => RmSet::Metric(u64::decode(r)?),
            1 => RmSet::MetricType(u8::decode(r)?),
            2 => RmSet::Tag(u32::decode(r)?),
            3 => RmSet::LocalPreference(u32::decode(r)?),
            4 => RmSet::Weight(u32::decode(r)?),
            5 => RmSet::Community(String::decode(r)?),
            b => return Err(DecodeError::new(format!("invalid RmSet tag {b}"))),
        })
    }
}

snap_struct!(RouteMapClause { seq, action, matches, sets });
snap_struct!(RouteMap { name, clauses });
snap_struct!(RouterConfig {
    hostname,
    interfaces,
    ospf,
    eigrp,
    rip,
    bgp,
    static_routes,
    access_lists,
    route_maps,
    unparsed,
});

// ---------------------------------------------------------------------------
// rd-obs diagnostics

snap_enum_unit!(rd_obs::Severity { 0 => Info, 1 => Warning, 2 => Error });

/// Map a decoded diagnostic code back to a `&'static str`.
///
/// The known codes come from the fixed vocabulary emitted by the pipeline;
/// an unknown code (snapshot written by a newer tool) is leaked once per
/// distinct string and then reused.
fn intern_static(s: String, known: &[&'static str]) -> &'static str {
    if let Some(k) = known.iter().find(|k| **k == s) {
        return k;
    }
    static LEAKED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut leaked = LEAKED.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(k) = leaked.iter().find(|k| **k == s) {
        return k;
    }
    let k: &'static str = Box::leak(s.into_boxed_str());
    leaked.push(k);
    k
}

/// Diagnostic codes emitted anywhere in the pipeline, for interning.
const KNOWN_CODES: &[&str] = &[
    "unknown-stanza",
    "duplicate-interface",
    "undefined-acl",
    "undefined-route-map",
    "undefined-unnumbered-target",
    "possible-missing-router",
    "redistribute-unknown-source",
    "missing-backbone-area",
    "bgp-no-neighbors",
    "parse-error",
    "invalid-utf8",
    "empty-config",
    "worker-panic",
];

impl Snap for rd_obs::Diagnostic {
    fn encode(&self, w: &mut Writer) {
        self.file.encode(w);
        self.line.encode(w);
        self.severity.encode(w);
        w.string(self.code);
        self.message.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(rd_obs::Diagnostic {
            file: String::decode(r)?,
            line: usize::decode(r)?,
            severity: rd_obs::Severity::decode(r)?,
            code: intern_static(r.string()?, KNOWN_CODES),
            message: String::decode(r)?,
        })
    }
}

impl Snap for rd_obs::Diagnostics {
    fn encode(&self, w: &mut Writer) {
        self.list.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(rd_obs::Diagnostics { list: Vec::decode(r)? })
    }
}

// ---------------------------------------------------------------------------
// nettopo

impl Snap for RouterId {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RouterId(usize::decode(r)?))
    }
}

snap_struct!(Router { file_name, config, command_lines });
snap_struct!(Coverage { total_files, quarantined });
snap_struct!(Network { routers, diagnostics, coverage });
snap_struct!(IfaceRef { router, iface });
snap_struct!(Link { subnet, endpoints });
snap_struct!(LinkMap { links });
snap_enum_unit!(IfaceClass { 0 => Internal, 1 => External, 2 => Unaddressed });

// `IfaceClasses` encodes exactly like the `BTreeMap<IfaceRef, IfaceClass>`
// it replaced — an element count followed by sorted `(key, value)` pairs —
// so snapshots are byte-compatible across the dense-layout change. The
// table is total over `(router, iface)` in order, which decode validates
// (pairs must be contiguous and ascending) before rebuilding the flat
// layout; routers that appear in no pair decode as interface-less.
impl Snap for IfaceClasses {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for (iref, class) in self.iter() {
            iref.encode(w);
            class.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.len()?;
        let mut per_router: Vec<Vec<IfaceClass>> = Vec::new();
        for _ in 0..n {
            let iref = IfaceRef::decode(r)?;
            let class = IfaceClass::decode(r)?;
            if iref.router.0 >= per_router.len() {
                // Bound the resize so a corrupted router index cannot
                // trigger a huge allocation (2^24 routers is far beyond
                // any corpus this format will ever hold).
                if iref.router.0 >= (1 << 24) {
                    return Err(DecodeError::new("interface class router index too large"));
                }
                per_router.resize_with(iref.router.0 + 1, Vec::new);
            } else if iref.router.0 + 1 < per_router.len() {
                return Err(DecodeError::new("interface classes out of router order"));
            }
            let slots = &mut per_router[iref.router.0];
            if iref.iface != slots.len() {
                return Err(DecodeError::new("interface classes not contiguous"));
            }
            slots.push(class);
        }
        Ok(IfaceClasses::from_per_router(per_router))
    }
}

snap_struct!(MissingRouterHint { iface, subnet, block });
snap_struct!(ExternalAnalysis { classes, external_subnets, missing_router_hints });

// ---------------------------------------------------------------------------
// routing-model

snap_enum_unit!(ProtoKind { 0 => Ospf, 1 => Eigrp, 2 => Igrp, 3 => Rip, 4 => Bgp });

impl Snap for Proto {
    fn encode(&self, w: &mut Writer) {
        match self {
            Proto::Ospf(id) => {
                w.byte(0);
                id.encode(w);
            }
            Proto::Eigrp(asn) => {
                w.byte(1);
                asn.encode(w);
            }
            Proto::Igrp(asn) => {
                w.byte(2);
                asn.encode(w);
            }
            Proto::Rip => w.byte(3),
            Proto::Bgp(asn) => {
                w.byte(4);
                asn.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => Proto::Ospf(u32::decode(r)?),
            1 => Proto::Eigrp(u32::decode(r)?),
            2 => Proto::Igrp(u32::decode(r)?),
            3 => Proto::Rip,
            4 => Proto::Bgp(u32::decode(r)?),
            b => return Err(DecodeError::new(format!("invalid Proto tag {b}"))),
        })
    }
}

snap_struct!(ProcKey { router, proto });
snap_struct!(RoutingProcess { key, covered_ifaces, passive_ifaces, redistributes });

impl Snap for Processes {
    fn encode(&self, w: &mut Writer) {
        self.list.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Processes::from_list(Vec::decode(r)?))
    }
}

impl Snap for InstanceId {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(InstanceId(usize::decode(r)?))
    }
}

snap_struct!(RoutingInstance { id, kind, asn, processes, routers });

impl Snap for Instances {
    fn encode(&self, w: &mut Writer) {
        self.list.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Instances::from_list(Vec::decode(r)?))
    }
}

snap_enum_unit!(SessionScope { 0 => Ibgp, 1 => EbgpInternal, 2 => EbgpExternal });
snap_struct!(IgpAdjacency { a, b, subnet });
snap_struct!(BgpSession { local, peer, peer_addr, remote_as, scope });
snap_struct!(Adjacencies { igp, bgp, igp_external });

impl Snap for InstanceNode {
    fn encode(&self, w: &mut Writer) {
        match self {
            InstanceNode::Instance(id) => {
                w.byte(0);
                id.encode(w);
            }
            InstanceNode::ExternalAs(asn) => {
                w.byte(1);
                asn.encode(w);
            }
            InstanceNode::ExternalWorld => w.byte(2),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => InstanceNode::Instance(InstanceId::decode(r)?),
            1 => InstanceNode::ExternalAs(u32::decode(r)?),
            2 => InstanceNode::ExternalWorld,
            b => return Err(DecodeError::new(format!("invalid InstanceNode tag {b}"))),
        })
    }
}

impl Snap for ExchangeKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            ExchangeKind::Redistribution { router, policy } => {
                w.byte(0);
                router.encode(w);
                policy.encode(w);
            }
            ExchangeKind::Ebgp { router } => {
                w.byte(1);
                router.encode(w);
            }
            ExchangeKind::IgpEdge { router } => {
                w.byte(2);
                router.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => ExchangeKind::Redistribution {
                router: RouterId::decode(r)?,
                policy: Option::decode(r)?,
            },
            1 => ExchangeKind::Ebgp { router: RouterId::decode(r)? },
            2 => ExchangeKind::IgpEdge { router: RouterId::decode(r)? },
            b => return Err(DecodeError::new(format!("invalid ExchangeKind tag {b}"))),
        })
    }
}

snap_struct!(InstanceEdge { from, to, kind });
snap_struct!(InstanceGraph { nodes, edges });

impl Snap for RibNode {
    fn encode(&self, w: &mut Writer) {
        match self {
            RibNode::Process(k) => {
                w.byte(0);
                k.encode(w);
            }
            RibNode::Local(r) => {
                w.byte(1);
                r.encode(w);
            }
            RibNode::RouterRib(r) => {
                w.byte(2);
                r.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => RibNode::Process(ProcKey::decode(r)?),
            1 => RibNode::Local(RouterId::decode(r)?),
            2 => RibNode::RouterRib(RouterId::decode(r)?),
            b => return Err(DecodeError::new(format!("invalid RibNode tag {b}"))),
        })
    }
}

impl Snap for EdgeKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            EdgeKind::Adjacency => w.byte(0),
            EdgeKind::Session(scope) => {
                w.byte(1);
                scope.encode(w);
            }
            EdgeKind::Redistribution => w.byte(2),
            EdgeKind::Selection => w.byte(3),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => EdgeKind::Adjacency,
            1 => EdgeKind::Session(SessionScope::decode(r)?),
            2 => EdgeKind::Redistribution,
            3 => EdgeKind::Selection,
            b => return Err(DecodeError::new(format!("invalid EdgeKind tag {b}"))),
        })
    }
}

snap_struct!(ProcessEdge { from, to, kind, policy });
snap_struct!(ProcessGraph { nodes, edges });
snap_enum_unit!(DesignClass {
    0 => Backbone,
    1 => Enterprise,
    2 => Tier2,
    3 => NoBgp,
    4 => Unclassifiable,
});
snap_struct!(DesignSummary {
    class,
    routers,
    bgp_speakers,
    internal_ases,
    ibgp_sessions,
    external_ebgp_sessions,
    internal_ebgp_sessions,
    igp_instances,
    staging_instances,
    bgp_into_igp,
    total_instances,
});
snap_struct!(RoleCounts { intra, inter });

/// Table 1 row labels, for interning the `&'static str` map keys.
const KNOWN_LABELS: &[&str] = &["OSPF", "EIGRP", "RIP", "BGP"];

impl Snap for Table1 {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.igp_instances.len() as u64);
        for (label, counts) in &self.igp_instances {
            w.string(label);
            counts.encode(w);
        }
        self.ebgp_sessions.encode(w);
        self.ibgp_sessions.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = r.len()?;
        let mut igp_instances = BTreeMap::new();
        for _ in 0..n {
            let label = intern_static(r.string()?, KNOWN_LABELS);
            igp_instances.insert(label, RoleCounts::decode(r)?);
        }
        Ok(Table1 {
            igp_instances,
            ebgp_sessions: RoleCounts::decode(r)?,
            ibgp_sessions: usize::decode(r)?,
        })
    }
}
