//! Packet-filter evaluation: "where would this flow be dropped?"
//!
//! Packet filters work directly on the data plane (paper Section 2.4) and
//! the paper's Section 8.1 lists exactly this diagnosis workflow: "the
//! routing design also reveals situations where two hosts should not be
//! able to reach each other, due to packet or route filtering policies".
//! Route-filter reachability lives in [`crate::ReachAnalysis`]; this
//! module answers the complementary data-plane question by evaluating
//! every *applied* access list in the network against a concrete flow.

use ioscfg::{AccessList, AclAction, AclEntry, PortMatch};
use netaddr::Addr;
use nettopo::{IfaceRef, Network};

/// The protocol of a flow being checked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowProto {
    /// A generic IP probe (judged only by protocol-agnostic clauses).
    Ip,
    /// TCP with optional ports.
    Tcp,
    /// UDP with optional ports.
    Udp,
    /// ICMP.
    Icmp,
    /// PIM (the protocol the paper saw disabled by internal filters).
    Pim,
}

impl FlowProto {
    /// Parses a protocol keyword.
    pub fn parse(text: &str) -> Option<FlowProto> {
        Some(match text.to_ascii_lowercase().as_str() {
            "ip" => FlowProto::Ip,
            "tcp" => FlowProto::Tcp,
            "udp" => FlowProto::Udp,
            "icmp" => FlowProto::Icmp,
            "pim" => FlowProto::Pim,
            _ => return None,
        })
    }

    /// True if an ACL entry's protocol keyword applies to this flow:
    /// `ip` clauses match every flow; protocol-specific clauses match
    /// only flows of that protocol (a generic [`FlowProto::Ip`] probe is
    /// not judged by tcp/udp/icmp/pim-specific clauses).
    fn matched_by(self, acl_proto: &str) -> bool {
        match acl_proto.to_ascii_lowercase().as_str() {
            "ip" => true,
            "tcp" => self == FlowProto::Tcp,
            "udp" => self == FlowProto::Udp,
            "icmp" => self == FlowProto::Icmp,
            "pim" => self == FlowProto::Pim,
            _ => false,
        }
    }
}

/// One concrete packet flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Flow {
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Protocol.
    pub proto: FlowProto,
    /// Source port (TCP/UDP).
    pub src_port: Option<u16>,
    /// Destination port (TCP/UDP).
    pub dst_port: Option<u16>,
}

impl Flow {
    /// A plain IP flow between two addresses.
    pub fn ip(src: Addr, dst: Addr) -> Flow {
        Flow { src, dst, proto: FlowProto::Ip, src_port: None, dst_port: None }
    }

    /// A TCP flow to a destination port.
    pub fn tcp(src: Addr, dst: Addr, dst_port: u16) -> Flow {
        Flow { src, dst, proto: FlowProto::Tcp, src_port: None, dst_port: Some(dst_port) }
    }
}

/// Direction of a filter application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterDirection {
    /// `ip access-group <n> in`.
    In,
    /// `ip access-group <n> out`.
    Out,
}

/// One filter application's verdict on a flow.
#[derive(Clone, Debug)]
pub struct FilterVerdict {
    /// Where the filter is applied.
    pub iface: IfaceRef,
    /// In or out.
    pub direction: FilterDirection,
    /// The access list number.
    pub acl: u32,
    /// Whether the flow is permitted (false = dropped here).
    pub permitted: bool,
    /// The 1-based clause that decided, or `None` for the implicit deny.
    pub deciding_clause: Option<usize>,
}

/// Evaluates a full access list against a flow (first match wins,
/// implicit deny). Returns `(permitted, deciding_clause)`.
pub fn acl_verdict(acl: &AccessList, flow: &Flow) -> (bool, Option<usize>) {
    for (i, entry) in acl.entries.iter().enumerate() {
        let matched = match entry {
            AclEntry::Standard { addr, .. } => addr.matches(flow.src),
            AclEntry::Extended { protocol, src, src_port, dst, dst_port, .. } => {
                flow.proto.matched_by(protocol)
                    && src.matches(flow.src)
                    && dst.matches(flow.dst)
                    && port_ok(*src_port, flow.src_port)
                    && port_ok(*dst_port, flow.dst_port)
            }
        };
        if matched {
            return (entry.action() == AclAction::Permit, Some(i + 1));
        }
    }
    (false, None)
}

fn port_ok(matcher: Option<PortMatch>, port: Option<u16>) -> bool {
    match (matcher, port) {
        (None, _) => true,
        // A port-specific clause cannot match a flow with no port
        // information; conservative for `ip`-protocol probes.
        (Some(_), None) => false,
        (Some(m), Some(p)) => m.matches(p),
    }
}

/// Evaluates every applied packet filter in the network against `flow`;
/// returns one verdict per (interface, direction) application, drops
/// first.
pub fn flow_verdicts(net: &Network, flow: &Flow) -> Vec<FilterVerdict> {
    let mut out = Vec::new();
    for (rid, router) in net.iter() {
        for (idx, iface) in router.config.interfaces.iter().enumerate() {
            for (acl_id, direction) in [
                (iface.access_group_in, FilterDirection::In),
                (iface.access_group_out, FilterDirection::Out),
            ] {
                let Some(acl_id) = acl_id else { continue };
                let Some(acl) = router.config.access_lists.get(&acl_id) else {
                    continue;
                };
                let (permitted, deciding_clause) = acl_verdict(acl, flow);
                out.push(FilterVerdict {
                    iface: IfaceRef { router: rid, iface: idx },
                    direction,
                    acl: acl_id,
                    permitted,
                    deciding_clause,
                });
            }
        }
    }
    out.sort_by_key(|v| (v.permitted, v.iface.router, v.iface.iface));
    out
}

/// True if some applied filter would drop the flow.
pub fn dropped_anywhere(net: &Network, flow: &Flow) -> bool {
    flow_verdicts(net, flow).iter().any(|v| !v.permitted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn net_with_filter() -> Network {
        Network::from_texts(vec![(
            "config1".into(),
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n ip access-group 120 in\n\
             access-list 120 deny pim any any\n\
             access-list 120 deny tcp any any eq 445\n\
             access-list 120 permit udp any range 5000 5010 any\n\
             access-list 120 deny udp any any\n\
             access-list 120 permit ip any any\n"
                .into(),
        )])
        .unwrap()
    }

    #[test]
    fn first_match_decides_with_clause_number() {
        let net = net_with_filter();
        let acl = &net.router(nettopo::RouterId(0)).config.access_lists[&120];

        // PIM disabled network-wide (the paper's example).
        let pim = Flow {
            proto: FlowProto::Pim,
            ..Flow::ip(addr("10.0.0.5"), addr("10.0.1.5"))
        };
        assert_eq!(acl_verdict(acl, &pim), (false, Some(1)));

        // Port-based application blocking.
        let smb = Flow::tcp(addr("10.0.0.5"), addr("10.0.1.5"), 445);
        assert_eq!(acl_verdict(acl, &smb), (false, Some(2)));
        let web = Flow::tcp(addr("10.0.0.5"), addr("10.0.1.5"), 80);
        assert_eq!(acl_verdict(acl, &web), (true, Some(5)));

        // Source-port ranges.
        let game = Flow {
            proto: FlowProto::Udp,
            src_port: Some(5005),
            dst_port: Some(9999),
            ..Flow::ip(addr("10.0.0.5"), addr("10.0.1.5"))
        };
        assert_eq!(acl_verdict(acl, &game), (true, Some(3)));
        let other_udp = Flow {
            proto: FlowProto::Udp,
            src_port: Some(53),
            dst_port: Some(53),
            ..Flow::ip(addr("10.0.0.5"), addr("10.0.1.5"))
        };
        assert_eq!(acl_verdict(acl, &other_udp), (false, Some(4)));
    }

    #[test]
    fn implicit_deny_reports_no_clause() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "access-list 10 permit 10.0.0.0 0.0.0.255\n".into(),
        )])
        .unwrap();
        let acl = &net.router(nettopo::RouterId(0)).config.access_lists[&10];
        let flow = Flow::ip(addr("192.168.1.1"), addr("10.0.0.1"));
        assert_eq!(acl_verdict(acl, &flow), (false, None));
    }

    #[test]
    fn verdicts_enumerate_applications() {
        let net = net_with_filter();
        let pim = Flow {
            proto: FlowProto::Pim,
            ..Flow::ip(addr("10.0.0.5"), addr("10.0.1.5"))
        };
        let verdicts = flow_verdicts(&net, &pim);
        assert_eq!(verdicts.len(), 1);
        assert!(!verdicts[0].permitted);
        assert_eq!(verdicts[0].direction, FilterDirection::In);
        assert!(dropped_anywhere(&net, &pim));
        let web = Flow::tcp(addr("10.0.0.5"), addr("10.0.1.5"), 80);
        assert!(!dropped_anywhere(&net, &web));
    }

    #[test]
    fn ip_probe_does_not_match_port_clauses() {
        let net = net_with_filter();
        // A portless IP probe must not be judged by the tcp/445 clause;
        // it falls through to `permit ip any any`.
        let probe = Flow::ip(addr("10.0.0.5"), addr("10.0.1.5"));
        assert!(!dropped_anywhere(&net, &probe));
    }

    #[test]
    fn flow_proto_parse() {
        assert_eq!(FlowProto::parse("TCP"), Some(FlowProto::Tcp));
        assert_eq!(FlowProto::parse("pim"), Some(FlowProto::Pim));
        assert_eq!(FlowProto::parse("ospf"), None);
    }
}
