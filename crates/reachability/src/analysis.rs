//! Route propagation over the instance graph.

use std::collections::{BTreeMap, BTreeSet};

use ioscfg::RedistSource;
use netaddr::{Prefix, PrefixSet};
use nettopo::Network;
use routing_model::{
    Adjacencies, InstanceId, InstanceNode, Instances, ProcKey, Processes, SessionScope,
};

use crate::filter::{acl_prefix_set, resolve_route_map_filter, RouteFilter};
use crate::routeset::TaggedRoutes;

/// A directed route-flow edge with its compiled policy.
#[derive(Clone, Debug)]
struct FlowEdge {
    from: InstanceNode,
    to: InstanceNode,
    filter: RouteFilter,
    /// Tag stamped on routes crossing this edge (`redistribute ... tag N`).
    retag: Option<u32>,
}

/// Prediction of the route load an instance must carry (Section 6.2:
/// "the maximum load on the OSPF processes can be predicted").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadPrediction {
    /// The instance.
    pub instance: InstanceId,
    /// Routers in the instance (each carries the full route load).
    pub routers: usize,
    /// Maximum external routes injectable, as a minimal prefix count.
    /// `None` when a default route (or unfiltered full space) can enter,
    /// making the bound meaningless.
    pub max_external_routes: Option<usize>,
}

/// The static reachability analysis for one network.
pub struct ReachAnalysis<'a> {
    net: &'a Network,
    instances: &'a Instances,
    edges: Vec<FlowEdge>,
    nodes: BTreeSet<InstanceNode>,
    origination: BTreeMap<InstanceId, TaggedRoutes>,
}

impl<'a> ReachAnalysis<'a> {
    /// Compiles the propagation graph.
    pub fn new(
        net: &'a Network,
        procs: &'a Processes,
        adj: &'a Adjacencies,
        instances: &'a Instances,
    ) -> ReachAnalysis<'a> {
        let mut nodes: BTreeSet<InstanceNode> = instances
            .list
            .iter()
            .map(|i| InstanceNode::Instance(i.id))
            .collect();
        let mut edges = Vec::new();
        let mut origination: BTreeMap<InstanceId, TaggedRoutes> = BTreeMap::new();

        // --- Origination ---
        for p in &procs.list {
            let Some(inst) = instances.instance_of(p.key) else { continue };
            let entry = origination.entry(inst).or_default();
            let cfg = &net.router(p.key.router).config;

            // Covered interface subnets are carried natively.
            for &idx in &p.covered_ifaces {
                if let Some(a) = cfg.interfaces[idx].address {
                    entry.merge(&TaggedRoutes::untagged(PrefixSet::from_prefix(
                        a.subnet(),
                    )));
                }
            }
            // BGP `network` statements.
            if let Proto::Bgp(_) = p.key.proto {
                if let Some(bgp) = &cfg.bgp {
                    for (addr, mask) in &bgp.networks {
                        let prefix = match mask {
                            Some(m) => Prefix::from_mask(*addr, *m),
                            None => ioscfg::classful_prefix(*addr),
                        };
                        entry.merge(&TaggedRoutes::untagged(PrefixSet::from_prefix(
                            prefix,
                        )));
                    }
                }
            }
            // Redistribution of the local RIB (connected / static).
            for r in &p.redistributes {
                let seeds = match r.source {
                    RedistSource::Connected => {
                        let mut set = PrefixSet::empty();
                        for iface in &cfg.interfaces {
                            for s in iface.subnets() {
                                set = set.union(&PrefixSet::from_prefix(s));
                            }
                        }
                        set
                    }
                    RedistSource::Static => {
                        let mut set = PrefixSet::empty();
                        for sr in &cfg.static_routes {
                            set = set.union(&PrefixSet::from_prefix(sr.prefix()));
                        }
                        set
                    }
                    _ => continue,
                };
                let filter = match &r.route_map {
                    Some(name) => resolve_route_map_filter(cfg, name),
                    None => RouteFilter::Pass,
                };
                let mut routes = filter.apply(&TaggedRoutes::untagged(seeds));
                if let Some(tag) = r.tag {
                    routes = routes.retag(tag);
                }
                entry.merge(&routes);
            }
        }

        // --- Inter-instance redistribution edges ---
        for p in &procs.list {
            let Some(to_inst) = instances.instance_of(p.key) else { continue };
            let cfg = &net.router(p.key.router).config;
            for r in &p.redistributes {
                let Some(src_key) = procs.resolve_source(p.key.router, r.source) else {
                    continue;
                };
                let Some(from_inst) = instances.instance_of(src_key) else { continue };
                if from_inst == to_inst {
                    continue;
                }
                let filter = match &r.route_map {
                    Some(name) => resolve_route_map_filter(cfg, name),
                    None => RouteFilter::Pass,
                };
                edges.push(FlowEdge {
                    from: InstanceNode::Instance(from_inst),
                    to: InstanceNode::Instance(to_inst),
                    filter,
                    retag: r.tag,
                });
            }
        }

        // --- BGP session edges ---
        for s in &adj.bgp {
            match s.scope {
                SessionScope::Ibgp => {}
                SessionScope::EbgpInternal => {
                    let (Some(a), Some(peer_key)) =
                        (instances.instance_of(s.local), s.peer)
                    else {
                        continue;
                    };
                    let Some(b) = instances.instance_of(peer_key) else { continue };
                    // local → peer: local out-policy, then peer in-policy.
                    let peer_addr_of_local = session_local_addr(net, s.local, peer_key);
                    edges.push(FlowEdge {
                        from: InstanceNode::Instance(a),
                        to: InstanceNode::Instance(b),
                        filter: neighbor_filter(net, s.local, s.peer_addr, Dir::Out).then(
                            neighbor_filter_opt(net, peer_key, peer_addr_of_local, Dir::In),
                        ),
                        retag: None,
                    });
                    edges.push(FlowEdge {
                        from: InstanceNode::Instance(b),
                        to: InstanceNode::Instance(a),
                        filter: neighbor_filter_opt(net, peer_key, peer_addr_of_local, Dir::Out)
                            .then(neighbor_filter(net, s.local, s.peer_addr, Dir::In)),
                        retag: None,
                    });
                }
                SessionScope::EbgpExternal => {
                    let Some(a) = instances.instance_of(s.local) else { continue };
                    let ext = InstanceNode::ExternalAs(s.remote_as);
                    nodes.insert(ext);
                    edges.push(FlowEdge {
                        from: ext,
                        to: InstanceNode::Instance(a),
                        filter: neighbor_filter(net, s.local, s.peer_addr, Dir::In),
                        retag: None,
                    });
                    edges.push(FlowEdge {
                        from: InstanceNode::Instance(a),
                        to: ext,
                        filter: neighbor_filter(net, s.local, s.peer_addr, Dir::Out),
                        retag: None,
                    });
                }
            }
        }

        // --- IGP edges to the external world ---
        let mut seen: BTreeSet<InstanceId> = BTreeSet::new();
        for (key, _) in &adj.igp_external {
            let Some(inst) = instances.instance_of(*key) else { continue };
            if !seen.insert(inst) {
                continue;
            }
            nodes.insert(InstanceNode::ExternalWorld);
            edges.push(FlowEdge {
                from: InstanceNode::ExternalWorld,
                to: InstanceNode::Instance(inst),
                filter: igp_distribute_filter(net, procs, instances, inst, Dir::In),
                retag: None,
            });
            edges.push(FlowEdge {
                from: InstanceNode::Instance(inst),
                to: InstanceNode::ExternalWorld,
                filter: igp_distribute_filter(net, procs, instances, inst, Dir::Out),
                retag: None,
            });
        }

        ReachAnalysis { net, instances, edges, nodes, origination }
    }

    /// Routes an instance originates (connected subnets, BGP networks,
    /// redistributed local RIB entries).
    pub fn origination(&self, id: InstanceId) -> TaggedRoutes {
        self.origination.get(&id).cloned().unwrap_or_default()
    }

    /// Propagates `seed` routes from `origin` to a fixpoint; returns the
    /// routes visible at every node.
    pub fn propagate(
        &self,
        origin: InstanceNode,
        seed: TaggedRoutes,
    ) -> BTreeMap<InstanceNode, TaggedRoutes> {
        let mut state: BTreeMap<InstanceNode, TaggedRoutes> = BTreeMap::new();
        state.entry(origin).or_default().merge(&seed);
        // Monotone fixpoint; the round cap is a safety net (tag rewrites
        // can only produce tags present in some `set tag`, so the lattice
        // is finite).
        let max_rounds = 4 * self.edges.len().max(4);
        for _ in 0..max_rounds {
            let mut changed = false;
            for e in &self.edges {
                let Some(input) = state.get(&e.from).cloned() else { continue };
                if input.is_empty() {
                    continue;
                }
                let mut out = e.filter.apply(&input);
                if let Some(tag) = e.retag {
                    out = out.retag(tag);
                }
                if out.is_empty() {
                    continue;
                }
                if state.entry(e.to).or_default().merge(&out) {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        state
    }

    /// The external routes (from any external AS or the external world)
    /// that can appear in `id`'s RIBs.
    pub fn external_routes_entering(&self, id: InstanceId) -> PrefixSet {
        let mut total = PrefixSet::empty();
        for node in &self.nodes {
            if matches!(node, InstanceNode::Instance(_)) {
                continue;
            }
            let state = self.propagate(*node, TaggedRoutes::untagged(PrefixSet::all()));
            if let Some(routes) = state.get(&InstanceNode::Instance(id)) {
                total = total.union(&routes.all_prefixes());
            }
        }
        total
    }

    /// The routes this network can announce to a given external AS.
    pub fn routes_announced_to(&self, asn: u32) -> PrefixSet {
        let mut total = PrefixSet::empty();
        for inst in &self.instances.list {
            let seed = self.origination(inst.id);
            if seed.is_empty() {
                continue;
            }
            let state = self.propagate(InstanceNode::Instance(inst.id), seed);
            if let Some(routes) = state.get(&InstanceNode::ExternalAs(asn)) {
                total = total.union(&routes.all_prefixes());
            }
        }
        total
    }

    /// Instances that have an interface inside `block` (where those hosts
    /// attach to the routing design).
    pub fn instances_attached_to(&self, block: Prefix) -> Vec<InstanceId> {
        let mut out = Vec::new();
        for inst in &self.instances.list {
            let orig = self.origination(inst.id);
            if orig.intersects_prefix(block) {
                out.push(inst.id);
            }
        }
        out
    }

    /// Can hosts in `src_block` send packets that reach hosts in
    /// `dst_block`? True when routes toward `dst_block` propagate to an
    /// instance serving `src_block` (the paper's route-policy middle
    /// ground: no route ⟹ no reachability).
    pub fn block_reachable(&self, src_block: Prefix, dst_block: Prefix) -> bool {
        let dst_set = PrefixSet::from_prefix(dst_block);
        let src_instances = self.instances_attached_to(src_block);
        if src_instances.is_empty() {
            return false;
        }
        for dst_inst in self.instances_attached_to(dst_block) {
            if src_instances.contains(&dst_inst) {
                return true; // same instance: intra-instance routing
            }
            let seed = self.origination(dst_inst).restrict(&dst_set);
            if seed.is_empty() {
                continue;
            }
            let state = self.propagate(InstanceNode::Instance(dst_inst), seed);
            for src_inst in &src_instances {
                if let Some(routes) = state.get(&InstanceNode::Instance(*src_inst)) {
                    if routes.intersects_prefix(dst_block) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Predicts the maximum external-route load on an instance.
    pub fn load_prediction(&self, id: InstanceId) -> LoadPrediction {
        let external = self.external_routes_entering(id);
        let max_external_routes = if external.covers_prefix(Prefix::DEFAULT) {
            None
        } else {
            Some(external.to_prefixes().len())
        };
        LoadPrediction {
            instance: id,
            routers: self.instances.get(id).router_count(),
            max_external_routes,
        }
    }

    /// The underlying network (handy for callers composing reports).
    pub fn network(&self) -> &Network {
        self.net
    }
}

use routing_model::Proto;

/// Direction of a per-neighbor policy.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    In,
    Out,
}

/// The local side's address a peer would configure as its neighbor —
/// needed to look up the peer's per-neighbor policies for this session.
fn session_local_addr(
    net: &Network,
    local: ProcKey,
    peer: ProcKey,
) -> Option<netaddr::Addr> {
    let peer_cfg = &net.router(peer.router).config;
    let local_cfg = &net.router(local.router).config;
    let local_addrs: BTreeSet<netaddr::Addr> = local_cfg
        .interfaces
        .iter()
        .flat_map(|i| i.address.iter().chain(i.secondary.iter()))
        .map(|a| a.addr)
        .collect();
    peer_cfg
        .bgp
        .as_ref()?
        .neighbors
        .iter()
        .map(|n| n.addr)
        .find(|a| local_addrs.contains(a))
}

/// Per-neighbor policy of `local` toward `peer_addr`.
fn neighbor_filter(
    net: &Network,
    local: ProcKey,
    peer_addr: netaddr::Addr,
    dir: Dir,
) -> RouteFilter {
    let cfg = &net.router(local.router).config;
    let Some(bgp) = &cfg.bgp else { return RouteFilter::Pass };
    let Some(n) = bgp.neighbors.iter().find(|n| n.addr == peer_addr) else {
        return RouteFilter::Pass;
    };
    let (dl, rm) = match dir {
        Dir::In => (n.distribute_in, &n.route_map_in),
        Dir::Out => (n.distribute_out, &n.route_map_out),
    };
    let mut filter = RouteFilter::Pass;
    if let Some(acl) = dl {
        filter = filter.then(match acl_prefix_set(cfg, acl) {
            Some(set) => RouteFilter::Restrict(set),
            None => RouteFilter::Block,
        });
    }
    if let Some(name) = rm {
        filter = filter.then(resolve_route_map_filter(cfg, name));
    }
    filter
}

/// Like [`neighbor_filter`] but tolerant of a missing address (one-sided
/// sessions).
fn neighbor_filter_opt(
    net: &Network,
    local: ProcKey,
    peer_addr: Option<netaddr::Addr>,
    dir: Dir,
) -> RouteFilter {
    match peer_addr {
        Some(addr) => neighbor_filter(net, local, addr, dir),
        None => RouteFilter::Pass,
    }
}

/// Global (interface-unscoped) distribute lists of an IGP instance's
/// member processes, unioned. Interface-scoped lists are conservatively
/// ignored (they admit at most what the global list admits in our
/// corpora).
fn igp_distribute_filter(
    net: &Network,
    procs: &Processes,
    instances: &Instances,
    id: InstanceId,
    dir: Dir,
) -> RouteFilter {
    let inst = instances.get(id);
    let mut sets: Vec<PrefixSet> = Vec::new();
    let mut any_unfiltered = false;
    for key in &inst.processes {
        let Some(proc_) = procs.get(*key) else { continue };
        let cfg = &net.router(key.router).config;
        let lists = collect_distribute_lists(cfg, key.proto, dir);
        let global: Vec<u32> = lists
            .iter()
            .filter(|dl| dl.interface.is_none())
            .map(|dl| dl.acl)
            .collect();
        if global.is_empty() {
            any_unfiltered = true;
            continue;
        }
        for acl in global {
            if let Some(set) = acl_prefix_set(cfg, acl) {
                sets.push(set);
            }
        }
        let _ = proc_;
    }
    if any_unfiltered || sets.is_empty() {
        return RouteFilter::Pass;
    }
    let mut union = PrefixSet::empty();
    for s in sets {
        union = union.union(&s);
    }
    RouteFilter::Restrict(union)
}

fn collect_distribute_lists(
    cfg: &ioscfg::RouterConfig,
    proto: Proto,
    dir: Dir,
) -> Vec<ioscfg::DistributeList> {
    match proto {
        Proto::Ospf(id) => cfg
            .ospf
            .iter()
            .find(|p| p.id == id)
            .map(|p| {
                if dir == Dir::In {
                    p.distribute_in.clone()
                } else {
                    p.distribute_out.clone()
                }
            })
            .unwrap_or_default(),
        Proto::Eigrp(asn) | Proto::Igrp(asn) => cfg
            .eigrp
            .iter()
            .find(|p| p.asn == asn)
            .map(|p| {
                if dir == Dir::In {
                    p.distribute_in.clone()
                } else {
                    p.distribute_out.clone()
                }
            })
            .unwrap_or_default(),
        Proto::Rip => cfg
            .rip
            .as_ref()
            .map(|p| {
                if dir == Dir::In {
                    p.distribute_in.clone()
                } else {
                    p.distribute_out.clone()
                }
            })
            .unwrap_or_default(),
        Proto::Bgp(_) => Vec::new(),
    }
}
