//! Sets of routes with administrative tags.

use std::collections::BTreeMap;

use netaddr::{Prefix, PrefixSet};

/// A set of routes, partitioned by administrative tag.
///
/// `None` holds untagged routes. Within one tag, routes are an exact
/// [`PrefixSet`]. This is the value propagated across instance-graph edges
/// during reachability analysis; tags matter because route maps can match
/// and set them (net5's IBGP-mesh-avoidance trick).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaggedRoutes {
    routes: BTreeMap<Option<u32>, PrefixSet>,
}

impl TaggedRoutes {
    /// The empty route set.
    pub fn empty() -> TaggedRoutes {
        TaggedRoutes::default()
    }

    /// Untagged routes covering `set`.
    pub fn untagged(set: PrefixSet) -> TaggedRoutes {
        TaggedRoutes::with_tag(None, set)
    }

    /// Routes covering `set` carrying `tag`.
    pub fn with_tag(tag: Option<u32>, set: PrefixSet) -> TaggedRoutes {
        let mut routes = BTreeMap::new();
        if !set.is_empty() {
            routes.insert(tag, set);
        }
        TaggedRoutes { routes }
    }

    /// True if no routes are present.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Union with another route set. Returns true if `self` grew (used as
    /// the fixpoint test during propagation).
    pub fn merge(&mut self, other: &TaggedRoutes) -> bool {
        let mut grew = false;
        for (tag, set) in &other.routes {
            let slot = self.routes.entry(*tag).or_insert_with(PrefixSet::empty);
            let merged = slot.union(set);
            if &merged != slot {
                *slot = merged;
                grew = true;
            }
        }
        grew
    }

    /// All routes regardless of tag, as one prefix set.
    pub fn all_prefixes(&self) -> PrefixSet {
        let mut out = PrefixSet::empty();
        for set in self.routes.values() {
            out = out.union(set);
        }
        out
    }

    /// Routes carrying a specific tag.
    pub fn tagged(&self, tag: Option<u32>) -> PrefixSet {
        self.routes.get(&tag).cloned().unwrap_or_else(PrefixSet::empty)
    }

    /// True if any route, whatever its tag, covers an address of `p`.
    /// Allocation-free (unlike `all_prefixes().intersection(..)`): each
    /// tag class answers with a binary search.
    pub fn intersects_prefix(&self, p: Prefix) -> bool {
        self.routes.values().any(|s| s.intersects_prefix(p))
    }

    /// Iterates `(tag, set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Option<u32>, &PrefixSet)> {
        self.routes.iter().map(|(t, s)| (*t, s))
    }

    /// Restricts every tag class to `set` (intersection), dropping empties.
    pub fn restrict(&self, set: &PrefixSet) -> TaggedRoutes {
        let mut out = TaggedRoutes::empty();
        for (tag, routes) in &self.routes {
            let restricted = routes.intersection(set);
            if !restricted.is_empty() {
                out.routes.insert(*tag, restricted);
            }
        }
        out
    }

    /// Removes `set` from every tag class.
    pub fn subtract(&self, set: &PrefixSet) -> TaggedRoutes {
        let mut out = TaggedRoutes::empty();
        for (tag, routes) in &self.routes {
            let remaining = routes.difference(set);
            if !remaining.is_empty() {
                out.routes.insert(*tag, remaining);
            }
        }
        out
    }

    /// Keeps only routes whose tag is in `tags`.
    pub fn restrict_tags(&self, tags: &[u32]) -> TaggedRoutes {
        let mut out = TaggedRoutes::empty();
        for (tag, routes) in &self.routes {
            if let Some(t) = tag {
                if tags.contains(t) {
                    out.routes.insert(*tag, routes.clone());
                }
            }
        }
        out
    }

    /// Rewrites every route's tag to `tag`.
    pub fn retag(&self, tag: u32) -> TaggedRoutes {
        TaggedRoutes::with_tag(Some(tag), self.all_prefixes())
    }

    /// Total number of addresses covered (for sanity checks).
    pub fn size(&self) -> u64 {
        self.all_prefixes().size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaddr::Prefix;

    fn set(prefixes: &[&str]) -> PrefixSet {
        prefixes.iter().map(|s| s.parse::<Prefix>().unwrap()).collect()
    }

    #[test]
    fn merge_reports_growth() {
        let mut r = TaggedRoutes::untagged(set(&["10.0.0.0/8"]));
        assert!(!r.merge(&TaggedRoutes::untagged(set(&["10.1.0.0/16"]))));
        assert!(r.merge(&TaggedRoutes::untagged(set(&["11.0.0.0/8"]))));
        assert!(r.merge(&TaggedRoutes::with_tag(Some(7), set(&["10.0.0.0/8"]))));
        assert_eq!(r.tagged(Some(7)), set(&["10.0.0.0/8"]));
    }

    #[test]
    fn restrict_and_subtract() {
        let r = TaggedRoutes::with_tag(Some(1), set(&["10.0.0.0/8", "192.168.0.0/16"]));
        let only10 = r.restrict(&set(&["10.0.0.0/8"]));
        assert_eq!(only10.all_prefixes(), set(&["10.0.0.0/8"]));
        let no10 = r.subtract(&set(&["10.0.0.0/8"]));
        assert_eq!(no10.all_prefixes(), set(&["192.168.0.0/16"]));
        assert_eq!(no10.tagged(Some(1)), set(&["192.168.0.0/16"]));
    }

    #[test]
    fn tag_restriction_and_retag() {
        let mut r = TaggedRoutes::with_tag(Some(1), set(&["10.0.0.0/8"]));
        r.merge(&TaggedRoutes::with_tag(Some(2), set(&["11.0.0.0/8"])));
        r.merge(&TaggedRoutes::untagged(set(&["12.0.0.0/8"])));
        let only1 = r.restrict_tags(&[1]);
        assert_eq!(only1.all_prefixes(), set(&["10.0.0.0/8"]));
        let retagged = r.retag(9);
        assert_eq!(retagged.tagged(Some(9)).size(), 3 << 24);
        assert!(retagged.tagged(Some(1)).is_empty());
    }

    #[test]
    fn empty_sets_are_dropped() {
        let r = TaggedRoutes::untagged(PrefixSet::empty());
        assert!(r.is_empty());
        let r2 = TaggedRoutes::untagged(set(&["10.0.0.0/8"]));
        assert!(r2.restrict(&set(&["192.0.2.0/24"])).is_empty());
    }
}
