//! Static reachability analysis (paper Section 6.2 and the companion tech
//! report CMU-CS-04-146, "On static reachability analysis of IP networks").
//!
//! The paper's "middle ground" avoids modelling per-router route selection:
//! routes are propagated over the *routing instance graph*, with the
//! policies on each edge (route maps, distribute lists, tags) interpreted
//! as set transformers over [`netaddr::PrefixSet`]s. The analysis answers:
//!
//! - which external routes can enter a given instance (net15's ingress
//!   policies A1/A3/A5 — and hence the absence of a default route);
//! - whether hosts in one address block can reach hosts in another
//!   (net15's site isolation: A2 ∩ A5 = A2 ∩ A3 = A4 ∩ A1 = ∅);
//! - an upper bound on the number of external routes injected into an IGP
//!   instance — the OSPF load prediction of Section 6.2.
//!
//! Routes are modelled as `(prefix set, tag)` pairs ([`TaggedRoutes`])
//! because tag-based route selection is exactly the mechanism net5 uses to
//! avoid an IBGP mesh (Section 6.1): tags are set at redistribution
//! points, carried by the IGP, and matched downstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod filter;
pub mod packet;
mod routeset;

pub use analysis::{LoadPrediction, ReachAnalysis};
pub use filter::{resolve_route_map_filter, RouteFilter, RouteMapClauseFilter};
pub use packet::{
    acl_verdict, dropped_anywhere, flow_verdicts, FilterDirection, FilterVerdict, Flow,
    FlowProto,
};
pub use routeset::TaggedRoutes;
