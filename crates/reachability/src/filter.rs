//! Route filters as set transformers.
//!
//! Every policy mechanism the corpus uses to control route exchange —
//! numbered access lists behind `distribute-list`, and route maps with
//! `match ip address` / `match tag` / `set tag` — is compiled to a
//! [`RouteFilter`] that maps an input [`TaggedRoutes`] to the routes that
//! survive.

use ioscfg::{AclAction, RmMatch, RmSet, RouterConfig};
use netaddr::PrefixSet;

use crate::routeset::TaggedRoutes;

/// One resolved route-map clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMapClauseFilter {
    /// Permit or deny.
    pub action: AclAction,
    /// Address restriction (`match ip address`), `None` = match all.
    pub match_addrs: Option<PrefixSet>,
    /// Tag restriction (`match tag`), `None` = match all.
    pub match_tags: Option<Vec<u32>>,
    /// Tag rewrite on permit (`set tag`).
    pub set_tag: Option<u32>,
}

/// A compiled route filter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteFilter {
    /// No policy: everything passes.
    Pass,
    /// Nothing passes (e.g. a reference to an undefined ACL — IOS's
    /// distribute-list treats a missing list as permit-any, but a missing
    /// list in our corpora indicates a generator bug, so we fail closed).
    Block,
    /// A prefix-set restriction (distribute lists).
    Restrict(PrefixSet),
    /// An ordered route map (first matching clause decides).
    Map(Vec<RouteMapClauseFilter>),
    /// Sequential composition: apply the first filter, then the second.
    Chain(Box<RouteFilter>, Box<RouteFilter>),
}

impl RouteFilter {
    /// Applies the filter.
    pub fn apply(&self, input: &TaggedRoutes) -> TaggedRoutes {
        match self {
            RouteFilter::Pass => input.clone(),
            RouteFilter::Block => TaggedRoutes::empty(),
            RouteFilter::Restrict(set) => input.restrict(set),
            RouteFilter::Map(clauses) => {
                let mut remaining = input.clone();
                let mut out = TaggedRoutes::empty();
                for clause in clauses {
                    // Select the routes this clause matches.
                    let mut matched = remaining.clone();
                    if let Some(tags) = &clause.match_tags {
                        matched = matched.restrict_tags(tags);
                    }
                    if let Some(addrs) = &clause.match_addrs {
                        matched = matched.restrict(addrs);
                    }
                    if matched.is_empty() {
                        continue;
                    }
                    // First match wins: remove from further consideration.
                    remaining = remaining.subtract(&matched.all_prefixes());
                    if clause.action == AclAction::Permit {
                        let result = match clause.set_tag {
                            Some(t) => matched.retag(t),
                            None => matched,
                        };
                        out.merge(&result);
                    }
                }
                // Implicit deny at the end of a route map.
                out
            }
            RouteFilter::Chain(a, b) => b.apply(&a.apply(input)),
        }
    }

    /// Composes two filters (apply `self`, then `next`).
    pub fn then(self, next: RouteFilter) -> RouteFilter {
        match (self, next) {
            (RouteFilter::Pass, f) | (f, RouteFilter::Pass) => f,
            (RouteFilter::Block, _) | (_, RouteFilter::Block) => RouteFilter::Block,
            (RouteFilter::Restrict(a), RouteFilter::Restrict(b)) => {
                RouteFilter::Restrict(a.intersection(&b))
            }
            // Route maps do not compose algebraically with restrictions
            // in general; keep both and apply in sequence.
            (a, b) => RouteFilter::Chain(Box::new(a), Box::new(b)),
        }
    }
}

/// Resolves an ACL on a router to the prefix set it permits.
pub fn acl_prefix_set(cfg: &RouterConfig, acl_id: u32) -> Option<PrefixSet> {
    cfg.access_lists.get(&acl_id).map(|acl| acl.permitted_source_set())
}

/// Resolves a named route map on a router into a compiled filter.
///
/// Unknown ACL references inside `match ip address` fail closed (match
/// nothing); an unknown route-map name yields [`RouteFilter::Block`] —
/// IOS drops everything when a referenced route map does not exist.
pub fn resolve_route_map_filter(cfg: &RouterConfig, name: &str) -> RouteFilter {
    let Some(map) = cfg.route_maps.get(name) else {
        return RouteFilter::Block;
    };
    let clauses = map
        .clauses
        .iter()
        .map(|clause| {
            let mut match_addrs: Option<PrefixSet> = None;
            let mut match_tags: Option<Vec<u32>> = None;
            for m in &clause.matches {
                match m {
                    RmMatch::IpAddress(acls) => {
                        let mut set = PrefixSet::empty();
                        for id in acls {
                            if let Some(s) = acl_prefix_set(cfg, *id) {
                                set = set.union(&s);
                            }
                        }
                        match_addrs = Some(set);
                    }
                    RmMatch::Tag(tags) => match_tags = Some(tags.clone()),
                    // AS-path and community matches are outside the static
                    // model; treat them as match-all so the filter is an
                    // over-approximation (safe for reachability bounds).
                    RmMatch::AsPath(_) | RmMatch::Community(_) => {}
                }
            }
            let set_tag = clause.sets.iter().find_map(|s| match s {
                RmSet::Tag(t) => Some(*t),
                _ => None,
            });
            RouteMapClauseFilter { action: clause.action, match_addrs, match_tags, set_tag }
        })
        .collect();
    RouteFilter::Map(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ioscfg::parse_config;
    use netaddr::Prefix;

    fn set(prefixes: &[&str]) -> PrefixSet {
        prefixes.iter().map(|s| s.parse::<Prefix>().unwrap()).collect()
    }

    #[test]
    fn restrict_filter() {
        let f = RouteFilter::Restrict(set(&["10.0.0.0/8"]));
        let input = TaggedRoutes::untagged(set(&["10.1.0.0/16", "192.168.0.0/16"]));
        assert_eq!(f.apply(&input).all_prefixes(), set(&["10.1.0.0/16"]));
    }

    #[test]
    fn route_map_first_match_and_set_tag() {
        let cfg = parse_config(
            "access-list 4 permit 10.0.0.0 0.255.255.255\n\
             route-map m deny 10\n match ip address 4\n\
             route-map m permit 20\n set tag 99\n",
        )
        .unwrap();
        let f = resolve_route_map_filter(&cfg, "m");
        let input = TaggedRoutes::untagged(set(&["10.1.0.0/16", "192.168.0.0/16"]));
        let out = f.apply(&input);
        // 10/8 space denied by clause 10; the rest permitted and tagged 99.
        assert!(out.tagged(Some(99)).contains("192.168.1.1".parse().unwrap()));
        assert!(!out.all_prefixes().contains("10.1.2.3".parse().unwrap()));
    }

    #[test]
    fn route_map_tag_matching() {
        let cfg = parse_config("route-map m permit 10\n match tag 7\n").unwrap();
        let f = resolve_route_map_filter(&cfg, "m");
        let mut input = TaggedRoutes::with_tag(Some(7), set(&["10.0.0.0/8"]));
        input.merge(&TaggedRoutes::with_tag(Some(8), set(&["11.0.0.0/8"])));
        let out = f.apply(&input);
        assert_eq!(out.all_prefixes(), set(&["10.0.0.0/8"]));
    }

    #[test]
    fn missing_route_map_blocks() {
        let cfg = parse_config("hostname r1\n").unwrap();
        let f = resolve_route_map_filter(&cfg, "nope");
        assert_eq!(f, RouteFilter::Block);
        assert!(f.apply(&TaggedRoutes::untagged(set(&["10.0.0.0/8"]))).is_empty());
    }

    #[test]
    fn implicit_deny_with_no_matching_clause() {
        let cfg = parse_config(
            "access-list 5 permit 10.0.0.0 0.255.255.255\n\
             route-map m permit 10\n match ip address 5\n",
        )
        .unwrap();
        let f = resolve_route_map_filter(&cfg, "m");
        let input = TaggedRoutes::untagged(set(&["192.168.0.0/16"]));
        assert!(f.apply(&input).is_empty());
    }

    #[test]
    fn pass_and_block() {
        let input = TaggedRoutes::untagged(set(&["10.0.0.0/8"]));
        assert_eq!(RouteFilter::Pass.apply(&input), input);
        assert!(RouteFilter::Block.apply(&input).is_empty());
    }
}
