//! A miniature of the paper's net15 case study (Section 6.2, Figure 12):
//! two sites, each with an OSPF instance and a border BGP instance
//! peering with a public AS; ingress/egress policies restrict which
//! routes cross, isolating the sites from each other while giving each
//! site partial external reachability.

use netaddr::{Prefix, PrefixSet};
use nettopo::{ExternalAnalysis, LinkMap, Network};
use reachability::{ReachAnalysis, TaggedRoutes};
use routing_model::{Adjacencies, InstanceNode, Instances, Processes};

fn pfx(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// Left site: hosts in AB2 = 10.2.0.0/16, OSPF + border BGP AS 65001,
/// EBGP to public AS 25286.
///   - A1 (ingress): permit 172.20.0.0/16 (an allowed external block, AB0).
///   - A2 (egress): permit 10.2.0.0/16 (AB2's routes allowed out).
/// Right site: hosts in AB4 = 10.4.0.0/16, OSPF + border BGP AS 65002,
/// EBGP to public AS 12762.
///   - A5 (ingress): permit 172.20.0.0/16 only (NOT 10.2/16!).
///   - A4 (egress): permit 10.4.0.0/16.
/// Site isolation: A2 ∩ A5 = ∅ and A4 ∩ A1 = ∅, so neither site's routes
/// can enter the other even through the public ASes.
fn net15_mini() -> Network {
    let left_border = "\
hostname left-border
interface Serial0
 ip address 192.0.2.1 255.255.255.252
interface Ethernet0
 ip address 10.2.0.1 255.255.255.0
router ospf 1
 network 10.2.0.0 0.0.255.255 area 0
 redistribute bgp 65001 subnets
router bgp 65001
 redistribute ospf 1 route-map egress
 redistribute connected
 neighbor 192.0.2.2 remote-as 25286
 neighbor 192.0.2.2 route-map ingress in
 neighbor 192.0.2.2 route-map egress out
access-list 10 permit 172.20.0.0 0.0.255.255
access-list 20 permit 10.2.0.0 0.0.255.255
route-map ingress permit 10
 match ip address 10
route-map egress permit 10
 match ip address 20
";
    let left_core = "\
hostname left-core
interface Ethernet0
 ip address 10.2.0.2 255.255.255.0
router ospf 1
 network 10.2.0.0 0.0.255.255 area 0
";
    let right_border = "\
hostname right-border
interface Serial0
 ip address 198.51.100.1 255.255.255.252
interface Ethernet0
 ip address 10.4.0.1 255.255.255.0
router ospf 2
 network 10.4.0.0 0.0.255.255 area 0
 redistribute bgp 65002 subnets
router bgp 65002
 redistribute ospf 2 route-map egress
 redistribute connected
 neighbor 198.51.100.2 remote-as 12762
 neighbor 198.51.100.2 route-map ingress in
 neighbor 198.51.100.2 route-map egress out
access-list 10 permit 172.20.0.0 0.0.255.255
access-list 20 permit 10.4.0.0 0.0.255.255
route-map ingress permit 10
 match ip address 10
route-map egress permit 10
 match ip address 20
";
    let right_core = "\
hostname right-core
interface Ethernet0
 ip address 10.4.0.2 255.255.255.0
router ospf 2
 network 10.4.0.0 0.0.255.255 area 0
";
    Network::from_texts(vec![
        ("config1".into(), left_border.into()),
        ("config2".into(), left_core.into()),
        ("config3".into(), right_border.into()),
        ("config4".into(), right_core.into()),
    ])
    .unwrap()
}

struct Built {
    net: Network,
    procs: Processes,
    adj: Adjacencies,
    instances: Instances,
}

fn build() -> Built {
    let net = net15_mini();
    let links = LinkMap::build(&net);
    let external = ExternalAnalysis::build(&net, &links);
    let procs = Processes::extract(&net);
    let adj = Adjacencies::build(&net, &links, &procs, &external);
    let instances = Instances::compute(&procs, &adj);
    Built { net, procs, adj, instances }
}

#[test]
fn structure_matches_figure12() {
    let b = build();
    // Two OSPF instances + two BGP instances.
    assert_eq!(b.instances.len(), 4);
    let reach = ReachAnalysis::new(&b.net, &b.procs, &b.adj, &b.instances);
    let _ = reach;
    // Two public peer ASes.
    let mut ases: Vec<u32> = b
        .adj
        .bgp
        .iter()
        .filter(|s| s.peer.is_none())
        .map(|s| s.remote_as)
        .collect();
    ases.sort_unstable();
    assert_eq!(ases, vec![12762, 25286]);
}

#[test]
fn no_default_route_enters_either_site() {
    let b = build();
    let reach = ReachAnalysis::new(&b.net, &b.procs, &b.adj, &b.instances);
    for inst in &b.instances.list {
        let external = reach.external_routes_entering(inst.id);
        assert!(
            !external.covers_prefix(Prefix::DEFAULT),
            "default route leaked into {}",
            inst.label()
        );
    }
}

#[test]
fn ingress_policy_bounds_external_routes() {
    let b = build();
    let reach = ReachAnalysis::new(&b.net, &b.procs, &b.adj, &b.instances);
    // Each OSPF instance sees exactly the A1/A5-permitted block AB0.
    for inst in b.instances.list.iter().filter(|i| i.asn.is_none()) {
        let external = reach.external_routes_entering(inst.id);
        assert_eq!(
            external,
            PrefixSet::from_prefix(pfx("172.20.0.0/16")),
            "wrong ingress for {}",
            inst.label()
        );
        // Load prediction: 1 external prefix across the instance.
        let load = reach.load_prediction(inst.id);
        assert_eq!(load.max_external_routes, Some(1));
    }
}

#[test]
fn sites_are_mutually_unreachable() {
    let b = build();
    let reach = ReachAnalysis::new(&b.net, &b.procs, &b.adj, &b.instances);
    // AB2 ↔ AB4 isolation (the paper's A2 ∩ A5 = A4 ∩ A1 = ∅ finding).
    assert!(!reach.block_reachable(pfx("10.2.0.0/16"), pfx("10.4.0.0/16")));
    assert!(!reach.block_reachable(pfx("10.4.0.0/16"), pfx("10.2.0.0/16")));
    // Hosts within one site still reach each other.
    assert!(reach.block_reachable(pfx("10.2.0.0/24"), pfx("10.2.0.0/16")));
}

#[test]
fn egress_announces_only_site_blocks() {
    let b = build();
    let reach = ReachAnalysis::new(&b.net, &b.procs, &b.adj, &b.instances);
    let to_left_peer = reach.routes_announced_to(25286);
    assert!(to_left_peer.covers_prefix(pfx("10.2.0.0/24")));
    assert!(!to_left_peer.intersects_prefix(pfx("10.4.0.0/16")));
    let to_right_peer = reach.routes_announced_to(12762);
    assert!(to_right_peer.covers_prefix(pfx("10.4.0.0/24")));
    assert!(!to_right_peer.intersects_prefix(pfx("10.2.0.0/16")));
}

#[test]
fn propagation_is_monotone_and_stable() {
    let b = build();
    let reach = ReachAnalysis::new(&b.net, &b.procs, &b.adj, &b.instances);
    // Propagating the same seed twice yields identical states.
    let seed = TaggedRoutes::untagged(PrefixSet::from_prefix(pfx("172.20.0.0/16")));
    let s1 = reach.propagate(InstanceNode::ExternalAs(25286), seed.clone());
    let s2 = reach.propagate(InstanceNode::ExternalAs(25286), seed);
    assert_eq!(s1, s2);
}
