//! The [`Network`]: one administrative domain's configuration files.

use std::fmt;
use std::path::Path;

use ioscfg::{lex_config, parse_raw, ParseError, RouterConfig};

/// Index of a router within a [`Network`] (stable for the network's life).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub usize);

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One router: its source file name, parsed configuration, and raw size.
#[derive(Clone, Debug)]
pub struct Router {
    /// The configuration file name (`config1`, `config2`, ... in the
    /// paper's anonymized corpora).
    pub file_name: String,
    /// The parsed configuration.
    pub config: RouterConfig,
    /// Number of configuration command lines (Figure 4's metric).
    pub command_lines: usize,
}

impl Router {
    /// A display name: the hostname if present, else the file name.
    pub fn name(&self) -> &str {
        self.config.hostname.as_deref().unwrap_or(&self.file_name)
    }
}

/// How much of a network's input corpus actually made it into the
/// analysis. Real corpora (the paper's 8,035 anonymized configs) carry
/// truncated files, anonymization artifacts, and encoding damage; instead
/// of aborting, the loader quarantines such files and records them here so
/// every downstream consumer can label its numbers as partial.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Configuration files presented to the loader.
    pub total_files: usize,
    /// Files the loader refused to use, in load order. Each has a
    /// matching error-severity diagnostic (`parse-error`, `invalid-utf8`,
    /// `empty-config`, or `worker-panic`) in the network's diagnostics.
    pub quarantined: Vec<String>,
}

impl Coverage {
    /// A fully-covered corpus of `total` files.
    pub fn full(total: usize) -> Coverage {
        Coverage { total_files: total, quarantined: Vec::new() }
    }

    /// Files that parsed and entered the analysis.
    pub fn parsed(&self) -> usize {
        self.total_files - self.quarantined.len()
    }

    /// True when at least one file was quarantined: derived numbers are
    /// computed from a partial corpus and must be labeled as such.
    pub fn degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// Fraction of files quarantined (0.0 on an empty corpus).
    pub fn failure_fraction(&self) -> f64 {
        if self.total_files == 0 {
            0.0
        } else {
            self.quarantined.len() as f64 / self.total_files as f64
        }
    }

    /// True when the quarantine fraction exceeds `budget` — the network
    /// should be dropped from study-level aggregates rather than
    /// contribute numbers dominated by missing data.
    pub fn over_budget(&self, budget: f64) -> bool {
        self.failure_fraction() > budget
    }
}

/// The study-level error budget: the largest quarantined-file fraction a
/// network may carry and still contribute to aggregate tables. Defaults
/// to 0.25; override with the `RD_ERROR_BUDGET` environment variable (a
/// fraction in `[0, 1]`, e.g. `0.1`). Read fresh on every call so tests
/// and harnesses can switch budgets at runtime.
pub fn error_budget() -> f64 {
    if let Ok(text) = std::env::var("RD_ERROR_BUDGET") {
        if let Ok(v) = text.trim().parse::<f64>() {
            if (0.0..=1.0).contains(&v) {
                return v;
            }
        }
    }
    0.25
}

/// A set of router configurations belonging to one network.
#[derive(Clone, Debug, Default)]
pub struct Network {
    /// Routers in load order; [`RouterId`] indexes into this.
    pub routers: Vec<Router>,
    /// Parse-level diagnostics for every router, in load order: unknown
    /// stanzas the tolerant parser skipped, dangling policy references
    /// ([`ioscfg::config_diagnostics`]), and one error-severity entry per
    /// quarantined file. Downstream analyses append their own
    /// design-level diagnostics to a copy of this.
    pub diagnostics: rd_obs::Diagnostics,
    /// Which input files survived into `routers` and which were
    /// quarantined.
    pub coverage: Coverage,
}

/// Error loading a network from disk or text.
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A configuration failed to parse; the file name is attached.
    ///
    /// Per-file parse failures are now quarantined into diagnostics
    /// rather than aborting the load; this variant remains for callers
    /// that still construct it (and for exhaustive matches).
    Parse {
        /// The offending file.
        file: String,
        /// The underlying parse error.
        error: ParseError,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { file, error } => write!(f, "{file}: {error}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> LoadError {
        LoadError::Io(e)
    }
}

/// Per-file outcome of the parallel lex + parse stage.
#[derive(Clone)]
enum FileOutcome {
    Parsed { config: Box<RouterConfig>, command_lines: usize, diags: Vec<rd_obs::Diagnostic> },
    Quarantined { diag: rd_obs::Diagnostic },
}

/// One file's parse product, decoupled from [`Network`] assembly: the
/// result of the lex + parse worker for a single `(file_name, bytes)`
/// input. [`Network::parse_files`] produces these and
/// [`Network::from_parsed`] assembles them, which lets an incremental
/// caller cache the products of unchanged files and re-parse only what a
/// delta touched while building through the exact same assembly path as
/// a cold load.
#[derive(Clone)]
pub struct PreparsedFile {
    file_name: String,
    outcome: FileOutcome,
}

impl PreparsedFile {
    /// The input file this product came from.
    pub fn file_name(&self) -> &str {
        &self.file_name
    }

    /// True when the file was quarantined rather than parsed.
    pub fn quarantined(&self) -> bool {
        matches!(self.outcome, FileOutcome::Quarantined { .. })
    }
}

fn quarantine_diag(file: &str, code: &'static str, message: String) -> rd_obs::Diagnostic {
    rd_obs::Diagnostic {
        file: file.to_string(),
        line: 0,
        severity: rd_obs::Severity::Error,
        code,
        message,
    }
}

impl Network {
    /// Builds a network from `(file_name, config_text)` pairs.
    ///
    /// Files are lexed and parsed in parallel (`RD_THREADS` workers; see
    /// [`rd_par::thread_count`]). Results keep input order; files that
    /// fail to parse are **quarantined** — recorded in
    /// [`coverage`](Network::coverage) with an error-severity diagnostic —
    /// and the network is built from the surviving subset, so one
    /// corrupt file never aborts a whole corpus. The thread count never
    /// changes observable behavior.
    pub fn from_texts<I>(texts: I) -> Result<Network, LoadError>
    where
        I: IntoIterator<Item = (String, String)>,
    {
        Ok(Network::from_bytes_list(
            texts.into_iter().map(|(name, text)| (name, text.into_bytes())).collect(),
        ))
    }

    /// Builds a network from raw `(file_name, bytes)` pairs — the
    /// byte-level entry point used by [`from_dir`](Network::from_dir) and
    /// the chaos harness. Quarantines (never aborts on):
    ///
    /// - zero-byte files → `empty-config`
    /// - non-UTF-8 files → `invalid-utf8`
    /// - hard parse failures → `parse-error`
    /// - a panicking parse worker → `worker-panic` (caught per item by
    ///   `rd_par::try_par_map_cost`, never unwinding the caller)
    ///
    /// Corpora smaller than the `rd_par::cost_floor` (in total bytes)
    /// parse inline on the caller's thread; the output is identical.
    pub fn from_bytes_list(files: Vec<(String, Vec<u8>)>) -> Network {
        Network::from_parsed(Network::parse_files(&files))
    }

    /// Runs the parallel lex + parse stage alone, yielding one
    /// [`PreparsedFile`] per input in input order. A worker panic
    /// becomes that file's `worker-panic` quarantine, exactly as in
    /// [`from_bytes_list`](Network::from_bytes_list) (which is just
    /// this stage followed by [`from_parsed`](Network::from_parsed)).
    pub fn parse_files(files: &[(String, Vec<u8>)]) -> Vec<PreparsedFile> {
        // Cost = corpus bytes: tiny fixtures parse inline (thread setup
        // would dominate), real corpora fan out (see `rd_par::cost_floor`).
        let parse_cost: u64 = files.iter().map(|(_, b)| b.len() as u64).sum();
        let outcomes = rd_par::try_par_map_cost(parse_cost, files, |_, (file_name, bytes)| {
            if bytes.is_empty() {
                return FileOutcome::Quarantined {
                    diag: quarantine_diag(
                        file_name,
                        "empty-config",
                        "configuration file is empty (quarantined)".to_string(),
                    ),
                };
            }
            let text = match std::str::from_utf8(bytes) {
                Ok(t) => t,
                Err(e) => {
                    return FileOutcome::Quarantined {
                        diag: quarantine_diag(
                            file_name,
                            "invalid-utf8",
                            format!("configuration is not valid UTF-8 ({e}); quarantined"),
                        ),
                    }
                }
            };
            let raw = lex_config(text);
            match parse_raw(&raw) {
                Ok(config) => {
                    let diags = ioscfg::config_diagnostics(file_name, &config);
                    rd_obs::trace::event(
                        "parse.file",
                        &[
                            ("file", file_name.as_str().into()),
                            ("lines", raw.command_lines.into()),
                            ("unrecognized", config.unparsed.len().into()),
                            ("diagnostics", diags.len().into()),
                        ],
                    );
                    FileOutcome::Parsed {
                        config: Box::new(config),
                        command_lines: raw.command_lines,
                        diags,
                    }
                }
                Err(error) => FileOutcome::Quarantined {
                    diag: quarantine_diag(
                        file_name,
                        "parse-error",
                        format!("{error}; file quarantined"),
                    ),
                },
            }
        });
        files
            .iter()
            .zip(outcomes)
            .map(|((file_name, _), outcome)| {
                let outcome = outcome.unwrap_or_else(|panic_msg| FileOutcome::Quarantined {
                    diag: quarantine_diag(
                        file_name,
                        "worker-panic",
                        format!("parse worker panicked: {panic_msg}; file quarantined"),
                    ),
                });
                PreparsedFile { file_name: file_name.clone(), outcome }
            })
            .collect()
    }

    /// Assembles a network from per-file parse products, in their given
    /// order. This is the assembly half of
    /// [`from_bytes_list`](Network::from_bytes_list); callers that cache
    /// [`PreparsedFile`]s (the incremental engine) splice cached and
    /// fresh products together and get a network byte-for-byte identical
    /// to a cold load of the same inputs.
    pub fn from_parsed(parsed: Vec<PreparsedFile>) -> Network {
        let mut routers = Vec::with_capacity(parsed.len());
        let mut diagnostics = rd_obs::Diagnostics::new();
        let mut coverage = Coverage::full(parsed.len());
        let mut total_lines = 0u64;
        let mut unrecognized = 0u64;
        for PreparsedFile { file_name, outcome } in parsed {
            match outcome {
                FileOutcome::Parsed { config, command_lines, diags } => {
                    total_lines += command_lines as u64;
                    unrecognized += config.unparsed.len() as u64;
                    rd_obs::metrics::histogram_record(
                        "parse.file_lines",
                        command_lines as u64,
                        &[16, 64, 256, 1024, 4096],
                    );
                    diagnostics.extend(diags);
                    routers.push(Router { file_name, config: *config, command_lines });
                }
                FileOutcome::Quarantined { diag } => {
                    rd_obs::trace::event(
                        "parse.quarantine",
                        &[("file", file_name.as_str().into()), ("code", diag.code.into())],
                    );
                    diagnostics.push(diag);
                    coverage.quarantined.push(file_name);
                }
            }
        }
        rd_obs::metrics::counter_add("parse.files", routers.len() as u64);
        rd_obs::metrics::counter_add("parse.quarantined", coverage.quarantined.len() as u64);
        rd_obs::metrics::counter_add("parse.lines", total_lines);
        rd_obs::metrics::counter_add("parse.unrecognized_lines", unrecognized);
        Network { routers, diagnostics, coverage }
    }

    /// Loads every file in a directory as a configuration, in file-name
    /// order (the paper's corpora are directories of `config1..configN`).
    /// Files are read as raw bytes so encoding damage is quarantined (see
    /// [`from_bytes_list`](Network::from_bytes_list)) instead of
    /// surfacing as an opaque I/O error.
    pub fn from_dir(dir: &Path) -> Result<Network, LoadError> {
        let mut names: Vec<_> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_file())
            .map(|e| e.path())
            .collect();
        names.sort();
        let mut files = Vec::with_capacity(names.len());
        for path in names {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            files.push((name, std::fs::read(&path)?));
        }
        Ok(Network::from_bytes_list(files))
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.routers.len()
    }

    /// True if the network has no routers.
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty()
    }

    /// Iterates `(RouterId, &Router)`.
    pub fn iter(&self) -> impl Iterator<Item = (RouterId, &Router)> {
        self.routers.iter().enumerate().map(|(i, r)| (RouterId(i), r))
    }

    /// The router behind an id. Panics on out-of-range ids, which can only
    /// be constructed by misuse.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.0]
    }

    /// All subnets mentioned anywhere in the network's configurations
    /// (interfaces, static-route destinations, BGP network statements) —
    /// the input to address-space structure recovery (Section 3.4).
    pub fn mentioned_subnets(&self) -> Vec<netaddr::Prefix> {
        let mut subnets = Vec::new();
        for r in &self.routers {
            subnets.extend(r.config.interface_subnets());
            for sr in &r.config.static_routes {
                // Default routes say nothing about the address plan; a /0
                // "subnet" would swallow the whole block tree.
                if !sr.is_default() {
                    subnets.push(sr.prefix());
                }
            }
            if let Some(bgp) = &r.config.bgp {
                for (addr, mask) in &bgp.networks {
                    let prefix = match mask {
                        Some(m) => netaddr::Prefix::from_mask(*addr, *m),
                        None => ioscfg::classful_prefix(*addr),
                    };
                    subnets.push(prefix);
                }
            }
        }
        subnets
    }

    /// Recovers the address-block structure for this network.
    pub fn address_blocks(&self) -> netaddr::BlockTree {
        netaddr::recover_blocks(self.mentioned_subnets())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_texts_parses_and_counts_lines() {
        let net = Network::from_texts(vec![
            (
                "config1".to_string(),
                "hostname a\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
                    .to_string(),
            ),
            ("config2".to_string(), "hostname b\n".to_string()),
        ])
        .unwrap();
        assert_eq!(net.len(), 2);
        assert_eq!(net.router(RouterId(0)).command_lines, 3);
        assert_eq!(net.router(RouterId(0)).name(), "a");
        assert_eq!(net.router(RouterId(1)).command_lines, 1);
        assert!(!net.coverage.degraded());
        assert_eq!(net.coverage.parsed(), 2);
    }

    #[test]
    fn parse_errors_quarantine_the_file() {
        let net = Network::from_texts(vec![
            (
                "config1".to_string(),
                "hostname ok\ninterface Serial0\n ip address 10.0.0.1 255.255.255.252\n"
                    .to_string(),
            ),
            (
                "config9".to_string(),
                "interface Ethernet0\n ip address nope 255.0.0.0\n".to_string(),
            ),
        ])
        .unwrap();
        // The bad file is quarantined, the good one survives.
        assert_eq!(net.len(), 1);
        assert_eq!(net.router(RouterId(0)).file_name, "config1");
        assert_eq!(net.coverage.quarantined, vec!["config9".to_string()]);
        assert!(net.coverage.degraded());
        let d = net
            .diagnostics
            .iter()
            .find(|d| d.code == "parse-error")
            .expect("quarantine diagnostic recorded");
        assert_eq!(d.file, "config9");
        assert_eq!(d.severity, rd_obs::Severity::Error);
    }

    #[test]
    fn empty_and_non_utf8_files_quarantine_with_exact_codes() {
        let net = Network::from_bytes_list(vec![
            ("config1".to_string(), b"hostname ok\n".to_vec()),
            ("config2".to_string(), Vec::new()),
            ("config3".to_string(), vec![0xff, 0xfe, 0x00, 0x9f]),
        ]);
        assert_eq!(net.len(), 1);
        assert_eq!(
            net.coverage.quarantined,
            vec!["config2".to_string(), "config3".to_string()]
        );
        let codes: Vec<&str> = net.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["empty-config", "invalid-utf8"]);
        assert!(net.coverage.over_budget(0.25)); // 2/3 quarantined
        assert!(!net.coverage.over_budget(0.9));
    }

    #[test]
    fn error_budget_defaults_and_env_override() {
        // Only exercise the default here; the env override is covered by
        // binary-level tests (env vars are process-global).
        if std::env::var("RD_ERROR_BUDGET").is_err() {
            assert_eq!(error_budget(), 0.25);
        }
    }

    #[test]
    fn mentioned_subnets_gathers_all_sources() {
        let net = Network::from_texts(vec![(
            "config1".to_string(),
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n\
             ip route 192.168.0.0 255.255.0.0 10.0.0.2\n\
             router bgp 65000\n network 172.16.0.0 mask 255.255.0.0\n"
                .to_string(),
        )])
        .unwrap();
        let subnets = net.mentioned_subnets();
        let texts: Vec<String> = subnets.iter().map(|p| p.to_string()).collect();
        assert!(texts.contains(&"10.0.0.0/24".to_string()));
        assert!(texts.contains(&"192.168.0.0/16".to_string()));
        assert!(texts.contains(&"172.16.0.0/16".to_string()));
    }
}
