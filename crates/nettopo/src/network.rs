//! The [`Network`]: one administrative domain's configuration files.

use std::fmt;
use std::path::Path;

use ioscfg::{lex_config, parse_raw, ParseError, RouterConfig};

/// Index of a router within a [`Network`] (stable for the network's life).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub usize);

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One router: its source file name, parsed configuration, and raw size.
#[derive(Clone, Debug)]
pub struct Router {
    /// The configuration file name (`config1`, `config2`, ... in the
    /// paper's anonymized corpora).
    pub file_name: String,
    /// The parsed configuration.
    pub config: RouterConfig,
    /// Number of configuration command lines (Figure 4's metric).
    pub command_lines: usize,
}

impl Router {
    /// A display name: the hostname if present, else the file name.
    pub fn name(&self) -> &str {
        self.config.hostname.as_deref().unwrap_or(&self.file_name)
    }
}

/// A set of router configurations belonging to one network.
#[derive(Clone, Debug, Default)]
pub struct Network {
    /// Routers in load order; [`RouterId`] indexes into this.
    pub routers: Vec<Router>,
    /// Parse-level diagnostics for every router, in load order: unknown
    /// stanzas the tolerant parser skipped and dangling policy references
    /// ([`ioscfg::config_diagnostics`]). Downstream analyses append their
    /// own design-level diagnostics to a copy of this.
    pub diagnostics: rd_obs::Diagnostics,
}

/// Error loading a network from disk or text.
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A configuration failed to parse; the file name is attached.
    Parse {
        /// The offending file.
        file: String,
        /// The underlying parse error.
        error: ParseError,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { file, error } => write!(f, "{file}: {error}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> LoadError {
        LoadError::Io(e)
    }
}

impl Network {
    /// Builds a network from `(file_name, config_text)` pairs.
    ///
    /// Files are lexed and parsed in parallel (`RD_THREADS` workers; see
    /// [`rd_par::thread_count`]). Results keep input order, and if several
    /// files fail to parse the error reported is the one from the
    /// *earliest* file — exactly what the sequential loop reported — so
    /// the thread count never changes observable behavior.
    pub fn from_texts<I>(texts: I) -> Result<Network, LoadError>
    where
        I: IntoIterator<Item = (String, String)>,
    {
        let texts: Vec<(String, String)> = texts.into_iter().collect();
        let parsed = rd_par::par_map(&texts, |_, (file_name, text)| {
            let raw = lex_config(text);
            match parse_raw(&raw) {
                Ok(config) => {
                    let diags = ioscfg::config_diagnostics(file_name, &config);
                    rd_obs::trace::event(
                        "parse.file",
                        &[
                            ("file", file_name.as_str().into()),
                            ("lines", raw.command_lines.into()),
                            ("unrecognized", config.unparsed.len().into()),
                            ("diagnostics", diags.len().into()),
                        ],
                    );
                    Ok((config, raw.command_lines, diags))
                }
                Err(error) => Err(LoadError::Parse { file: file_name.clone(), error }),
            }
        });
        let mut routers = Vec::with_capacity(texts.len());
        let mut diagnostics = rd_obs::Diagnostics::new();
        let mut total_lines = 0u64;
        let mut unrecognized = 0u64;
        for ((file_name, _), result) in texts.into_iter().zip(parsed) {
            let (config, command_lines, diags) = result?;
            total_lines += command_lines as u64;
            unrecognized += config.unparsed.len() as u64;
            rd_obs::metrics::histogram_record(
                "parse.file_lines",
                command_lines as u64,
                &[16, 64, 256, 1024, 4096],
            );
            diagnostics.extend(diags);
            routers.push(Router { file_name, config, command_lines });
        }
        rd_obs::metrics::counter_add("parse.files", routers.len() as u64);
        rd_obs::metrics::counter_add("parse.lines", total_lines);
        rd_obs::metrics::counter_add("parse.unrecognized_lines", unrecognized);
        Ok(Network { routers, diagnostics })
    }

    /// Loads every file in a directory as a configuration, in file-name
    /// order (the paper's corpora are directories of `config1..configN`).
    pub fn from_dir(dir: &Path) -> Result<Network, LoadError> {
        let mut names: Vec<_> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_file())
            .map(|e| e.path())
            .collect();
        names.sort();
        let mut texts = Vec::with_capacity(names.len());
        for path in names {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            texts.push((name, std::fs::read_to_string(&path)?));
        }
        Network::from_texts(texts)
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.routers.len()
    }

    /// True if the network has no routers.
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty()
    }

    /// Iterates `(RouterId, &Router)`.
    pub fn iter(&self) -> impl Iterator<Item = (RouterId, &Router)> {
        self.routers.iter().enumerate().map(|(i, r)| (RouterId(i), r))
    }

    /// The router behind an id. Panics on out-of-range ids, which can only
    /// be constructed by misuse.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.0]
    }

    /// All subnets mentioned anywhere in the network's configurations
    /// (interfaces, static-route destinations, BGP network statements) —
    /// the input to address-space structure recovery (Section 3.4).
    pub fn mentioned_subnets(&self) -> Vec<netaddr::Prefix> {
        let mut subnets = Vec::new();
        for r in &self.routers {
            subnets.extend(r.config.interface_subnets());
            for sr in &r.config.static_routes {
                // Default routes say nothing about the address plan; a /0
                // "subnet" would swallow the whole block tree.
                if !sr.is_default() {
                    subnets.push(sr.prefix());
                }
            }
            if let Some(bgp) = &r.config.bgp {
                for (addr, mask) in &bgp.networks {
                    let prefix = match mask {
                        Some(m) => netaddr::Prefix::from_mask(*addr, *m),
                        None => ioscfg::classful_prefix(*addr),
                    };
                    subnets.push(prefix);
                }
            }
        }
        subnets
    }

    /// Recovers the address-block structure for this network.
    pub fn address_blocks(&self) -> netaddr::BlockTree {
        netaddr::recover_blocks(self.mentioned_subnets())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_texts_parses_and_counts_lines() {
        let net = Network::from_texts(vec![
            (
                "config1".to_string(),
                "hostname a\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"
                    .to_string(),
            ),
            ("config2".to_string(), "hostname b\n".to_string()),
        ])
        .unwrap();
        assert_eq!(net.len(), 2);
        assert_eq!(net.router(RouterId(0)).command_lines, 3);
        assert_eq!(net.router(RouterId(0)).name(), "a");
        assert_eq!(net.router(RouterId(1)).command_lines, 1);
    }

    #[test]
    fn parse_errors_carry_file_names() {
        let err = Network::from_texts(vec![(
            "config9".to_string(),
            "interface Ethernet0\n ip address nope 255.0.0.0\n".to_string(),
        )])
        .unwrap_err();
        match err {
            LoadError::Parse { file, .. } => assert_eq!(file, "config9"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn mentioned_subnets_gathers_all_sources() {
        let net = Network::from_texts(vec![(
            "config1".to_string(),
            "interface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n\
             ip route 192.168.0.0 255.255.0.0 10.0.0.2\n\
             router bgp 65000\n network 172.16.0.0 mask 255.255.0.0\n"
                .to_string(),
        )])
        .unwrap();
        let subnets = net.mentioned_subnets();
        let texts: Vec<String> = subnets.iter().map(|p| p.to_string()).collect();
        assert!(texts.contains(&"10.0.0.0/24".to_string()));
        assert!(texts.contains(&"192.168.0.0/16".to_string()));
        assert!(texts.contains(&"172.16.0.0/16".to_string()));
    }
}
