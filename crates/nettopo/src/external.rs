//! Internal/external-facing classification (paper Sections 2.1 and 5.2).
//!
//! Point-to-point /30 links are internal exactly when both usable host
//! addresses appear in the corpus. Multipoint links (and unmatched LAN
//! subnets) are internal unless some router uses an address on the subnet
//! as the next hop toward an *external* destination — then an external
//! router must be present on the link to accept those packets.
//!
//! The same analysis yields the paper's Figure 11 metric (what fraction of
//! packet-filter rules sit on internal links) and the address-block
//! heuristic for detecting routers missing from the data set.

use std::collections::{BTreeMap, BTreeSet};

use netaddr::{Addr, BlockTree, Prefix};

use crate::link::{IfaceRef, LinkMap};
use crate::network::{Network, RouterId};

/// Classification of one interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IfaceClass {
    /// Both ends of the link are inside the corpus.
    Internal,
    /// The other side is outside the network.
    External,
    /// No IP address and no link (loopbacks, shutdown, unnumbered).
    Unaddressed,
}

/// A hint that an "external-facing" interface is probably the stub of a
/// router whose configuration is missing from the data set (Section 3.4).
#[derive(Clone, Debug)]
pub struct MissingRouterHint {
    /// The suspicious interface.
    pub iface: IfaceRef,
    /// Its subnet.
    pub subnet: Prefix,
    /// The internal address block the subnet falls inside.
    pub block: Prefix,
}

/// Results of the external-facing analysis.
#[derive(Clone, Debug)]
pub struct ExternalAnalysis {
    /// Per-interface classification.
    pub classes: BTreeMap<IfaceRef, IfaceClass>,
    /// Subnets classified as external-facing links.
    pub external_subnets: BTreeSet<Prefix>,
    /// Candidate missing routers.
    pub missing_router_hints: Vec<MissingRouterHint>,
}

impl ExternalAnalysis {
    /// Runs the analysis.
    ///
    /// The "known to be inside the network" test uses address blocks
    /// recovered from *interface* subnets only — static-route and BGP
    /// `network` destinations may well be external space, which is exactly
    /// what the next-hop rule needs to detect.
    pub fn build(net: &Network, links: &LinkMap) -> ExternalAnalysis {
        let blocks: BlockTree =
            netaddr::recover_blocks(net.iter().flat_map(|(_, r)| r.config.interface_subnets()));
        // Every interface address in the corpus (for next-hop matching).
        let mut internal_addrs: BTreeSet<Addr> = BTreeSet::new();
        for (_, router) in net.iter() {
            for iface in &router.config.interfaces {
                for a in iface.address.iter().chain(iface.secondary.iter()) {
                    internal_addrs.insert(a.addr);
                }
            }
        }

        // Destinations "known to be inside the network": covered by a
        // recovered address block.
        let is_internal_dest = |p: Prefix| -> bool {
            blocks.roots.iter().any(|b| b.prefix.covers(p))
        };

        // Next-hop addresses used toward external destinations, plus all
        // EBGP neighbor addresses that are not internal interfaces.
        let mut external_next_hops: BTreeSet<Addr> = BTreeSet::new();
        for (_, router) in net.iter() {
            for sr in &router.config.static_routes {
                if let ioscfg::StaticTarget::NextHop(nh) = sr.target {
                    if !internal_addrs.contains(&nh) && !is_internal_dest(sr.prefix()) {
                        external_next_hops.insert(nh);
                    }
                }
            }
            if let Some(bgp) = &router.config.bgp {
                for n in bgp.ebgp_neighbors() {
                    if !internal_addrs.contains(&n.addr) {
                        external_next_hops.insert(n.addr);
                    }
                }
            }
        }

        let mut classes = BTreeMap::new();
        let mut external_subnets = BTreeSet::new();
        for (rid, router) in net.iter() {
            for (idx, iface) in router.config.interfaces.iter().enumerate() {
                let this = IfaceRef { router: rid, iface: idx };
                let class = classify_iface(iface, links, &external_next_hops);
                if class == IfaceClass::External {
                    if let Some(a) = iface.address {
                        external_subnets.insert(a.subnet());
                    }
                }
                classes.insert(this, class);
            }
        }

        let missing_router_hints =
            find_missing_hints(net, &classes, &blocks, &external_subnets);

        ExternalAnalysis { classes, external_subnets, missing_router_hints }
    }

    /// The classification of one interface.
    pub fn class_of(&self, iface: IfaceRef) -> IfaceClass {
        self.classes.get(&iface).copied().unwrap_or(IfaceClass::Unaddressed)
    }

    /// Counts `(internal, external, unaddressed)` interfaces.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for class in self.classes.values() {
            match class {
                IfaceClass::Internal => c.0 += 1,
                IfaceClass::External => c.1 += 1,
                IfaceClass::Unaddressed => c.2 += 1,
            }
        }
        c
    }

    /// Figure 11 metric: `(rules_on_internal, total_applied_rules)`.
    ///
    /// Each access-list clause counts once per interface application, so a
    /// 47-clause filter on one interface contributes 47 rules (the paper
    /// counts "each clause as a separate filter rule").
    pub fn filter_placement(&self, net: &Network) -> (usize, usize) {
        let mut internal = 0usize;
        let mut total = 0usize;
        for (rid, router) in net.iter() {
            for (idx, iface) in router.config.interfaces.iter().enumerate() {
                let class = self.class_of(IfaceRef { router: rid, iface: idx });
                for acl_id in [iface.access_group_in, iface.access_group_out]
                    .into_iter()
                    .flatten()
                {
                    let rules = router
                        .config
                        .access_lists
                        .get(&acl_id)
                        .map(|acl| acl.entries.len())
                        .unwrap_or(0);
                    total += rules;
                    if class == IfaceClass::Internal {
                        internal += rules;
                    }
                }
            }
        }
        (internal, total)
    }

    /// Routers that have at least one external-facing interface (the
    /// network's border routers).
    pub fn border_routers(&self) -> BTreeSet<RouterId> {
        self.classes
            .iter()
            .filter(|(_, c)| **c == IfaceClass::External)
            .map(|(i, _)| i.router)
            .collect()
    }
}

fn classify_iface(
    iface: &ioscfg::Interface,
    links: &LinkMap,
    external_next_hops: &BTreeSet<Addr>,
) -> IfaceClass {
    let Some(addr) = iface.address else {
        return IfaceClass::Unaddressed;
    };
    if iface.shutdown {
        return IfaceClass::Unaddressed;
    }
    let subnet = addr.subnet();
    if subnet.len() == 32 {
        return IfaceClass::Unaddressed; // loopback-style host address
    }
    let endpoints = links.link_of(subnet).map(|l| l.endpoints.len()).unwrap_or(1);

    if subnet.is_p2p() {
        // Internal iff both usable host addresses are in the corpus.
        return if endpoints >= 2 { IfaceClass::Internal } else { IfaceClass::External };
    }

    // Multipoint (or stub LAN): external if some address of the subnet is
    // used as a next hop toward external destinations.
    let has_external_next_hop =
        external_next_hops.iter().any(|nh| subnet.contains(*nh));
    if has_external_next_hop {
        IfaceClass::External
    } else {
        IfaceClass::Internal
    }
}

/// Section 3.4's heuristic: an external-facing interface whose address
/// falls *inside* an internal address block probably points at a missing
/// router, not a real external peer.
fn find_missing_hints(
    net: &Network,
    classes: &BTreeMap<IfaceRef, IfaceClass>,
    blocks: &BlockTree,
    external_subnets: &BTreeSet<Prefix>,
) -> Vec<MissingRouterHint> {
    // A block counts as "internal" when most of its leaves are internal
    // link subnets — approximate by requiring the block to contain at
    // least 4 subnets, of which at most one is external-facing.
    let mut hints = Vec::new();
    for (iref, class) in classes {
        if *class != IfaceClass::External {
            continue;
        }
        let router = net.router(iref.router);
        let Some(addr) = router.config.interfaces[iref.iface].address else { continue };
        let subnet = addr.subnet();
        let Some(block) = blocks.block_of(addr.addr) else { continue };
        let leaves = block.leaves();
        if leaves.len() < 4 {
            continue;
        }
        let external_leaves =
            leaves.iter().filter(|l| external_subnets.contains(l)).count();
        if external_leaves <= 1 {
            hints.push(MissingRouterHint { iface: *iref, subnet, block: block.prefix });
        }
    }
    hints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkMap;
    use crate::network::Network;

    fn analyze(net: &Network) -> ExternalAnalysis {
        let links = LinkMap::build(net);
        ExternalAnalysis::build(net, &links)
    }

    #[test]
    fn p2p_with_both_ends_is_internal() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n".into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n".into(),
            ),
        ])
        .unwrap();
        let a = analyze(&net);
        assert_eq!(a.counts(), (2, 0, 0));
        assert!(a.external_subnets.is_empty());
    }

    #[test]
    fn p2p_with_one_end_is_external() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n".into(),
        )])
        .unwrap();
        let a = analyze(&net);
        assert_eq!(a.counts(), (0, 1, 0));
        assert_eq!(a.border_routers().len(), 1);
    }

    #[test]
    fn lan_is_internal_without_external_next_hops() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n".into(),
        )])
        .unwrap();
        let a = analyze(&net);
        assert_eq!(a.counts(), (1, 0, 0));
    }

    #[test]
    fn lan_with_external_next_hop_is_external() {
        // A static route to a destination outside every internal block,
        // via a next hop on the Ethernet that is not any internal iface.
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n\
             ip route 198.51.100.0 255.255.255.0 10.1.0.254\n"
                .into(),
        )])
        .unwrap();
        let a = analyze(&net);
        assert_eq!(a.counts(), (0, 1, 0));
    }

    #[test]
    fn ebgp_neighbor_marks_link_external() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Serial0\n ip address 192.0.2.1 255.255.255.252\n\
             router bgp 65001\n neighbor 192.0.2.2 remote-as 7018\n"
                .into(),
        )])
        .unwrap();
        let a = analyze(&net);
        assert_eq!(a.counts(), (0, 1, 0));
    }

    #[test]
    fn filter_placement_counts_rules_per_application() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n ip access-group 10 in\n\
                 access-list 10 deny 192.0.2.0 0.0.0.255\n\
                 access-list 10 permit any\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n".into(),
            ),
        ])
        .unwrap();
        let a = analyze(&net);
        let (internal, total) = a.filter_placement(&net);
        assert_eq!((internal, total), (2, 2));
    }

    #[test]
    fn missing_router_hint_fires_inside_internal_block() {
        // Five /30s from one block: four fully-populated (internal) and
        // one with a single end — the signature of a router whose config
        // file is missing from the data set (Section 3.4).
        let mk = |n: u32, both: bool| {
            let base = n * 4;
            let mut texts = vec![format!(
                "interface Serial0\n ip address 10.0.0.{} 255.255.255.252\n",
                base + 1
            )];
            if both {
                texts.push(format!(
                    "interface Serial0\n ip address 10.0.0.{} 255.255.255.252\n",
                    base + 2
                ));
            }
            texts
        };
        let mut configs = Vec::new();
        for n in 0..4 {
            for t in mk(n, true) {
                configs.push((format!("config{}", configs.len() + 1), t));
            }
        }
        for t in mk(4, false) {
            configs.push((format!("config{}", configs.len() + 1), t));
        }
        let net = Network::from_texts(configs).unwrap();
        let a = analyze(&net);
        assert_eq!(a.counts().1, 1, "one external-facing interface");
        assert_eq!(a.missing_router_hints.len(), 1, "{:?}", a.missing_router_hints);
        let hint = &a.missing_router_hints[0];
        assert_eq!(hint.subnet.to_string(), "10.0.0.16/30");
        assert!(hint.block.covers(hint.subnet));
    }

    #[test]
    fn no_hint_for_genuinely_external_block() {
        // A lone external /30 from its own distant block: no hint.
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Serial0\n ip address 192.0.2.1 255.255.255.252\n\
             interface Serial1\n ip address 10.0.0.1 255.255.255.252\n"
                .into(),
        ), (
            "config2".into(),
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n".into(),
        )])
        .unwrap();
        let a = analyze(&net);
        assert!(a.missing_router_hints.is_empty(), "{:?}", a.missing_router_hints);
    }

    #[test]
    fn loopbacks_are_unaddressed_class() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Loopback0\n ip address 10.9.9.9 255.255.255.255\n".into(),
        )])
        .unwrap();
        let a = analyze(&net);
        assert_eq!(a.counts(), (0, 0, 1));
    }
}
