//! Internal/external-facing classification (paper Sections 2.1 and 5.2).
//!
//! Point-to-point /30 links are internal exactly when both usable host
//! addresses appear in the corpus. Multipoint links (and unmatched LAN
//! subnets) are internal unless some router uses an address on the subnet
//! as the next hop toward an *external* destination — then an external
//! router must be present on the link to accept those packets.
//!
//! The same analysis yields the paper's Figure 11 metric (what fraction of
//! packet-filter rules sit on internal links) and the address-block
//! heuristic for detecting routers missing from the data set.

use std::collections::BTreeSet;

use netaddr::{AddrSet, BlockTree, Prefix, PrefixMap};

use crate::link::{IfaceRef, LinkMap};
use crate::network::{Network, RouterId};

/// Classification of one interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IfaceClass {
    /// Both ends of the link are inside the corpus.
    Internal,
    /// The other side is outside the network.
    External,
    /// No IP address and no link (loopbacks, shutdown, unnumbered).
    Unaddressed,
}

/// Per-interface classifications in a dense per-router layout: router
/// `r`'s interfaces occupy `flat[offsets[r] .. offsets[r + 1]]`, indexed
/// by interface position. [`IfaceRef`] is already `(router, iface index)`,
/// so a lookup is two array reads — no tree to walk.
///
/// The table is *total* by construction: [`ExternalAnalysis::build`] gives
/// every interface of every router a slot, so there is no lookup-miss
/// path. An out-of-range [`IfaceRef`] can only come from a different
/// network and panics like any slice misuse.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IfaceClasses {
    /// `offsets[r]` is where router `r`'s slots start; len = routers + 1.
    offsets: Vec<usize>,
    /// All classes, router-major, interface order within each router.
    flat: Vec<IfaceClass>,
}

impl IfaceClasses {
    /// Builds from per-router class vectors (one entry per interface, in
    /// interface order).
    pub fn from_per_router(per_router: Vec<Vec<IfaceClass>>) -> IfaceClasses {
        let mut offsets = Vec::with_capacity(per_router.len() + 1);
        offsets.push(0);
        let mut flat = Vec::new();
        for classes in per_router {
            flat.extend(classes);
            offsets.push(flat.len());
        }
        IfaceClasses { offsets, flat }
    }

    /// Total number of interface slots.
    pub fn len(&self) -> usize {
        self.flat.len()
    }

    /// True if no router has any interface.
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// Number of routers.
    pub fn routers(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The class of `iface`. Slicing by the router's own bounds makes a
    /// stale reference into a different network panic rather than silently
    /// read a neighbouring router's slot.
    pub fn get(&self, iface: IfaceRef) -> IfaceClass {
        self.router_classes(iface.router)[iface.iface]
    }

    /// One router's classes, in interface order. Routers beyond the table
    /// read as interface-less: a snapshot cannot record trailing routers
    /// that have no interfaces (they contribute no `(key, class)` pairs),
    /// so a decoded table may be shorter than the network — exactly the
    /// lookup-miss case the old `BTreeMap` representation tolerated.
    pub fn router_classes(&self, router: RouterId) -> &[IfaceClass] {
        match (self.offsets.get(router.0), self.offsets.get(router.0 + 1)) {
            (Some(&start), Some(&end)) => &self.flat[start..end],
            _ => &[],
        }
    }

    /// Iterates `(IfaceRef, IfaceClass)` in `(router, interface)` order —
    /// the same order the previous `BTreeMap` representation iterated in,
    /// which downstream output (audit listings, hints) depends on.
    pub fn iter(&self) -> impl Iterator<Item = (IfaceRef, IfaceClass)> + '_ {
        (0..self.routers()).flat_map(move |r| {
            self.router_classes(RouterId(r)).iter().enumerate().map(
                move |(i, &class)| (IfaceRef { router: RouterId(r), iface: i }, class),
            )
        })
    }

    /// All classes, router-major (the dense backing store).
    pub fn as_slice(&self) -> &[IfaceClass] {
        &self.flat
    }
}

/// A hint that an "external-facing" interface is probably the stub of a
/// router whose configuration is missing from the data set (Section 3.4).
#[derive(Clone, Debug)]
pub struct MissingRouterHint {
    /// The suspicious interface.
    pub iface: IfaceRef,
    /// Its subnet.
    pub subnet: Prefix,
    /// The internal address block the subnet falls inside.
    pub block: Prefix,
}

/// Results of the external-facing analysis.
#[derive(Clone, Debug)]
pub struct ExternalAnalysis {
    /// Per-interface classification (total: every interface has a slot).
    pub classes: IfaceClasses,
    /// Subnets classified as external-facing links.
    pub external_subnets: BTreeSet<Prefix>,
    /// Candidate missing routers.
    pub missing_router_hints: Vec<MissingRouterHint>,
}

impl ExternalAnalysis {
    /// Runs the analysis.
    ///
    /// The "known to be inside the network" test uses address blocks
    /// recovered from *interface* subnets only — static-route and BGP
    /// `network` destinations may well be external space, which is exactly
    /// what the next-hop rule needs to detect.
    pub fn build(net: &Network, links: &LinkMap) -> ExternalAnalysis {
        let blocks: BlockTree =
            netaddr::recover_blocks(net.iter().flat_map(|(_, r)| r.config.interface_subnets()));
        // Every interface address in the corpus (for next-hop matching),
        // as a sorted slice: O(log n) membership, O(log n) range queries.
        let internal_addrs: AddrSet = net
            .iter()
            .flat_map(|(_, r)| {
                r.config.interfaces.iter().flat_map(|iface| {
                    iface.address.iter().chain(iface.secondary.iter()).map(|a| a.addr)
                })
            })
            .collect();

        // Destinations "known to be inside the network": covered by a
        // recovered address block. Roots are sorted and disjoint, so one
        // binary search replaces the old scan over every root.
        let is_internal_dest = |p: Prefix| -> bool { blocks.covering_root(p).is_some() };

        // Next-hop addresses used toward external destinations, plus all
        // EBGP neighbor addresses that are not internal interfaces.
        let mut hops: Vec<netaddr::Addr> = Vec::new();
        for (_, router) in net.iter() {
            for sr in &router.config.static_routes {
                if let ioscfg::StaticTarget::NextHop(nh) = sr.target {
                    if !internal_addrs.contains(nh) && !is_internal_dest(sr.prefix()) {
                        hops.push(nh);
                    }
                }
            }
            if let Some(bgp) = &router.config.bgp {
                for n in bgp.ebgp_neighbors() {
                    if !internal_addrs.contains(n.addr) {
                        hops.push(n.addr);
                    }
                }
            }
        }
        let external_next_hops = AddrSet::new(hops);

        // Classification is pure per interface, so it fans out over routers;
        // the cost floor keeps small networks inline where thread setup
        // would cost more than the work.
        let iface_total: usize =
            net.routers.iter().map(|r| r.config.interfaces.len()).sum();
        let per_router: Vec<Vec<IfaceClass>> = rd_par::par_map_cost(
            iface_total as u64 * CLASSIFY_COST_PER_IFACE,
            &net.routers,
            |_, router| {
                router
                    .config
                    .interfaces
                    .iter()
                    .map(|iface| classify_iface(iface, links, &external_next_hops))
                    .collect()
            },
        );
        let classes = IfaceClasses::from_per_router(per_router);

        let mut external_subnets = BTreeSet::new();
        for (rid, router) in net.iter() {
            for (idx, iface) in router.config.interfaces.iter().enumerate() {
                if classes.get(IfaceRef { router: rid, iface: idx }) == IfaceClass::External
                {
                    if let Some(a) = iface.address {
                        external_subnets.insert(a.subnet());
                    }
                }
            }
        }

        let missing_router_hints =
            find_missing_hints(net, &classes, &blocks, &external_subnets);

        ExternalAnalysis { classes, external_subnets, missing_router_hints }
    }

    /// The classification of one interface. The class table is total over
    /// the analyzed network's interfaces, so there is no miss path.
    pub fn class_of(&self, iface: IfaceRef) -> IfaceClass {
        self.classes.get(iface)
    }

    /// Counts `(internal, external, unaddressed)` interfaces — one linear
    /// pass over the dense class slice.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for class in self.classes.as_slice() {
            match class {
                IfaceClass::Internal => c.0 += 1,
                IfaceClass::External => c.1 += 1,
                IfaceClass::Unaddressed => c.2 += 1,
            }
        }
        c
    }

    /// Figure 11 metric: `(rules_on_internal, total_applied_rules)`.
    ///
    /// Each access-list clause counts once per interface application, so a
    /// 47-clause filter on one interface contributes 47 rules (the paper
    /// counts "each clause as a separate filter rule").
    pub fn filter_placement(&self, net: &Network) -> (usize, usize) {
        let mut internal = 0usize;
        let mut total = 0usize;
        for (rid, router) in net.iter() {
            let classes = self.classes.router_classes(rid);
            for (iface, &class) in router.config.interfaces.iter().zip(classes) {
                for acl_id in [iface.access_group_in, iface.access_group_out]
                    .into_iter()
                    .flatten()
                {
                    let rules = router
                        .config
                        .access_lists
                        .get(&acl_id)
                        .map(|acl| acl.entries.len())
                        .unwrap_or(0);
                    total += rules;
                    if class == IfaceClass::Internal {
                        internal += rules;
                    }
                }
            }
        }
        (internal, total)
    }

    /// Routers that have at least one external-facing interface (the
    /// network's border routers). One contiguous scan per router.
    pub fn border_routers(&self) -> BTreeSet<RouterId> {
        (0..self.classes.routers())
            .map(RouterId)
            .filter(|&r| {
                self.classes.router_classes(r).contains(&IfaceClass::External)
            })
            .collect()
    }
}

/// Rough per-interface classification cost in [`rd_par::cost_floor`] units
/// (a couple of binary searches plus a link lookup); chosen so whale
/// networks fan out and small fixtures stay inline.
const CLASSIFY_COST_PER_IFACE: u64 = 64;

fn classify_iface(
    iface: &ioscfg::Interface,
    links: &LinkMap,
    external_next_hops: &AddrSet,
) -> IfaceClass {
    let Some(addr) = iface.address else {
        return IfaceClass::Unaddressed;
    };
    if iface.shutdown {
        return IfaceClass::Unaddressed;
    }
    let subnet = addr.subnet();
    if subnet.len() == 32 {
        return IfaceClass::Unaddressed; // loopback-style host address
    }
    let endpoints = links.link_of(subnet).map(|l| l.endpoints.len()).unwrap_or(1);

    if subnet.is_p2p() {
        // Internal iff both usable host addresses are in the corpus.
        return if endpoints >= 2 { IfaceClass::Internal } else { IfaceClass::External };
    }

    // Multipoint (or stub LAN): external if some address of the subnet is
    // used as a next hop toward external destinations. This was the
    // stage's O(interfaces × next-hops) hot spot; the sorted-slice range
    // query answers it in O(log n).
    if external_next_hops.any_in_prefix(subnet) {
        IfaceClass::External
    } else {
        IfaceClass::Internal
    }
}

/// Section 3.4's heuristic: an external-facing interface whose address
/// falls *inside* an internal address block probably points at a missing
/// router, not a real external peer.
fn find_missing_hints(
    net: &Network,
    classes: &IfaceClasses,
    blocks: &BlockTree,
    external_subnets: &BTreeSet<Prefix>,
) -> Vec<MissingRouterHint> {
    // A block counts as "internal" when most of its leaves are internal
    // link subnets — approximate by requiring the block to contain at
    // least 4 subnets, of which at most one is external-facing.
    //
    // The per-root `(leaf count, external leaf count)` statistics are
    // computed once up front (the old code re-walked `block.leaves()` for
    // every external candidate) and looked up per candidate in O(log n).
    let stats: PrefixMap<(usize, usize)> = blocks
        .roots
        .iter()
        .map(|b| {
            let mut total = 0usize;
            let mut external = 0usize;
            b.for_each_leaf(&mut |leaf| {
                total += 1;
                if external_subnets.contains(&leaf) {
                    external += 1;
                }
            });
            (b.prefix, (total, external))
        })
        .collect();

    let mut hints = Vec::new();
    for (iref, class) in classes.iter() {
        if class != IfaceClass::External {
            continue;
        }
        let router = net.router(iref.router);
        let Some(addr) = router.config.interfaces[iref.iface].address else { continue };
        let subnet = addr.subnet();
        let Some((block, &(leaves, external_leaves))) = stats.lookup(addr.addr) else {
            continue;
        };
        if leaves < 4 {
            continue;
        }
        if external_leaves <= 1 {
            hints.push(MissingRouterHint { iface: iref, subnet, block });
        }
    }
    hints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkMap;
    use crate::network::Network;

    fn analyze(net: &Network) -> ExternalAnalysis {
        let links = LinkMap::build(net);
        ExternalAnalysis::build(net, &links)
    }

    #[test]
    fn p2p_with_both_ends_is_internal() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n".into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n".into(),
            ),
        ])
        .unwrap();
        let a = analyze(&net);
        assert_eq!(a.counts(), (2, 0, 0));
        assert!(a.external_subnets.is_empty());
    }

    #[test]
    fn p2p_with_one_end_is_external() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n".into(),
        )])
        .unwrap();
        let a = analyze(&net);
        assert_eq!(a.counts(), (0, 1, 0));
        assert_eq!(a.border_routers().len(), 1);
    }

    #[test]
    fn lan_is_internal_without_external_next_hops() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n".into(),
        )])
        .unwrap();
        let a = analyze(&net);
        assert_eq!(a.counts(), (1, 0, 0));
    }

    #[test]
    fn lan_with_external_next_hop_is_external() {
        // A static route to a destination outside every internal block,
        // via a next hop on the Ethernet that is not any internal iface.
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n\
             ip route 198.51.100.0 255.255.255.0 10.1.0.254\n"
                .into(),
        )])
        .unwrap();
        let a = analyze(&net);
        assert_eq!(a.counts(), (0, 1, 0));
    }

    #[test]
    fn ebgp_neighbor_marks_link_external() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Serial0\n ip address 192.0.2.1 255.255.255.252\n\
             router bgp 65001\n neighbor 192.0.2.2 remote-as 7018\n"
                .into(),
        )])
        .unwrap();
        let a = analyze(&net);
        assert_eq!(a.counts(), (0, 1, 0));
    }

    #[test]
    fn filter_placement_counts_rules_per_application() {
        let net = Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n ip access-group 10 in\n\
                 access-list 10 deny 192.0.2.0 0.0.0.255\n\
                 access-list 10 permit any\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n".into(),
            ),
        ])
        .unwrap();
        let a = analyze(&net);
        let (internal, total) = a.filter_placement(&net);
        assert_eq!((internal, total), (2, 2));
    }

    #[test]
    fn missing_router_hint_fires_inside_internal_block() {
        // Five /30s from one block: four fully-populated (internal) and
        // one with a single end — the signature of a router whose config
        // file is missing from the data set (Section 3.4).
        let mk = |n: u32, both: bool| {
            let base = n * 4;
            let mut texts = vec![format!(
                "interface Serial0\n ip address 10.0.0.{} 255.255.255.252\n",
                base + 1
            )];
            if both {
                texts.push(format!(
                    "interface Serial0\n ip address 10.0.0.{} 255.255.255.252\n",
                    base + 2
                ));
            }
            texts
        };
        let mut configs = Vec::new();
        for n in 0..4 {
            for t in mk(n, true) {
                configs.push((format!("config{}", configs.len() + 1), t));
            }
        }
        for t in mk(4, false) {
            configs.push((format!("config{}", configs.len() + 1), t));
        }
        let net = Network::from_texts(configs).unwrap();
        let a = analyze(&net);
        assert_eq!(a.counts().1, 1, "one external-facing interface");
        assert_eq!(a.missing_router_hints.len(), 1, "{:?}", a.missing_router_hints);
        let hint = &a.missing_router_hints[0];
        assert_eq!(hint.subnet.to_string(), "10.0.0.16/30");
        assert!(hint.block.covers(hint.subnet));
    }

    #[test]
    fn no_hint_for_genuinely_external_block() {
        // A lone external /30 from its own distant block: no hint.
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Serial0\n ip address 192.0.2.1 255.255.255.252\n\
             interface Serial1\n ip address 10.0.0.1 255.255.255.252\n"
                .into(),
        ), (
            "config2".into(),
            "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n".into(),
        )])
        .unwrap();
        let a = analyze(&net);
        assert!(a.missing_router_hints.is_empty(), "{:?}", a.missing_router_hints);
    }

    #[test]
    fn loopbacks_are_unaddressed_class() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Loopback0\n ip address 10.9.9.9 255.255.255.255\n".into(),
        )])
        .unwrap();
        let a = analyze(&net);
        assert_eq!(a.counts(), (0, 0, 1));
    }
}
