//! Link-level topology recovery and configuration statistics.
//!
//! Given a directory of parsed router configurations (a [`Network`]), this
//! crate recovers what the paper's Section 2.1 and 5.2 derive from static
//! analysis alone:
//!
//! - [`link`]: logical IP links, inferred by matching interfaces that share
//!   a subnet; point-to-point, multipoint and unmatched (candidate
//!   external) links.
//! - [`external`]: the internal/external-facing classification of
//!   interfaces and links, including the next-hop rule for multipoint
//!   links and the address-block heuristic for spotting routers missing
//!   from the data set.
//! - [`stats`]: the interface census of Table 3 and the configuration-size
//!   distribution of Figure 4.
//! - [`graph`]: the router-level adjacency graph with connectivity and
//!   articulation analyses ("how many routers must fail to partition...").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod external;
pub mod graph;
pub mod link;
mod network;
pub mod stats;

pub use external::{ExternalAnalysis, IfaceClass, IfaceClasses, MissingRouterHint};
pub use graph::RouterGraph;
pub use link::{IfaceRef, Link, LinkKind, LinkMap};
pub use network::{error_budget, Coverage, LoadError, Network, PreparsedFile, Router, RouterId};
