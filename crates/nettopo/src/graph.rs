//! The router-level adjacency graph.
//!
//! Supports the survivability questions of Sections 5.1 and 8.1: connected
//! components, articulation routers ("scenarios where a single ... failure
//! would disconnect part of the network"), and minimum router-failure
//! counts between router groups (net5's "how many routers need to fail
//! before instance 1 is partitioned from instance 2?").

use std::collections::BTreeSet;

use crate::link::LinkMap;
use crate::network::{Network, RouterId};

/// An undirected router adjacency graph.
#[derive(Clone, Debug)]
pub struct RouterGraph {
    /// Adjacency lists indexed by router id; sorted, deduplicated.
    pub adj: Vec<Vec<usize>>,
}

impl RouterGraph {
    /// Builds the graph from inferred links.
    pub fn build(net: &Network, links: &LinkMap) -> RouterGraph {
        let mut adj = vec![Vec::new(); net.len()];
        for (a, b) in links.router_pairs() {
            adj[a.0].push(b.0);
            adj[b.0].push(a.0);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        RouterGraph { adj }
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True if there are no routers.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Connected components after removing `failed` routers — the
    /// "what if" query of Section 8.1 (planned maintenance, failures).
    /// Failed routers appear in no component.
    pub fn components_without(&self, failed: &BTreeSet<RouterId>) -> Vec<Vec<RouterId>> {
        let mut seen = vec![false; self.len()];
        for f in failed {
            if f.0 < self.len() {
                seen[f.0] = true;
            }
        }
        let mut out = Vec::new();
        for start in 0..self.len() {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                comp.push(RouterId(v));
                for &w in &self.adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort();
            out.push(comp);
        }
        out
    }

    /// Connected components, each sorted; components sorted by first id.
    pub fn components(&self) -> Vec<Vec<RouterId>> {
        let mut seen = vec![false; self.len()];
        let mut out = Vec::new();
        for start in 0..self.len() {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(v) = stack.pop() {
                comp.push(RouterId(v));
                for &w in &self.adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort();
            out.push(comp);
        }
        out
    }

    /// Articulation routers: removing any one of these disconnects its
    /// component. Classic Hopcroft–Tarjan low-link computation, iterative
    /// to survive deep topologies.
    pub fn articulation_routers(&self) -> Vec<RouterId> {
        let n = self.len();
        let mut disc = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut parent = vec![usize::MAX; n];
        let mut is_art = vec![false; n];
        let mut timer = 0usize;

        for root in 0..n {
            if disc[root] != usize::MAX {
                continue;
            }
            // Iterative DFS: stack of (vertex, next child index).
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            disc[root] = timer;
            low[root] = timer;
            timer += 1;
            let mut root_children = 0usize;

            while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
                if *ci < self.adj[v].len() {
                    let w = self.adj[v][*ci];
                    *ci += 1;
                    if disc[w] == usize::MAX {
                        parent[w] = v;
                        if v == root {
                            root_children += 1;
                        }
                        disc[w] = timer;
                        low[w] = timer;
                        timer += 1;
                        stack.push((w, 0));
                    } else if w != parent[v] {
                        low[v] = low[v].min(disc[w]);
                    }
                } else {
                    stack.pop();
                    if let Some(&(p, _)) = stack.last() {
                        low[p] = low[p].min(low[v]);
                        if p != root && low[v] >= disc[p] {
                            is_art[p] = true;
                        }
                    }
                }
            }
            if root_children > 1 {
                is_art[root] = true;
            }
        }

        (0..n).filter(|&v| is_art[v]).map(RouterId).collect()
    }

    /// Minimum number of routers (outside `sources` and `sinks`) whose
    /// removal disconnects every `sources` router from every `sinks`
    /// router — a vertex min-cut via Even's vertex-splitting max-flow.
    ///
    /// Answers net5-style questions: the 6 redundant redistribution
    /// routers between EIGRP instance 1 and BGP instance 4 form exactly
    /// such a cut. Returns `None` if a source is adjacent to (or equal to)
    /// a sink, making separation impossible.
    pub fn min_router_cut(
        &self,
        sources: &BTreeSet<RouterId>,
        sinks: &BTreeSet<RouterId>,
    ) -> Option<usize> {
        if sources.intersection(sinks).next().is_some() {
            return None;
        }
        let n = self.len();
        // Vertex splitting: node v -> v_in (2v), v_out (2v+1).
        // Internal capacity 1 for ordinary routers, "infinite" for
        // sources/sinks; edges have infinite capacity.
        const INF: i64 = i64::MAX / 4;
        let num = 2 * n + 2;
        let s = 2 * n;
        let t = 2 * n + 1;
        let mut flow = MaxFlow::new(num);
        for v in 0..n {
            let rid = RouterId(v);
            let cap =
                if sources.contains(&rid) || sinks.contains(&rid) { INF } else { 1 };
            flow.add_edge(2 * v, 2 * v + 1, cap);
            for &w in &self.adj[v] {
                flow.add_edge(2 * v + 1, 2 * w, INF);
            }
            if sources.contains(&rid) {
                flow.add_edge(s, 2 * v, INF);
            }
            if sinks.contains(&rid) {
                flow.add_edge(2 * v + 1, t, INF);
            }
        }
        let cut = flow.max_flow(s, t);
        if cut >= INF {
            None
        } else {
            Some(cut as usize)
        }
    }
}

/// Dinic's algorithm, small and dependency-free.
struct MaxFlow {
    graph: Vec<Vec<usize>>,
    to: Vec<usize>,
    cap: Vec<i64>,
}

impl MaxFlow {
    fn new(n: usize) -> MaxFlow {
        MaxFlow { graph: vec![Vec::new(); n], to: Vec::new(), cap: Vec::new() }
    }

    fn add_edge(&mut self, a: usize, b: usize, cap: i64) {
        self.graph[a].push(self.to.len());
        self.to.push(b);
        self.cap.push(cap);
        self.graph[b].push(self.to.len());
        self.to.push(a);
        self.cap.push(0);
    }

    fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let mut total = 0i64;
        loop {
            // BFS levels.
            let mut level = vec![usize::MAX; self.graph.len()];
            level[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(v) = queue.pop_front() {
                for &e in &self.graph[v] {
                    if self.cap[e] > 0 && level[self.to[e]] == usize::MAX {
                        level[self.to[e]] = level[v] + 1;
                        queue.push_back(self.to[e]);
                    }
                }
            }
            if level[t] == usize::MAX {
                return total;
            }
            // DFS blocking flow.
            let mut iter = vec![0usize; self.graph.len()];
            loop {
                let pushed = self.dfs(s, t, i64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(&mut self, v: usize, t: usize, limit: i64, level: &[usize], iter: &mut [usize]) -> i64 {
        if v == t {
            return limit;
        }
        while iter[v] < self.graph[v].len() {
            let e = self.graph[v][iter[v]];
            let w = self.to[e];
            if self.cap[e] > 0 && level[w] == level[v] + 1 {
                let pushed = self.dfs(w, t, limit.min(self.cap[e]), level, iter);
                if pushed > 0 {
                    self.cap[e] -= pushed;
                    self.cap[e ^ 1] += pushed;
                    return pushed;
                }
            }
            iter[v] += 1;
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a graph directly from an edge list (bypassing configs).
    fn graph(n: usize, edges: &[(usize, usize)]) -> RouterGraph {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        RouterGraph { adj }
    }

    fn set(ids: &[usize]) -> BTreeSet<RouterId> {
        ids.iter().map(|&i| RouterId(i)).collect()
    }

    #[test]
    fn what_if_removal_partitions() {
        // 0 - 1 - 2: removing router 1 splits the rest.
        let g = graph(3, &[(0, 1), (1, 2)]);
        let comps = g.components_without(&set(&[1]));
        assert_eq!(comps, vec![vec![RouterId(0)], vec![RouterId(2)]]);
        // Removing a leaf leaves one component.
        assert_eq!(g.components_without(&set(&[2])).len(), 1);
        // Removing everything leaves nothing.
        assert!(g.components_without(&set(&[0, 1, 2])).is_empty());
    }

    #[test]
    fn components_found() {
        let g = graph(5, &[(0, 1), (1, 2), (3, 4)]);
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![RouterId(0), RouterId(1), RouterId(2)]);
        assert_eq!(comps[1], vec![RouterId(3), RouterId(4)]);
    }

    #[test]
    fn articulation_in_a_path() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.articulation_routers(), vec![RouterId(1)]);
    }

    #[test]
    fn no_articulation_in_a_cycle() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(g.articulation_routers().is_empty());
    }

    #[test]
    fn articulation_root_case() {
        // Star: center is an articulation point (root of the DFS).
        let g = graph(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.articulation_routers(), vec![RouterId(0)]);
    }

    #[test]
    fn min_cut_single_bridge_router() {
        // 0 - 1 - 2: separating {0} from {2} requires removing router 1.
        let g = graph(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.min_router_cut(&set(&[0]), &set(&[2])), Some(1));
    }

    #[test]
    fn min_cut_redundant_borders() {
        // Two disjoint 2-hop paths from 0 to 5: cut is 2, like net5's
        // redundant redistribution routers.
        let g = graph(6, &[(0, 1), (1, 5), (0, 2), (2, 5), (3, 4)]);
        assert_eq!(g.min_router_cut(&set(&[0]), &set(&[5])), Some(2));
    }

    #[test]
    fn min_cut_adjacent_endpoints_impossible() {
        let g = graph(2, &[(0, 1)]);
        assert_eq!(g.min_router_cut(&set(&[0]), &set(&[1])), None);
        assert_eq!(g.min_router_cut(&set(&[0]), &set(&[0])), None);
    }

    #[test]
    fn min_cut_disconnected_is_zero() {
        let g = graph(4, &[(0, 1), (2, 3)]);
        assert_eq!(g.min_router_cut(&set(&[0]), &set(&[2])), Some(0));
    }

    #[test]
    fn six_redundant_redistributors_like_net5() {
        // 1 hub side, 6 parallel middle routers, 1 far side.
        let mut edges = Vec::new();
        for m in 1..=6 {
            edges.push((0, m));
            edges.push((m, 7));
        }
        let g = graph(8, &edges);
        assert_eq!(g.min_router_cut(&set(&[0]), &set(&[7])), Some(6));
        assert!(g.articulation_routers().is_empty());
    }
}
