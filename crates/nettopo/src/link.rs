//! Logical-link inference by subnet matching (paper Section 2.1).
//!
//! "From the configuration files, we infer the logical IP links between
//! routers by matching interfaces with the same subnet." An interface that
//! matches no other interface is a candidate external-facing interface;
//! subnets with more than two interfaces are multipoint links.

use std::collections::BTreeMap;

use netaddr::Prefix;

use crate::network::{Network, RouterId};

/// A reference to one interface: router plus index into its interface list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IfaceRef {
    /// Owning router.
    pub router: RouterId,
    /// Index into that router's `config.interfaces`.
    pub iface: usize,
}

/// The kind of an inferred link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKind {
    /// Exactly two interfaces share the subnet.
    PointToPoint,
    /// More than two interfaces share the subnet (e.g. an Ethernet).
    Multipoint,
    /// Only one interface was found in the corpus; the other end is
    /// outside the data set (external peer, host LAN, or missing router).
    Unmatched,
}

/// A logical IP link: a subnet and the interfaces on it.
#[derive(Clone, Debug)]
pub struct Link {
    /// The shared subnet.
    pub subnet: Prefix,
    /// Interfaces configured into this subnet, in (router, iface) order.
    pub endpoints: Vec<IfaceRef>,
}

impl Link {
    /// Classifies the link by endpoint count.
    pub fn kind(&self) -> LinkKind {
        match self.endpoints.len() {
            0 | 1 => LinkKind::Unmatched,
            2 => LinkKind::PointToPoint,
            _ => LinkKind::Multipoint,
        }
    }

    /// The distinct routers on the link.
    pub fn routers(&self) -> Vec<RouterId> {
        let mut ids: Vec<RouterId> = self.endpoints.iter().map(|e| e.router).collect();
        ids.sort();
        ids.dedup();
        ids
    }
}

/// All inferred links of a network, indexed by subnet.
#[derive(Clone, Debug, Default)]
pub struct LinkMap {
    /// Subnet → link. BTreeMap for deterministic iteration.
    pub links: BTreeMap<Prefix, Link>,
}

impl LinkMap {
    /// Infers links for a network.
    ///
    /// Shutdown interfaces are skipped (they terminate no live link);
    /// unnumbered interfaces contribute no subnet and are handled by the
    /// external-facing analysis instead. Secondary addresses participate
    /// exactly like primaries.
    pub fn build(net: &Network) -> LinkMap {
        let mut links: BTreeMap<Prefix, Link> = BTreeMap::new();
        for (rid, router) in net.iter() {
            for (idx, iface) in router.config.interfaces.iter().enumerate() {
                if iface.shutdown {
                    continue;
                }
                for subnet in iface.subnets() {
                    // /32s identify the router itself (loopbacks), not links.
                    if subnet.len() == 32 {
                        continue;
                    }
                    links
                        .entry(subnet)
                        .or_insert_with(|| Link { subnet, endpoints: Vec::new() })
                        .endpoints
                        .push(IfaceRef { router: rid, iface: idx });
                }
            }
        }
        LinkMap { links }
    }

    /// Links that connect two or more routers of the corpus.
    pub fn internal_links(&self) -> impl Iterator<Item = &Link> {
        self.links.values().filter(|l| l.routers().len() >= 2)
    }

    /// Links with a single endpoint in the corpus.
    pub fn unmatched_links(&self) -> impl Iterator<Item = &Link> {
        self.links.values().filter(|l| l.kind() == LinkKind::Unmatched)
    }

    /// The link a given interface's primary address is on, if any.
    pub fn link_of(&self, subnet: Prefix) -> Option<&Link> {
        self.links.get(&subnet)
    }

    /// Pairs of routers that share at least one link (deduplicated).
    pub fn router_pairs(&self) -> Vec<(RouterId, RouterId)> {
        let mut pairs = Vec::new();
        for link in self.links.values() {
            let routers = link.routers();
            for (i, a) in routers.iter().enumerate() {
                for b in &routers[i + 1..] {
                    pairs.push((*a, *b));
                }
            }
        }
        pairs.sort();
        pairs.dedup();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn net3() -> Network {
        // r0 -- /30 -- r1 ; r0,r1,r2 on a /24 Ethernet; r2 has a stub /30.
        Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 interface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 interface Ethernet0\n ip address 10.1.0.2 255.255.255.0\n"
                    .into(),
            ),
            (
                "config3".into(),
                "interface Ethernet0\n ip address 10.1.0.3 255.255.255.0\n\
                 interface Serial1\n ip address 192.0.2.1 255.255.255.252\n"
                    .into(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn matches_interfaces_into_links() {
        let net = net3();
        let links = LinkMap::build(&net);
        assert_eq!(links.links.len(), 3);
        let p2p = links.link_of("10.0.0.0/30".parse().unwrap()).unwrap();
        assert_eq!(p2p.kind(), LinkKind::PointToPoint);
        assert_eq!(p2p.routers(), vec![RouterId(0), RouterId(1)]);
        let mp = links.link_of("10.1.0.0/24".parse().unwrap()).unwrap();
        assert_eq!(mp.kind(), LinkKind::Multipoint);
        assert_eq!(mp.routers().len(), 3);
        let stub = links.link_of("192.0.2.0/30".parse().unwrap()).unwrap();
        assert_eq!(stub.kind(), LinkKind::Unmatched);
    }

    #[test]
    fn internal_and_unmatched_partitions() {
        let net = net3();
        let links = LinkMap::build(&net);
        assert_eq!(links.internal_links().count(), 2);
        assert_eq!(links.unmatched_links().count(), 1);
    }

    #[test]
    fn router_pairs_deduplicated() {
        let net = net3();
        let links = LinkMap::build(&net);
        let pairs = links.router_pairs();
        assert_eq!(
            pairs,
            vec![
                (RouterId(0), RouterId(1)),
                (RouterId(0), RouterId(2)),
                (RouterId(1), RouterId(2)),
            ]
        );
    }

    #[test]
    fn shutdown_and_loopback_excluded() {
        let net = Network::from_texts(vec![(
            "config1".into(),
            "interface Loopback0\n ip address 10.9.9.9 255.255.255.255\n\
             interface Serial0\n ip address 10.0.0.1 255.255.255.252\n shutdown\n"
                .into(),
        )])
        .unwrap();
        let links = LinkMap::build(&net);
        assert!(links.links.is_empty());
    }
}
