//! Corpus statistics: the interface census (Table 3) and configuration
//! size distributions (Figure 4).

use std::collections::BTreeMap;

use crate::network::Network;

/// Table 3: interface counts by type, plus the unnumbered count quoted in
/// Section 2.1 (528 of 96,487 in the paper's corpus).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InterfaceCensus {
    /// Count per census label (`Serial`, `FastEthernet`, ..., `Port`).
    pub by_type: BTreeMap<String, usize>,
    /// Total interfaces.
    pub total: usize,
    /// Interfaces configured as `ip unnumbered <other>`.
    pub unnumbered: usize,
}

impl InterfaceCensus {
    /// Censuses one network.
    pub fn of(net: &Network) -> InterfaceCensus {
        let mut census = InterfaceCensus::default();
        census.add(net);
        census
    }

    /// Accumulates another network into this census (the paper's Table 3
    /// aggregates all 31 networks).
    pub fn add(&mut self, net: &Network) {
        for (_, router) in net.iter() {
            for iface in &router.config.interfaces {
                *self
                    .by_type
                    .entry(iface.name.ty.census_label().to_string())
                    .or_insert(0) += 1;
                self.total += 1;
                if iface.is_unnumbered() {
                    self.unnumbered += 1;
                }
            }
        }
    }

    /// Count for one type label (0 if absent).
    pub fn count(&self, label: &str) -> usize {
        self.by_type.get(label).copied().unwrap_or(0)
    }

    /// Rows sorted ascending by count, as the paper's Table 3 prints them.
    pub fn rows_ascending(&self) -> Vec<(&str, usize)> {
        let mut rows: Vec<(&str, usize)> =
            self.by_type.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        rows.sort_by_key(|(name, count)| (*count, name.to_string()));
        rows
    }

    /// Whether POS interfaces are present (Section 7.3 uses POS as the
    /// backbone signature).
    pub fn uses_pos(&self) -> bool {
        self.count("POS") > 0
    }
}

/// Figure 4: configuration-file size distribution for one network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigSizeStats {
    /// Command-line counts, sorted ascending.
    pub sizes: Vec<usize>,
    /// Sum of all command lines ("237,870 commands" for net5).
    pub total_commands: usize,
}

impl ConfigSizeStats {
    /// Gathers the distribution for a network.
    pub fn of(net: &Network) -> ConfigSizeStats {
        let mut sizes: Vec<usize> =
            net.routers.iter().map(|r| r.command_lines).collect();
        sizes.sort_unstable();
        let total_commands = sizes.iter().sum();
        ConfigSizeStats { sizes, total_commands }
    }

    /// Mean command lines per file.
    pub fn mean(&self) -> f64 {
        if self.sizes.is_empty() {
            return 0.0;
        }
        self.total_commands as f64 / self.sizes.len() as f64
    }

    /// The `q`-quantile (0.0..=1.0) of the size distribution.
    pub fn quantile(&self, q: f64) -> usize {
        if self.sizes.is_empty() {
            return 0;
        }
        let pos = ((self.sizes.len() - 1) as f64 * q).round() as usize;
        self.sizes[pos]
    }

    /// Largest configuration.
    pub fn max(&self) -> usize {
        self.sizes.last().copied().unwrap_or(0)
    }

    /// Smallest configuration.
    pub fn min(&self) -> usize {
        self.sizes.first().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use ioscfg::InterfaceType;

    fn sample_net() -> Network {
        Network::from_texts(vec![
            (
                "config1".into(),
                "interface Serial0\n ip address 10.0.0.1 255.255.255.252\n\
                 interface FastEthernet0/0\n ip address 10.1.0.1 255.255.255.0\n\
                 interface POS3/0\n ip address 10.2.0.1 255.255.255.252\n"
                    .into(),
            ),
            (
                "config2".into(),
                "interface Serial0\n ip address 10.0.0.2 255.255.255.252\n\
                 interface Loopback0\n ip address 10.9.9.9 255.255.255.255\n\
                 interface Serial1\n ip unnumbered Loopback0\n\
                 interface Port-channel1\n ip address 10.3.0.1 255.255.255.0\n"
                    .into(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn census_counts_by_label() {
        let census = InterfaceCensus::of(&sample_net());
        assert_eq!(census.total, 7);
        assert_eq!(census.count("Serial"), 3);
        assert_eq!(census.count("FastEthernet"), 1);
        assert_eq!(census.count("POS"), 1);
        assert_eq!(census.count("Port"), 1);
        assert_eq!(census.count("Loopback"), 1);
        assert_eq!(census.unnumbered, 1);
        assert!(census.uses_pos());
    }

    #[test]
    fn rows_sorted_ascending_like_table3() {
        let census = InterfaceCensus::of(&sample_net());
        let rows = census.rows_ascending();
        assert_eq!(rows.last().unwrap().0, "Serial");
        assert!(rows.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn census_accumulates_across_networks() {
        let mut census = InterfaceCensus::of(&sample_net());
        census.add(&sample_net());
        assert_eq!(census.total, 14);
        assert_eq!(census.count("Serial"), 6);
    }

    #[test]
    fn size_stats() {
        let stats = ConfigSizeStats::of(&sample_net());
        assert_eq!(stats.sizes, vec![6, 8]);
        assert_eq!(stats.total_commands, 14);
        assert_eq!(stats.mean(), 7.0);
        assert_eq!(stats.min(), 6);
        assert_eq!(stats.max(), 8);
        assert_eq!(stats.quantile(0.5), 8);
    }

    #[test]
    fn interface_type_labels_cover_table3() {
        // All 19 labels the paper's Table 3 lists are producible.
        let labels: Vec<&str> = InterfaceType::all_known()
            .iter()
            .map(|t| t.census_label())
            .map(|s| Box::leak(s.to_string().into_boxed_str()) as &str)
            .collect();
        for expect in [
            "Null", "Multilink", "Fddi", "CBR", "Channel", "Virtual", "Async", "Port",
            "Tunnel", "BRI", "Dialer", "TokenRing", "GigabitEthernet", "Hssi",
            "Ethernet", "POS", "ATM", "FastEthernet", "Serial",
        ] {
            assert!(labels.contains(&expect), "missing label {expect}");
        }
    }
}
