//! The snapshot hot-reload manager.
//!
//! One thread per server, off the accept path: it polls the reload
//! triggers (SIGHUP, `POST /admin/reload`, [`crate::Server::trigger_reload`]),
//! re-reads the snapshot file, rebuilds the pre-rendered response cache,
//! and only then publishes the new state with an atomic Arc swap. The
//! event loops pick it up at their next wake-up via an epoch check;
//! requests in flight keep rendering from the state they started with,
//! so a reload never drops a response and never mixes snapshot versions
//! within one response.
//!
//! A failed reload (unreadable or corrupt snapshot) keeps the old state
//! serving and counts `http.reload_failed`; successes count
//! `http.reload_ok`. Both are visible on `/metrics`, which is how
//! verify.sh waits for a SIGHUP reload to land before byte-comparing
//! pre/post bodies.

use std::sync::Arc;

use rd_snap::Corpus;

use crate::cache::SnapshotState;
use crate::debug::ReloadEvent;
use crate::{Shared, POLL_IDLE};

pub(crate) fn run(shared: Arc<Shared>) {
    loop {
        std::thread::sleep(POLL_IDLE);
        if shared.is_shutdown() {
            return;
        }
        if !shared.take_reload_request() {
            continue;
        }
        let Some(path) = shared.reload_path.clone() else {
            rd_obs::metrics::counter_add("http.reload_failed", 1);
            eprintln!("rd-serve: reload requested but no snapshot file configured");
            continue;
        };
        match Corpus::read_file_with_trailer(&path) {
            Ok((corpus, trailer)) => {
                // The expensive part — rendering every static endpoint —
                // happens here, on this thread, against a corpus the
                // loops cannot see yet. The swap itself is one Arc store.
                let state = SnapshotState::build(
                    corpus,
                    Some(trailer),
                    shared.cache_enabled,
                    shared.plan.clone(),
                );
                let (etag, networks) = (state.etag.clone(), state.corpus.networks.len());
                shared.swap_state(Arc::new(state));
                shared.set_health(crate::HealthState::Fresh);
                rd_obs::metrics::counter_add("http.reload_ok", 1);
                shared.push_reload_event(ReloadEvent {
                    at_ms: shared.uptime_ms(),
                    ok: true,
                    etag,
                    networks,
                    detail: "reload".to_string(),
                });
            }
            Err(e) => {
                // Keep serving the old snapshot; a bad file on disk must
                // not take the server down. `/healthz` now reports the
                // serving state as stale until a reload lands.
                shared.set_health(crate::HealthState::Stale);
                rd_obs::metrics::counter_add("http.reload_failed", 1);
                eprintln!("rd-serve: reload failed: {e}");
                // The history entry records what is *still serving*.
                let still = shared.current_state();
                shared.push_reload_event(ReloadEvent {
                    at_ms: shared.uptime_ms(),
                    ok: false,
                    etag: still.etag.clone(),
                    networks: still.corpus.networks.len(),
                    detail: e.to_string(),
                });
            }
        }
    }
}
