//! `rd-serve`: a zero-dependency, multi-threaded HTTP/1.1 query server
//! over `rd-snap` analysis snapshots.
//!
//! The paper's analysis is extracted once (`rdx snap`) and then queried
//! cheaply: `rdx serve study.rdsnap --addr 127.0.0.1:0` loads the corpus
//! into memory behind an `Arc`; one acceptor thread feeds a bounded
//! connection queue drained by a pool of worker threads (sized like
//! `rd-par`'s `par_map` pool, via [`rd_par::thread_count`]):
//!
//! | Endpoint | Body |
//! |---|---|
//! | `/healthz` | liveness + corpus size |
//! | `/networks` | per-network summary rows |
//! | `/networks/{id}` | one network's full summary |
//! | `/networks/{id}/processes` | that network's routing processes |
//! | `/instances` | routing instances across the corpus |
//! | `/pathways` | per-router pathway depth summaries |
//! | `/diag` | all pipeline diagnostics |
//! | `/metrics` | the rd-obs registry, Prometheus text format |
//!
//! Every request is traced (`http.request` events) and measured
//! (`http.requests` counter, `http.request_us` latency histogram, status
//! class counters), which is what `/metrics` then exports. Strict input
//! limits (see [`http`]) bound per-connection memory; per-connection read
//! **and write** timeouts bound how long a slow or stalled client can
//! hold a worker; when the accept queue is full, new connections are
//! rejected immediately with `503` + `Retry-After` (counted as
//! `http.rejected_busy`) instead of piling up unboundedly; keep-alive is
//! honored; and shutdown is graceful: a flag flipped either
//! programmatically ([`Server::shutdown`]) or by SIGTERM/SIGINT
//! ([`install_signal_handlers`]) stops the acceptor, lets queued and
//! in-flight responses finish, and joins every worker.

#![warn(missing_docs)]

pub mod http;
pub mod render;

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rd_snap::Corpus;

use http::{ReadOutcome, Request};

/// How long the acceptor sleeps when there is nothing to accept, and how
/// long an idle worker waits on the queue before re-checking shutdown.
const ACCEPT_IDLE: Duration = Duration::from_millis(10);
/// Per-connection read timeout: bounds how long a keep-alive connection
/// can sit idle holding a worker, and how long a slow client can take to
/// deliver one request head.
const READ_TIMEOUT: Duration = Duration::from_millis(2000);
/// Per-connection write timeout: bounds how long a stalled client (zero
/// receive window, dropped link) can hold a worker mid-response.
const WRITE_TIMEOUT: Duration = Duration::from_millis(2000);
/// Bound on accepted-but-not-yet-served connections. Past this, new
/// connections get an immediate `503` + `Retry-After` rejection instead
/// of queueing unboundedly.
const ACCEPT_QUEUE_DEPTH: usize = 64;
/// Latency histogram bounds, in microseconds.
const LATENCY_BOUNDS_US: &[u64] = &[50, 100, 250, 500, 1000, 2500, 5000, 25000, 100_000];

/// Set by the signal handler; checked by every accept and keep-alive loop
/// alongside the server's own flag.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM and SIGINT handlers that request a graceful shutdown
/// of every [`Server`] in the process.
///
/// The handler only stores to an atomic flag (the sole async-signal-safe
/// thing it could do); accept loops notice it within [`ACCEPT_IDLE`].
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" fn on_signal(_sig: i32) {
            SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
        }
        // Minimal libc binding — the workspace carries no external crates.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// True once a shutdown signal has been delivered.
pub fn signal_shutdown_requested() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
}

/// A running snapshot query server.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// one acceptor thread plus `workers` connection workers draining a
    /// bounded queue. With `workers` 0, the pool is sized by
    /// [`rd_par::thread_count`] (the `RD_THREADS` environment override
    /// applies), clamped to at least 2 so one long-polling connection
    /// cannot starve the server.
    pub fn start(corpus: Corpus, addr: &str, workers: usize) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let corpus = Arc::new(corpus);
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue::default());
        let pool = if workers == 0 { rd_par::thread_count().max(2) } else { workers };

        let mut handles = Vec::with_capacity(pool + 1);
        {
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            handles.push(
                std::thread::Builder::new()
                    .name("rd-serve-accept".to_string())
                    .spawn(move || acceptor_loop(listener, queue, shutdown))
                    .expect("spawn acceptor"),
            );
        }
        for i in 0..pool {
            let queue = Arc::clone(&queue);
            let corpus = Arc::clone(&corpus);
            let shutdown = Arc::clone(&shutdown);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rd-serve-{i}"))
                    .spawn(move || worker_loop(queue, corpus, shutdown))
                    .expect("spawn worker"),
            );
        }
        rd_obs::metrics::gauge_set("http.workers", pool as i64);
        Ok(Server { local_addr, shutdown, workers: handles })
    }

    /// The actual bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests a graceful stop and joins every worker. In-flight
    /// responses complete; idle keep-alive connections are closed.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for h in self.workers {
            let _ = h.join();
        }
    }

    /// Blocks until a shutdown is requested (programmatically or via a
    /// signal), then joins the workers. This is what `rdx serve` calls
    /// after printing the bound address.
    pub fn run_until_shutdown(self) {
        while !self.shutdown.load(Ordering::SeqCst) && !signal_shutdown_requested() {
            std::thread::sleep(ACCEPT_IDLE);
        }
        self.shutdown();
    }
}

fn shutting_down(flag: &AtomicBool) -> bool {
    flag.load(Ordering::SeqCst) || signal_shutdown_requested()
}

/// The bounded handoff between the acceptor and the workers. A plain
/// `Mutex<VecDeque>` + `Condvar`: pushes past [`ACCEPT_QUEUE_DEPTH`] are
/// refused (the acceptor then sends the 503 rejection), pops wait with a
/// timeout so idle workers keep noticing shutdown.
#[derive(Default)]
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl ConnQueue {
    /// Tries to enqueue a connection; hands it back when the queue is full.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
        if q.len() >= ACCEPT_QUEUE_DEPTH {
            return Err(stream);
        }
        q.push_back(stream);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops one connection, waiting up to `timeout` for one to arrive.
    fn pop(&self, timeout: Duration) -> Option<TcpStream> {
        let mut q = self.queue.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(s) = q.pop_front() {
            return Some(s);
        }
        let (mut q, _) = self
            .ready
            .wait_timeout(q, timeout)
            .unwrap_or_else(|p| p.into_inner());
        q.pop_front()
    }
}

fn acceptor_loop(listener: TcpListener, queue: Arc<ConnQueue>, shutdown: Arc<AtomicBool>) {
    while !shutting_down(&shutdown) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Err(mut rejected) = queue.push(stream) {
                    // Backpressure: the queue is full, so refuse loudly and
                    // immediately rather than letting connections pile up.
                    rd_obs::metrics::counter_add("http.rejected_busy", 1);
                    record_request("-", "-", 503, 0);
                    let _ = rejected.set_write_timeout(Some(WRITE_TIMEOUT));
                    let _ = http::write_busy(&mut rejected);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_IDLE);
            }
            Err(_) => std::thread::sleep(ACCEPT_IDLE),
        }
    }
}

fn worker_loop(queue: Arc<ConnQueue>, corpus: Arc<Corpus>, shutdown: Arc<AtomicBool>) {
    loop {
        match queue.pop(ACCEPT_IDLE) {
            Some(stream) => handle_connection(stream, &corpus, &shutdown),
            // Drain the queue even during shutdown: accepted connections
            // get a response; only an empty queue lets a worker exit.
            None if shutting_down(&shutdown) => return,
            None => {}
        }
    }
}

fn handle_connection(mut stream: TcpStream, corpus: &Corpus, shutdown: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    loop {
        match http::read_request(&mut stream) {
            ReadOutcome::Closed => return,
            ReadOutcome::Error(e) => {
                record_request("-", "-", e.status, 0);
                let body = http::error_body(e.status, &e.message);
                let _ = http::write_response(&mut stream, e.status, "application/json", &body, false);
                lingering_close(stream);
                return;
            }
            ReadOutcome::Request(req) => {
                let started = Instant::now();
                let keep_alive = req.keep_alive && !shutting_down(shutdown);
                let (status, content_type, body) = respond(corpus, &req, &mut stream);
                let us = started.elapsed().as_micros() as u64;
                record_request(&req.method, &req.target, status, us);
                if http::write_response(&mut stream, status, content_type, &body, keep_alive)
                    .is_err()
                {
                    return;
                }
                if !keep_alive {
                    return;
                }
            }
        }
    }
}

/// Closes an errored connection without triggering a TCP reset: unread
/// request bytes in the receive buffer would otherwise turn the close
/// into an RST that can discard the error response before the client
/// reads it. Shutting down the write side and draining (bounded by the
/// read timeout and a byte cap) lets the response reach the peer.
fn lingering_close(mut stream: TcpStream) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut drained = 0usize;
    let mut buf = [0u8; 4096];
    while drained < 1024 * 1024 {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Routes one request. Returns `(status, content type, body)`.
fn respond(
    corpus: &Corpus,
    req: &Request,
    stream: &mut TcpStream,
) -> (u16, &'static str, String) {
    // Transport-level protections come before semantics: an oversized
    // declared body is rejected whatever the method or path.
    if req.content_length > http::MAX_BODY_BYTES {
        return (413, "application/json", http::error_body(413, "request body exceeds limit"));
    }
    if req.content_length > 0 && http::drain_body(stream, req.content_length).is_err() {
        return (400, "application/json", http::error_body(400, "request body truncated"));
    }
    if req.method != "GET" {
        return (
            405,
            "application/json",
            http::error_body(405, &format!("method {} not allowed", req.method)),
        );
    }

    let path = req.target.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => (200, "application/json", render::healthz(corpus)),
        ["networks"] => (200, "application/json", render::networks_index(corpus)),
        ["networks", id] => match corpus.get(id) {
            Some(n) => (200, "application/json", render::network_summary(n)),
            None => (404, "application/json", http::error_body(404, &format!("no network '{id}'"))),
        },
        ["networks", id, "processes"] => match corpus.get(id) {
            Some(n) => (200, "application/json", render::network_processes(n)),
            None => (404, "application/json", http::error_body(404, &format!("no network '{id}'"))),
        },
        ["instances"] => (200, "application/json", render::instances(corpus)),
        ["pathways"] => (200, "application/json", render::pathways(corpus)),
        ["diag"] => (200, "application/json", render::diag(corpus)),
        ["metrics"] => (
            200,
            "text/plain; version=0.0.4",
            rd_obs::metrics::render_prometheus(),
        ),
        _ => (404, "application/json", http::error_body(404, &format!("no route for {path}"))),
    }
}

/// Records the per-request observability: counters, the latency
/// histogram, and a trace event (visible with `RD_TRACE=...`).
fn record_request(method: &str, target: &str, status: u16, us: u64) {
    rd_obs::metrics::counter_add("http.requests", 1);
    rd_obs::metrics::counter_add(&format!("http.responses.{}xx", status / 100), 1);
    rd_obs::metrics::histogram_record("http.request_us", us, LATENCY_BOUNDS_US);
    rd_obs::trace::event(
        "http.request",
        &[
            ("method", method.into()),
            ("target", target.into()),
            ("status", i64::from(status).into()),
            ("us", (us as i64).into()),
        ],
    );
}
