//! `rd-serve`: a zero-dependency, epoll-based HTTP/1.1 query server over
//! `rd-snap` analysis snapshots.
//!
//! The paper's analysis is extracted once (`rdx snap`) and then queried
//! cheaply: `rdx serve study.rdsnap --addr 127.0.0.1:0` loads the corpus
//! into memory and serves it from a readiness-driven event loop (see
//! [`event_loop`] internals: non-blocking accept/read/write,
//! per-connection state machines with partial-read/partial-write
//! buffers, a lazy deadline wheel). Because every GET body is a pure
//! function of the loaded snapshot, static endpoints are rendered once
//! per snapshot into a pre-rendered response cache keyed by the
//! snapshot's FNV-1a-64 trailer — the common case is a single memcpy of
//! cached bytes, which is what takes mixed-endpoint throughput from
//! thousands to hundreds of thousands of requests per second:
//!
//! | Endpoint | Body |
//! |---|---|
//! | `/healthz` | health state + corpus size (`?live=1` = pure liveness) |
//! | `/networks` | per-network summary rows |
//! | `/networks/{id}` | one network's full summary |
//! | `/networks/{id}/processes` | that network's routing processes |
//! | `/instances` | routing instances across the corpus |
//! | `/pathways` | per-router pathway depth summaries |
//! | `/diag` | all pipeline diagnostics |
//! | `/metrics` | the rd-obs registry, Prometheus text format |
//! | `/admin/debug/loop` | per-event-loop health (wakeups, slab, wheel) |
//! | `/admin/debug/conns` | live connections: state, age, buffers |
//! | `/admin/debug/cache` | serving snapshot + reload history ring |
//! | `/admin/debug/watch` | watcher health state + supervisor status |
//! | `POST /admin/reload` | schedule a snapshot hot reload |
//!
//! Snapshot-derived responses carry the trailer as an `ETag` and honor
//! `If-None-Match` with `304`. Hot reload (SIGHUP or `POST
//! /admin/reload`) re-reads the snapshot file and rebuilds the cache on
//! a manager thread, then swaps an `Arc` — in-flight requests keep the
//! snapshot they started with, so no response ever mixes versions and
//! none are dropped. GET and HEAD are served everywhere (HEAD elides the
//! body, keeps `content-length`); keep-alive and pipelining are honored;
//! `400`/`413`/`431` rejections close cleanly through a lingering close.
//!
//! Every request is traced (`http.request` events) and measured
//! (`http.requests`, `http.cache_hit`/`http.cache_miss`, status-class
//! counters, the `http.request_us` histogram) with per-loop batching so
//! the metrics mutex is off the hot path. Strict input limits (see
//! [`http`]) bound per-connection memory; read, write, and linger
//! deadlines bound slow clients; past `--max-conns` live connections,
//! new ones get a `503` + `Retry-After` (counted as
//! `http.rejected_busy`), delivered through the same lingering close as
//! other rejections, with the socket briefly holding a connection slot
//! while the refusal flushes. Shutdown is graceful: a flag flipped either
//! programmatically ([`Server::shutdown`]) or by SIGTERM/SIGINT
//! ([`install_signal_handlers`]) stops accepting, flushes in-flight
//! responses, and joins every loop.

#![warn(missing_docs)]

pub mod http;
pub mod render;

mod cache;
mod debug;
mod event_loop;
mod reload;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rd_snap::Corpus;

use cache::SnapshotState;
use debug::{LoopDebug, ReloadEvent};

/// Latency histogram bounds, in microseconds.
pub(crate) const LATENCY_BOUNDS_US: &[u64] =
    &[50, 100, 250, 500, 1000, 2500, 5000, 25000, 100_000];
/// Bounds for `loop.epoll_wait_us` and `loop.iter_us`: a healthy loop
/// either sleeps (wait up to the 100 ms epoll timeout) or turns over in
/// microseconds, so the interesting signal is the tail.
pub(crate) const LOOP_US_BOUNDS: &[u64] = &[10, 100, 1000, 10_000, 100_000];
/// Bounds for `loop.wakeup_events` (events delivered per epoll wake-up).
pub(crate) const WAKEUP_BATCH_BOUNDS: &[u64] = &[1, 2, 4, 16, 64, 256];
/// Bounds for `http.conn_age_ms` (connection age at close).
pub(crate) const CONN_AGE_BOUNDS_MS: &[u64] = &[1, 10, 100, 1000, 10_000, 60_000];

/// How often `run_until_shutdown` and the reload manager re-check flags.
const POLL_IDLE: Duration = Duration::from_millis(50);

/// Set by SIGTERM/SIGINT; checked by every loop alongside the server's
/// own flag.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// Set by SIGHUP; drained by the reload manager.
static SIGNAL_RELOAD: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM/SIGINT handlers that request a graceful shutdown of
/// every [`Server`] in the process, and a SIGHUP handler that requests a
/// snapshot hot reload.
///
/// The handlers only store to atomic flags (the sole async-signal-safe
/// thing they could do); the loops and the reload manager notice within
/// their poll intervals.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" fn on_signal(sig: i32) {
            const SIGHUP: i32 = 1;
            if sig == SIGHUP {
                SIGNAL_RELOAD.store(true, Ordering::SeqCst);
            } else {
                SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
            }
        }
        // Minimal libc binding — the workspace carries no external crates.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGHUP: i32 = 1;
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGHUP, handler);
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// True once a shutdown signal has been delivered.
pub fn signal_shutdown_requested() -> bool {
    SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
}

/// The serving health state machine surfaced at `/healthz`.
///
/// `rdx serve` alone moves between `Fresh` and `Stale` (a failed hot
/// reload keeps the last-good snapshot serving); `rdx watch` drives all
/// three states — repeated analysis failures escalate `Stale` to
/// `Degraded`, which turns `/healthz` non-200 (the liveness form
/// `/healthz?live=1` stays 200 as long as the process answers at all).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// The served snapshot reflects the latest known input.
    Fresh,
    /// The latest reload/analysis failed; the last-good snapshot is
    /// still serving.
    Stale,
    /// Repeated failures: still serving last-good, but operator
    /// attention is needed. `/healthz` answers 503.
    Degraded,
}

impl HealthState {
    /// The wire name of the state, as rendered in `/healthz` bodies and
    /// the `watch_health` gauge.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Fresh => "fresh",
            HealthState::Stale => "stale-serving-last-good",
            HealthState::Degraded => "degraded",
        }
    }

    fn from_u8(v: u8) -> HealthState {
        match v {
            1 => HealthState::Stale,
            2 => HealthState::Degraded,
            _ => HealthState::Fresh,
        }
    }
}

/// Watcher status published by `rdx watch` and rendered at
/// `/admin/debug/watch`. All timestamps are uptime milliseconds
/// ([`Controller::uptime_ms`]).
#[derive(Clone, Debug, Default)]
pub struct WatchStatus {
    /// Successful analysis publishes since the watcher started.
    pub generation: u64,
    /// Total failed analysis attempts.
    pub failures: u64,
    /// Failed attempts since the last success.
    pub consecutive_failures: u32,
    /// Current backoff before the next retry (0 when healthy).
    pub backoff_ms: u64,
    /// The last analysis error, if the most recent attempt failed.
    pub last_error: Option<String>,
    /// When the last config change was observed.
    pub last_change_ms: u64,
    /// When the last successful publish landed.
    pub last_publish_ms: u64,
    /// Router-config fingerprints currently tracked.
    pub fingerprints: usize,
}

/// Server tuning knobs beyond the classic `(corpus, addr, workers)`.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Event-loop threads; 0 sizes by [`rd_par::thread_count`].
    pub workers: usize,
    /// Live-connection cap; past it, accepts get `503` + `Retry-After`.
    pub max_conns: usize,
    /// Pre-render every static endpoint at load (the debug escape hatch
    /// `--no-cache` turns this off; bodies stay byte-identical).
    pub cache: bool,
    /// Snapshot file re-read on SIGHUP / `POST /admin/reload`. `None`
    /// disables file-based reload (programmatic
    /// [`Server::swap_corpus`] still works).
    pub reload_path: Option<PathBuf>,
    /// Reconfiguration-plan document (the `rdx plan --json` bytes)
    /// served verbatim at `/plan`; `None` 404s the endpoint. The plan
    /// survives hot reloads — it describes the migration, not the
    /// snapshot.
    pub plan: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions { workers: 0, max_conns: 1024, cache: true, reload_path: None, plan: None }
    }
}

/// State shared by every loop thread and the reload manager.
pub(crate) struct Shared {
    state: Mutex<Arc<SnapshotState>>,
    epoch: AtomicU64,
    shutdown: AtomicBool,
    reload_requested: AtomicBool,
    pub(crate) conn_count: AtomicUsize,
    pub(crate) max_conns: usize,
    pub(crate) cache_enabled: bool,
    pub(crate) reload_path: Option<PathBuf>,
    /// The `/plan` document, re-attached to every rebuilt snapshot state.
    pub(crate) plan: Option<Arc<String>>,
    /// When the server started (uptime base for debug timestamps).
    started: Instant,
    /// Per-loop self-published debug snapshots, indexed by loop id.
    debug: Mutex<Vec<Option<LoopDebug>>>,
    /// Ring of (re)load events, oldest first; entry zero is the boot load.
    reload_history: Mutex<Vec<ReloadEvent>>,
    /// The `/healthz` state machine (a [`HealthState`] as `u8`).
    health: AtomicU8,
    /// Last watcher status published by `rdx watch`, if any.
    watch: Mutex<Option<WatchStatus>>,
}

impl Shared {
    /// The current snapshot state. Loops call this only when the epoch
    /// moved, so the mutex is off the request path.
    pub(crate) fn current_state(&self) -> Arc<SnapshotState> {
        Arc::clone(&self.state.lock().unwrap_or_else(|p| p.into_inner()))
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Atomically publishes a new snapshot state.
    pub(crate) fn swap_state(&self, next: Arc<SnapshotState>) {
        *self.state.lock().unwrap_or_else(|p| p.into_inner()) = next;
        self.epoch.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal_shutdown_requested()
    }

    pub(crate) fn reload_configured(&self) -> bool {
        self.reload_path.is_some()
    }

    pub(crate) fn request_reload(&self) {
        self.reload_requested.store(true, Ordering::SeqCst);
    }

    /// Drains both reload triggers (admin endpoint, SIGHUP).
    pub(crate) fn take_reload_request(&self) -> bool {
        let admin = self.reload_requested.swap(false, Ordering::SeqCst);
        let sighup = SIGNAL_RELOAD.swap(false, Ordering::SeqCst);
        admin || sighup
    }

    pub(crate) fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Stores a loop's self-published debug snapshot.
    pub(crate) fn publish_loop_debug(&self, loop_id: usize, snap: LoopDebug) {
        let mut slots = self.debug.lock().unwrap_or_else(|p| p.into_inner());
        if loop_id < slots.len() {
            slots[loop_id] = Some(snap);
        }
    }

    /// Appends to the reload-history ring, dropping the oldest entry
    /// past capacity.
    pub(crate) fn push_reload_event(&self, ev: ReloadEvent) {
        let mut ring = self.reload_history.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() >= debug::RELOAD_HISTORY {
            ring.remove(0);
        }
        ring.push(ev);
    }

    /// Renders `/admin/debug/loop` from the published snapshots.
    pub(crate) fn render_debug_loops(&self) -> String {
        let slots = self.debug.lock().unwrap_or_else(|p| p.into_inner());
        debug::render_loops(&slots)
    }

    /// Renders `/admin/debug/conns` from the published snapshots.
    pub(crate) fn render_debug_conns(&self) -> String {
        let slots = self.debug.lock().unwrap_or_else(|p| p.into_inner());
        debug::render_conns(&slots)
    }

    /// Renders `/admin/debug/cache` against the snapshot state the
    /// calling loop is serving from.
    pub(crate) fn render_debug_cache(&self, st: &SnapshotState) -> String {
        let ring = self.reload_history.lock().unwrap_or_else(|p| p.into_inner());
        debug::render_cache(st, &ring, self.uptime_ms())
    }

    pub(crate) fn health(&self) -> HealthState {
        HealthState::from_u8(self.health.load(Ordering::SeqCst))
    }

    pub(crate) fn set_health(&self, state: HealthState) {
        self.health.store(state as u8, Ordering::SeqCst);
        rd_obs::metrics::gauge_set("watch.health", state as u8 as i64);
    }

    pub(crate) fn set_watch_status(&self, status: WatchStatus) {
        *self.watch.lock().unwrap_or_else(|p| p.into_inner()) = Some(status);
    }

    /// Renders `/admin/debug/watch` from the published watcher status.
    pub(crate) fn render_debug_watch(&self) -> String {
        let status = self.watch.lock().unwrap_or_else(|p| p.into_inner());
        debug::render_watch(self.health(), status.as_ref(), self.uptime_ms())
    }
}

/// Pre-registers every metric family the server emits, so `/metrics`
/// exposes them (at zero) from the first scrape — the metrics contract
/// in verify.sh asserts presence unconditionally instead of racing the
/// first request or reload. Also stamps `rd.build_info` / uptime.
fn register_serve_metrics() {
    use rd_obs::metrics::{counter_add, gauge_max, histogram_register, set_build_info};
    for name in [
        "http.requests",
        "http.responses.2xx",
        "http.responses.3xx",
        "http.responses.4xx",
        "http.responses.5xx",
        "http.cache_hit",
        "http.cache_miss",
        "http.rejected_busy",
        "http.reload_ok",
        "http.reload_failed",
        "loop.wakeups",
        "loop.backpressure_engaged",
        "loop.backpressure_released",
        "watch.scans",
        "watch.changes",
        "watch.publish_ok",
        "watch.publish_failed",
        "watch.analysis_panics",
    ] {
        counter_add(name, 0);
    }
    rd_obs::metrics::gauge_set("watch.health", HealthState::Fresh as u8 as i64);
    rd_obs::metrics::gauge_set("watch.consecutive_failures", 0);
    rd_obs::metrics::gauge_set("watch.backoff_ms", 0);
    histogram_register("http.request_us", LATENCY_BOUNDS_US);
    histogram_register("http.conn_age_ms", CONN_AGE_BOUNDS_MS);
    histogram_register("loop.epoll_wait_us", LOOP_US_BOUNDS);
    histogram_register("loop.wakeup_events", WAKEUP_BATCH_BOUNDS);
    histogram_register("loop.iter_us", LOOP_US_BOUNDS);
    gauge_max("loop.slab_live_hw", 0);
    gauge_max("loop.wheel_depth_hw", 0);
    set_build_info(env!("CARGO_PKG_VERSION"));
}

/// A running snapshot query server.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// `workers` event-loop threads (0 sizes by [`rd_par::thread_count`];
    /// the `RD_THREADS` environment override applies) with default
    /// [`ServeOptions`].
    pub fn start(corpus: Corpus, addr: &str, workers: usize) -> io::Result<Server> {
        Server::start_with(corpus, addr, ServeOptions { workers, ..ServeOptions::default() })
    }

    /// [`Server::start`] with full options.
    pub fn start_with(corpus: Corpus, addr: &str, opts: ServeOptions) -> io::Result<Server> {
        Server::start_inner(corpus, None, addr, opts)
    }

    /// Loads a snapshot file and serves it, wiring the file in as the
    /// hot-reload source (SIGHUP / `POST /admin/reload` re-read it).
    /// The `ETag` comes from the file's stored trailer — no re-encode.
    pub fn start_file(path: &std::path::Path, addr: &str, mut opts: ServeOptions) -> io::Result<Server> {
        let (corpus, trailer) =
            Corpus::read_file_with_trailer(path).map_err(io::Error::other)?;
        opts.reload_path = Some(path.to_path_buf());
        Server::start_inner(corpus, Some(trailer), addr, opts)
    }

    fn start_inner(
        corpus: Corpus,
        trailer: Option<u64>,
        addr: &str,
        opts: ServeOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let listener = Arc::new(listener);

        let plan = opts.plan.map(Arc::new);
        let state = SnapshotState::build(corpus, trailer, opts.cache, plan.clone());
        let boot = ReloadEvent {
            at_ms: 0,
            ok: true,
            etag: state.etag.clone(),
            networks: state.corpus.networks.len(),
            detail: "boot".to_string(),
        };
        let loops = if opts.workers == 0 { rd_par::thread_count().max(1) } else { opts.workers };
        let shared = Arc::new(Shared {
            state: Mutex::new(Arc::new(state)),
            epoch: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            reload_requested: AtomicBool::new(false),
            conn_count: AtomicUsize::new(0),
            max_conns: opts.max_conns.max(1),
            cache_enabled: opts.cache,
            reload_path: opts.reload_path,
            plan,
            started: Instant::now(),
            debug: Mutex::new((0..loops).map(|_| None).collect()),
            reload_history: Mutex::new(Vec::new()),
            health: AtomicU8::new(HealthState::Fresh as u8),
            watch: Mutex::new(None),
        });
        shared.push_reload_event(boot);
        register_serve_metrics();

        let mut handles = Vec::with_capacity(loops + 1);
        for i in 0..loops {
            let shared = Arc::clone(&shared);
            let listener = Arc::clone(&listener);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rd-serve-loop-{i}"))
                    .spawn(move || event_loop::run(shared, listener, i))
                    .expect("spawn event loop"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name("rd-serve-reload".to_string())
                    .spawn(move || reload::run(shared))
                    .expect("spawn reload manager"),
            );
        }
        rd_obs::metrics::gauge_set("http.workers", loops as i64);
        Ok(Server { local_addr, shared, handles })
    }

    /// The actual bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The entity tag currently served (`"<trailer hex>"`, quoted) —
    /// how tests and operators observe which snapshot is live.
    pub fn etag(&self) -> String {
        self.shared.current_state().etag.clone()
    }

    /// Networks in the currently served corpus.
    pub fn network_count(&self) -> usize {
        self.shared.current_state().corpus.networks.len()
    }

    /// Swaps the served corpus programmatically: builds the new state
    /// (cache and all) on the calling thread, then publishes it
    /// atomically. In-flight requests finish on the old snapshot.
    pub fn swap_corpus(&self, corpus: Corpus) {
        let cache_enabled = self.shared.cache_enabled;
        let state = SnapshotState::build(corpus, None, cache_enabled, self.shared.plan.clone());
        self.shared.swap_state(Arc::new(state));
    }

    /// The current `/healthz` state.
    pub fn health(&self) -> HealthState {
        self.shared.health()
    }

    /// Sets the `/healthz` state (what the reload manager and `rdx
    /// watch` do on success/failure).
    pub fn set_health(&self, state: HealthState) {
        self.shared.set_health(state);
    }

    /// A cloneable publishing handle for an external supervisor (`rdx
    /// watch`): snapshot publishes, health transitions, and watcher
    /// status, without holding the `Server` itself.
    pub fn controller(&self) -> Controller {
        Controller { shared: Arc::clone(&self.shared) }
    }

    /// Schedules a file-based hot reload, as `POST /admin/reload` does.
    /// No-op without a reload source ([`ServeOptions::reload_path`]).
    pub fn trigger_reload(&self) {
        self.shared.request_reload();
    }

    /// Requests a graceful stop and joins every loop. In-flight
    /// responses flush; idle keep-alive connections are closed.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for h in self.handles {
            let _ = h.join();
        }
    }

    /// Blocks until a shutdown is requested (programmatically or via a
    /// signal), then joins the loops. This is what `rdx serve` calls
    /// after printing the bound address.
    pub fn run_until_shutdown(self) {
        while !self.shared.is_shutdown() {
            std::thread::sleep(POLL_IDLE);
        }
        self.shutdown();
    }
}

/// A cloneable handle into a running [`Server`] for an out-of-process
/// supervisor loop — how `rdx watch` publishes re-analysis results into
/// the co-hosted server. Obtained via [`Server::controller`].
#[derive(Clone)]
pub struct Controller {
    shared: Arc<Shared>,
}

impl Controller {
    /// Publishes a new corpus atomically, exactly like a successful hot
    /// reload: the snapshot state (cache and all) is built on the calling
    /// thread, then swapped in one `Arc` store. Pass the container
    /// `trailer` when the bytes were just encoded (avoids a re-encode and
    /// keeps the `ETag` equal to the on-disk trailer); `detail` lands in
    /// the `/admin/debug/cache` reload-history ring.
    pub fn publish(&self, corpus: Corpus, trailer: Option<u64>, detail: &str) {
        let state =
            SnapshotState::build(corpus, trailer, self.shared.cache_enabled, self.shared.plan.clone());
        let event = ReloadEvent {
            at_ms: self.shared.uptime_ms(),
            ok: true,
            etag: state.etag.clone(),
            networks: state.corpus.networks.len(),
            detail: detail.to_string(),
        };
        self.shared.swap_state(Arc::new(state));
        self.shared.push_reload_event(event);
    }

    /// Records a failed analysis attempt in the reload-history ring
    /// (the served snapshot is untouched).
    pub fn record_failure(&self, detail: &str) {
        let st = self.shared.current_state();
        self.shared.push_reload_event(ReloadEvent {
            at_ms: self.shared.uptime_ms(),
            ok: false,
            etag: st.etag.clone(),
            networks: st.corpus.networks.len(),
            detail: detail.to_string(),
        });
    }

    /// The `/healthz` state.
    pub fn health(&self) -> HealthState {
        self.shared.health()
    }

    /// Sets the `/healthz` state.
    pub fn set_health(&self, state: HealthState) {
        self.shared.set_health(state);
    }

    /// Publishes watcher status for `/admin/debug/watch`.
    pub fn set_watch_status(&self, status: WatchStatus) {
        self.shared.set_watch_status(status);
    }

    /// The entity tag currently served.
    pub fn etag(&self) -> String {
        self.shared.current_state().etag.clone()
    }

    /// Milliseconds since the server started (the timestamp base for
    /// [`WatchStatus`]).
    pub fn uptime_ms(&self) -> u64 {
        self.shared.uptime_ms()
    }

    /// True once shutdown has been requested (flag or signal) — the
    /// watcher's loop-exit condition.
    pub fn is_shutdown(&self) -> bool {
        self.shared.is_shutdown()
    }
}
