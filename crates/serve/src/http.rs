//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! Only what the snapshot query server needs: GET requests, keep-alive,
//! and strict input limits. The parser reads the request head byte by
//! byte off a blocking stream with a read timeout, enforcing caps before
//! buffering, so a hostile or broken client cannot make a worker allocate
//! unboundedly or hang forever:
//!
//! - request line longer than [`MAX_REQUEST_LINE`] → 400
//! - header block longer than [`MAX_HEAD_BYTES`] (or any single header
//!   line longer than [`MAX_HEADER_LINE`], or more than [`MAX_HEADERS`]
//!   headers) → 431
//! - declared body longer than [`MAX_BODY_BYTES`] → 413

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 4096;
/// Longest accepted single header line.
pub const MAX_HEADER_LINE: usize = 8192;
/// Cap on the whole request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 32 * 1024;
/// Most headers accepted in one request.
pub const MAX_HEADERS: usize = 64;
/// Largest declared request body the server will drain.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed request head.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request target (path + optional query), as received.
    pub target: String,
    /// True when the connection should stay open after the response.
    pub keep_alive: bool,
    /// Declared `Content-Length`, if any.
    pub content_length: usize,
}

/// A protocol-level rejection: status to send, and whether the connection
/// must close afterwards (it always does — after a malformed request the
/// stream position is unreliable).
#[derive(Debug)]
pub struct HttpError {
    /// HTTP status code to respond with.
    pub status: u16,
    /// Short human-readable reason, included in the JSON error body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError { status, message: message.into() }
    }
}

/// The outcome of trying to read one request off a connection.
pub enum ReadOutcome {
    /// A complete request head was parsed.
    Request(Request),
    /// The peer closed (or went quiet past the idle timeout) between
    /// requests — normal end of a keep-alive connection.
    Closed,
    /// The request was rejected at the protocol level.
    Error(HttpError),
}

/// Reads one request head from `stream`.
///
/// `idle` distinguishes a clean close (EOF or timeout *before* the first
/// byte of a request) from a truncated request (EOF mid-head → 400).
pub fn read_request(stream: &mut TcpStream) -> ReadOutcome {
    let mut head: Vec<u8> = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    // Read until CRLFCRLF (or LFLF, tolerated), enforcing the head cap.
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return if head.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Error(HttpError::new(400, "truncated request head"))
                };
            }
            Ok(_) => {
                head.push(byte[0]);
                if head.len() > MAX_HEAD_BYTES {
                    return ReadOutcome::Error(HttpError::new(
                        431,
                        "request head exceeds limit",
                    ));
                }
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return if head.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Error(HttpError::new(400, "request head timed out"))
                };
            }
            Err(_) => return ReadOutcome::Closed,
        }
    }
    match parse_head(&head) {
        Ok(req) => ReadOutcome::Request(req),
        Err(e) => ReadOutcome::Error(e),
    }
}

/// Parses a complete request head (everything through the blank line).
fn parse_head(head: &[u8]) -> Result<Request, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
    let mut lines = text.split_terminator('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    let request_line = lines.next().unwrap_or("");
    if request_line.len() > MAX_REQUEST_LINE {
        return Err(HttpError::new(400, "request line exceeds limit"));
    }
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::new(400, "malformed request line")),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::new(400, "unsupported HTTP version")),
    };

    let mut keep_alive = http11;
    let mut content_length = 0usize;
    let mut count = 0usize;
    for line in lines {
        if line.is_empty() {
            break;
        }
        count += 1;
        if count > MAX_HEADERS {
            return Err(HttpError::new(431, "too many headers"));
        }
        if line.len() > MAX_HEADER_LINE {
            return Err(HttpError::new(431, "header line exceeds limit"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, "malformed header line"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::new(400, "invalid Content-Length"))?;
            }
            _ => {}
        }
    }

    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        keep_alive,
        content_length,
    })
}

/// Drains (and discards) a declared request body within the cap.
pub fn drain_body(stream: &mut TcpStream, len: usize) -> io::Result<()> {
    let mut remaining = len;
    let mut buf = [0u8; 4096];
    while remaining > 0 {
        let take = remaining.min(buf.len());
        let n = stream.read(&mut buf[..take])?;
        if n == 0 {
            break;
        }
        remaining -= n;
    }
    Ok(())
}

/// The canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes the 503 backpressure rejection sent when the bounded accept
/// queue is full: `Retry-After` tells well-behaved clients when to come
/// back, and the connection always closes.
pub fn write_busy(stream: &mut TcpStream) -> io::Result<()> {
    let body = error_body(503, "server busy; accept queue full");
    let head = format!(
        "HTTP/1.1 503 {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nretry-after: 1\r\nconnection: close\r\n\r\n",
        reason(503),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes a response with the given body, setting `Connection` from
/// `keep_alive`. `content_type` is e.g. `application/json`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if status == 405 {
        head.push_str("allow: GET\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A JSON error body for non-200 responses.
pub fn error_body(status: u16, message: &str) -> String {
    format!(
        "{{\"error\": \"{}\", \"status\": {status}}}\n",
        rd_obs::json::escape(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_parsing() {
        let req = parse_head(b"GET /networks HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/networks");
        assert!(req.keep_alive);
        assert_eq!(req.content_length, 0);

        // HTTP/1.0 defaults to close; keep-alive is opt-in.
        let req = parse_head(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse_head(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
        let req = parse_head(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);

        let req = parse_head(b"POST / HTTP/1.1\r\nContent-Length: 12\r\n\r\n").unwrap();
        assert_eq!(req.content_length, 12);
    }

    #[test]
    fn head_rejections() {
        assert_eq!(parse_head(b"GET\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse_head(b"GET /\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse_head(b"GET / SPDY/9\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse_head(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse_head(b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n").unwrap_err().status,
            400
        );

        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert_eq!(parse_head(long_line.as_bytes()).unwrap_err().status, 400);

        let long_header =
            format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "b".repeat(MAX_HEADER_LINE));
        assert_eq!(parse_head(long_header.as_bytes()).unwrap_err().status, 431);

        let many = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..=MAX_HEADERS).map(|i| format!("x-{i}: v\r\n")).collect::<String>()
        );
        assert_eq!(parse_head(many.as_bytes()).unwrap_err().status, 431);
    }
}
