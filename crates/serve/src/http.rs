//! Minimal HTTP/1.1 parsing and response rendering over byte buffers.
//!
//! The event loop accumulates raw bytes per connection and asks this
//! module two questions: *is there a complete request head in this
//! buffer?* ([`find_head_end`], resumable so slowloris clients cost O(1)
//! per byte) and *what does it say?* ([`parse_head`], zero-allocation —
//! every field borrows the buffer). Strict input limits are enforced
//! before buffering grows, so a hostile client cannot make the server
//! allocate unboundedly:
//!
//! - request line longer than [`MAX_REQUEST_LINE`] → 400
//! - header block longer than [`MAX_HEAD_BYTES`] (or any single header
//!   line longer than [`MAX_HEADER_LINE`], or more than [`MAX_HEADERS`]
//!   headers) → 431
//! - declared body longer than [`MAX_BODY_BYTES`] → 413
//!
//! Response rendering appends into the connection's write buffer
//! ([`push_head`] / [`push_response`]); the hot path never comes here at
//! all — it copies a pre-rendered response straight from the cache.

use std::fmt::Write as _;

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 4096;
/// Longest accepted single header line.
pub const MAX_HEADER_LINE: usize = 8192;
/// Cap on the whole request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 32 * 1024;
/// Most headers accepted in one request.
pub const MAX_HEADERS: usize = 64;
/// Largest declared request body the server will drain.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// A parsed request head, borrowing the connection's read buffer.
#[derive(Debug)]
pub struct HeadView<'a> {
    /// Request method as received (`GET`, `HEAD`, `POST`, ...).
    pub method: &'a str,
    /// The request target (path + optional query), as received.
    pub target: &'a str,
    /// True when the connection should stay open after the response.
    pub keep_alive: bool,
    /// Declared `Content-Length`, if any.
    pub content_length: usize,
    /// Trimmed `If-None-Match` value, if the header was present.
    pub if_none_match: Option<&'a str>,
}

impl HeadView<'_> {
    /// The target with any query string stripped — what routing matches.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(self.target)
    }

    /// True when `If-None-Match` matches the entity tag `etag` (already
    /// quoted), honoring the `*` wildcard and weak-comparison prefixes.
    pub fn none_match(&self, etag: &str) -> bool {
        let Some(raw) = self.if_none_match else {
            return false;
        };
        raw.split(',').map(str::trim).any(|candidate| {
            candidate == "*" || candidate == etag || candidate.strip_prefix("W/") == Some(etag)
        })
    }
}

/// A protocol-level rejection: status to send, plus a short reason for
/// the JSON error body. After any of these the connection must close —
/// the stream position is unreliable past a malformed request.
#[derive(Debug)]
pub struct HttpError {
    /// HTTP status code to respond with.
    pub status: u16,
    /// Short human-readable reason, included in the JSON error body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError { status, message: message.into() }
    }
}

/// Finds the end of a request head in `buf`: the index one past the
/// blank line (`\r\n\r\n`, or bare `\n\n`, tolerated). `scanned` is how
/// far a previous call already looked, so repeated calls on a growing
/// buffer re-examine only new bytes (minus a 3-byte overlap for a
/// terminator split across reads).
pub fn find_head_end(buf: &[u8], scanned: usize) -> Option<usize> {
    let from = scanned.saturating_sub(3);
    for (off, b) in buf[from..].iter().enumerate() {
        let i = from + off;
        if *b != b'\n' || i == 0 {
            continue;
        }
        if buf[i - 1] == b'\n' {
            return Some(i + 1);
        }
        if i >= 3 && buf[i - 1] == b'\r' && buf[i - 2] == b'\n' && buf[i - 3] == b'\r' {
            return Some(i + 1);
        }
    }
    None
}

/// Case-insensitive ASCII substring test (for `Connection` tokens).
fn contains_token(value: &str, token: &str) -> bool {
    let (v, t) = (value.as_bytes(), token.as_bytes());
    v.len() >= t.len()
        && v.windows(t.len()).any(|w| w.eq_ignore_ascii_case(t))
}

/// Parses a complete request head (everything through the blank line).
/// Borrows `head` throughout — the hot path allocates nothing.
pub fn parse_head(head: &[u8]) -> Result<HeadView<'_>, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
    let mut lines = text.split_terminator('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    let request_line = lines.next().unwrap_or("");
    if request_line.len() > MAX_REQUEST_LINE {
        return Err(HttpError::new(400, "request line exceeds limit"));
    }
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::new(400, "malformed request line")),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::new(400, "unsupported HTTP version")),
    };

    let mut keep_alive = http11;
    let mut content_length = 0usize;
    let mut if_none_match = None;
    let mut count = 0usize;
    for line in lines {
        if line.is_empty() {
            break;
        }
        count += 1;
        if count > MAX_HEADERS {
            return Err(HttpError::new(431, "too many headers"));
        }
        if line.len() > MAX_HEADER_LINE {
            return Err(HttpError::new(431, "header line exceeds limit"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, "malformed header line"));
        };
        let (name, value) = (name.trim(), value.trim());
        if name.eq_ignore_ascii_case("connection") {
            if contains_token(value, "close") {
                keep_alive = false;
            } else if contains_token(value, "keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            content_length =
                value.parse().map_err(|_| HttpError::new(400, "invalid Content-Length"))?;
        } else if name.eq_ignore_ascii_case("if-none-match") {
            if_none_match = Some(value);
        }
    }

    Ok(HeadView { method, target, keep_alive, content_length, if_none_match })
}

/// The canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Appends a response head to `out`. Headers are lowercase, in a fixed
/// order (`content-type`, `content-length`, `etag`, `connection`, then
/// `extra` verbatim), so cached and dynamically-rendered responses are
/// byte-identical. `extra` carries status-specific lines such as
/// `allow: ...\r\n` or `retry-after: 1\r\n`. A 304 omits `content-type`
/// (it has no body by definition).
pub fn push_head(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
    etag: Option<&str>,
    extra: &str,
) {
    let mut head = String::with_capacity(128 + extra.len());
    let _ = write!(head, "HTTP/1.1 {status} {}\r\n", reason(status));
    if status != 304 {
        let _ = write!(head, "content-type: {content_type}\r\n");
    }
    let _ = write!(head, "content-length: {content_length}\r\n");
    if let Some(tag) = etag {
        let _ = write!(head, "etag: {tag}\r\n");
    }
    let _ = write!(
        head,
        "connection: {}\r\n{extra}\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    );
    out.extend_from_slice(head.as_bytes());
}

/// Appends a full response (head + body) to `out`. `head_only` elides
/// the body while keeping its `content-length` — the HEAD semantics.
#[allow(clippy::too_many_arguments)]
pub fn push_response(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    etag: Option<&str>,
    extra: &str,
    head_only: bool,
) {
    push_head(out, status, content_type, body.len(), keep_alive, etag, extra);
    if !head_only {
        out.extend_from_slice(body);
    }
}

/// The prebuilt 503 rejection written when the connection cap is hit:
/// `retry-after` tells well-behaved clients when to come back, and the
/// connection always closes.
pub fn busy_response() -> Vec<u8> {
    let body = error_body(503, "server busy; connection limit reached");
    let mut out = Vec::with_capacity(160 + body.len());
    push_response(
        &mut out,
        503,
        "application/json",
        body.as_bytes(),
        false,
        None,
        "retry-after: 1\r\n",
        false,
    );
    out
}

/// A JSON error body for non-200 responses.
pub fn error_body(status: u16, message: &str) -> String {
    format!(
        "{{\"error\": \"{}\", \"status\": {status}}}\n",
        rd_obs::json::escape(message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n", 0), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\n", 0), Some(16));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nGET /x", 0), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n", 0), None);
        // Mixed bare-LF line + CRLF blank is not a terminator (matches the
        // old byte-at-a-time reader).
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\r\n", 0), None);
        // Resumable: a terminator split across reads is still found when
        // the scan restarts past it minus the overlap.
        let full = b"GET / HTTP/1.1\r\n\r\n";
        for split in 1..full.len() {
            assert_eq!(find_head_end(full, split), Some(18), "split at {split}");
        }
    }

    #[test]
    fn head_parsing() {
        let req = parse_head(b"GET /networks HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/networks");
        assert!(req.keep_alive);
        assert_eq!(req.content_length, 0);
        assert!(req.if_none_match.is_none());

        // HTTP/1.0 defaults to close; keep-alive is opt-in.
        let req = parse_head(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse_head(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
        let req = parse_head(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);

        let req = parse_head(b"POST / HTTP/1.1\r\nContent-Length: 12\r\n\r\n").unwrap();
        assert_eq!(req.content_length, 12);

        // Query stripping and conditional requests.
        let req =
            parse_head(b"GET /networks?verbose=1 HTTP/1.1\r\nIf-None-Match: \"abc\"\r\n\r\n")
                .unwrap();
        assert_eq!(req.path(), "/networks");
        assert_eq!(req.if_none_match, Some("\"abc\""));
        assert!(req.none_match("\"abc\""));
        assert!(!req.none_match("\"def\""));
        let req = parse_head(b"GET / HTTP/1.1\r\nif-none-match: W/\"x\", \"y\"\r\n\r\n").unwrap();
        assert!(req.none_match("\"x\""));
        assert!(req.none_match("\"y\""));
        let req = parse_head(b"GET / HTTP/1.1\r\nIf-None-Match: *\r\n\r\n").unwrap();
        assert!(req.none_match("\"anything\""));
    }

    #[test]
    fn head_rejections() {
        assert_eq!(parse_head(b"GET\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse_head(b"GET /\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse_head(b"GET / SPDY/9\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse_head(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse_head(b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n").unwrap_err().status,
            400
        );

        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert_eq!(parse_head(long_line.as_bytes()).unwrap_err().status, 400);

        let long_header =
            format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "b".repeat(MAX_HEADER_LINE));
        assert_eq!(parse_head(long_header.as_bytes()).unwrap_err().status, 431);

        let many = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..=MAX_HEADERS).map(|i| format!("x-{i}: v\r\n")).collect::<String>()
        );
        assert_eq!(parse_head(many.as_bytes()).unwrap_err().status, 431);
    }

    #[test]
    fn response_rendering() {
        let mut out = Vec::new();
        push_response(&mut out, 200, "application/json", b"{}", true, Some("\"t\""), "", false);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 2\r\netag: \"t\"\r\nconnection: keep-alive\r\n\r\n{}"
        );

        // Zero-length body keeps explicit framing; HEAD keeps the length
        // of the body it elides.
        let mut out = Vec::new();
        push_response(&mut out, 200, "application/json", b"", false, None, "", false);
        assert!(String::from_utf8(out).unwrap().contains("content-length: 0\r\n"));
        let mut out = Vec::new();
        push_response(&mut out, 200, "application/json", b"abcde", true, None, "", true);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("content-length: 5\r\n") && text.ends_with("\r\n\r\n"));

        // 304 has no content-type and an empty body, and the busy
        // rejection carries retry-after + close.
        let mut out = Vec::new();
        push_response(&mut out, 304, "application/json", b"", true, Some("\"t\""), "", false);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 304 Not Modified\r\n"));
        assert!(!text.contains("content-type"));
        assert!(text.contains("content-length: 0\r\n") && text.contains("etag: \"t\"\r\n"));
        let busy = String::from_utf8(busy_response()).unwrap();
        assert!(busy.starts_with("HTTP/1.1 503 "));
        assert!(busy.contains("retry-after: 1\r\n") && busy.contains("connection: close\r\n"));
    }
}
