//! JSON renderers over snapshot types.
//!
//! Every endpoint body is produced here, from `rd-snap` types only, with
//! strings escaped through `rd_obs::json`. The renderers are also used
//! directly by `rdx summary --json`, which is how verify.sh can diff a
//! served `/networks/{id}` body against a direct analysis run: both sides
//! call [`network_summary`] on structurally equal data.
//!
//! All output is deterministic: inputs are sorted (snapshot order is
//! canonical) and maps are `BTreeMap`s.

use rd_obs::json::escape;
use rd_snap::{Corpus, NetworkSnapshot};
use routing_model::PathwayIndex;

/// `/healthz`: readiness plus corpus size. `status` stays `"ok"` as long
/// as the server can answer from *some* snapshot (fresh or
/// stale-serving-last-good); only `degraded` — repeated analysis failures
/// under `rdx watch` — flips it (and the HTTP status to 503). `health`
/// carries the full state-machine word.
pub fn healthz(corpus: &Corpus, health: crate::HealthState) -> String {
    let status = match health {
        crate::HealthState::Degraded => "degraded",
        _ => "ok",
    };
    format!(
        "{{\"status\": \"{status}\", \"health\": \"{}\", \"networks\": {}}}\n",
        health.as_str(),
        corpus.networks.len()
    )
}

/// `/healthz?live=1`: pure liveness — a 200 whenever the event loop can
/// answer at all, independent of the health state machine. Startup waits
/// (verify.sh) and process supervisors key on this form.
pub fn healthz_live(corpus: &Corpus) -> String {
    format!("{{\"status\": \"live\", \"networks\": {}}}\n", corpus.networks.len())
}

/// `/networks`: one summary row per network.
pub fn networks_index(corpus: &Corpus) -> String {
    let rows: Vec<String> = corpus
        .networks
        .iter()
        .map(|n| {
            format!(
                "    {{\"name\": \"{}\", \"routers\": {}, \"links\": {}, \"instances\": {}, \"design\": \"{}\", \"degraded\": {}}}",
                escape(&n.name),
                n.network.routers.len(),
                n.links.links.len(),
                n.instances.list.len(),
                n.design.class,
                n.network.coverage.degraded(),
            )
        })
        .collect();
    format!("{{\n  \"networks\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
}

/// `/networks/{id}` — and the body of `rdx summary --json`.
pub fn network_summary(n: &NetworkSnapshot) -> String {
    let d = &n.design;
    let (errors, warnings, infos) = n.diagnostics.counts();
    let igp_rows: Vec<String> = n
        .table1
        .igp_instances
        .iter()
        .map(|(label, c)| {
            format!(
                "      \"{}\": {{\"intra\": {}, \"inter\": {}}}",
                escape(label),
                c.intra,
                c.inter
            )
        })
        .collect();
    let instance_rows: Vec<String> = n
        .instances
        .list
        .iter()
        .map(|i| {
            let asn = match i.asn {
                Some(a) => a.to_string(),
                None => "null".to_string(),
            };
            format!(
                "      {{\"id\": {}, \"kind\": \"{}\", \"asn\": {asn}, \"routers\": {}, \"processes\": {}}}",
                i.id.0,
                i.kind,
                i.routers.len(),
                i.processes.len()
            )
        })
        .collect();
    let quarantined: Vec<String> = n
        .network
        .coverage
        .quarantined
        .iter()
        .map(|f| format!("\"{}\"", escape(f)))
        .collect();
    format!(
        "{{\n  \"name\": \"{name}\",\n  \"routers\": {routers},\n  \"links\": {links},\n  \"external_subnets\": {ext},\n  \"processes\": {procs},\n  \"address_blocks\": {blocks},\n  \"design\": {{\n    \"class\": \"{class}\",\n    \"bgp_speakers\": {bgp_speakers},\n    \"internal_ases\": {internal_ases},\n    \"ibgp_sessions\": {ibgp},\n    \"external_ebgp_sessions\": {eext},\n    \"internal_ebgp_sessions\": {eint},\n    \"igp_instances\": {igp},\n    \"staging_instances\": {staging},\n    \"bgp_into_igp\": {bgp_into_igp},\n    \"total_instances\": {total}\n  }},\n  \"table1\": {{\n    \"igp_instances\": {{\n{igp_rows}\n    }},\n    \"ebgp_sessions\": {{\"intra\": {ebgp_intra}, \"inter\": {ebgp_inter}}},\n    \"ibgp_sessions\": {t1_ibgp}\n  }},\n  \"instances\": [\n{instance_rows}\n  ],\n  \"diagnostics\": {{\"errors\": {errors}, \"warnings\": {warnings}, \"infos\": {infos}}},\n  \"coverage\": {{\"files\": {cov_files}, \"parsed\": {cov_parsed}, \"quarantined\": [{cov_quarantined}]}},\n  \"degraded\": {degraded}\n}}\n",
        name = escape(&n.name),
        routers = n.network.routers.len(),
        links = n.links.links.len(),
        ext = n.external.external_subnets.len(),
        procs = n.processes.list.len(),
        blocks = n.blocks.len(),
        class = d.class,
        bgp_speakers = d.bgp_speakers,
        internal_ases = d.internal_ases,
        ibgp = d.ibgp_sessions,
        eext = d.external_ebgp_sessions,
        eint = d.internal_ebgp_sessions,
        igp = d.igp_instances,
        staging = d.staging_instances,
        bgp_into_igp = d.bgp_into_igp,
        total = d.total_instances,
        igp_rows = igp_rows.join(",\n"),
        ebgp_intra = n.table1.ebgp_sessions.intra,
        ebgp_inter = n.table1.ebgp_sessions.inter,
        t1_ibgp = n.table1.ibgp_sessions,
        instance_rows = instance_rows.join(",\n"),
        cov_files = n.network.coverage.total_files,
        cov_parsed = n.network.coverage.parsed(),
        cov_quarantined = quarantined.join(", "),
        degraded = n.network.coverage.degraded(),
    )
}

/// `/networks/{id}/processes`: every routing process of one network.
pub fn network_processes(n: &NetworkSnapshot) -> String {
    let rows: Vec<String> = n
        .processes
        .list
        .iter()
        .map(|p| {
            let router = n
                .network
                .routers
                .get(p.key.router.0)
                .map(|r| r.name().to_string())
                .unwrap_or_else(|| p.key.router.to_string());
            format!(
                "    {{\"key\": \"{}\", \"router\": \"{}\", \"proto\": \"{}\", \"covered_ifaces\": {}, \"passive_ifaces\": {}, \"redistributes\": {}}}",
                escape(&p.key.to_string()),
                escape(&router),
                p.key.proto,
                p.covered_ifaces.len(),
                p.passive_ifaces.len(),
                p.redistributes.len()
            )
        })
        .collect();
    format!(
        "{{\n  \"network\": \"{}\",\n  \"processes\": [\n{}\n  ]\n}}\n",
        escape(&n.name),
        rows.join(",\n")
    )
}

/// `/instances`: routing instances across the whole corpus.
pub fn instances(corpus: &Corpus) -> String {
    let mut rows = Vec::new();
    for n in &corpus.networks {
        for i in &n.instances.list {
            let asn = match i.asn {
                Some(a) => a.to_string(),
                None => "null".to_string(),
            };
            rows.push(format!(
                "    {{\"network\": \"{}\", \"id\": {}, \"kind\": \"{}\", \"asn\": {asn}, \"routers\": {}, \"processes\": {}}}",
                escape(&n.name),
                i.id.0,
                i.kind,
                i.routers.len(),
                i.processes.len()
            ));
        }
    }
    format!("{{\n  \"instances\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
}

/// `/pathways`: per-router route pathway depth summaries (Section 3.3).
pub fn pathways(corpus: &Corpus) -> String {
    let mut rows = Vec::new();
    for n in &corpus.networks {
        // One shared reverse-flow index per network, and one trace per
        // distinct instance-membership seed: routers with equal seeds
        // have identical pathway structure, so a large network costs a
        // handful of traces instead of one per router.
        let index = PathwayIndex::new(&n.instances, &n.instance_graph);
        let mut memo: std::collections::BTreeMap<Vec<routing_model::InstanceId>, (usize, bool, usize, usize)> =
            std::collections::BTreeMap::new();
        for (idx, router) in n.network.routers.iter().enumerate() {
            let rid = nettopo::RouterId(idx);
            let seed = index.seed(rid).to_vec();
            let (max_depth, reaches, nodes, edges) = *memo.entry(seed).or_insert_with(|| {
                let pathway = index.trace(rid);
                (
                    pathway.max_depth(),
                    pathway.reaches_external_world(),
                    pathway.nodes.len(),
                    pathway.edges.len(),
                )
            });
            rows.push(format!(
                "    {{\"network\": \"{}\", \"router\": \"{}\", \"max_depth\": {}, \"reaches_external_world\": {}, \"nodes\": {}, \"edges\": {}}}",
                escape(&n.name),
                escape(router.name()),
                max_depth,
                reaches,
                nodes,
                edges
            ));
        }
    }
    format!("{{\n  \"pathways\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
}

/// `/diag`: every pipeline diagnostic across the corpus.
pub fn diag(corpus: &Corpus) -> String {
    let mut rows = Vec::new();
    for n in &corpus.networks {
        for d in n.diagnostics.iter() {
            rows.push(format!(
                "    {{\"network\": \"{}\", \"file\": \"{}\", \"line\": {}, \"severity\": \"{}\", \"code\": \"{}\", \"message\": \"{}\"}}",
                escape(&n.name),
                escape(&d.file),
                d.line,
                d.severity,
                escape(d.code),
                escape(&d.message)
            ));
        }
    }
    format!("{{\n  \"diagnostics\": [\n{}\n  ]\n}}\n", rows.join(",\n"))
}
