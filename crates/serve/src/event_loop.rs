//! The epoll event loop: readiness-driven, non-blocking connection
//! handling with per-connection state machines and a deadline wheel.
//!
//! Zero-dependency per the workspace's offline policy: epoll is reached
//! through four `extern "C"` bindings (`epoll_create1` / `epoll_ctl` /
//! `epoll_wait` / `close`), shaped like mio's poll-registry-token model.
//! Each loop thread owns one epoll instance; the shared listener is
//! registered level-triggered in every loop, so whichever thread wakes
//! first accepts — no cross-thread connection handoff, no wake pipe.
//!
//! A connection is a small state machine ([`Conn`]): bytes accumulate in
//! `read_buf` (possibly many pipelined requests per read), responses
//! accumulate in `write_buf` (partial writes keep `EPOLLOUT` interest
//! until drained), and `state` tracks the path to close — `FlushClose`
//! finishes the pending response first, and error closes go through
//! `Draining` (shutdown write side, discard input briefly) so the error
//! body is not lost to a TCP reset. Deadlines live on a coarse timer
//! wheel with lazy re-insertion: one entry per connection, re-validated
//! against the connection's actual deadline when its slot fires, so a
//! slowloris client dribbling header bytes cannot push its deadline out.
//!
//! Hot-path observability is batched: counters and the latency histogram
//! accumulate in a per-loop [`LoopStats`] and fold into the rd-obs
//! registry once per wake-up (and right before `/metrics` renders), not
//! once per request.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cache::{self, SnapshotState};
use crate::debug::{ConnDebug, LoopDebug, MAX_CONNS_LISTED, PUBLISH_INTERVAL};
use crate::http::{self, HeadView};
use crate::render;
use crate::{Shared, CONN_AGE_BOUNDS_MS, LATENCY_BOUNDS_US, LOOP_US_BOUNDS, WAKEUP_BATCH_BOUNDS};

/// Per-connection read deadline: bounds keep-alive idle time and how
/// long a client can take to deliver one request head (slowloris).
const READ_TIMEOUT: Duration = Duration::from_millis(2000);
/// Per-connection write deadline: bounds how long a stalled client
/// (zero receive window) can hold response bytes unflushed.
const WRITE_TIMEOUT: Duration = Duration::from_millis(2000);
/// How long an error close drains unread input before dropping the
/// socket, and the cap on bytes drained.
const LINGER_TIMEOUT: Duration = Duration::from_millis(500);
const LINGER_BUDGET: usize = 1024 * 1024;
/// Backpressure high-water mark: past this many pending response bytes,
/// a connection's pipelined requests wait in `read_buf` (and its read
/// interest drops) until the peer drains what it already asked for.
const WRITE_HIGH_WATER: usize = 1024 * 1024;
/// Longest an epoll wait sleeps, so shutdown flags and cross-loop
/// snapshot swaps are noticed promptly even on an idle loop.
const EPOLL_WAIT_MS: i32 = 100;
/// Most connections accepted per listener wake-up (fairness bound).
const ACCEPT_BURST: usize = 256;
/// How long a shutting-down loop keeps flushing in-flight responses.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(1000);
/// Timer wheel shape: 64 slots of 128 ms cover every deadline above.
const WHEEL_SLOTS: usize = 64;
const WHEEL_TICK: Duration = Duration::from_millis(128);
/// An idle loop (no requests since the last flush) still folds its
/// batch after this many wake-ups (~6.4 s at the 100 ms epoll timeout),
/// so loop-health metrics stay fresh without touching the registry
/// mutex on every idle wake-up. Under load the flush cadence is
/// unchanged: once per wake-up that served anything.
const IDLE_FLUSH_WAKEUPS: u64 = 64;

// ---------------------------------------------------------------------
// Raw epoll bindings (Linux). The `epoll_event` struct is packed on
// x86-64 (kernel ABI); natural layout elsewhere.

#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// The token carried in `epoll_event.data` for the listener itself.
const LISTENER_TOKEN: u64 = u64::MAX;

fn token_data(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

/// An owned epoll instance.
struct Epoll {
    fd: RawFd,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, data: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, data: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, data, events)
    }

    fn modify(&self, fd: RawFd, data: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, data, events)
    }

    fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness; EINTR (a signal landed) reads as zero events
    /// so the loop re-checks its shutdown/reload flags.
    fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> usize {
        let n = unsafe {
            epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
        };
        if n < 0 {
            0
        } else {
            n as usize
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

// ---------------------------------------------------------------------
// Connection state machine.

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ConnState {
    /// Serving requests.
    Open,
    /// Flush `write_buf`, then close — lingering (error responses: shut
    /// down the write side and drain briefly so the response survives
    /// unread pipelined input) or immediate (`connection: close`).
    FlushClose { linger: bool },
    /// Write side closed; discarding input until EOF, the linger budget,
    /// or the deadline.
    Draining,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Unparsed request bytes; requests are consumed from the front.
    read_buf: Vec<u8>,
    /// How much of `read_buf` a previous head-end scan already covered.
    scanned: usize,
    /// Remaining declared-body bytes to discard before the next head.
    body_skip: usize,
    /// Pending response bytes and how many are already written.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Current epoll interest mask.
    interest: u32,
    /// The live deadline (read, write, or linger — per `state`).
    deadline: Instant,
    /// Remaining bytes the draining close will discard.
    linger_budget: usize,
    read_eof: bool,
    /// When the connection was accepted (close-age telemetry).
    created: Instant,
    /// True while past the write high-water mark — tracked so the
    /// engaged/released transition counters fire exactly once per edge.
    backpressured: bool,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant, deadline: Instant) -> Conn {
        Conn {
            stream,
            state: ConnState::Open,
            read_buf: Vec::new(),
            scanned: 0,
            body_skip: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            interest: EPOLLIN | EPOLLRDHUP,
            deadline,
            linger_budget: LINGER_BUDGET,
            read_eof: false,
            created: now,
            backpressured: false,
        }
    }

    fn state_name(&self) -> &'static str {
        match self.state {
            ConnState::Open => "open",
            ConnState::FlushClose { linger: false } => "flush-close",
            ConnState::FlushClose { linger: true } => "flush-close-linger",
            ConnState::Draining => "draining",
        }
    }

    fn write_pending(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }
}

/// Slot arena for connections. Tokens are `(index, generation)`: the
/// generation bumps on release, so stale epoll events or wheel entries
/// for a recycled slot never touch the wrong connection.
struct Slab {
    slots: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    live: usize,
}

impl Slab {
    fn new() -> Slab {
        Slab { slots: Vec::new(), gens: Vec::new(), free: Vec::new(), live: 0 }
    }

    fn insert(&mut self, conn: Conn) -> (usize, u32) {
        self.live += 1;
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Some(conn);
                (idx, self.gens[idx])
            }
            None => {
                self.slots.push(Some(conn));
                self.gens.push(0);
                (self.slots.len() - 1, 0)
            }
        }
    }

    /// Takes the connection out for processing; `put_back` or `release`
    /// must follow. Stale generations return `None`.
    fn take_if(&mut self, idx: usize, gen: u32) -> Option<Conn> {
        if idx >= self.slots.len() || self.gens[idx] != gen {
            return None;
        }
        self.slots[idx].take()
    }

    fn put_back(&mut self, idx: usize, conn: Conn) {
        self.slots[idx] = Some(conn);
    }

    fn release(&mut self, idx: usize) {
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
    }
}

/// The lazy timer wheel: one entry per live connection. A fired entry
/// whose connection's real deadline is still in the future is simply
/// re-inserted at the right slot — updating a deadline is a field write,
/// not a wheel operation.
struct Wheel {
    slots: Vec<Vec<(usize, u32)>>,
    cursor: usize,
    cursor_time: Instant,
}

impl Wheel {
    fn new(now: Instant) -> Wheel {
        Wheel { slots: vec![Vec::new(); WHEEL_SLOTS], cursor: 0, cursor_time: now }
    }

    fn insert(&mut self, idx: usize, gen: u32, deadline: Instant, now: Instant) {
        let base = self.cursor_time.max(now);
        let ticks = if deadline > base {
            (deadline - base).as_millis() as u64 / WHEEL_TICK.as_millis() as u64 + 1
        } else {
            1
        };
        let offset = (ticks as usize).min(WHEEL_SLOTS - 1);
        let slot = (self.cursor + offset) % WHEEL_SLOTS;
        self.slots[slot].push((idx, gen));
    }

    /// Drains every slot the cursor passes catching up to `now`.
    fn expire(&mut self, now: Instant, fired: &mut Vec<(usize, u32)>) {
        while now.duration_since(self.cursor_time) >= WHEEL_TICK {
            self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
            self.cursor_time += WHEEL_TICK;
            fired.append(&mut self.slots[self.cursor]);
        }
    }

    /// `(total entries, deepest bucket)` — telemetry; entries for
    /// deadlines that have since moved are counted as they sit.
    fn depth(&self) -> (usize, usize) {
        let mut total = 0;
        let mut deepest = 0;
        for slot in &self.slots {
            total += slot.len();
            deepest = deepest.max(slot.len());
        }
        (total, deepest)
    }
}

/// Per-loop metrics batch, folded into rd-obs once per wake-up (or, on
/// an idle loop, once per [`IDLE_FLUSH_WAKEUPS`]).
struct LoopStats {
    requests: u64,
    /// Response counts by status class (index = class - 2 for 2xx..5xx).
    classes: [u64; 4],
    latency: rd_obs::metrics::Histogram,
    cache_hits: u64,
    cache_misses: u64,
    rejected_busy: u64,
    /// Epoll wake-ups since the last flush.
    wakeups: u64,
    /// Time spent blocked in `epoll_wait` per wake-up.
    epoll_wait_us: rd_obs::metrics::Histogram,
    /// Readiness events delivered per wake-up (batch size).
    wakeup_events: rd_obs::metrics::Histogram,
    /// Time spent processing one wake-up (dispatch + wheel).
    iter_us: rd_obs::metrics::Histogram,
    /// Connection age at close.
    conn_age_ms: rd_obs::metrics::Histogram,
    /// Write-buffer backpressure edges since the last flush.
    backpressure_engaged: u64,
    backpressure_released: u64,
    /// High-water marks since the last flush.
    slab_live_hw: usize,
    wheel_depth_hw: usize,
    /// Cumulative since loop start (never reset — debug snapshots).
    total_wakeups: u64,
    total_requests: u64,
}

impl LoopStats {
    fn new() -> LoopStats {
        LoopStats {
            requests: 0,
            classes: [0; 4],
            latency: rd_obs::metrics::Histogram::new(LATENCY_BOUNDS_US),
            cache_hits: 0,
            cache_misses: 0,
            rejected_busy: 0,
            wakeups: 0,
            epoll_wait_us: rd_obs::metrics::Histogram::new(LOOP_US_BOUNDS),
            wakeup_events: rd_obs::metrics::Histogram::new(WAKEUP_BATCH_BOUNDS),
            iter_us: rd_obs::metrics::Histogram::new(LOOP_US_BOUNDS),
            conn_age_ms: rd_obs::metrics::Histogram::new(CONN_AGE_BOUNDS_MS),
            backpressure_engaged: 0,
            backpressure_released: 0,
            slab_live_hw: 0,
            wheel_depth_hw: 0,
            total_wakeups: 0,
            total_requests: 0,
        }
    }

    /// Records one response locally; the trace event (when a sink is
    /// installed) still fires per request.
    fn record(&mut self, method: &str, target: &str, status: u16, us: u64) {
        self.requests += 1;
        self.total_requests += 1;
        let class = (status / 100).clamp(2, 5) as usize - 2;
        self.classes[class] += 1;
        self.latency.record(us);
        if rd_obs::trace::enabled() {
            rd_obs::trace::event(
                "http.request",
                &[
                    ("method", method.into()),
                    ("target", target.into()),
                    ("status", i64::from(status).into()),
                    ("us", (us as i64).into()),
                ],
            );
        }
    }

    /// Counts a protocol-error or rejection response without a latency
    /// sample: these paths measure no request service time, and 0-µs
    /// samples would drag the `http.request_us` percentiles down under
    /// an error burst.
    fn record_error(&mut self, status: u16) {
        self.requests += 1;
        self.total_requests += 1;
        let class = (status / 100).clamp(2, 5) as usize - 2;
        self.classes[class] += 1;
        if rd_obs::trace::enabled() {
            rd_obs::trace::event(
                "http.request",
                &[
                    ("method", "-".into()),
                    ("target", "-".into()),
                    ("status", i64::from(status).into()),
                ],
            );
        }
    }

    fn flush(&mut self) {
        if self.requests == 0 && self.rejected_busy == 0 && self.wakeups < IDLE_FLUSH_WAKEUPS {
            return;
        }
        use rd_obs::metrics::{counter_add, gauge_max, histogram_merge, Histogram};
        if self.requests > 0 {
            counter_add("http.requests", self.requests);
            self.requests = 0;
        }
        for (i, n) in self.classes.iter_mut().enumerate() {
            if *n > 0 {
                counter_add(&format!("http.responses.{}xx", i + 2), *n);
                *n = 0;
            }
        }
        if !self.latency.is_empty() {
            histogram_merge("http.request_us", &self.latency);
            self.latency = Histogram::new(LATENCY_BOUNDS_US);
        }
        if self.cache_hits > 0 {
            counter_add("http.cache_hit", self.cache_hits);
            self.cache_hits = 0;
        }
        if self.cache_misses > 0 {
            counter_add("http.cache_miss", self.cache_misses);
            self.cache_misses = 0;
        }
        if self.rejected_busy > 0 {
            counter_add("http.rejected_busy", self.rejected_busy);
            self.rejected_busy = 0;
        }
        if self.wakeups > 0 {
            counter_add("loop.wakeups", self.wakeups);
            self.wakeups = 0;
        }
        if !self.epoll_wait_us.is_empty() {
            histogram_merge("loop.epoll_wait_us", &self.epoll_wait_us);
            self.epoll_wait_us = Histogram::new(LOOP_US_BOUNDS);
        }
        if !self.wakeup_events.is_empty() {
            histogram_merge("loop.wakeup_events", &self.wakeup_events);
            self.wakeup_events = Histogram::new(WAKEUP_BATCH_BOUNDS);
        }
        if !self.iter_us.is_empty() {
            histogram_merge("loop.iter_us", &self.iter_us);
            self.iter_us = Histogram::new(LOOP_US_BOUNDS);
        }
        if !self.conn_age_ms.is_empty() {
            histogram_merge("http.conn_age_ms", &self.conn_age_ms);
            self.conn_age_ms = Histogram::new(CONN_AGE_BOUNDS_MS);
        }
        if self.backpressure_engaged > 0 {
            counter_add("loop.backpressure_engaged", self.backpressure_engaged);
            self.backpressure_engaged = 0;
        }
        if self.backpressure_released > 0 {
            counter_add("loop.backpressure_released", self.backpressure_released);
            self.backpressure_released = 0;
        }
        if self.slab_live_hw > 0 {
            gauge_max("loop.slab_live_hw", self.slab_live_hw as i64);
            self.slab_live_hw = 0;
        }
        if self.wheel_depth_hw > 0 {
            gauge_max("loop.wheel_depth_hw", self.wheel_depth_hw as i64);
            self.wheel_depth_hw = 0;
        }
    }
}

// ---------------------------------------------------------------------
// Request handling (pure functions over a taken-out connection, so the
// loop struct's disjoint fields borrow cleanly).

/// What routing decided about one request.
struct Outcome {
    keep_alive: bool,
    /// Protocol-level error: close after flushing, with a draining
    /// (lingering) close so the response survives pipelined input.
    error: bool,
    /// Declared request-body bytes to discard before the next head.
    body_skip: usize,
}

/// Appends a protocol-error response and flags the connection for a
/// lingering close. Used for 400/413/431 and head timeouts.
fn push_error(conn: &mut Conn, stats: &mut LoopStats, status: u16, message: &str) {
    let body = http::error_body(status, message);
    http::push_response(
        &mut conn.write_buf,
        status,
        "application/json",
        body.as_bytes(),
        false,
        None,
        "",
        false,
    );
    stats.record_error(status);
    // The close is decided: any declared body still owed is now just
    // discarded input. A stale skip here would re-enter the
    // truncated-body branch forever once EOF is set.
    conn.body_skip = 0;
    conn.state = ConnState::FlushClose { linger: true };
}

/// Routes one parsed request, appending the response to `out`.
fn respond(
    st: &SnapshotState,
    shared: &Shared,
    stats: &mut LoopStats,
    head: &HeadView<'_>,
    out: &mut Vec<u8>,
    force_close: bool,
    started: Instant,
) -> Outcome {
    let keep = head.keep_alive && !force_close;
    let mut outcome = Outcome { keep_alive: keep, error: false, body_skip: head.content_length };
    let status;

    if head.content_length > http::MAX_BODY_BYTES {
        status = 413;
        let body = http::error_body(413, "request body exceeds limit");
        http::push_response(out, 413, "application/json", body.as_bytes(), false, None, "", false);
        outcome = Outcome { keep_alive: false, error: true, body_skip: 0 };
    } else {
        match head.method {
            "GET" | "HEAD" => {
                let head_only = head.method == "HEAD";
                let path = head.path();
                if let Some(cached) = st.cache.get(path) {
                    stats.cache_hits += 1;
                    if head.none_match(&st.etag) {
                        status = 304;
                        if keep && !st.not_modified_ka.is_empty() {
                            out.extend_from_slice(&st.not_modified_ka);
                        } else {
                            http::push_response(out, 304, "", b"", keep, Some(&st.etag), "", false);
                        }
                    } else {
                        status = 200;
                        if keep && !head_only {
                            // The hot path: one memcpy of the pre-rendered
                            // keep-alive response.
                            out.extend_from_slice(&cached.resp_ka);
                        } else {
                            http::push_response(
                                out,
                                200,
                                "application/json",
                                &cached.body,
                                keep,
                                Some(&st.etag),
                                "",
                                head_only,
                            );
                        }
                    }
                } else {
                    let segments: Vec<&str> =
                        path.split('/').filter(|s| !s.is_empty()).collect();
                    if segments.as_slice() == ["healthz"] {
                        // Dynamic on purpose: the body reflects the live
                        // health state machine, so it is never cached.
                        // `?live=1` is pure liveness (always 200); the
                        // plain form goes non-200 when degraded.
                        let live = head
                            .target
                            .split_once('?')
                            .map(|(_, q)| q.split('&').any(|kv| kv == "live=1"))
                            .unwrap_or(false);
                        let health = shared.health();
                        let (code, body) = if live {
                            (200, render::healthz_live(&st.corpus))
                        } else if health == crate::HealthState::Degraded {
                            (503, render::healthz(&st.corpus, health))
                        } else {
                            (200, render::healthz(&st.corpus, health))
                        };
                        status = code;
                        http::push_response(
                            out,
                            code,
                            "application/json",
                            body.as_bytes(),
                            keep,
                            None,
                            "cache-control: no-store\r\n",
                            head_only,
                        );
                    } else if segments.as_slice() == ["metrics"] {
                        // Fold this loop's batch in first so the scrape
                        // sees its own request history.
                        stats.flush();
                        status = 200;
                        let body = rd_obs::metrics::render_prometheus();
                        http::push_response(
                            out,
                            200,
                            "text/plain; version=0.0.4",
                            body.as_bytes(),
                            keep,
                            None,
                            "",
                            head_only,
                        );
                    } else if let ["admin", "debug", which] = segments.as_slice() {
                        // Rendered from state the loops publish off the
                        // hot path (and, for the cache view, from this
                        // loop's current snapshot state) — never from
                        // another loop's live slab.
                        let body = match *which {
                            "loop" => Some(shared.render_debug_loops()),
                            "conns" => Some(shared.render_debug_conns()),
                            "cache" => Some(shared.render_debug_cache(st)),
                            "watch" => Some(shared.render_debug_watch()),
                            _ => None,
                        };
                        if let Some(body) = body {
                            status = 200;
                            http::push_response(
                                out,
                                200,
                                "application/json",
                                body.as_bytes(),
                                keep,
                                None,
                                "cache-control: no-store\r\n",
                                head_only,
                            );
                        } else {
                            status = 404;
                            let body = http::error_body(404, &cache::not_found_message(path));
                            http::push_response(
                                out,
                                404,
                                "application/json",
                                body.as_bytes(),
                                keep,
                                None,
                                "",
                                head_only,
                            );
                        }
                    } else if let Some(body) = cache::render_path(&st.corpus, st.plan_text(), path)
                    {
                        // `--no-cache`, or a non-canonical spelling of a
                        // cacheable path: render per request.
                        stats.cache_misses += 1;
                        if head.none_match(&st.etag) {
                            status = 304;
                            http::push_response(out, 304, "", b"", keep, Some(&st.etag), "", false);
                        } else {
                            status = 200;
                            http::push_response(
                                out,
                                200,
                                "application/json",
                                body.as_bytes(),
                                keep,
                                Some(&st.etag),
                                "",
                                head_only,
                            );
                        }
                    } else {
                        status = 404;
                        let body = http::error_body(404, &cache::not_found_message(path));
                        http::push_response(
                            out,
                            404,
                            "application/json",
                            body.as_bytes(),
                            keep,
                            None,
                            "",
                            head_only,
                        );
                    }
                }
            }
            "POST" => {
                let path = head.path();
                let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
                if segments.as_slice() == ["admin", "reload"] {
                    if shared.reload_configured() {
                        shared.request_reload();
                        status = 200;
                        let body = "{\"status\": \"reload scheduled\"}\n";
                        http::push_response(
                            out,
                            200,
                            "application/json",
                            body.as_bytes(),
                            keep,
                            None,
                            "",
                            false,
                        );
                    } else {
                        status = 409;
                        let body = http::error_body(
                            409,
                            "no reload source configured; start the server from a snapshot file",
                        );
                        http::push_response(
                            out,
                            409,
                            "application/json",
                            body.as_bytes(),
                            keep,
                            None,
                            "",
                            false,
                        );
                    }
                } else {
                    status = 405;
                    let body = http::error_body(405, &format!("method {} not allowed", head.method));
                    http::push_response(
                        out,
                        405,
                        "application/json",
                        body.as_bytes(),
                        keep,
                        None,
                        "allow: GET, HEAD\r\n",
                        false,
                    );
                }
            }
            other => {
                status = 405;
                let body = http::error_body(405, &format!("method {other} not allowed"));
                http::push_response(
                    out,
                    405,
                    "application/json",
                    body.as_bytes(),
                    keep,
                    None,
                    "allow: GET, HEAD\r\n",
                    false,
                );
            }
        }
    }

    let us = started.elapsed().as_micros() as u64;
    stats.record(head.method, head.target, status, us);
    outcome
}

/// Parses and answers every complete pipelined request currently in
/// `read_buf`. Returns `(alive, backpressured)`.
fn process_buffer(
    conn: &mut Conn,
    st: &SnapshotState,
    shared: &Shared,
    stats: &mut LoopStats,
    now: Instant,
) -> (bool, bool) {
    let force_close = shared.is_shutdown();
    loop {
        if conn.state != ConnState::Open {
            // Past an error or a `connection: close` response, remaining
            // pipelined input (including any body still owed) is
            // discarded — the close is already decided. Checked before
            // the body skip so a decided close can never re-enter the
            // truncated-body branch.
            conn.read_buf.clear();
            conn.scanned = 0;
            conn.body_skip = 0;
            return (true, false);
        }
        if conn.body_skip > 0 {
            let take = conn.body_skip.min(conn.read_buf.len());
            conn.read_buf.drain(..take);
            conn.body_skip -= take;
            conn.scanned = 0;
            if conn.body_skip > 0 {
                if conn.read_eof {
                    push_error(conn, stats, 400, "request body truncated");
                    continue;
                }
                return (true, false);
            }
        }
        if conn.write_buf.len() - conn.write_pos > WRITE_HIGH_WATER {
            return (true, true);
        }
        let Some(end) = http::find_head_end(&conn.read_buf, conn.scanned) else {
            conn.scanned = conn.read_buf.len();
            if conn.read_buf.len() > http::MAX_HEAD_BYTES {
                push_error(conn, stats, 431, "request head exceeds limit");
                continue;
            }
            if conn.read_eof {
                if conn.read_buf.is_empty() {
                    if conn.write_pending() {
                        conn.state = ConnState::FlushClose { linger: false };
                        return (true, false);
                    }
                    return (false, false);
                }
                push_error(conn, stats, 400, "truncated request head");
                continue;
            }
            return (true, false);
        };
        if end > http::MAX_HEAD_BYTES {
            push_error(conn, stats, 431, "request head exceeds limit");
            continue;
        }
        let started = Instant::now();
        let parsed = {
            let (read_buf, write_buf) = (&conn.read_buf, &mut conn.write_buf);
            http::parse_head(&read_buf[..end])
                .map(|head| respond(st, shared, stats, &head, write_buf, force_close, started))
        };
        match parsed {
            Ok(outcome) => {
                conn.read_buf.drain(..end);
                conn.scanned = 0;
                conn.body_skip = outcome.body_skip;
                if outcome.error {
                    conn.state = ConnState::FlushClose { linger: true };
                } else if !outcome.keep_alive {
                    conn.state = ConnState::FlushClose { linger: false };
                } else {
                    conn.deadline = now + READ_TIMEOUT;
                }
            }
            Err(e) => push_error(conn, stats, e.status, &e.message),
        }
    }
}

/// Writes as much of `write_buf` as the socket accepts. Returns false
/// when the connection should close now.
fn flush(conn: &mut Conn, now: Instant) -> bool {
    while conn.write_pending() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return false,
            Ok(n) => conn.write_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn.deadline = now + WRITE_TIMEOUT;
                return true;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    if !conn.write_buf.is_empty() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    }
    match conn.state {
        ConnState::FlushClose { linger: false } => false,
        ConnState::FlushClose { linger: true } => {
            // Lingering close: stop sending, keep reading (and
            // discarding) briefly so unread pipelined input cannot turn
            // the close into an RST that eats the error response.
            let _ = conn.stream.shutdown(Shutdown::Write);
            conn.state = ConnState::Draining;
            conn.deadline = now + LINGER_TIMEOUT;
            true
        }
        _ => true,
    }
}

// ---------------------------------------------------------------------
// The loop proper.

struct EventLoop {
    shared: Arc<Shared>,
    listener: Arc<TcpListener>,
    epoll: Epoll,
    slab: Slab,
    wheel: Wheel,
    stats: LoopStats,
    state: Arc<SnapshotState>,
    local_epoch: u64,
    accepting: bool,
    busy: Vec<u8>,
    scratch: Vec<u8>,
    loop_id: usize,
    /// Last `/admin/debug` snapshot publication (None = never).
    last_publish: Option<Instant>,
}

/// Runs one event loop until shutdown completes. Spawned once per
/// worker thread by [`crate::Server`].
pub(crate) fn run(shared: Arc<Shared>, listener: Arc<TcpListener>, loop_id: usize) {
    let epoll = match Epoll::new() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("rd-serve: epoll_create1 failed: {e}");
            return;
        }
    };
    if let Err(e) = epoll.add(listener.as_raw_fd(), LISTENER_TOKEN, EPOLLIN) {
        eprintln!("rd-serve: registering listener failed: {e}");
        return;
    }
    let state = shared.current_state();
    let local_epoch = shared.epoch();
    let mut el = EventLoop {
        shared,
        listener,
        epoll,
        slab: Slab::new(),
        wheel: Wheel::new(Instant::now()),
        stats: LoopStats::new(),
        state,
        local_epoch,
        accepting: true,
        busy: http::busy_response(),
        scratch: vec![0u8; 64 * 1024],
        loop_id,
        last_publish: None,
    };
    el.run();
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 1024];
        let mut fired: Vec<(usize, u32)> = Vec::new();
        let mut drain_deadline: Option<Instant> = None;

        loop {
            if self.shared.is_shutdown() {
                let now = Instant::now();
                if self.accepting {
                    let _ = self.epoll.del(self.listener.as_raw_fd());
                    self.accepting = false;
                    drain_deadline = Some(now + SHUTDOWN_GRACE);
                    self.begin_shutdown();
                }
                if self.slab.live == 0 || drain_deadline.is_some_and(|d| now >= d) {
                    break;
                }
            }

            // Lock-free snapshot pickup: one relaxed load per wake-up;
            // the mutex is only touched when the epoch actually moved.
            let epoch = self.shared.epoch();
            if epoch != self.local_epoch {
                self.local_epoch = epoch;
                self.state = self.shared.current_state();
            }

            let wait_start = Instant::now();
            let n = self.epoll.wait(&mut events, EPOLL_WAIT_MS);
            let woke = Instant::now();
            self.stats.wakeups += 1;
            self.stats.total_wakeups += 1;
            self.stats
                .epoll_wait_us
                .record(woke.duration_since(wait_start).as_micros() as u64);
            self.stats.wakeup_events.record(n as u64);
            for ev in events.iter().take(n) {
                let (revents, data) = (ev.events, ev.data);
                if data == LISTENER_TOKEN {
                    self.accept_burst();
                } else {
                    let (idx, gen) = ((data & 0xffff_ffff) as usize, (data >> 32) as u32);
                    self.handle_conn_event(idx, gen, revents);
                }
            }

            let now = Instant::now();
            self.wheel.expire(now, &mut fired);
            for (idx, gen) in fired.drain(..) {
                self.on_wheel_fire(idx, gen, now);
            }

            self.stats.iter_us.record(woke.elapsed().as_micros() as u64);
            self.stats.slab_live_hw = self.stats.slab_live_hw.max(self.slab.live);
            let (wheel_depth, _) = self.wheel.depth();
            self.stats.wheel_depth_hw = self.stats.wheel_depth_hw.max(wheel_depth);
            self.maybe_publish_debug(now);
            self.stats.flush();
        }

        // Teardown: force-close whatever the grace period left behind.
        for idx in 0..self.slab.slots.len() {
            if self.slab.slots[idx].take().is_some() {
                self.slab.release(idx);
                self.shared.conn_count.fetch_sub(1, Ordering::Relaxed);
            }
        }
        self.stats.flush();
    }

    fn accept_burst(&mut self) {
        if !self.accepting {
            return;
        }
        for _ in 0..ACCEPT_BURST {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Reserve capacity before deciding: a load-then-add
                    // would race across loop threads, letting concurrent
                    // accepts each slip one connection past the cap. A
                    // rejected connection keeps its reservation until it
                    // closes — its fd is open while the 503 flushes, so
                    // it occupies a slot like any live connection.
                    let reserved = self.shared.conn_count.fetch_add(1, Ordering::Relaxed);
                    let over = reserved >= self.shared.max_conns;
                    if stream.set_nonblocking(true).is_err() {
                        self.shared.conn_count.fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let now = Instant::now();
                    let fd = stream.as_raw_fd();
                    let deadline =
                        if over { now + LINGER_TIMEOUT } else { now + READ_TIMEOUT };
                    let mut conn = Conn::new(stream, now, deadline);
                    let mut interest = EPOLLIN | EPOLLRDHUP;
                    if over {
                        // Over the connection cap: refuse loudly rather
                        // than queueing unboundedly — but deliver the
                        // refusal through the normal flush and
                        // lingering-drain machinery, so a partial write
                        // or unread client bytes cannot turn the 503 +
                        // retry-after into a lost response or an RST.
                        self.stats.rejected_busy += 1;
                        self.stats.record_error(503);
                        conn.write_buf.extend_from_slice(&self.busy);
                        conn.state = ConnState::FlushClose { linger: true };
                        interest = EPOLLOUT;
                        conn.interest = interest;
                    }
                    let (idx, gen) = self.slab.insert(conn);
                    if self.epoll.add(fd, token_data(idx, gen), interest).is_err() {
                        self.slab.take_if(idx, gen);
                        self.slab.release(idx);
                        self.shared.conn_count.fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                    self.wheel.insert(idx, gen, deadline, now);
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn handle_conn_event(&mut self, idx: usize, gen: u32, revents: u32) {
        let Some(mut conn) = self.slab.take_if(idx, gen) else {
            return;
        };
        let now = Instant::now();
        let mut alive = true;

        if revents & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
            alive = self.read_once(&mut conn);
        }
        if alive {
            alive = self.drive(&mut conn, now);
        }

        if alive {
            self.update_interest(idx, gen, &mut conn);
            self.slab.put_back(idx, conn);
        } else {
            self.close_conn(idx, conn);
        }
    }

    /// One non-blocking read (level-triggered epoll re-arms for more).
    fn read_once(&mut self, conn: &mut Conn) -> bool {
        match conn.stream.read(&mut self.scratch) {
            Ok(0) => {
                conn.read_eof = true;
                if conn.state == ConnState::Draining {
                    return false;
                }
                true
            }
            Ok(n) => {
                if conn.state == ConnState::Draining {
                    conn.linger_budget = conn.linger_budget.saturating_sub(n);
                    return conn.linger_budget > 0;
                }
                conn.read_buf.extend_from_slice(&self.scratch[..n]);
                true
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                true
            }
            Err(_) => false,
        }
    }

    /// Advances the state machine: parse + respond + flush, repeating
    /// when a drained write buffer unblocks backpressured pipelining.
    fn drive(&mut self, conn: &mut Conn, now: Instant) -> bool {
        loop {
            let mut backpressured = false;
            if conn.state == ConnState::Open
                && (!conn.read_buf.is_empty() || conn.body_skip > 0 || conn.read_eof)
            {
                let (alive, bp) =
                    process_buffer(conn, &self.state, &self.shared, &mut self.stats, now);
                if !alive {
                    return false;
                }
                backpressured = bp;
            }
            if !flush(conn, now) {
                return false;
            }
            // Backpressure cleared by the flush? Serve the rest.
            if !(backpressured && !conn.write_pending()) {
                return true;
            }
        }
    }

    fn update_interest(&mut self, idx: usize, gen: u32, conn: &mut Conn) {
        let mut want = 0;
        if conn.write_pending() {
            want |= EPOLLOUT;
        }
        let backpressured = conn.write_buf.len() - conn.write_pos > WRITE_HIGH_WATER;
        if backpressured != conn.backpressured {
            conn.backpressured = backpressured;
            if backpressured {
                self.stats.backpressure_engaged += 1;
            } else {
                self.stats.backpressure_released += 1;
            }
        }
        match conn.state {
            ConnState::Open => {
                if !conn.read_eof && !backpressured {
                    want |= EPOLLIN | EPOLLRDHUP;
                }
            }
            ConnState::Draining => want |= EPOLLIN | EPOLLRDHUP,
            ConnState::FlushClose { .. } => {}
        }
        if want == 0 {
            // Nothing to wait for shouldn't happen on a live connection;
            // keep hangup visibility as a safety net.
            want = EPOLLIN | EPOLLRDHUP;
        }
        if want != conn.interest
            && self
                .epoll
                .modify(conn.stream.as_raw_fd(), token_data(idx, gen), want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    fn on_wheel_fire(&mut self, idx: usize, gen: u32, now: Instant) {
        let Some(mut conn) = self.slab.take_if(idx, gen) else {
            return;
        };
        if conn.deadline > now {
            // Deadline moved since this entry was queued: requeue.
            self.wheel.insert(idx, gen, conn.deadline, now);
            self.slab.put_back(idx, conn);
            return;
        }
        let alive = match conn.state {
            ConnState::Draining | ConnState::FlushClose { .. } => false,
            ConnState::Open => {
                if conn.write_pending() {
                    false // stalled write
                } else if !conn.read_buf.is_empty() || conn.body_skip > 0 {
                    // Mid-head (slowloris) or mid-body: answer 400, then
                    // the lingering-close path.
                    push_error(&mut conn, &mut self.stats, 400, "request head timed out");
                    flush(&mut conn, now)
                } else {
                    false // idle keep-alive past its welcome
                }
            }
        };
        if alive {
            self.update_interest(idx, gen, &mut conn);
            self.wheel.insert(idx, gen, conn.deadline, now);
            self.slab.put_back(idx, conn);
        } else {
            self.close_conn(idx, conn);
        }
    }

    fn close_conn(&mut self, idx: usize, conn: Conn) {
        self.stats.conn_age_ms.record(conn.created.elapsed().as_millis() as u64);
        if conn.backpressured {
            // A connection that dies while backpressured still balances
            // the engaged/released pair.
            self.stats.backpressure_released += 1;
        }
        drop(conn); // closes the fd, which also deregisters it from epoll
        self.slab.release(idx);
        self.shared.conn_count.fetch_sub(1, Ordering::Relaxed);
    }

    /// Publishes this loop's `/admin/debug` snapshot — a bounded copy of
    /// slab and wheel state into [`Shared`], at most once per
    /// [`PUBLISH_INTERVAL`], so the debug endpoints never walk another
    /// loop's live structures.
    fn maybe_publish_debug(&mut self, now: Instant) {
        if self
            .last_publish
            .is_some_and(|t| now.duration_since(t) < PUBLISH_INTERVAL)
        {
            return;
        }
        self.last_publish = Some(now);
        let mut conns = Vec::with_capacity(self.slab.live.min(MAX_CONNS_LISTED));
        let mut truncated = 0usize;
        for (slot, entry) in self.slab.slots.iter().enumerate() {
            let Some(conn) = entry else { continue };
            if conns.len() >= MAX_CONNS_LISTED {
                truncated += 1;
                continue;
            }
            let deadline_ms = if conn.deadline >= now {
                conn.deadline.duration_since(now).as_millis() as i64
            } else {
                -(now.duration_since(conn.deadline).as_millis() as i64)
            };
            conns.push(ConnDebug {
                slot,
                state: conn.state_name(),
                age_ms: now.duration_since(conn.created).as_millis() as u64,
                read_buf: conn.read_buf.len(),
                write_pending: conn.write_buf.len() - conn.write_pos,
                backpressured: conn.backpressured,
                deadline_ms,
            });
        }
        let (wheel_depth, wheel_max_bucket) = self.wheel.depth();
        self.shared.publish_loop_debug(
            self.loop_id,
            LoopDebug {
                loop_id: self.loop_id,
                live: self.slab.live,
                slots: self.slab.slots.len(),
                wakeups: self.stats.total_wakeups,
                requests: self.stats.total_requests,
                wheel_depth,
                wheel_max_bucket,
                conns,
                conns_truncated: truncated,
            },
        );
    }

    /// On shutdown: flush connections that owe responses, drop the rest.
    fn begin_shutdown(&mut self) {
        for idx in 0..self.slab.slots.len() {
            let Some(mut conn) = self.slab.slots[idx].take() else {
                continue;
            };
            if conn.write_pending() || conn.state == ConnState::Draining {
                if conn.state == ConnState::Open {
                    conn.state = ConnState::FlushClose { linger: false };
                }
                self.slab.put_back(idx, conn);
            } else {
                self.close_conn(idx, conn);
            }
        }
    }
}
