//! The pre-rendered response cache: every static endpoint body rendered
//! once per snapshot, keyed by the snapshot's FNV-1a-64 trailer.
//!
//! Every GET body this server produces is a pure function of the loaded
//! corpus (byte-identical at any thread count — the determinism gate in
//! verify.sh depends on it), so the serving hot path collapses to
//! "render once per snapshot, memcpy cached bytes thereafter". A cache
//! entry stores the complete keep-alive response — status line, headers
//! (including the `etag` derived from the snapshot trailer), and body —
//! so the common case is a single `extend_from_slice` into the
//! connection's write buffer, no formatting, no allocation.
//!
//! [`SnapshotState`] bundles the corpus, its entity tag, and the cache
//! into one immutable unit behind an `Arc`: hot reload builds a fresh
//! state off the accept path and swaps the Arc, so in-flight requests
//! keep rendering from the snapshot they started with and no response
//! ever mixes two snapshot versions.

use std::collections::BTreeMap;
use std::sync::Arc;

use rd_snap::Corpus;

use crate::{http, render};

/// One cached endpoint: the body plus both pre-rendered framings.
pub(crate) struct Cached {
    /// The response body bytes (shared by HEAD and `connection: close`
    /// responses, and by tests comparing cached vs dynamic rendering).
    pub body: Vec<u8>,
    /// The complete keep-alive response: head + body, ready to copy.
    pub resp_ka: Vec<u8>,
}

/// An immutable snapshot-serving unit: corpus, entity tag, cache.
pub(crate) struct SnapshotState {
    /// The loaded corpus (kept for dynamic renders: `--no-cache`,
    /// non-canonical paths, 404 routing).
    pub corpus: Arc<Corpus>,
    /// The quoted entity tag served on snapshot-derived responses:
    /// `"<fnv1a64 trailer as 16 hex digits>"`.
    pub etag: String,
    /// Pre-rendered responses by canonical path; empty under `--no-cache`.
    pub cache: BTreeMap<String, Cached>,
    /// Pre-rendered `304 Not Modified` (keep-alive framing).
    pub not_modified_ka: Vec<u8>,
    /// Total cached body bytes (for `/admin/debug/cache`).
    pub cache_body_bytes: usize,
    /// Total cached pre-framed response bytes.
    pub cache_resp_bytes: usize,
    /// The reconfiguration plan document served at `/plan`
    /// (`rdx serve --plan`); `None` 404s the endpoint. Shared by Arc so
    /// hot reload re-attaches the same plan to the fresh snapshot.
    pub plan: Option<Arc<String>>,
}

impl SnapshotState {
    /// Renders every static endpoint of `corpus` once (unless
    /// `cache_enabled` is off) and fixes the entity tag from the
    /// snapshot's FNV-1a-64 `trailer` — recomputed by re-encoding when
    /// the corpus did not come from a snapshot file.
    pub fn build(
        corpus: Corpus,
        trailer: Option<u64>,
        cache_enabled: bool,
        plan: Option<Arc<String>>,
    ) -> SnapshotState {
        let trailer = trailer.unwrap_or_else(|| corpus.trailer());
        let etag = format!("\"{trailer:016x}\"");
        let corpus = Arc::new(corpus);
        let mut cache = BTreeMap::new();
        let (mut cache_body_bytes, mut cache_resp_bytes) = (0usize, 0usize);
        if cache_enabled {
            // Profiled as one span with a child per endpoint render, so
            // `--profile` shows where reload-rebuild time goes.
            let _span = rd_obs::span!("serve.cache_build");
            for path in static_paths(&corpus, plan.is_some()) {
                let body = {
                    let _render = rd_obs::span!("render:{}", path);
                    let Some(body) = render_path(&corpus, plan_text(&plan), &path) else {
                        continue;
                    };
                    body.into_bytes()
                };
                let mut resp_ka = Vec::with_capacity(body.len() + 160);
                http::push_response(
                    &mut resp_ka,
                    200,
                    "application/json",
                    &body,
                    true,
                    Some(&etag),
                    "",
                    false,
                );
                cache_body_bytes += body.len();
                cache_resp_bytes += resp_ka.len();
                cache.insert(path, Cached { body, resp_ka });
            }
        }
        let mut not_modified_ka = Vec::with_capacity(96);
        http::push_response(&mut not_modified_ka, 304, "", b"", true, Some(&etag), "", false);
        SnapshotState {
            corpus,
            etag,
            cache,
            not_modified_ka,
            cache_body_bytes,
            cache_resp_bytes,
            plan,
        }
    }

    /// The plan document text, if one was attached.
    pub fn plan_text(&self) -> Option<&str> {
        plan_text(&self.plan)
    }
}

/// Projects the shared plan Arc to the `&str` the renderer consumes.
pub(crate) fn plan_text(plan: &Option<Arc<String>>) -> Option<&str> {
    plan.as_deref().map(String::as_str)
}

/// The canonical cacheable paths of a corpus, in render order.
pub(crate) fn static_paths(corpus: &Corpus, has_plan: bool) -> Vec<String> {
    // `/healthz` is deliberately absent: its body depends on the live
    // health state, so it renders dynamically on every request.
    let mut paths = vec![
        "/networks".to_string(),
        "/instances".to_string(),
        "/pathways".to_string(),
        "/diag".to_string(),
    ];
    if has_plan {
        paths.push("/plan".to_string());
    }
    for n in &corpus.networks {
        paths.push(format!("/networks/{}", n.name));
        paths.push(format!("/networks/{}/processes", n.name));
    }
    paths
}

/// Routes a path to its rendered JSON body, `None` when the path has no
/// snapshot-derived endpoint (the caller then 404s). This is the single
/// routing truth shared by the cache builder and the `--no-cache` /
/// non-canonical-path dynamic fallback, using the same segment
/// normalization as the original threaded server (`//instances` and
/// `/networks/` still resolve), so cached and dynamic responses are
/// byte-identical.
pub(crate) fn render_path(corpus: &Corpus, plan: Option<&str>, path: &str) -> Option<String> {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["networks"] => Some(render::networks_index(corpus)),
        ["networks", id] => corpus.get(id).map(render::network_summary),
        ["networks", id, "processes"] => corpus.get(id).map(render::network_processes),
        ["instances"] => Some(render::instances(corpus)),
        ["pathways"] => Some(render::pathways(corpus)),
        ["diag"] => Some(render::diag(corpus)),
        // The reconfiguration plan is served verbatim as produced by
        // `rdx plan --json`; without one the path 404s.
        ["plan"] => plan.map(str::to_string),
        _ => None,
    }
}

/// The 404 message for a path [`render_path`] declined — same wording as
/// the original threaded server.
pub(crate) fn not_found_message(path: &str) -> String {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["networks", id] | ["networks", id, "processes"] => format!("no network '{id}'"),
        ["plan"] => "no plan loaded; start the server with --plan <plan.json>".to_string(),
        _ => format!("no route for {path}"),
    }
}
