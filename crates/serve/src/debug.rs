//! Live introspection state behind `/admin/debug/*`.
//!
//! The event loops are single-threaded over their own slab and wheel, so
//! a debug endpoint cannot walk them directly from another loop's
//! request. Instead each loop publishes a [`LoopDebug`] snapshot of
//! itself into [`crate::Shared`] at most once per [`PUBLISH_INTERVAL`] —
//! a bounded copy off the hot path — and the endpoints render whatever
//! was last published. The JSON here is hand-rolled (single object per
//! response, `rd_obs::json::escape` for strings), matching the rest of
//! the workspace's zero-dependency rendering.

use std::fmt::Write as _;
use std::time::Duration;

use crate::cache::SnapshotState;

/// Reload-history ring capacity (oldest events drop first).
pub(crate) const RELOAD_HISTORY: usize = 32;
/// Most connections listed per loop in `/admin/debug/conns`; the rest
/// are summarized by `conns_truncated` so a connection flood cannot turn
/// the debug endpoint into an allocation amplifier.
pub(crate) const MAX_CONNS_LISTED: usize = 256;
/// How often a loop republishes its [`LoopDebug`] snapshot.
pub(crate) const PUBLISH_INTERVAL: Duration = Duration::from_millis(200);

/// One connection, as last published by its owning loop.
pub(crate) struct ConnDebug {
    /// Slab slot index.
    pub slot: usize,
    /// `"open"`, `"flush-close"`, `"flush-close-linger"`, or `"draining"`.
    pub state: &'static str,
    /// Milliseconds since the connection was accepted.
    pub age_ms: u64,
    /// Buffered unparsed request bytes.
    pub read_buf: usize,
    /// Response bytes not yet written to the socket.
    pub write_pending: usize,
    /// True while past the write high-water mark (reads paused).
    pub backpressured: bool,
    /// Milliseconds until the live deadline fires (negative = overdue,
    /// the wheel just hasn't swept it yet).
    pub deadline_ms: i64,
}

/// One event loop's self-published state.
pub(crate) struct LoopDebug {
    /// Loop thread index (`rd-serve-loop-{id}`).
    pub loop_id: usize,
    /// Live connections in the slab.
    pub live: usize,
    /// Total slab slots (live + free).
    pub slots: usize,
    /// Cumulative epoll wake-ups since the loop started.
    pub wakeups: u64,
    /// Cumulative requests answered by this loop.
    pub requests: u64,
    /// Total entries across all timer-wheel buckets.
    pub wheel_depth: usize,
    /// Deepest single wheel bucket.
    pub wheel_max_bucket: usize,
    /// Per-connection detail, capped at [`MAX_CONNS_LISTED`].
    pub conns: Vec<ConnDebug>,
    /// Connections beyond the cap (listed count + this = live).
    pub conns_truncated: usize,
}

/// One entry in the reload history ring (the boot load is entry zero).
pub(crate) struct ReloadEvent {
    /// Milliseconds since server start.
    pub at_ms: u64,
    /// Whether the (re)load published a new snapshot.
    pub ok: bool,
    /// The entity tag serving after this event (unchanged on failure).
    pub etag: String,
    /// Networks in the serving corpus after this event.
    pub networks: usize,
    /// `"boot"`, `"reload"`, or the failure message.
    pub detail: String,
}

fn quoted(text: &str) -> String {
    format!("\"{}\"", rd_obs::json::escape(text))
}

fn push_loop_fields(out: &mut String, l: &LoopDebug) {
    let _ = write!(
        out,
        "{{\"loop\": {}, \"live\": {}, \"slots\": {}, \"wakeups\": {}, \
         \"requests\": {}, \"wheel_depth\": {}, \"wheel_max_bucket\": {}",
        l.loop_id, l.live, l.slots, l.wakeups, l.requests, l.wheel_depth, l.wheel_max_bucket
    );
}

/// `/admin/debug/loop`: per-loop health, no per-connection detail.
pub(crate) fn render_loops(loops: &[Option<LoopDebug>]) -> String {
    let mut out = String::from("{\"loops\": [");
    let mut first = true;
    for l in loops.iter().flatten() {
        if !first {
            out.push_str(", ");
        }
        first = false;
        push_loop_fields(&mut out, l);
        out.push('}');
    }
    let published = loops.iter().flatten().count();
    let _ = write!(out, "], \"published\": {published}, \"configured\": {}}}\n", loops.len());
    out
}

/// `/admin/debug/conns`: every published connection, flattened across
/// loops, each tagged with its owning loop.
pub(crate) fn render_conns(loops: &[Option<LoopDebug>]) -> String {
    let mut out = String::from("{\"conns\": [");
    let mut first = true;
    let (mut live, mut truncated) = (0usize, 0usize);
    for l in loops.iter().flatten() {
        live += l.live;
        truncated += l.conns_truncated;
        for c in &l.conns {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(
                out,
                "{{\"loop\": {}, \"slot\": {}, \"state\": \"{}\", \"age_ms\": {}, \
                 \"read_buf\": {}, \"write_pending\": {}, \"backpressured\": {}, \
                 \"deadline_ms\": {}}}",
                l.loop_id,
                c.slot,
                c.state,
                c.age_ms,
                c.read_buf,
                c.write_pending,
                c.backpressured,
                c.deadline_ms
            );
        }
    }
    let _ = write!(out, "], \"live\": {live}, \"truncated\": {truncated}}}\n");
    out
}

/// `/admin/debug/cache`: the serving snapshot (as this loop sees it —
/// after a failed reload this is still the pre-failure version) plus the
/// reload history ring.
pub(crate) fn render_cache(
    st: &SnapshotState,
    history: &[ReloadEvent],
    uptime_ms: u64,
) -> String {
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"etag\": {}, \"networks\": {}, \"entries\": {}, \"cache_enabled\": {}, \
         \"body_bytes\": {}, \"response_bytes\": {}, \"uptime_ms\": {uptime_ms}, \
         \"reload_history\": [",
        quoted(&st.etag),
        st.corpus.networks.len(),
        st.cache.len(),
        !st.cache.is_empty(),
        st.cache_body_bytes,
        st.cache_resp_bytes,
    );
    for (i, ev) in history.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"at_ms\": {}, \"ok\": {}, \"etag\": {}, \"networks\": {}, \"detail\": {}}}",
            ev.at_ms,
            ev.ok,
            quoted(&ev.etag),
            ev.networks,
            quoted(&ev.detail),
        );
    }
    out.push_str("]}\n");
    out
}

/// `/admin/debug/watch`: the health state machine plus whatever status
/// the supervisor last published (`"watch": null` under plain `rdx
/// serve`, which never publishes one).
pub(crate) fn render_watch(
    health: crate::HealthState,
    status: Option<&crate::WatchStatus>,
    uptime_ms: u64,
) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"health\": {}, \"uptime_ms\": {uptime_ms}, \"watch\": ",
        quoted(health.as_str()),
    );
    match status {
        None => out.push_str("null"),
        Some(s) => {
            let _ = write!(
                out,
                "{{\"generation\": {}, \"failures\": {}, \"consecutive_failures\": {}, \
                 \"backoff_ms\": {}, \"last_error\": {}, \"last_change_ms\": {}, \
                 \"last_publish_ms\": {}, \"fingerprints\": {}}}",
                s.generation,
                s.failures,
                s.consecutive_failures,
                s.backoff_ms,
                s.last_error.as_deref().map(quoted).unwrap_or_else(|| "null".to_string()),
                s.last_change_ms,
                s.last_publish_ms,
                s.fingerprints,
            );
        }
    }
    out.push_str("}\n");
    out
}
