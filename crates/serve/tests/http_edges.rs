//! HTTP protocol edge cases and concurrency behavior of `rd-serve`,
//! exercised over real sockets against a hand-built mini corpus.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use nettopo::{ExternalAnalysis, LinkMap, Network};
use rd_serve::Server;
use rd_snap::{Corpus, NetworkSnapshot};
use routing_model::{
    classify_network, Adjacencies, InstanceGraph, Instances, ProcessGraph, Processes, Table1,
};

/// Analyzes a two-router corpus through the real pipeline (no netgen or
/// core dependency) and snapshots it under `name`.
fn tiny_snapshot(name: &str) -> NetworkSnapshot {
    let r1 = "\
hostname edge1
interface Loopback0
 ip address 10.0.0.1 255.255.255.255
interface Serial0/0
 ip address 10.1.0.1 255.255.255.252
router ospf 1
 network 10.0.0.0 0.0.255.255 area 0
 network 10.1.0.0 0.0.255.255 area 0
router bgp 65000
 neighbor 10.0.0.2 remote-as 65000
";
    let r2 = "\
hostname edge2
interface Loopback0
 ip address 10.0.0.2 255.255.255.255
interface Serial0/0
 ip address 10.1.0.2 255.255.255.252
router ospf 1
 network 10.0.0.0 0.0.255.255 area 0
 network 10.1.0.0 0.0.255.255 area 0
router bgp 65000
 neighbor 10.0.0.1 remote-as 65000
 neighbor 192.168.50.1 remote-as 7018
";
    let texts = vec![
        ("config1".to_string(), r1.to_string()),
        ("config2".to_string(), r2.to_string()),
    ];
    let network = Network::from_texts(texts).expect("tiny corpus parses");
    let links = LinkMap::build(&network);
    let external = ExternalAnalysis::build(&network, &links);
    let processes = Processes::extract(&network);
    let adjacencies = Adjacencies::build(&network, &links, &processes, &external);
    let instances = Instances::compute(&processes, &adjacencies);
    let instance_graph = InstanceGraph::build(&network, &processes, &adjacencies, &instances);
    let process_graph = ProcessGraph::build(&network, &processes, &adjacencies);
    let blocks = network.address_blocks();
    let table1 = Table1::compute(&instances, &instance_graph, &adjacencies);
    let design = classify_network(&network, &instances, &instance_graph, &adjacencies, &table1);
    let diagnostics = network.diagnostics.clone();
    NetworkSnapshot {
        name: name.to_string(),
        network,
        links,
        external,
        processes,
        adjacencies,
        instances,
        instance_graph,
        process_graph,
        blocks,
        table1,
        design,
        diagnostics,
        file_hashes: Vec::new(),
    }
}

fn start_server() -> Server {
    let corpus = Corpus::new(vec![tiny_snapshot("net1"), tiny_snapshot("net2")]);
    Server::start(corpus, "127.0.0.1:0", 4).expect("server starts")
}

/// Sends raw bytes, half-closes the write side, and returns the raw
/// response text.
fn raw_request(server: &Server, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // The server may reject mid-send (oversized head): tolerate write
    // errors and read whatever response made it back.
    let _ = stream.write_all(bytes);
    stream.shutdown(std::net::Shutdown::Write).ok();
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// GETs `path` and returns (status line, body).
fn get(server: &Server, path: &str) -> (String, String) {
    let response = raw_request(
        server,
        format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes(),
    );
    let (head, body) = response.split_once("\r\n\r\n").expect("has header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

#[test]
fn endpoints_answer() {
    let server = start_server();

    let (status, body) = get(&server, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"status\": \"ok\"") && body.contains("\"networks\": 2"), "{body}");

    let (status, body) = get(&server, "/networks");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"name\": \"net1\"") && body.contains("\"name\": \"net2\""));

    let (status, body) = get(&server, "/networks/net1");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"name\": \"net1\"") && body.contains("\"design\""), "{body}");

    let (status, body) = get(&server, "/networks/net1/processes");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"proto\": \"ospf 1\"") || body.contains("\"proto\""), "{body}");

    let (status, body) = get(&server, "/instances");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"network\": \"net1\""), "{body}");

    let (status, body) = get(&server, "/pathways");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"max_depth\""), "{body}");

    let (status, body) = get(&server, "/diag");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"diagnostics\""), "{body}");

    // Request metrics are visible at /metrics after the calls above.
    let (status, body) = get(&server, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("http_requests_total"), "{body}");
    assert!(body.contains("http_request_us_bucket"), "{body}");

    server.shutdown();
}

#[test]
fn protocol_rejections() {
    let server = start_server();

    // Truncated request line: bytes stop mid-line, then EOF.
    let response = raw_request(&server, b"GET /netwo");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");

    // Oversized header → 431.
    let big = format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(10 * 1024));
    let response = raw_request(&server, big.as_bytes());
    assert!(response.starts_with("HTTP/1.1 431"), "{response}");

    // Oversized request head overall → 431.
    let huge = format!(
        "GET / HTTP/1.1\r\n{}\r\n",
        (0..8).map(|i| format!("x-{i}: {}\r\n", "b".repeat(7 * 1024))).collect::<String>()
    );
    let response = raw_request(&server, huge.as_bytes());
    assert!(response.starts_with("HTTP/1.1 431"), "{response}");

    // Unknown path → 404.
    let (status, body) = get(&server, "/nope");
    assert!(status.contains("404"), "{status}");
    assert!(body.contains("\"error\""), "{body}");
    let (status, _) = get(&server, "/networks/does-not-exist");
    assert!(status.contains("404"), "{status}");

    // Wrong method → 405 with Allow header.
    let response =
        raw_request(&server, b"POST /networks HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    assert!(response.to_ascii_lowercase().contains("allow: get"), "{response}");

    // Declared body over the cap → 413 (before any method handling).
    let response = raw_request(
        &server,
        b"POST /networks HTTP/1.1\r\nhost: t\r\ncontent-length: 999999999\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");

    // Garbage request line → 400.
    let response = raw_request(&server, b"NOT-HTTP\r\n\r\n");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");

    server.shutdown();
}

#[test]
fn keep_alive_serves_multiple_requests() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    let mut bodies = Vec::new();
    for i in 0..3 {
        let close = i == 2;
        let connection = if close { "close" } else { "keep-alive" };
        stream
            .write_all(
                format!("GET /networks/net1 HTTP/1.1\r\nhost: t\r\nconnection: {connection}\r\n\r\n")
                    .as_bytes(),
            )
            .unwrap();
        // Read one full response using its content-length.
        let mut head = Vec::new();
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut byte).expect("response head");
            head.push(byte[0]);
        }
        let head_text = String::from_utf8(head).unwrap();
        assert!(head_text.starts_with("HTTP/1.1 200"), "{head_text}");
        let expected = if close { "connection: close" } else { "connection: keep-alive" };
        assert!(head_text.contains(expected), "{head_text}");
        let len: usize = head_text
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .expect("content-length")
            .parse()
            .unwrap();
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body).expect("response body");
        bodies.push(String::from_utf8(body).unwrap());
    }
    assert_eq!(bodies[0], bodies[1]);
    assert_eq!(bodies[1], bodies[2]);
    server.shutdown();
}

#[test]
fn concurrent_clients_get_identical_bodies() {
    let server = start_server();
    let addr = server.local_addr();
    let (reference_status, reference) = get(&server, "/networks/net2");
    assert!(reference_status.contains("200"), "{reference_status}");

    let mut handles = Vec::new();
    for _ in 0..8 {
        let reference = reference.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..25 {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                stream
                    .write_all(
                        b"GET /networks/net2 HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
                    )
                    .unwrap();
                let mut response = String::new();
                stream.read_to_string(&mut response).expect("read");
                let (head, body) = response.split_once("\r\n\r\n").expect("split");
                assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                assert_eq!(body, reference, "concurrent body diverged");
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown();
}

#[test]
fn graceful_shutdown_closes_listener() {
    let server = start_server();
    let addr = server.local_addr();
    let (status, _) = get(&server, "/healthz");
    assert!(status.contains("200"));
    server.shutdown();
    // After shutdown the port no longer accepts (or accepts-then-drops
    // without answering). Either way no 200 comes back.
    let alive = TcpStream::connect_timeout(&addr.into(), Duration::from_millis(300))
        .and_then(|mut s| {
            s.set_read_timeout(Some(Duration::from_millis(500)))?;
            s.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")?;
            let mut out = String::new();
            s.read_to_string(&mut out)?;
            Ok(out)
        })
        .map(|out| out.contains("200 OK"))
        .unwrap_or(false);
    assert!(!alive, "server still answering after shutdown");
}
